# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

# Static analysis (docs/MODEL.md, "Memory discipline" and §12): the
# memory-discipline rules R1–R3 over the algorithm libraries plus the
# domain-sharing rules R4–R6 over the runtime layers (lib/runtime, lib/mem,
# lib/persist, lib/net, lib/txn).  Fails on any
# non-waived finding; the fixture check confirms the rules still fire on
# the intentionally racy files under test/fixtures.
lint:
	dune build @lint
	dune build bin/lint.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/lint.exe -- --json lib > $(ARTIFACTS)/psnap-lint.json
	dune exec bin/lint.exe -- --ruleset runtime --json test/fixtures \
	  > $(ARTIFACTS)/psnap-lint-fixtures.json; test $$? -eq 1

# Happens-before race checking (docs/MODEL.md §12): run every seeded
# fixture under round-robin + seeded random schedules; racy fixtures must
# race under every schedule and clean ones under none, and each racy
# fixture gets a ddmin-shrunk replayable witness schedule.
race:
	dune build bin/race.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/race.exe -- --seeds 3 --shrink \
	  --json $(ARTIFACTS)/psnap-race.json

# Regenerate every experiment table (E1..E13 step counts + E8 wall clock).
bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart portfolio checkpoint approximate_agreement \
	          aggregate_board readonly_transactions consensus; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; echo; done

# Campaign outputs (JSON metrics, shrunk witness schedules) land in the
# gitignored _artifacts/ directory; CI uploads it wholesale.
ARTIFACTS := _artifacts

# Fault-injection campaign (E14): seeded chaos / crash-storm nemeses over
# Figures 1 and 3 with the observation checker on; each run writes a JSON
# metrics summary (uploaded as a CI artifact).  Budgeted well under 60 s.
chaos:
	dune build bin/simulate.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl fig1 --nemesis chaos --seeds 40 \
	  --check --json $(ARTIFACTS)/chaos-fig1.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis chaos --seeds 40 \
	  --check --json $(ARTIFACTS)/chaos-fig3.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis storm --seeds 40 \
	  --check --json $(ARTIFACTS)/chaos-fig3-storm.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis crash-restart \
	  --seeds 10 --check --json $(ARTIFACTS)/chaos-fig3-cr.json

# Memory-fault campaign (E15, docs/MODEL.md §9): raw Figure 3 must break
# under seeded corruption (the shrunk witness is saved; the committed
# reference witness lives in schedules/), and the same algorithms functored
# over hardened registers must pass the identical storm.  CHAOS_MEM_SEED
# lets CI sweep seeds.
CHAOS_MEM_SEED ?= 0
chaos-mem:
	dune build bin/simulate.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl fig3 --mem-faults corrupt \
	  --mem-rate 0.05 --mem-max 12 --seed $(CHAOS_MEM_SEED) --seeds 20 \
	  --check --expect-violations --shrink \
	  --replay-file $(ARTIFACTS)/e15-fig3-corrupt-$(CHAOS_MEM_SEED).sched \
	  --json $(ARTIFACTS)/chaos-mem-fig3-raw-$(CHAOS_MEM_SEED).json
	dune exec bin/simulate.exe -- --impl fig3-hardened --mem-faults corrupt \
	  --mem-rate 0.05 --mem-max 12 --seed $(CHAOS_MEM_SEED) --seeds 20 \
	  --check --json $(ARTIFACTS)/chaos-mem-fig3-hardened-$(CHAOS_MEM_SEED).json
	dune exec bin/simulate.exe -- --impl fig1-hardened \
	  --mem-faults corrupt,stale,lose --mem-rate 0.03 --mem-max 8 \
	  --seed $(CHAOS_MEM_SEED) --seeds 10 \
	  --check --json $(ARTIFACTS)/chaos-mem-fig1-hardened-$(CHAOS_MEM_SEED).json

# Serving-layer smoke (E16): drive the flat and sharded Figure 3 through
# the multicore loadgen on 2 domains, short budget, JSON summaries
# uploaded with the other campaign artifacts.  The committed reference
# trajectory is BENCH_runtime.json.
loadgen-smoke:
	dune build bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/loadgen.exe -- --impl fig3 -m 1024 -r 16 --domains 2 \
	  --mix 1u+1s --scan window --duration 500ms --warmup 0.1s --seed 42 \
	  --json $(ARTIFACTS)/loadgen-fig3.json
	dune exec bin/loadgen.exe -- --impl sharded --shards 8 --partition range \
	  -m 1024 -r 16 --domains 2 --mix 1u+1s --scan window --duration 500ms \
	  --warmup 0.1s --seed 42 --json $(ARTIFACTS)/loadgen-sharded.json

# Resilient-serving campaign (E17, docs/MODEL.md §11): the supervised
# sharded front under combined nemeses.  Every Atomic scan is checked for
# linearizability; every budget exhaustion must surface as Degraded; the
# stuck-epoch runs must complete at least one shard rebuild with validated
# post-rebuild scans; the loadgen run pins tail latency with one circuit
# forced open.  JSON summaries land in _artifacts/ for CI upload.
chaos-runtime:
	dune build bin/simulate.exe bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl resilient --shards 4 \
	  --nemesis chaos --stick-epoch 0 --seeds 10 --check \
	  --json $(ARTIFACTS)/chaos-runtime-stuck-epoch.json
	dune exec bin/simulate.exe -- --impl resilient --shards 4 \
	  --stall-shard 1 --slow-pid 0 --seed 100 --seeds 10 --check \
	  --json $(ARTIFACTS)/chaos-runtime-stall.json
	dune exec bin/simulate.exe -- --impl resilient --shards 4 \
	  --nemesis chaos --mem-faults corrupt,stale --mem-rate 0.02 \
	  --mem-max 6 --stick-epoch 1 --seed 200 --seeds 10 --check \
	  --json $(ARTIFACTS)/chaos-runtime-combined.json
	dune exec bin/loadgen.exe -- --impl resilient --shards 4 \
	  --partition range -m 1024 -r 16 --domains 2 --mix 1u+1s \
	  --scan window --duration 500ms --warmup 0.1s --seed 42 \
	  --json $(ARTIFACTS)/loadgen-resilient.json
	dune exec bin/loadgen.exe -- --impl resilient --shards 4 \
	  --partition range -m 1024 -r 16 --domains 2 --mix 1u+1s \
	  --scan window --duration 500ms --warmup 0.1s --seed 42 \
	  --open-shard 0 --json $(ARTIFACTS)/loadgen-resilient-open.json

# Durability campaign (E18, docs/MODEL.md §13): the durable Figure 3
# under power-loss fault injection.  The sweep injects a blackout at
# every schedule point and every execution must recover to a durably
# linearizable state; the storm composes seeded blackouts with crash
# storms and checkpoints; the late-log run demonstrates the oracle
# actually catches committed-then-lost recovery bugs (its shrunk witness
# lands in _artifacts/; the committed reference witness lives in
# schedules/); the loadgen run prices the WAL against plain fig3.
# CHAOS_DURABLE_SEED lets CI sweep seeds.
CHAOS_DURABLE_SEED ?= 0
chaos-durable:
	dune build bin/simulate.exe bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl durable -m 8 -r 4 --updaters 2 \
	  --updates 5 --scanners 1 --scans 3 --power-loss sweep \
	  --seed $(CHAOS_DURABLE_SEED) --seeds 2 \
	  --json $(ARTIFACTS)/chaos-durable-sweep-$(CHAOS_DURABLE_SEED).json
	dune exec bin/simulate.exe -- --impl durable --power-loss storm \
	  --nemesis storm --checkpoint-every 4 \
	  --seed $(CHAOS_DURABLE_SEED) --seeds 20 \
	  --json $(ARTIFACTS)/chaos-durable-storm-$(CHAOS_DURABLE_SEED).json
	dune exec bin/simulate.exe -- --impl durable -m 4 -r 4 --updaters 1 \
	  --updates 3 --scanners 2 --scans 6 --power-loss sweep \
	  --wal-mode late-log --expect-violations --shrink \
	  --seed 1 --seeds 1 \
	  --replay-file $(ARTIFACTS)/e18-durable-latelog-$(CHAOS_DURABLE_SEED).sched \
	  --json $(ARTIFACTS)/chaos-durable-latelog-$(CHAOS_DURABLE_SEED).json
	dune exec bin/loadgen.exe -- --impl durable -m 1024 -r 16 --domains 2 \
	  --mix 1u+1s --scan window --duration 500ms --warmup 0.1s --seed 42 \
	  --json $(ARTIFACTS)/loadgen-durable.json

# Message-passing campaign (E19, docs/MODEL.md §14): Figure 3 over ABD
# quorum registers under the network nemeses — partition storms, duplicate
# floods, lag spikes — with the observation checker on, plus a loadgen
# smoke of the replicated service (replica domains over the mutex-guarded
# transport).  The weak-read witness is committed in schedules/ and
# replayed by dune runtest.  CHAOS_NET_SEED lets CI sweep seeds.
CHAOS_NET_SEED ?= 0
chaos-net:
	dune build bin/simulate.exe bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl fig3 --mem net --replicas 3 \
	  --net-nemesis partition_storm --seed $(CHAOS_NET_SEED) --seeds 3 \
	  --check --json $(ARTIFACTS)/chaos-net-partition-$(CHAOS_NET_SEED).json
	dune exec bin/simulate.exe -- --impl fig3 --mem net --replicas 3 \
	  --net-nemesis dup_flood --net-rate 0.1 --seed $(CHAOS_NET_SEED) \
	  --seeds 3 --check \
	  --json $(ARTIFACTS)/chaos-net-dup-$(CHAOS_NET_SEED).json
	dune exec bin/simulate.exe -- --impl fig3 --mem net --replicas 3 \
	  --net-nemesis lag_spike --net-rate 0.1 --seed $(CHAOS_NET_SEED) \
	  --seeds 3 --check \
	  --json $(ARTIFACTS)/chaos-net-lag-$(CHAOS_NET_SEED).json
	dune exec bin/loadgen.exe -- --impl fig3 --mem net --replicas 3 \
	  -m 64 -r 8 --domains 2 --mix 1u+1s --scan window --duration 500ms \
	  --warmup 0.1s --seed 42 --json $(ARTIFACTS)/loadgen-net.json

# Transaction campaign (E20, docs/MODEL.md §15): the MVCC
# snapshot-isolation layer under chaos / starvation / crash-restart
# nemeses with the SI observation oracle on; the last-writer-wins run
# must violate snapshot isolation (its shrunk witness lands in
# _artifacts/; the committed reference witness lives in schedules/ and
# is replayed by dune runtest); the loadgen run prices a zipf
# read-mostly transaction mix and reports the abort rate.
# CHAOS_TXN_SEED lets CI sweep seeds.
CHAOS_TXN_SEED ?= 0
chaos-txn:
	dune build bin/simulate.exe bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --impl txn --nemesis chaos \
	  --seed $(CHAOS_TXN_SEED) --seeds 25 --check \
	  --json $(ARTIFACTS)/chaos-txn-fcw-$(CHAOS_TXN_SEED).json
	dune exec bin/simulate.exe -- --impl txn --nemesis crash-restart \
	  --seed $(CHAOS_TXN_SEED) --seeds 10 --check \
	  --json $(ARTIFACTS)/chaos-txn-cr-$(CHAOS_TXN_SEED).json
	dune exec bin/simulate.exe -- --impl txn -m 4 -r 2 --updaters 2 \
	  --updates 3 --scanners 1 --scans 2 --sched random --txn-mode lww \
	  --seed $(CHAOS_TXN_SEED) --seeds 50 --check --expect-violations \
	  --shrink \
	  --replay-file $(ARTIFACTS)/e20-txn-lww-$(CHAOS_TXN_SEED).sched \
	  --json $(ARTIFACTS)/chaos-txn-lww-$(CHAOS_TXN_SEED).json
	dune exec bin/loadgen.exe -- --impl txn -m 64 -r 8 --domains 2 \
	  --dist zipf --mix 10:90 --duration 500ms --warmup 0.1s --seed 42 \
	  --json $(ARTIFACTS)/loadgen-txn.json

# Reconfiguration campaign (E21, docs/MODEL.md §16): the epoch-fenced
# membership protocol under permanent replica deaths, rolling restarts
# and member churn, each composed with a partition storm — zero
# violations tolerated.  The committed witness schedule must convict the
# naive (fence-free) mode of a lost acked write and leave the fenced
# mode clean on the identical schedule; the loadgen run permanently
# kills a majority under load and must return to Atomic service.
# CHAOS_RECONFIG_SEED lets CI sweep seeds.
CHAOS_RECONFIG_SEED ?= 0
chaos-reconfig:
	dune build bin/simulate.exe bin/loadgen.exe
	mkdir -p $(ARTIFACTS)
	dune exec bin/simulate.exe -- --reconfig fenced --replicas 3 --spares 2 \
	  --reconfig-nemesis replica_death --net-nemesis partition_storm \
	  --seed $(CHAOS_RECONFIG_SEED) --seeds 3 --check \
	  --json $(ARTIFACTS)/chaos-reconfig-death-$(CHAOS_RECONFIG_SEED).json
	dune exec bin/simulate.exe -- --reconfig fenced --replicas 3 --spares 2 \
	  --reconfig-nemesis rolling_restart --net-nemesis partition_storm \
	  --seed $(CHAOS_RECONFIG_SEED) --seeds 3 --check \
	  --json $(ARTIFACTS)/chaos-reconfig-rolling-$(CHAOS_RECONFIG_SEED).json
	dune exec bin/simulate.exe -- --reconfig fenced --replicas 3 --spares 2 \
	  --reconfig-nemesis config_churn --net-nemesis partition_storm \
	  --seed $(CHAOS_RECONFIG_SEED) --seeds 3 --check \
	  --json $(ARTIFACTS)/chaos-reconfig-churn-$(CHAOS_RECONFIG_SEED).json
	dune exec bin/simulate.exe -- --reconfig naive --updaters 1 --updates 20 \
	  --scanners 2 --scans 3 --replicas 3 --spares 2 --sched starve --check \
	  --expect-violations --replay-file schedules/e21-reconfig-naive.sched \
	  --json $(ARTIFACTS)/chaos-reconfig-naive-witness.json
	dune exec bin/simulate.exe -- --reconfig fenced --updaters 1 --updates 20 \
	  --scanners 2 --scans 3 --replicas 3 --spares 2 --sched starve --check \
	  --replay-file schedules/e21-reconfig-naive.sched \
	  --json $(ARTIFACTS)/chaos-reconfig-fenced-witness.json
	dune exec bin/loadgen.exe -- --reconfig-under-load --replicas 3 \
	  --spares 2 --domains 2 --duration 1s \
	  --json $(ARTIFACTS)/loadgen-reconfig.json

# Every chaos campaign back to back, consolidated into one summary: each
# campaign's JSON artifacts are embedded under their basename so a single
# file answers "did anything break tonight, and under which nemesis".
chaos-all: chaos chaos-mem chaos-runtime chaos-durable chaos-net chaos-txn chaos-reconfig
	{ echo '{'; \
	  first=1; \
	  for f in $$(ls $(ARTIFACTS)/chaos-*.json $(ARTIFACTS)/loadgen-reconfig.json 2>/dev/null | sort); do \
	    case "$$f" in */chaos-summary.json) continue ;; esac; \
	    name=$$(basename $$f .json); \
	    if [ $$first -eq 1 ]; then first=0; else echo ','; fi; \
	    printf '  "%s": ' "$$name"; cat $$f; \
	  done; \
	  echo '}'; } > $(ARTIFACTS)/chaos-summary.json
	@echo "consolidated summary: $(ARTIFACTS)/chaos-summary.json"

# The artifacts referenced by EXPERIMENTS.md.
pin-outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
	rm -rf $(ARTIFACTS)

.PHONY: all test lint race bench chaos chaos-mem chaos-runtime chaos-durable chaos-net chaos-txn chaos-reconfig chaos-all loadgen-smoke examples pin-outputs clean
