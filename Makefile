# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

# Memory-discipline static analysis (docs/MODEL.md, "Memory discipline").
lint:
	dune build @lint

# Regenerate every experiment table (E1..E13 step counts + E8 wall clock).
bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart portfolio checkpoint approximate_agreement \
	          aggregate_board readonly_transactions consensus; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; echo; done

# Fault-injection campaign (E14): seeded chaos / crash-storm nemeses over
# Figures 1 and 3 with the observation checker on; each run writes a JSON
# metrics summary (uploaded as a CI artifact).  Budgeted well under 60 s.
chaos:
	dune build bin/simulate.exe
	dune exec bin/simulate.exe -- --impl fig1 --nemesis chaos --seeds 40 \
	  --check --json chaos-fig1.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis chaos --seeds 40 \
	  --check --json chaos-fig3.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis storm --seeds 40 \
	  --check --json chaos-fig3-storm.json
	dune exec bin/simulate.exe -- --impl fig3 --nemesis crash-restart \
	  --seeds 10 --check --json chaos-fig3-cr.json

# The artifacts referenced by EXPERIMENTS.md.
pin-outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean

.PHONY: all test lint bench chaos examples pin-outputs clean
