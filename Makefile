# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

# Memory-discipline static analysis (docs/MODEL.md, "Memory discipline").
lint:
	dune build @lint

# Regenerate every experiment table (E1..E13 step counts + E8 wall clock).
bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart portfolio checkpoint approximate_agreement \
	          aggregate_board readonly_transactions consensus; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; echo; done

# The artifacts referenced by EXPERIMENTS.md.
pin-outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean

.PHONY: all test lint bench examples pin-outputs clean
