(** View representations and their step costs.

    The algorithms are written against this interface so both variants of
    the paper are available:

    - {!Direct}: a view is a single immutable value stored wholesale in a
      register/CAS cell.  Publishing and lookups are local (zero shared
      steps).  This is the default presentation of Figures 1 and 3, which
      the paper notes requires large registers.
    - {!Indirect}: the {e small registers} variant described in the remarks
      after Theorems 1 and 3 — "one can instead store a pointer to a set of
      registers that stores the information".  Publishing writes one
      register per (index, value) pair, sorted by index ([O(Cs·rmax)] extra
      steps per update); a lookup in a borrowed view binary-searches those
      registers ([O(log (Cs·rmax))] steps per component). *)

module type S = sig
  type 'a t

  val empty : 'a t

  (** [publish ~idxs ~vals] stores a view whose indices are strictly
      increasing.  May cost shared-memory steps. *)
  val publish : idxs:int array -> vals:'a array -> 'a t

  (** [find_exn v i] — the value of component [i]; raises
      [Invalid_argument] if absent (a broken helping invariant).  May cost
      shared-memory steps. *)
  val find_exn : 'a t -> int -> 'a

  val size : 'a t -> int
end

module Direct : S with type 'a t = 'a View.t = struct
  type 'a t = 'a View.t

  let empty = View.empty

  let publish ~idxs ~vals = { View.idxs; vals }

  let find_exn = View.find_exn

  let size = View.size
end

module Indirect (M : Psnap_mem.Mem_intf.S) : S = struct
  (* one small register per (index, value) pair, sorted by index *)
  type 'a t = (int * 'a) M.ref_ array

  let empty = [||]

  let publish ~idxs ~vals =
    Array.map2
      (fun i v ->
        let r = M.make (i, v) in
        M.write r (i, v);
        (* The allocation is free; the write is the step the paper charges
           for publishing one pair. *)
        r)
      idxs vals

  let[@psnap.local_state
       "binary-search bookkeeping only: the M.read per probe is the O(log r) \
        lookup cost the remark after Theorem 3 charges; lo/hi/res are local \
        scratch"] find_exn t i =
    let lo = ref 0 and hi = ref (Array.length t - 1) in
    let res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let j, v = M.read t.(mid) in
      if j = i then begin
        res := Some v;
        lo := !hi + 1
      end
      else if j < i then lo := mid + 1
      else hi := mid - 1
    done;
    match !res with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf
           "View_repr.Indirect.find_exn: component %d missing from a \
            borrowed view — the helping invariant of the algorithm is broken"
           i)

  let size = Array.length
end
