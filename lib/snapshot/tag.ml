(** Write tags.  Every update writes its process id and a per-process
    counter alongside the value (Section 3), so no two writes ever store the
    same register contents: two reads returning the same tag prove the
    register did not change in between (no ABA). *)

type t =
  | Init  (** the component's initial value; written by no process *)
  | W of { pid : int; seq : int }

let equal a b =
  match (a, b) with
  | Init, Init -> true
  | W a, W b -> a.pid = b.pid && a.seq = b.seq
  | Init, W _ | W _, Init -> false

let pp ppf = function
  | Init -> Fmt.string ppf "init"
  | W { pid; seq } -> Fmt.pf ppf "p%d#%d" pid seq
