(** One-shot immediate snapshot (Borowsky–Gafni levels algorithm) — the
    sibling object of reference [4] of the paper ("long-lived and adaptive
    atomic snapshot and {e immediate} snapshot").

    Each of [n] processes writes an input once and obtains a view — a set
    of (process, value) pairs — such that:

    - {b self-inclusion}: a process's view contains its own input;
    - {b containment}: any two views are ordered by inclusion;
    - {b immediacy}: if process [j]'s pair is in [i]'s view, then [j]'s
      view is a subset of [i]'s.

    Immediacy is strictly stronger than what a scan-based view gives (a
    snapshot provides containment only): it is as if concurrent processes
    write and snapshot {e simultaneously}.  The classic wait-free algorithm
    needs only registers: descend through levels [n, n-1, ...], posting
    your level and collecting, until at level [ℓ] you see at least [ℓ]
    processes at level [≤ ℓ]; your view is those processes.  A process
    terminates after at most [n] iterations of an [n]-collect: O(n²) steps,
    one-shot. *)

module Make (M : Psnap_mem.Mem_intf.S) = struct
  type 'v cell = { value : 'v; level : int }

  type 'v t = { cells : 'v cell option M.ref_ array; n : int }

  let create ~n =
    {
      cells =
        Array.init n (fun i -> M.make ~name:(Printf.sprintf "IS[%d]" i) None);
      n;
    }

  (** [participate t ~pid v] — returns the view as (pid, value) pairs
      sorted by pid.  At most one call per process. *)
  let participate t ~pid v =
    let[@psnap.bounded
         "level strictly decreases from n; at most n iterations"] rec descend
        level =
      if level < 1 then invalid_arg "Immediate.participate: too many processes"
      else begin
        M.write t.cells.(pid) (Some { value = v; level });
        let seen =
          Array.to_list
            (Array.mapi (fun q c -> (q, M.read c)) t.cells)
          |> List.filter_map (fun (q, c) ->
                 match c with
                 | Some { value; level = l } when l <= level -> Some (q, value)
                 | _ -> None)
        in
        if List.length seen >= level then seen else descend (level - 1)
      end
    in
    descend t.n
end
