(** The scanners' announcement board shared by Figures 1 and 3: one
    single-writer register per process holding the sorted component set of
    its current partial scan, plus the union computation an updater
    performs after its [getSet].

    Announcing is how a scan becomes helpable: an update that sees the
    announcement embeds the announced components in the view it publishes
    with its value, and the scan may then borrow that view (condition (2)
    of the embedded-scan loop, {!Collect}). *)

module Make (M : Psnap_mem.Mem_intf.S) : sig
  type t

  (** [create ~n] — one register per process, initially the empty set. *)
  val create : n:int -> t

  (** [announce t ~pid idxs] publishes [pid]'s current scan components
      (strictly increasing).  One write. *)
  val announce : t -> pid:int -> int array -> unit

  (** Union of the sets announced by [scanners], sorted strictly
      increasing.  One read per listed scanner; the merge is local. *)
  val union_announced : t -> int list -> int array
end
