(** An active set as an f-array, per Section 5 of the paper: "the function
    f can also be specified so that an f-array provides an active set
    algorithm".  Leaves hold membership marks; [f] is sorted-set union, so
    the root {e is} the member list and getSet costs one step — at the
    price of O(log n) LL/SC operations per join/leave on objects that grow
    to the full member list at the root.  The mirror image of Figure 2's
    trade-off (O(1) join/leave, amortized-O(C) getSet), measured in
    experiment E7/E2 terms by the active set test suites. *)

module Make (M : Psnap_mem.Mem_intf.S) : Psnap_activeset.Activeset_intf.S =
struct
  module F = Farray.Make (M)

  type t = (int option, int list) F.t

  type handle = {
    t : t;
    pid : int;
    mutable joined : bool;
        [@psnap.local_state
          "single-owner handle flag guarding join/leave alternation; never \
           read by another process"]
  }

  let name = "farray-aset"

  let rec merge a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys ->
      if x < y then x :: merge xs b
      else if y < x then y :: merge a ys
      else x :: merge xs ys

  let create ~n () =
    F.create ~name:"aset" ~pad:None
      ~of_leaf:(function Some p -> [ p ] | None -> [])
      ~combine:merge
      (Array.make (max n 1) None)

  let handle t ~pid = { t; pid; joined = false }

  let join h =
    assert (not h.joined);
    h.joined <- true;
    F.update h.t h.pid (Some h.pid)

  let leave h =
    assert h.joined;
    h.joined <- false;
    F.update h.t h.pid None

  let get_set t = F.read_root t
end
