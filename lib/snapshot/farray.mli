(** Jayanti's f-array [20] (PODC 2002), the related-work comparison point
    of Section 5 of the paper: an [m]-component object where a process can
    update one component or read [f] applied to {e all} components in O(1)
    shared-memory steps.

    A complete binary tree of LL/SC objects caches the aggregate of each
    subtree; an update writes its leaf and then {e double-refreshes} every
    ancestor (LL, recompute from the two children, SC).  If both SCs at a
    node fail, some concurrent refresh that started after this update's
    leaf write succeeded there, so the update's value is already accounted
    for — that collision argument makes propagation wait-free without
    retry loops.  A read returns the root in one step.

    The contrast the paper draws (and experiment E9 measures): reads are
    O(1) but every update pays O(log m) LL/SC operations on objects whose
    size grows up to the full vector at the root. *)

module Make (M : Psnap_mem.Mem_intf.S) : sig
  type ('a, 'b) t
  (** An f-array with components of type ['a] aggregated into values of
      type ['b]. *)

  val create :
    ?name:string ->
    pad:'a ->
    of_leaf:('a -> 'b) ->
    combine:('b -> 'b -> 'b) ->
    'a array ->
    ('a, 'b) t
  (** [create ~pad ~of_leaf ~combine init] builds the tree over a copy of
      [init].  [combine] must be associative; [pad] must be neutral for
      the aggregation (0 for sums, the identity view for vectors, ...):
      it fills the leaves added to round the width up to a power of two.

      @raise Invalid_argument on an empty [init]. *)

  val update : ('a, 'b) t -> int -> 'a -> unit
  (** Write component [i], then double-refresh the leaf-to-root path:
      Theta(log m) LL/SC steps, wait-free.

      @raise Invalid_argument if the index is out of range. *)

  val read_root : ('a, 'b) t -> 'b
  (** [f] applied to all components: one shared-memory step. *)

  val size : ('a, 'b) t -> int
  (** The number of (caller-visible) components [m]. *)
end
