(** A single-writer, single-scanner partial snapshot in the style of Riany,
    Shavit and Touitou [22] (related work, Section 5): updates cost O(1)
    steps and a partial scan of [r] components costs [r + 1] steps — far
    below the general algorithms — by {e restricting} the object: each
    component is owned by one writer, and only one designated process may
    scan.

    The scanner bumps a sequence register; every update stamps the current
    sequence number and carries the owner's previous pre-scan value.  A
    scan at sequence [s] takes a value stamped [< s] at face value and
    otherwise falls back to the carried [prev], which single-writership
    guarantees was the component's value just before the scan point.

    The fallback is exactly what breaks under multiple writers —
    `test_single_scanner.ml` exhibits a concrete non-linearizable
    multi-writer execution found by the exhaustive explorer.  This is the
    structural reason the paper's general multi-writer algorithm needs
    compare&swap and helping instead (Section 4).

    Not an instance of {!Snapshot_intf.S}: [create] needs the ownership
    map and the scanner's identity, which the generic signature cannot
    express. *)

module Make (M : Psnap_mem.Mem_intf.S) : sig
  type 'a t

  type 'a handle

  val name : string

  val create : owner:int array -> scanner:int -> 'a array -> 'a t
  (** [create ~owner ~scanner init] — component [i] may only be updated by
      process [owner.(i)]; only [scanner] may scan.  Raises [Invalid_argument]
      on an [owner]/[init] length mismatch. *)

  val handle : 'a t -> pid:int -> 'a handle

  val update : 'a handle -> int -> 'a -> unit
  (** O(1) steps.  Raises [Invalid_argument] if the caller does not own the
      component. *)

  val scan : 'a handle -> int array -> 'a array
  (** [r + 1] steps.  Raises [Invalid_argument] if the caller is not the
      designated scanner. *)

  val update_unchecked : 'a handle -> int -> 'a -> unit
  (** Same code path as [update] with the ownership check skipped — used by
      the tests to demonstrate the multi-writer counterexample. *)
end
