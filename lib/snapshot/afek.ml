(** The classic wait-free multi-writer snapshot of Afek et al. [1], which
    the paper uses both as its starting point (Section 3) and as the
    baseline a partial snapshot must beat: here {e every} scan — and the
    embedded scan of {e every} update — reads all [m] components, so the
    cost of a partial scan of [r] components still grows with [m].

    [scan idxs] performs a full embedded scan and projects the requested
    components; this is exactly the "trivial" partial snapshot
    implementation discussed in the introduction of the paper. *)

module Make (M : Psnap_mem.Mem_intf.S) : Snapshot_intf.S = struct
  module C = Collect.Make (M) (View_repr.Direct)

  type 'a t = { regs : 'a C.cell M.ref_ array; all : int array }

  type 'a handle = {
    t : 'a t;
    pid : int;
    mutable seq : int;
        [@psnap.local_state
          "per-process write sequence number; single-writer, only ever \
           published inside the tag written to this process's register"]
    mutable last_collects : int;
        [@psnap.local_state
          "diagnostics: records how many collects the last scan took; read \
           back only by the owning process"]
  }

  let name = "afek-full"

  let create ~n:_ init =
    {
      regs =
        Array.mapi
          (fun i v -> M.make ~name:(Printf.sprintf "R[%d]" i) (C.init_cell v))
          init;
      all = Array.init (Array.length init) (fun i -> i);
    }

  let handle t ~pid = { t; pid; seq = 0; last_collects = 0 }

  let update h i v =
    let result, _ = C.scan_per_process h.t.regs h.t.all in
    let view = C.to_view result in
    M.write h.t.regs.(i)
      { C.v; view; tag = Tag.W { pid = h.pid; seq = h.seq } };
    h.seq <- h.seq + 1

  let scan h idxs =
    let result, st = C.scan_per_process h.t.regs h.t.all in
    h.last_collects <- st.collects;
    C.extract result idxs

  let last_scan_collects h = h.last_collects
end
