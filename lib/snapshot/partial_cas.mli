(** Figure 3: the partial snapshot with {e local} scans, from compare&swap
    and fetch&increment (Section 4.2) — the paper's main algorithm.

    Updates install values with compare&swap, which validates the stronger
    per-location borrowing rule: a scan of [r] components finishes within
    [2r + 1] collects — [O(r²)] steps worst case, independent of [m], [n]
    and all contention (Theorem 3).

    The functor takes the active set as a parameter so that ablations can
    swap it (the faithful instantiation is [Fai_cas]). *)

(** Generic over the view representation {!View_repr.S}. *)
module Make_repr
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S)
    (V : View_repr.S) : Snapshot_intf.S

(** Views stored wholesale in the CAS cells (large objects). *)
module Make (M : Psnap_mem.Mem_intf.S) (A : Psnap_activeset.Activeset_intf.S) :
  Snapshot_intf.S

(** Small-registers variant of the remark after Theorem 3: views live in
    per-pair registers behind a pointer, adding [O(Cs·rmax)] steps per
    update and [O(r·log(Cs·rmax))] per scan. *)
module Make_small
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S) : Snapshot_intf.S
