(** One-shot immediate snapshot (Borowsky–Gafni levels algorithm) — the
    sibling object of reference [4] of the paper ("long-lived and adaptive
    atomic snapshot and {e immediate} snapshot").

    Each of [n] processes writes an input once and obtains a view — a set
    of (process, value) pairs — such that:

    - {b self-inclusion}: a process's view contains its own input;
    - {b containment}: any two views are ordered by inclusion;
    - {b immediacy}: if process [j]'s pair is in [i]'s view, then [j]'s
      view is a subset of [i]'s.

    Immediacy is strictly stronger than what a scan-based view gives (a
    snapshot provides containment only): it is as if concurrent processes
    write and snapshot {e simultaneously}.  Registers only; a process
    terminates after at most [n] iterations of an [n]-collect — O(n²)
    steps, one-shot. *)

module Make (M : Psnap_mem.Mem_intf.S) : sig
  type 'v t

  val create : n:int -> 'v t

  val participate : 'v t -> pid:int -> 'v -> (int * 'v) list
  (** [participate t ~pid v] — post input [v] and return the view as
      (pid, value) pairs sorted by pid.  At most one call per process. *)
end
