(** The multi-writer snapshot as a special case of the f-array ([f] =
    identity on the vector), the related-work contrast of Section 5: scans
    are one step, but every update performs Theta(log m) LL/SC operations
    on objects that grow to the full m-component vector at the root —
    neither local nor contention-sensitive, and built on large objects.

    A partial scan projects the requested components out of the root
    vector, exactly like the trivial partial snapshot over a full
    snapshot. *)

module Make (M : Psnap_mem.Mem_intf.S) : Snapshot_intf.S = struct
  module F = Farray.Make (M)

  type 'a t = ('a, 'a array) F.t

  type 'a handle = {
    t : 'a t;
    mutable last_collects : int;
        [@psnap.local_state
          "diagnostics: records the cost of the last scan; read back only \
           by the owning process"]
  }

  let name = "farray"

  let create ~n:_ init =
    if Array.length init = 0 then invalid_arg "Farray_snapshot.create: empty";
    (* the pad value is projected away (scans only touch indices < m) *)
    F.create ~pad:init.(0)
      ~of_leaf:(fun v -> [| v |])
      ~combine:Array.append init

  let handle t ~pid:_ = { t; last_collects = 0 }

  let update h i v = F.update h.t i v

  let scan h idxs =
    let root = F.read_root h.t in
    h.last_collects <- 1;
    Array.map
      (fun i ->
        if i < 0 || i >= F.size h.t then
          invalid_arg "Farray_snapshot.scan: index"
        else root.(i))
      idxs

  let last_scan_collects h = h.last_collects
end
