(* The scanners' announcement board shared by Figures 1 and 3: one
   single-writer register per process holding the sorted component set of
   its current scan, plus the union computation an updater performs after
   its getSet. *)

module Make (M : Psnap_mem.Mem_intf.S) = struct
  type t = { regs : int array M.ref_ array }

  let create ~n =
    {
      regs =
        Array.init n (fun p -> M.make ~name:(Printf.sprintf "A[%d]" p) [||]);
    }

  let announce t ~pid idxs = M.write t.regs.(pid) idxs

  (* Union of the announced sets of [scanners], sorted strictly
     increasing.  One read per scanner; the merge is local. *)
  let union_announced t scanners =
    let sets = List.map (fun p -> M.read t.regs.(p)) scanners in
    let all = Array.concat sets in
    Array.sort compare all;
    let[@psnap.local_state
         "dedup accumulator for the local merge of already-read sets"] out =
      ref []
    in
    Array.iter
      (fun i -> match !out with j :: _ when j = i -> () | _ -> out := i :: !out)
      all;
    Array.of_list (List.rev !out)
end
