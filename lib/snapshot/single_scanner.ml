(** A single-writer, single-scanner partial snapshot in the style of Riany,
    Shavit and Touitou [22] (related work, Section 5): updates cost O(1)
    steps and a partial scan of [r] components costs [r + 1] steps — far
    below the general algorithms — by {e restricting} the object: each
    component is owned by one writer, and only one designated process may
    scan.

    The scanner bumps a sequence register; every update stamps the current
    sequence number and carries the owner's previous pre-scan value.  A
    scan at sequence [s] takes a value stamped [< s] at face value, and for
    a value stamped [>= s] (written after the scan's linearization point)
    falls back to the carried [prev], which single-writership guarantees
    was the component's value just before the scan point.

    The fallback is exactly what breaks under multiple writers: another
    writer can slip a value between an update's read and its write, making
    [prev] stale — `test_single_scanner.ml` exhibits a concrete
    non-linearizable multi-writer execution found by the exhaustive
    explorer.  This is the structural reason the paper's general
    multi-writer algorithm needs compare&swap and helping instead
    (Section 4). *)

module Make (M : Psnap_mem.Mem_intf.S) = struct
  type 'a cell = { v : 'a; seq : int; prev : 'a }

  type 'a t = {
    regs : 'a cell M.ref_ array;
    seq : int M.ref_;
    owner : int array;  (** [owner.(i)] may update component [i] *)
    scanner : int;  (** the only process allowed to scan *)
  }

  type 'a handle = {
    t : 'a t;
    pid : int;
    mutable cur_seq : int;
        [@psnap.local_state
          "the scanner's private sequence counter; published only via the \
           write to the shared Seq register"]
  }

  let name = "single-scanner"

  let create ~owner ~scanner init =
    if Array.length owner <> Array.length init then
      invalid_arg "Single_scanner.create: owner/init length mismatch";
    {
      regs =
        Array.mapi
          (fun i v ->
            M.make ~name:(Printf.sprintf "R[%d]" i)
              { v; seq = min_int; prev = v })
          init;
      seq = M.make ~name:"Seq" 0;
      owner;
      scanner;
    }

  let handle t ~pid = { t; pid; cur_seq = 0 }

  (* O(1): one read of the sequence register, one read-modify-write of the
     owned component (single-writer, so the plain read+write pair is safe) *)
  let update h i v =
    if h.t.owner.(i) <> h.pid then
      invalid_arg
        (Printf.sprintf "Single_scanner.update: process %d does not own %d"
           h.pid i);
    let old = M.read h.t.regs.(i) in
    let s = M.read h.t.seq in
    let prev = if old.seq < s then old.v else old.prev in
    M.write h.t.regs.(i) { v; seq = s; prev }

  (* r + 1 steps: bump the sequence register (the scan's linearization
     point), then read each component once *)
  let scan h idxs =
    if h.pid <> h.t.scanner then
      invalid_arg "Single_scanner.scan: not the designated scanner";
    h.cur_seq <- h.cur_seq + 1;
    let s = h.cur_seq in
    M.write h.t.seq s;
    Array.map
      (fun i ->
        let c = M.read h.t.regs.(i) in
        if c.seq < s then c.v else c.prev)
      idxs

  (** Unsafe variant used by the tests to demonstrate the multi-writer
      counterexample: same code path, ownership check skipped. *)
  let update_unchecked h i v =
    let old = M.read h.t.regs.(i) in
    let s = M.read h.t.seq in
    let prev = if old.seq < s then old.v else old.prev in
    M.write h.t.regs.(i) { v; seq = s; prev }
end
