(** The result of an embedded scan: a finite partial map from component
    indices to values, as parallel sorted arrays (lookup = binary search).
    Views are immutable; the helping mechanism stores them next to values
    and borrows them wholesale. *)

type 'a t = { idxs : int array; vals : 'a array }
(** [idxs] strictly increasing; [vals.(k)] is the value of component
    [idxs.(k)].  Exposed for the zero-cost direct representation
    ({!View_repr.Direct}); treat as read-only. *)

val empty : 'a t

val size : 'a t -> int

(** [of_pairs l] — from pairs with distinct indices ([Invalid_argument]
    otherwise). *)
val of_pairs : (int * 'a) list -> 'a t

val find : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

(** Raises [Invalid_argument] naming the broken helping invariant if the
    component is absent. *)
val find_exn : 'a t -> int -> 'a

val to_pairs : 'a t -> (int * 'a) list
