(** Figure 1: the wait-free partial snapshot from registers.

    Scanners announce the components they need and register in an active
    set; updaters ask the active set who is scanning, read those
    announcements, and run an {e embedded partial scan} over just the union
    of the announced components, writing the resulting view next to their
    value so that starved scanners can borrow it (condition (2) of the
    collect engine, per-process rule).

    Instantiated with a register-only active set (e.g. {!Bounded}) this uses
    registers exclusively, as in Section 3 of the paper.  Theorem 1: with an
    active set of operation cost [T], a scan of [r] components takes
    [O((Cu+1)·r) + T] steps and an update [O(Cu·Cs·rmax) + T] steps.

    {!Make} stores views wholesale (large registers); {!Make_small} is the
    small-registers variant of the remark after Theorem 1. *)

module Make_repr
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S)
    (V : View_repr.S) : Snapshot_intf.S = struct
  module C = Collect.Make (M) (V)
  module Ann = Announce.Make (M)

  type 'a t = { regs : 'a C.cell M.ref_ array; ann : Ann.t; aset : A.t }

  type 'a handle = {
    t : 'a t;
    pid : int;
    a : A.handle;
    mutable seq : int;
        [@psnap.local_state
          "per-process write sequence number; single-writer, only ever \
           published inside the tag written to this process's register"]
    mutable last_collects : int;
        [@psnap.local_state
          "diagnostics: records how many collects the last scan took; read \
           back only by the owning process"]
  }

  let name = "fig1-reg(" ^ A.name ^ ")"

  let create ~n init =
    {
      regs =
        Array.mapi
          (fun i v -> M.make ~name:(Printf.sprintf "R[%d]" i) (C.init_cell v))
          init;
      ann = Ann.create ~n;
      aset = A.create ~n ();
    }

  let handle t ~pid =
    { t; pid; a = A.handle t.aset ~pid; seq = 0; last_collects = 0 }

  let update h i v =
    let scanners = A.get_set h.t.aset in
    let args = Ann.union_announced h.t.ann scanners in
    let result, _ = C.scan_per_process h.t.regs args in
    let view = C.to_view result in
    M.write h.t.regs.(i) { C.v; view; tag = Tag.W { pid = h.pid; seq = h.seq } };
    h.seq <- h.seq + 1

  let scan h idxs =
    let sorted = Array.of_list (List.sort_uniq compare (Array.to_list idxs)) in
    Ann.announce h.t.ann ~pid:h.pid sorted;
    A.join h.a;
    let result, st = C.scan_per_process h.t.regs sorted in
    A.leave h.a;
    h.last_collects <- st.collects;
    C.extract result idxs

  let last_scan_collects h = h.last_collects
end

module Make (M : Psnap_mem.Mem_intf.S) (A : Psnap_activeset.Activeset_intf.S) =
  Make_repr (M) (A) (View_repr.Direct)

(** Small-registers variant: views live in per-pair registers behind a
    pointer. *)
module Make_small
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S) =
  Make_repr (M) (A) (View_repr.Indirect (M))
