(** The partial snapshot object (Section 2.1 of the paper).

    Stores a vector of [m] components.  [update h i v] atomically writes [v]
    into component [i]; [scan h idxs] atomically reads the components listed
    in [idxs] (in any order, duplicates allowed) and returns their values
    aligned with [idxs].  Both are linearizable and wait-free in every
    implementation of this signature.

    A full snapshot is the special case [scan h [|0; ...; m-1|]]. *)

module type S = sig
  type 'a t

  type 'a handle
  (** Per-process state (announcement register, write counter).  One per
      (object, process id); operations through a handle must not be invoked
      concurrently with each other (processes are sequential threads of
      control, as in the model). *)

  val name : string

  val create : n:int -> 'a array -> 'a t
  (** [create ~n init] — an object with components [init], used by processes
      [0 .. n-1]. *)

  val handle : 'a t -> pid:int -> 'a handle

  val update : 'a handle -> int -> 'a -> unit

  val scan : 'a handle -> int array -> 'a array

  val last_scan_collects : 'a handle -> int
  (** Number of collects performed by this handle's most recent [scan] —
      instrumentation for the collect-bound experiments (E6). *)
end
