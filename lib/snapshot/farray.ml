(** Jayanti's f-array [20] (PODC 2002), the related-work comparison point of
    Section 5 of the paper: an [m]-component object where a process can
    update one component or read [f] applied to {e all} components in O(1)
    steps.

    A complete binary tree of LL/SC objects caches the aggregate of each
    subtree; an update writes its leaf and then {e double-refreshes} every
    ancestor: LL the node, recompute it from its two children, SC.  If both
    SCs at a node fail, some concurrent refresh that started after this
    update's leaf write succeeded there, so the update's value is already
    accounted for — that collision argument makes the propagation wait-free
    without retry loops.  A read returns the root in one step.

    The contrast the paper draws (and experiment E9 measures): reads are
    O(1) but every update pays O(log m) LL/SC operations on objects whose
    size grows up to the full vector at the root — "the improvement in the
    scan operation is achieved by making the cost of an update proportional
    to the size of the f-array, regardless of the current contention and
    number of components scanned". *)

module Make (M : Psnap_mem.Mem_intf.S) = struct
  module L = Psnap_mem.Llsc.Make (M)

  type ('a, 'b) t = {
    leaves : 'a M.ref_ array;  (** padded to [width] with the caller's
                                   neutral [pad] value *)
    nodes : 'b L.t array;  (** internal nodes only, heap layout: root at 1,
                               node i's children are 2i and 2i+1; an index
                               >= width denotes leaf (index - width) *)
    width : int;
    m : int;
    of_leaf : 'a -> 'b;
    combine : 'b -> 'b -> 'b;
  }

  let rec pow2_at_least k n = if n >= k then n else pow2_at_least k (2 * n)

  (** [pad] must be neutral for the aggregation (0 for sums, the identity
      view for vectors, ...): it fills the leaves added to round [m] up to
      a power of two. *)
  let create ?(name = "farr") ~pad ~of_leaf ~combine init =
    let m = Array.length init in
    if m = 0 then invalid_arg "Farray.create: empty";
    let width = pow2_at_least (max m 2) 2 in
    let leaf i = if i < m then init.(i) else pad in
    let leaves =
      Array.init width (fun i ->
          M.make ~name:(Printf.sprintf "%s.leaf%d" name i) (leaf i))
    in
    let rec agg i =
      if i >= width then of_leaf (leaf (i - width))
      else combine (agg (2 * i)) (agg ((2 * i) + 1))
    in
    let nodes =
      Array.init width (fun i ->
          L.make ~name:(Printf.sprintf "%s.n%d" name i) (agg (max i 1)))
    in
    { leaves; nodes; width; m; of_leaf; combine }

  (* recompute node [i] from its children and try to install it once *)
  let refresh t i =
    let _, tag = L.ll t.nodes.(i) in
    let child j =
      if j >= t.width then t.of_leaf (M.read t.leaves.(j - t.width))
      else L.read t.nodes.(j)
    in
    let fresh = t.combine (child (2 * i)) (child ((2 * i) + 1)) in
    ignore (L.sc t.nodes.(i) tag fresh)

  let update t i v =
    if i < 0 || i >= t.m then invalid_arg "Farray.update: index";
    M.write t.leaves.(i) v;
    let[@psnap.local_state
         "loop index over the leaf-to-root path; the path has height \
          ceil(log2 m)"] node =
      ref ((i + t.width) / 2)
    in
    while !node >= 1 do
      refresh t !node;
      refresh t !node;
      node := !node / 2
    done

  (** [f] applied to all components: one shared-memory step. *)
  let read_root t = L.read t.nodes.(1)

  let size t = t.m
end
