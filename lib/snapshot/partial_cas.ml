(** Figure 3: the partial snapshot with {e local} scans, from compare&swap
    and fetch&increment (Section 4.2) — the paper's main algorithm.

    Two changes relative to Figure 1 make scans local:

    - updates install their value with {b compare&swap} instead of a write,
      which validates the stronger per-location borrowing rule: three
      distinct values in one location let the scanner borrow the third one's
      view.  A scan of [r] components therefore finishes within [2r + 1]
      collects — [O(r²)] steps worst case, independent of [m], [n] and all
      contention (Theorem 3);
    - the active set is the fetch&increment/compare&swap one of Figure 2,
      whose [join]/[leave] cost O(1) worst case.

    An update whose CAS fails is linearized immediately before the update
    that beat it, so it behaves as if instantly overwritten; its counter is
    only advanced on success, exactly as in the pseudocode.

    The functor takes the active set as a parameter so that ablations can
    swap it (the faithful instantiation is [Fai_cas]).  {!Make} stores
    views wholesale in the CAS cells (large objects); {!Make_small} is the
    small-registers variant of the remark after Theorem 3, adding
    [O(Cs·rmax)] steps per update and [O(r·log(Cs·rmax))] per scan. *)

module Make_repr
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S)
    (V : View_repr.S) : Snapshot_intf.S = struct
  module C = Collect.Make (M) (V)
  module Ann = Announce.Make (M)

  type 'a t = { regs : 'a C.cell M.ref_ array; ann : Ann.t; aset : A.t }

  type 'a handle = {
    t : 'a t;
    pid : int;
    a : A.handle;
    mutable seq : int;
        [@psnap.local_state
          "per-process write sequence number; single-writer, only ever \
           published inside the tag installed by this process's CAS"]
    mutable last_collects : int;
        [@psnap.local_state
          "diagnostics: records how many collects the last scan took; read \
           back only by the owning process"]
  }

  let name = "fig3-cas(" ^ A.name ^ ")"

  let create ~n init =
    {
      regs =
        Array.mapi
          (fun i v -> M.make ~name:(Printf.sprintf "R[%d]" i) (C.init_cell v))
          init;
      ann = Ann.create ~n;
      aset = A.create ~n ();
    }

  let handle t ~pid =
    { t; pid; a = A.handle t.aset ~pid; seq = 0; last_collects = 0 }

  let update h i v =
    let old = M.read h.t.regs.(i) in
    let scanners = A.get_set h.t.aset in
    let args = Ann.union_announced h.t.ann scanners in
    let result, _ = C.scan_per_location h.t.regs args in
    let view = C.to_view result in
    let desired = { C.v; view; tag = Tag.W { pid = h.pid; seq = h.seq } } in
    (* On a machine whose CAS may fail spuriously (LL/SC-style weak CAS), a
       failure is not proof of a conflicting write — treating it as one
       silently drops the update, a real linearizability violation.  Retry
       while the location is physically unchanged: the CAS then still
       installs against the value [old] this update read, so the
       per-location borrowing rule's accounting ("a third value's updater
       read the second") is untouched.  Under a strong CAS the re-read
       never matches after a failure and the loop exits on the first
       iteration, as in the pseudocode. *)
    let[@psnap.helping] rec install () =
      if M.cas h.t.regs.(i) ~expected:old ~desired then h.seq <- h.seq + 1
      else if M.read h.t.regs.(i) == old then install ()
    in
    install ()

  let scan h idxs =
    let sorted = Array.of_list (List.sort_uniq compare (Array.to_list idxs)) in
    Ann.announce h.t.ann ~pid:h.pid sorted;
    A.join h.a;
    let result, st = C.scan_per_location h.t.regs sorted in
    A.leave h.a;
    h.last_collects <- st.collects;
    C.extract result idxs

  let last_scan_collects h = h.last_collects
end

module Make (M : Psnap_mem.Mem_intf.S) (A : Psnap_activeset.Activeset_intf.S) =
  Make_repr (M) (A) (View_repr.Direct)

(** Small-registers variant: views live in per-pair registers behind a
    pointer. *)
module Make_small
    (M : Psnap_mem.Mem_intf.S)
    (A : Psnap_activeset.Activeset_intf.S) =
  Make_repr (M) (A) (View_repr.Indirect (M))
