(** The embedded-scan engine shared by all three snapshot algorithms.

    An embedded scan repeatedly {e collects} (reads) the registers of the
    requested components until either

    {ol
    {- {b condition (1)}: two consecutive collects return identical tag
       vectors — the values were simultaneously present, and the scan
       linearizes between the two collects; or}
    {- {b condition (2)}: enough distinct values have been observed to
       prove some update's embedded view was produced entirely within this
       scan's interval, so that view can be {e borrowed} as the result.}}

    The two entry points differ only in the borrowing rule:
    {!Make.scan_per_process} is Figure 1's ("three different values
    written by the same process", within [2·Cu + 1] collects);
    {!Make.scan_per_location} is Figure 3's ("three distinct values in the
    same location", within [2r + 1] collects — independent of contention,
    which is what makes Figure 3's scans local).

    The functor is parametric in the view representation {!View_repr.S},
    so the small-registers variants (remarks after Theorems 1 and 3) share
    this code. *)

module Make (M : Psnap_mem.Mem_intf.S) (V : View_repr.S) : sig
  (** What a snapshot register holds: the value, the view published with
      it (empty until the writer has one), and the tag that makes values
      distinguishable across writes.  Concrete on purpose — the algorithms
      build and pattern-match these records directly. *)
  type 'a cell = { v : 'a; view : 'a V.t; tag : Tag.t }

  (** A cell holding the paper's initial value: empty view, {!Tag.Init}. *)
  val init_cell : 'a -> 'a cell

  type 'a result =
    | Fresh of int array * 'a array
        (** condition (1): sorted indices and their values, read directly *)
    | Borrowed of 'a V.t
        (** condition (2): the helping update's published view *)

  type stats = { collects : int; borrowed : bool }

  (** Publish a result as a view an update can write next to its value:
      free for [Borrowed] (pointer reuse), pays [V.publish] for [Fresh]. *)
  val to_view : 'a result -> 'a V.t

  (** [extract result idxs]: the values of [idxs] (any order, duplicates
      allowed).  Local for [Fresh]; pays [V.find_exn] per component for
      [Borrowed].
      @raise Invalid_argument if a component was not scanned. *)
  val extract : 'a result -> int array -> 'a array

  (** One collect: read each register of [idxs], in order. *)
  val collect : 'a cell M.ref_ array -> int array -> 'a cell array

  (** Tag-vector equality of two collects (condition (1) test). *)
  val same_collect : 'a cell array -> 'a cell array -> bool

  (** Figure 1 / Afek et al. termination rule.  [idxs] strictly
      increasing.
      @raise Invalid_argument otherwise. *)
  val scan_per_process : 'a cell M.ref_ array -> int array -> 'a result * stats

  (** Figure 3 termination rule: borrow the view of the third distinct
      value seen in one location.  Sound only when updates install with
      CAS.  [idxs] strictly increasing.
      @raise Invalid_argument otherwise. *)
  val scan_per_location :
    'a cell M.ref_ array -> int array -> 'a result * stats
end
