(** The embedded-scan engine shared by all three snapshot algorithms.

    An embedded scan repeatedly {e collects} (reads) the registers of the
    requested components until either

    {ol
    {- {b condition (1)}: two consecutive collects return identical tag
       vectors — the values were simultaneously present, and the scan
       linearizes between the two collects; or}
    {- {b condition (2)}: enough distinct values have been observed to prove
       some update's embedded view was produced entirely within this scan's
       interval, so that view can be {e borrowed} as the result.}}

    The two algorithms differ only in the borrowing rule:

    - {!Make.scan_per_process} (Figure 1, registers): borrow once a process
      has been {e observed to change} values twice ("three different values
      written by the same process", counting the per-location baseline);
      among those take the one with the highest counter.  Guaranteed within
      [2·Cu + 1] collects.
    - {!Make.scan_per_location} (Figure 3, compare&swap): borrow once three
      distinct values have been seen in the same location; take the third
      value seen there.  Guaranteed within [2r + 1] collects — independent
      of contention, which is what makes Figure 3's scans local.  The rule
      is sound only because updates install values with CAS: the third
      value's updater must have read the second value, hence started after
      it, hence after this scan's announcement.

    The functor is parametric in the view representation {!View_repr.S}, so
    the small-registers variants (remarks after Theorems 1 and 3) share
    this code: a condition-(1) result is {!Fresh} (values read directly, no
    publishing cost yet); a condition-(2) result is {!Borrowed} (a pointer
    to the helping update's published view). *)

module Make (M : Psnap_mem.Mem_intf.S) (V : View_repr.S) = struct
  type 'a cell = { v : 'a; view : 'a V.t; tag : Tag.t }

  let init_cell v = { v; view = V.empty; tag = Tag.Init }

  type 'a result =
    | Fresh of int array * 'a array  (** sorted indices and their values *)
    | Borrowed of 'a V.t

  type stats = { collects : int; borrowed : bool }

  (** Publishing a result as a view an update can write next to its value:
      free for [Borrowed] (pointer reuse), pays [V.publish] for [Fresh]. *)
  let to_view = function
    | Fresh (idxs, vals) -> V.publish ~idxs ~vals
    | Borrowed view -> view

  (** [extract result idxs]: the values of [idxs] (any order, duplicates
      allowed).  Local for [Fresh]; pays [V.find_exn] per component for
      [Borrowed]. *)
  let extract result idxs =
    match result with
    | Fresh (sorted, vals) ->
      let[@psnap.local_state
           "binary search over the already-read (immutable) result arrays; \
            purely local scratch"] find i =
        let lo = ref 0 and hi = ref (Array.length sorted - 1) in
        let res = ref None in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if sorted.(mid) = i then begin
            res := Some vals.(mid);
            lo := !hi + 1
          end
          else if sorted.(mid) < i then lo := mid + 1
          else hi := mid - 1
        done;
        match !res with
        | Some v -> v
        | None -> invalid_arg "Collect.extract: component not scanned"
      in
      Array.map find idxs
    | Borrowed view -> Array.map (V.find_exn view) idxs

  let collect regs idxs = Array.map (fun i -> M.read regs.(i)) idxs

  let same_collect c1 c2 =
    let n = Array.length c1 in
    let rec go k = k >= n || (Tag.equal c1.(k).tag c2.(k).tag && go (k + 1)) in
    go 0

  let check_idxs idxs =
    Array.iteri
      (fun k i ->
        if k > 0 && idxs.(k - 1) >= i then
          invalid_arg "Collect: indices must be strictly increasing")
      idxs

  (* Generic double-collect loop: [note] inspects every freshly read cell
     and returns a view to trigger condition (2). *)
  let scan_loop (type a) regs idxs ~(note : int -> a cell -> a V.t option) :
      a result * stats =
    check_idxs idxs;
    if Array.length idxs = 0 then
      (Fresh ([||], [||]), { collects = 0; borrowed = false })
    else
      let exception Borrow of a V.t * int in
      try
        let[@psnap.local_state
             "scan-private collect counter, reported in the stats record"] collects =
          ref 0
        in
        let do_collect () =
          let cur = collect regs idxs in
          incr collects;
          Array.iteri
            (fun k c ->
              match note k c with
              | Some view -> raise (Borrow (view, !collects))
              | None -> ())
            cur;
          cur
        in
        let[@psnap.bounded
             "terminates by condition (1) or (2): within 2·Cu+1 collects for \
              scan_per_process (Theorem 1), 2r+1 for scan_per_location \
              (Theorem 3)"] rec go prev =
          let cur = do_collect () in
          if same_collect prev cur then
            ( Fresh (Array.copy idxs, Array.map (fun c -> c.v) cur),
              { collects = !collects; borrowed = false } )
          else go cur
        in
        let first = do_collect () in
        go first
      with Borrow (view, n) -> (Borrowed view, { collects = n; borrowed = true })

  (** Figure 1 / Afek et al. termination: "three different values written by
      the same process have been seen (in any locations)".

      The three values are a per-location baseline plus two {e observed
      changes}: a value counts as evidence only when a location is seen to
      {e change} to it between two of our reads, which proves it was written
      during this scan.  (Three distinct same-process values merely sitting
      in different registers of a single collect prove nothing — they may
      all be arbitrarily old, and borrowing on them is unsound; a
      single-process execution already exhibits the bug.)  When a process is
      observed to change a value twice, the later write's update started
      after the earlier observed write — i.e. within this scan — so its view
      (the one "with the highest counter") is safe to borrow. *)
  let scan_per_process (type a) (regs : a cell M.ref_ array) idxs :
      a result * stats =
    let[@psnap.local_state
         "scan-private memory of the last tag seen per location"] baseline =
      Array.make (Array.length idxs) None
    in
    let[@psnap.local_state
         "scan-private table of observed changes per updating process"] fresh
        : (int, (int * a V.t) list) Hashtbl.t =
      Hashtbl.create 16
    in
    let note k (c : a cell) =
      match baseline.(k) with
      | Some t when Tag.equal t c.tag -> None
      | before -> (
        baseline.(k) <- Some c.tag;
        match (before, c.tag) with
        | None, _ -> None (* first collect: baseline only *)
        | Some _, Tag.Init ->
          assert false (* registers never revert to their initial value *)
        | Some _, Tag.W { pid; seq } -> (
          let l = try Hashtbl.find fresh pid with Not_found -> [] in
          if List.mem_assoc seq l then None
          else
            let l = (seq, c.view) :: l in
            Hashtbl.replace fresh pid l;
            match l with
            | (s1, v1) :: (s2, v2) :: _ -> Some (if s1 > s2 then v1 else v2)
            | _ -> None))
    in
    scan_loop regs idxs ~note

  (** Figure 3 termination: three distinct values in the same location;
      borrow the view of the third value seen there. *)
  let scan_per_location (type a) (regs : a cell M.ref_ array) idxs :
      a result * stats =
    let[@psnap.local_state
         "scan-private list of distinct tags seen per location"] seen =
      Array.make (Array.length idxs) []
    in
    let note k (c : a cell) =
      let l = seen.(k) in
      if List.exists (fun t -> Tag.equal t c.tag) l then None
      else begin
        seen.(k) <- c.tag :: l;
        if List.length seen.(k) >= 3 then Some c.view else None
      end
    in
    scan_loop regs idxs ~note
end
