(** Write tags: every update stores its process id and per-process counter
    alongside the value (Section 3), so no two writes ever store identical
    register contents — two reads returning equal tags prove the register
    did not change in between (no ABA). *)

type t =
  | Init  (** the component's initial value; written by no process *)
  | W of { pid : int; seq : int }

val equal : t -> t -> bool

val pp : t Fmt.t
