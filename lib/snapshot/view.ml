(** The result of an embedded scan: a finite partial map from component
    indices to values, kept as parallel sorted arrays so that lookups are
    binary searches — this is the "sorted by indices" representation the
    paper prescribes for small-register variants (remark after Theorem 1).

    Views are immutable; they are stored inside register/CAS cells and
    borrowed wholesale by the helping mechanism. *)

type 'a t = { idxs : int array; vals : 'a array }

let empty = { idxs = [||]; vals = [||] }

let size v = Array.length v.idxs

(** [of_pairs l] builds a view from index–value pairs with distinct
    indices. *)
let of_pairs l =
  let a = Array.of_list l in
  Array.sort (fun (i, _) (j, _) -> compare i j) a;
  let idxs = Array.map fst a and vals = Array.map snd a in
  Array.iteri
    (fun k i -> if k > 0 && idxs.(k - 1) = i then invalid_arg "View.of_pairs: duplicate index" else ())
    idxs;
  { idxs; vals }

let[@psnap.local_state
     "binary search over the view's immutable arrays; purely local scratch"] find
    v i =
  let lo = ref 0 and hi = ref (Array.length v.idxs - 1) in
  let res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = v.idxs.(mid) in
    if x = i then (
      res := Some v.vals.(mid);
      lo := !hi + 1)
    else if x < i then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem v i = find v i <> None

let find_exn v i =
  match find v i with
  | Some x -> x
  | None ->
    invalid_arg
      (Printf.sprintf
         "View.find_exn: component %d missing from a borrowed view — the \
          helping invariant of the algorithm is broken"
         i)

let to_pairs v = Array.to_list (Array.map2 (fun i x -> (i, x)) v.idxs v.vals)
