(** The "simple variant of the original non-blocking snapshot algorithm"
    that Section 3 of the paper starts from: updates write tagged values,
    and a partial scan repeats collects until two consecutive ones are
    identical — condition (1) only, {e no helping}.

    Linearizable and non-blocking (a scan only retries because an update
    finished), but {b not wait-free}: a slow scanner can be starved by
    fast concurrent updates.  The test suite demonstrates exactly that
    divergence under a starvation schedule, which is the paper's
    motivation for the embedded-scan helping of Figures 1 and 3. *)

exception Starved
(** Raised by [scan] after [max_collects] collects (see
    {!Make.set_max_collects}) — a non-blocking implementation must be
    allowed to not terminate, but tests and benchmarks need to observe
    that finitely. *)

module Make (M : Psnap_mem.Mem_intf.S) : sig
  include Snapshot_intf.S

  val set_max_collects : 'a handle -> int -> unit
  (** Give up (raise {!Starved}) after this many collects in a single
      [scan]; [max_int] by default.  Observation hook for the
      non-termination tests. *)
end
