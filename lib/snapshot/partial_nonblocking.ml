(** The "simple variant of the original non-blocking snapshot algorithm"
    that Section 3 of the paper starts from: updates write tagged values,
    and a partial scan repeats collects until two consecutive ones are
    identical — condition (1) only, {e no helping}.

    The implementation is linearizable and non-blocking (some operation
    always completes: a scan only retries because an update finished), but
    {b not wait-free}: "a slow scanner can keep seeing different collects
    if fast updates are concurrently being performed."  The test suite
    demonstrates exactly that divergence under a starvation schedule, which
    is the paper's motivation for the embedded-scan helping mechanism of
    Figures 1 and 3.

    [scan] takes [max_collects] ([max_int] by default) after which it
    raises {!Starved} — a non-blocking implementation must be allowed to
    not terminate, but tests and benchmarks need to observe that finitely. *)

exception Starved

module Make (M : Psnap_mem.Mem_intf.S) = struct
  type 'a cell = { v : 'a; tag : Tag.t }

  type 'a t = { regs : 'a cell M.ref_ array }

  type 'a handle = {
    t : 'a t;
    pid : int;
    mutable seq : int;
        [@psnap.local_state
          "per-process write sequence number; single-writer, only ever \
           published inside the tag written to this process's register"]
    mutable last_collects : int;
        [@psnap.local_state
          "diagnostics: records how many collects the last scan took; read \
           back only by the owning process"]
    mutable max_collects : int;
        [@psnap.local_state
          "per-process starvation cutoff for the non-termination tests; \
           never read by another process"]
  }

  let name = "nonblocking"

  let create ~n:_ init =
    {
      regs =
        Array.mapi
          (fun i v ->
            M.make ~name:(Printf.sprintf "R[%d]" i) { v; tag = Tag.Init })
          init;
    }

  let handle t ~pid =
    { t; pid; seq = 0; last_collects = 0; max_collects = max_int }

  (** Give up (raise {!Starved}) after this many collects — observation
      hook for the non-termination tests. *)
  let set_max_collects h k = h.max_collects <- k

  let update h i v =
    M.write h.t.regs.(i) { v; tag = Tag.W { pid = h.pid; seq = h.seq } };
    h.seq <- h.seq + 1

  let same c1 c2 =
    let n = Array.length c1 in
    let rec go k = k >= n || (Tag.equal c1.(k).tag c2.(k).tag && go (k + 1)) in
    go 0

  let scan h idxs =
    let sorted = Array.of_list (List.sort_uniq compare (Array.to_list idxs)) in
    let collect () = Array.map (fun i -> M.read h.t.regs.(i)) sorted in
    let[@psnap.bounded
         "deliberately only non-blocking — the Section 3 baseline without \
          helping; gives up with Starved after max_collects collects"] rec go
        prev n =
      if n > h.max_collects then raise Starved;
      let cur = collect () in
      if same prev cur then begin
        h.last_collects <- n;
        let find i =
          let[@psnap.bounded
               "linear walk over the already-read collect; at most r \
                iterations, no shared accesses"] rec search k =
            if sorted.(k) = i then cur.(k).v else search (k + 1)
          in
          search 0
        in
        Array.map find idxs
      end
      else go cur (n + 1)
    in
    if Array.length sorted = 0 then [||] else go (collect ()) 2

  let last_scan_collects h = h.last_collects
end
