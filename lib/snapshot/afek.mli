(** The classic wait-free multi-writer snapshot of Afek et al. [1], which
    the paper uses both as its starting point (Section 3) and as the
    baseline a partial snapshot must beat: here {e every} scan — and the
    embedded scan of {e every} update — reads all [m] components, so the
    cost of a partial scan of [r] components still grows with [m].

    [scan idxs] performs a full embedded scan and projects the requested
    components; this is exactly the "trivial" partial snapshot
    implementation discussed in the introduction of the paper. *)

module Make (M : Psnap_mem.Mem_intf.S) : Snapshot_intf.S
