(** Public facade of the partial-snapshot library.

    The paper's objects — partial snapshots (Section 2.1) and active sets —
    are provided as functors over a shared-memory backend, plus pre-applied
    instances for the two backends:

    - {!Sim_*}: the step-counting simulator (use inside
      {!Sim.run}); this is the backend on which the paper's complexity
      theorems are validated.
    - {!Mc_*}: OCaml 5 atomics, for real multi-domain programs.

    Quick start (multicore backend):
    {[
      module S = Psnap.Mc_fig3
      let t = S.create ~n:4 (Array.make 1024 0)
      (* in domain/process [pid]: *)
      let h = S.handle t ~pid
      let () = S.update h 17 42
      let values = S.scan h [| 3; 17; 512 |]
    ]} *)

(** Shared-memory backends. *)
module Mem = struct
  module type S = Psnap_mem.Mem_intf.S

  module Atomic = Psnap_mem.Mem_atomic
  module Sim = Psnap_sched.Mem_sim
  module Infinite_array = Psnap_mem.Infinite_array

  (** Fault-hardened memories (docs/MODEL.md §9): functors wrapping any
      backend in self-validating / replicated registers. *)
  module Hardened = Psnap_mem.Hardened

  (** Simulator backend wrapped in single-cell self-validation: detects
      [Corrupt]/[Stale_read]/[Lost_write]; cannot survive [Stuck_cell]. *)
  module Sim_selfcheck = Psnap_mem.Hardened.Selfcheck (Psnap_sched.Mem_sim)

  (** Simulator backend behind 3-fold replication: tolerates one faulty
      replica per cell, including a permanently stuck one. *)
  module Sim_replicated =
    Psnap_mem.Hardened.Replicated
      (Psnap_sched.Mem_sim)
      (struct
        let k = 3
      end)
end

(** Simulation kernel: the asynchronous shared-memory machine. *)
module Sim = Psnap_sched.Sim

module Scheduler = Psnap_sched.Scheduler
module Explore = Psnap_sched.Explore
module Metrics = Psnap_sched.Metrics
module Event = Psnap_sched.Event
module Trace = Psnap_sched.Trace
module Shrink = Psnap_sched.Shrink
module Vclock = Psnap_sched.Vclock
module Race = Psnap_sched.Race
module Interval_set = Psnap_interval.Interval_set

(** Histories and correctness checkers. *)
module History = Psnap_history.History

module Lin_check = Psnap_history.Lin_check
module Snapshot_spec = Psnap_history.Snapshot_spec
module Activeset_check = Psnap_history.Activeset_check
module Si_check = Psnap_history.Si_check

(** The active set abstraction and its implementations. *)
module Active_set = struct
  module type S = Psnap_activeset.Activeset_intf.S

  (** Figure 2: fetch&increment + compare&swap; O(1) join/leave. *)
  module Fai_cas = Psnap_activeset.Fai_cas.Make

  (** Figure 2 with the interval list behind a pointer to small registers
      (remark after Theorem 2). *)
  module Fai_cas_small = Psnap_activeset.Fai_cas_small.Make

  (** Baseline: one flag register per process; O(n) getSet. *)
  module Bounded = Psnap_activeset.Bounded.Make

  (** Register-only adaptive active set from a tree of splitters, in the
      spirit of the paper's reference [3] — the building block Figure 1
      prescribes. *)
  module Splitter_tree = Psnap_activeset.Splitter_tree.Make
end

(** The partial snapshot object and its implementations. *)
module Snapshot = struct
  module type S = Psnap_snapshot.Snapshot_intf.S

  module View = Psnap_snapshot.View
  module View_repr = Psnap_snapshot.View_repr
  module Tag = Psnap_snapshot.Tag
  module Collect = Psnap_snapshot.Collect
  module Announce = Psnap_snapshot.Announce

  (** Figure 3 — the paper's main algorithm: local O(r²) scans. *)
  module Fig3 = Psnap_snapshot.Partial_cas.Make

  (** Figure 3 with views in small registers (remark after Theorem 3). *)
  module Fig3_small = Psnap_snapshot.Partial_cas.Make_small

  (** Figure 1 — partial snapshot from registers. *)
  module Fig1 = Psnap_snapshot.Partial_register.Make

  (** Figure 1 with views in small registers (remark after Theorem 1). *)
  module Fig1_small = Psnap_snapshot.Partial_register.Make_small

  (** Afek et al. full snapshot; partial scan = projection (the trivial
      implementation the paper's introduction argues against). *)
  module Afek = Psnap_snapshot.Afek.Make

  (** Jayanti's f-array specialised to snapshots (related work, Section 5):
      O(1) scans, Theta(log m) large-object LL/SC updates. *)
  module Farray = Psnap_snapshot.Farray_snapshot.Make

  (** The helping-free double-collect variant Section 3 starts from:
      linearizable and non-blocking but {e not} wait-free. *)
  module Nonblocking = Psnap_snapshot.Partial_nonblocking.Make

  (** Single-writer/single-scanner restriction (related work [22]): O(1)
      updates, O(r) partial scans. *)
  module Single_scanner = Psnap_snapshot.Single_scanner.Make

  (** One-shot immediate snapshot (Borowsky–Gafni levels; the sibling
      object of reference [4]): views with self-inclusion, containment and
      immediacy, from registers only. *)
  module Immediate = Psnap_snapshot.Immediate.Make

  exception Starved = Psnap_snapshot.Partial_nonblocking.Starved
end

(** The generic f-array (aggregate any [combine] over the components) and
    the LL/SC primitive it is built on. *)
module Farray = Psnap_snapshot.Farray

module Llsc = Psnap_mem.Llsc

(** The serving layer (docs/MODEL.md §10): sharding across independent
    snapshot instances, multicore load generation, latency histograms. *)
module Runtime = struct
  module Sharded = Psnap_runtime.Sharded
  module Resilient = Psnap_runtime.Resilient
  module Loadgen = Psnap_runtime.Loadgen
  module Histogram = Psnap_runtime.Histogram
end

(** The transactional layer (docs/MODEL.md §15): MVCC snapshot-isolation
    transactions — version chains in snapshot components, begin-timestamps
    plus the active set as the in-flight committer list, read-only
    transactions as single partial scans, first-committer-wins commits
    through a bounded commit descriptor. *)
module Txn = struct
  module type S = Psnap_txn.Txn.S

  module Make = Psnap_txn.Txn.Make

  type mode = Psnap_txn.Txn.mode = Fcw | Lww

  type abort_reason = Psnap_txn.Txn.abort_reason = Conflict of int | Busy

  let mode_to_string = Psnap_txn.Txn.mode_to_string

  let mode_of_string = Psnap_txn.Txn.mode_of_string
end

(** The durability layer (docs/MODEL.md §13): checksummed write-ahead
    log + checkpoints over pluggable storage, power-loss fault injection,
    verified recovery. *)
module Persist = struct
  module Storage = Psnap_persist.Storage
  module Wal = Psnap_persist.Wal
  module Checkpoint = Psnap_persist.Checkpoint
  module Recovery = Psnap_persist.Recovery
  module Durable = Psnap_persist.Durable
end

(* ---- Pre-applied instances: simulator backend ---- *)

module Sim_aset_fai = Psnap_activeset.Fai_cas.Make (Mem.Sim)
module Sim_aset_fai_small = Psnap_activeset.Fai_cas_small.Make (Mem.Sim)
module Sim_aset_bounded = Psnap_activeset.Bounded.Make (Mem.Sim)
module Sim_aset_farray = Psnap_snapshot.Farray_activeset.Make (Mem.Sim)
module Sim_aset_splitter = Psnap_activeset.Splitter_tree.Make (Mem.Sim)
module Sim_fig1 = Psnap_snapshot.Partial_register.Make (Mem.Sim) (Sim_aset_bounded)

(** Figure 1 exactly as Section 3 prescribes: registers only, with an
    {e adaptive} active set in the spirit of [3]. *)
module Sim_fig1_adaptive =
  Psnap_snapshot.Partial_register.Make (Mem.Sim) (Sim_aset_splitter)
module Sim_fig3 = Psnap_snapshot.Partial_cas.Make (Mem.Sim) (Sim_aset_fai)
module Sim_afek = Psnap_snapshot.Afek.Make (Mem.Sim)
module Sim_farray = Psnap_snapshot.Farray_snapshot.Make (Mem.Sim)
module Sim_nonblocking = Psnap_snapshot.Partial_nonblocking.Make (Mem.Sim)
module Sim_single_scanner = Psnap_snapshot.Single_scanner.Make (Mem.Sim)

(** Small-registers variants (the remarks after Theorems 1-3). *)
module Sim_fig1_small =
  Psnap_snapshot.Partial_register.Make_small (Mem.Sim) (Sim_aset_bounded)

module Sim_fig3_small =
  Psnap_snapshot.Partial_cas.Make_small (Mem.Sim) (Sim_aset_fai_small)

(** Ablation: Figure 3's snapshot machinery with the non-adaptive bounded
    active set instead of Figure 2's. *)
module Sim_fig3_bounded_aset =
  Psnap_snapshot.Partial_cas.Make (Mem.Sim) (Sim_aset_bounded)

(** Figure 3 sharded 4 ways (validated cross-shard scans, round-robin
    placement) on the simulator — the instance the chaos campaigns and
    [Lin_check] tests exercise; build other geometries directly with
    {!Runtime.Sharded.Make}. *)
module Sim_sharded_fig3 =
  Psnap_runtime.Sharded.Make (Mem.Sim) (Sim_fig3)
    (struct
      let shards = 4
      let partition = `Round_robin
      let mode = `Validated
    end)

(* ---- Hardened instances: the same algorithms over fault-tolerant
   registers (docs/MODEL.md §9, EXPERIMENTS.md E15).  Logical step counts
   are unchanged; each logical access costs several simulator steps. ---- *)

module Sim_aset_fai_hardened =
  Psnap_activeset.Fai_cas.Make (Mem.Sim_replicated)

module Sim_aset_bounded_hardened =
  Psnap_activeset.Bounded.Make (Mem.Sim_replicated)

(** Figure 3 over 3-fold replicated registers: survives seeded memory-fault
    storms that produce non-linearizable histories on {!Sim_fig3}. *)
module Sim_fig3_hardened =
  Psnap_snapshot.Partial_cas.Make (Mem.Sim_replicated) (Sim_aset_fai_hardened)

(** Figure 1 over 3-fold replicated registers. *)
module Sim_fig1_hardened =
  Psnap_snapshot.Partial_register.Make
    (Mem.Sim_replicated)
    (Sim_aset_bounded_hardened)

module Sim_aset_fai_selfcheck =
  Psnap_activeset.Fai_cas.Make (Mem.Sim_selfcheck)

(** Figure 3 over single-cell self-validating registers: detects and
    repairs corruption without replication (but cannot survive stuck
    cells). *)
module Sim_fig3_selfcheck =
  Psnap_snapshot.Partial_cas.Make (Mem.Sim_selfcheck) (Sim_aset_fai_selfcheck)

(** The resilient serving layer on the simulator (docs/MODEL.md §11,
    EXPERIMENTS.md E17): Figure 3 over self-validating registers as the
    primary per-shard implementation, healed shards rebuilt on Figure 3
    over 3-fold replicated registers.  Spine cells (shard pointers, epoch
    sources, inflight counters) are plain simulator cells, so the chaos
    campaigns can target them by name (["rshard0.epoch"], ...).  Build
    other geometries and budgets directly with {!Runtime.Resilient.Make}. *)
module Sim_resilient_fig3 =
  Psnap_runtime.Resilient.Make (Mem.Sim) (Sim_fig3_selfcheck)
    (Sim_fig3_hardened)
    (struct
      let shards = 4
      let partition = `Round_robin
      let max_rounds = 6
      let backoff_base = 2
      let backoff_max = 16
      let breaker_threshold = 3
      let breaker_cooldown = 4
      let probe_successes = 2
      let heal_quiesce = 64
    end)

(** Figure 3 made failure-atomically durable under the simulator: a
    write-ahead log + checkpoints on the fault-injectable simulated
    device (docs/MODEL.md §13). *)
module Sim_durable_fig3 =
  Psnap_persist.Durable.Make (Mem.Sim) (Sim_fig3)
    (Psnap_persist.Storage.Sim)

(** The MVCC transactional store over Figure 3 on the simulator — the
    instance the [--impl txn] chaos campaigns, the SI-oracle tests and the
    committed e20 witness drive: version chains in Figure 3 components,
    Figure 2's active set as the in-flight committer list
    (docs/MODEL.md §15, EXPERIMENTS.md E20). *)
module Sim_txn_fig3 = Psnap_txn.Txn.Make (Mem.Sim) (Sim_fig3) (Sim_aset_fai)

(** The same transactional store over the helping-free non-blocking
    snapshot: read-only transactions inherit its starvation behaviour,
    which is what makes it interesting under adversarial schedules. *)
module Sim_txn_nonblocking =
  Psnap_txn.Txn.Make (Mem.Sim) (Sim_nonblocking) (Sim_aset_fai)

(* ---- Distributed backend (docs/MODEL.md §14): ABD quorum registers
   over the crash-prone message transport ---- *)

(** The message-passing layer: deterministic simulated transport with
    injectable link faults, the multicore inbox transport, and the ABD
    quorum-register memory backend over them. *)
module Net = struct
  module Transport = Psnap_net.Net
  module Abd = Psnap_net.Net_abd

  (** Online reconfiguration (docs/MODEL.md §16): epoch-fenced membership
      changes, replica replacement, health-based suspicion. *)
  module Reconfig = Psnap_net.Net_reconfig

  exception Unavailable = Psnap_net.Net_abd.Unavailable
end

module Sim_net_aset_fai = Psnap_activeset.Fai_cas.Make (Psnap_net.Net_abd.Sim_mem)

(** Figure 3 over replicated ABD quorum registers on the simulator — the
    instance the [--mem net] chaos campaigns drive: every base-object
    access becomes a bounded quorum operation against [--replicas]
    crash-prone replicas, and the whole thing stays linearizable under
    partitions, duplication and reordering (EXPERIMENTS.md E19). *)
module Sim_net_fig3 =
  Psnap_snapshot.Partial_cas.Make (Psnap_net.Net_abd.Sim_mem) (Sim_net_aset_fai)

module Mc_net_aset_fai = Psnap_activeset.Fai_cas.Make (Psnap_net.Net_abd.Mc_mem)

(** Figure 3 over the multicore ABD cluster (replica domains + inbox
    queues) — what the loadgen's [--mem net] drives to price quorum
    round-trips against raw shared memory. *)
module Mc_net_fig3 =
  Psnap_snapshot.Partial_cas.Make (Psnap_net.Net_abd.Mc_mem) (Mc_net_aset_fai)

(* ---- Pre-applied instances: multicore (Atomic) backend ---- *)

module Mc_aset_fai = Psnap_activeset.Fai_cas.Make (Mem.Atomic)
module Mc_aset_fai_small = Psnap_activeset.Fai_cas_small.Make (Mem.Atomic)
module Mc_aset_bounded = Psnap_activeset.Bounded.Make (Mem.Atomic)
module Mc_aset_splitter = Psnap_activeset.Splitter_tree.Make (Mem.Atomic)
module Mc_fig1 = Psnap_snapshot.Partial_register.Make (Mem.Atomic) (Mc_aset_bounded)

module Mc_fig1_adaptive =
  Psnap_snapshot.Partial_register.Make (Mem.Atomic) (Mc_aset_splitter)

module Mc_fig1_small =
  Psnap_snapshot.Partial_register.Make_small (Mem.Atomic) (Mc_aset_bounded)

module Mc_fig3 = Psnap_snapshot.Partial_cas.Make (Mem.Atomic) (Mc_aset_fai)

module Mc_fig3_small =
  Psnap_snapshot.Partial_cas.Make_small (Mem.Atomic) (Mc_aset_fai_small)

module Mc_afek = Psnap_snapshot.Afek.Make (Mem.Atomic)
module Mc_farray = Psnap_snapshot.Farray_snapshot.Make (Mem.Atomic)
module Mc_nonblocking = Psnap_snapshot.Partial_nonblocking.Make (Mem.Atomic)

(** Figure 3 sharded 4 ways on real atomics; the loadgen CLI builds
    arbitrary shard counts at runtime. *)
module Mc_sharded_fig3 =
  Psnap_runtime.Sharded.Make (Mem.Atomic) (Mc_fig3)
    (struct
      let shards = 4
      let partition = `Round_robin
      let mode = `Validated
    end)

(** Figure 3 made durable on real atomics, logging through the
    mutex-guarded multicore device — what the loadgen's [--impl durable]
    drives to price durability in the latency histograms. *)
module Mc_durable_fig3 =
  Psnap_persist.Durable.Make (Mem.Atomic) (Mc_fig3) (Psnap_persist.Storage.Mc)

(** The MVCC transactional store over Figure 3 on real atomics — what the
    loadgen's [--impl txn] drives: a zipf read-mostly transaction mix with
    commit/abort/retry accounting (EXPERIMENTS.md E20). *)
module Mc_txn_fig3 = Psnap_txn.Txn.Make (Mem.Atomic) (Mc_fig3) (Mc_aset_fai)
