(** MVCC snapshot-isolation transactions over a partial snapshot object
    (docs/MODEL.md §15).

    Each component of the underlying snapshot holds a small version chain;
    [begin_] captures a begin-timestamp from the global commit clock plus
    the in-flight committer list served by the active-set machinery, and a
    version [(cts, txid, v)] is visible to a transaction iff [cts] is at
    most its begin-timestamp and [txid] was not in flight at its begin.
    Read-only transactions over a declared read set are one partial scan —
    no validation, no aborts (the paper's Section 6 reading of a partial
    scan as a read-only transaction).  Read-write commits serialize through
    a commit descriptor installed by bounded CAS: first-committer-wins
    validation, a fetch&add commit timestamp, atomic per-component
    publication through the snapshot update path.

    Commit never blocks indefinitely: descriptor acquisition is bounded and
    gives up with [Busy] (an abort is always SI-safe), so a crashed
    descriptor holder cannot hang its peers; {!Make.resume} lets the
    holder's restarted incarnation complete or release the descriptor.  A
    crashed committer that is never resumed stays in the in-flight list, so
    its partial writes are permanently invisible — effectively aborted. *)

type mode =
  | Fcw  (** first-committer-wins: sound snapshot isolation *)
  | Lww
      (** last-writer-wins: deliberately unsound — commit skips write-write
          validation, producing lost updates for the [Si_check] oracle and
          the committed e20 witness to catch (EXPERIMENTS.md E20) *)

type abort_reason =
  | Conflict of int
      (** first-committer-wins validation failed on this component *)
  | Busy  (** commit-descriptor acquisition exhausted its bounded attempts *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode option

(** Output signature of {!Make} — what the CLI drivers and the typed
    [Kv] facade are functorized over. *)
module type S = sig
  type 'a t

  type 'a handle
  (** Per-process state; operations through a handle must not be invoked
      concurrently with each other (processes are sequential). *)

  type 'a txn
  (** One transaction of one handle; at most one live per handle. *)

  val name : string

  val create : ?mode:mode -> ?lock_attempts:int -> n:int -> 'a array -> 'a t
  (** [create ~n init] — a store with components [init], used by processes
      [0 .. n-1].  [lock_attempts] bounds commit-descriptor acquisition
      (default 128); exhausting it aborts the commit with [Busy]. *)

  val handle : 'a t -> pid:int -> 'a handle

  val mode : 'a t -> mode

  val begin_ : 'a handle -> 'a txn
  (** Capture a begin-timestamp and the in-flight committer list, and
      announce the begin-timestamp for the pruning watermark. *)

  val read : 'a txn -> int -> 'a
  (** Snapshot read of one component (one-component partial scan); own
      buffered writes shadow the snapshot. *)

  val read_many : 'a txn -> int array -> 'a array
  (** The declared-read-set read: one partial scan, results aligned with
      the request (duplicates allowed).  A [begin_]/[read_many]/[commit]
      sequence with no writes is the read-only transaction: it never
      validates and never aborts. *)

  val write : 'a txn -> int -> 'a -> unit
  (** Buffer a write; visible to this transaction's own reads, published
      only by [commit]. *)

  val commit : 'a txn -> (int, abort_reason) result
  (** Commit.  Read-only: immediate, returns [Ok begin_ts].  Read-write:
      first-committer-wins validation then atomic publication, returns
      [Ok commit_ts] or [Error (Conflict _ | Busy)].  The transaction is
      finished either way. *)

  val abort : 'a txn -> unit
  (** Drop the transaction; buffered writes are discarded. *)

  val resume : 'a handle -> 'a Psnap_history.Si_check.obs option
  (** Crash-restart recovery for this pid: if a dead incarnation crashed
      holding the commit descriptor, complete its publish (idempotent) and
      release it; clear this pid's announce slot.  Call before the first
      transaction of a restarted incarnation.  [Some obs] reports a
      rolled-forward commit to the SI oracle (the dead incarnation's own
      [observation] stays [None]); harvesters should dedupe by txid in
      case the crash landed after the outcome was recorded but before the
      descriptor was released. *)

  val txid : 'a txn -> int

  val begin_ts : 'a txn -> int

  val excluded : 'a txn -> int list

  val observation : 'a txn -> 'a Psnap_history.Si_check.obs option
  (** The record the {!Psnap_history.Si_check} oracle consumes; [None]
      while the transaction is live. *)
end

module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (A : Psnap_activeset.Activeset_intf.S) : S
