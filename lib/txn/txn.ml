(* Multi-version snapshot-isolation transactions over a partial snapshot
   object (docs/MODEL.md §15).

   Each component of the underlying snapshot holds a small version chain
   (newest first); a transaction's begin captures a begin-timestamp from the
   global commit clock plus the set of in-flight committer transaction ids
   served by the active-set machinery, and every read filters a chain by the
   standard MVCC visibility rule: a version [(cts, txid, v)] is visible iff
   [cts <= begin_ts] and [txid] was not in flight at begin.  A read-only
   transaction over a declared read set is a single partial scan — no
   validation, no aborts, exactly the paper's "a partial scan can be viewed
   as a read-only transaction" (Section 6).

   Read-write commits serialize through a commit descriptor installed by
   CAS: validate the write set first-committer-wins (head of each chain
   must still be visible to this transaction's snapshot), draw a commit
   timestamp by fetch&add, then publish each new chain through the snapshot
   update path.  Acquisition is bounded — a committer that cannot install
   the descriptor aborts with [Busy] rather than spinning, so a crashed
   descriptor holder can never hang its peers (aborts are always SI-safe);
   [resume] lets a restarted incarnation of the same pid complete or
   release its dead incarnation's descriptor, mirroring [Durable.resume].

   The deliberately-unsound [Lww] mode skips first-committer-wins
   validation (last writer wins): it exists so the chaos campaigns and the
   committed e20 witness can demonstrate that [Si_check] actually catches
   lost updates (EXPERIMENTS.md E20), the way [--wal-mode late-log] and
   [--net-mode weak] witness their own oracles.

   Chain pruning is watermark-based and hazard-safe: every live transaction
   announces its begin-timestamp in a per-pid slot (write slot, re-read
   clock, re-announce until the clock is stable), and a committer prunes
   each chain it publishes down to the versions newer than the minimum
   announced begin-timestamp plus the newest [n + 1] older ones — at most
   [n] versions above a reader's visible one can be excluded (one committed
   version per in-flight txid per key), so the visible version always
   survives. *)

module Metrics = Psnap_sched.Metrics

type mode = Fcw | Lww

type abort_reason =
  | Conflict of int
      (** first-committer-wins validation failed on this component *)
  | Busy  (** commit-descriptor acquisition exhausted its bounded attempts *)

let mode_to_string = function Fcw -> "fcw" | Lww -> "lww"

let mode_of_string = function
  | "fcw" -> Some Fcw
  | "lww" -> Some Lww
  | _ -> None

module type S = sig
  type 'a t

  type 'a handle

  type 'a txn

  val name : string

  val create : ?mode:mode -> ?lock_attempts:int -> n:int -> 'a array -> 'a t

  val handle : 'a t -> pid:int -> 'a handle

  val mode : 'a t -> mode

  val begin_ : 'a handle -> 'a txn

  val read : 'a txn -> int -> 'a

  val read_many : 'a txn -> int array -> 'a array

  val write : 'a txn -> int -> 'a -> unit

  val commit : 'a txn -> (int, abort_reason) result

  val abort : 'a txn -> unit

  val resume : 'a handle -> 'a Psnap_history.Si_check.obs option

  val txid : 'a txn -> int

  val begin_ts : 'a txn -> int

  val excluded : 'a txn -> int list

  val observation : 'a txn -> 'a Psnap_history.Si_check.obs option
end

module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (A : Psnap_activeset.Activeset_intf.S) =
struct
  type 'a version = { cts : int; vtxid : int; v : 'a }
  (** One committed value; chains are sorted newest-first by [cts]. *)

  type 'a descriptor = {
    dpid : int;
    dtxid : int;
    dbts : int;
    dexcluded : int list;
    dcts : int option;  (** [None] until the commit timestamp is drawn *)
    dwrites : (int * 'a) list;
  }
  (* [dbts]/[dexcluded] replicate the transaction's begin snapshot so that a
     [resume] rolling a dead incarnation's commit forward can report a full
     observation to the SI oracle — the crashed fiber's [txn] record says
     [`Live] forever. *)

  type 'a lock = Free | Held of 'a descriptor

  (* Per-pid announce slot: (txid, begin_ts); idle = (-1, max_int).  The
     txid half feeds readers' excluded sets, the begin_ts half feeds the
     pruning watermark. *)
  let idle_slot = (-1, max_int)

  type 'a t = {
    snap : 'a version list S.t;
    aset : A.t;
    clock : int M.ref_;  (** commit clock; cts = fetch&add + 1 *)
    txid_ctr : int M.ref_;  (** fresh transaction ids, starting at 1 *)
    lock : 'a lock M.ref_;  (** the commit descriptor cell *)
    slots : (int * int) M.ref_ array;
    mode : mode;
    lock_attempts : int;
    n : int;
    m : int;
  }

  type 'a handle = { t : 'a t; pid : int; sh : 'a version list S.handle; ah : A.handle }

  type 'a txn = {
    h : 'a handle;
    txid : int;
    bts : int;
    excluded : int list;  (** txids in flight at begin *)
    mutable writes : (int * 'a) list;  (** newest first; one entry per key *)
    mutable reads : (int * 'a) list;  (** snapshot reads, for the oracle *)
    mutable outcome : [ `Live | `Committed of int option | `Aborted ];
  }

  let name = "txn(" ^ S.name ^ "/" ^ A.name ^ ")"

  let create ?(mode = Fcw) ?(lock_attempts = 128) ~n init =
    let m = Array.length init in
    {
      snap = S.create ~n (Array.map (fun v -> [ { cts = 0; vtxid = 0; v } ]) init);
      aset = A.create ~n ();
      clock = M.make ~name:"txn.clock" 0;
      txid_ctr = M.make ~name:"txn.txid" 1;
      lock = M.make ~name:"txn.lock" Free;
      slots =
        Array.init n (fun p ->
            M.make ~name:(Printf.sprintf "txn.slot%d" p) idle_slot);
      mode;
      lock_attempts;
      n;
      m;
    }

  let handle t ~pid =
    { t; pid; sh = S.handle t.snap ~pid; ah = A.handle t.aset ~pid }

  let mode t = t.mode

  let check_live txn label =
    if txn.outcome <> `Live then
      invalid_arg (Printf.sprintf "Psnap_txn.%s: transaction finished" label)

  (* ---- begin ---- *)

  let begin_ (h : 'a handle) : 'a txn =
    let t = h.t in
    let txid = M.fetch_and_add t.txid_ctr 1 in
    (* Hazard-style announce: publish (txid, b) and re-read the clock until
       it is stable across the announce, so any committer computing a
       pruning watermark after our slot write either sees our begin_ts or
       read the clock before it advanced past it. *)
    let b = ref (M.read t.clock) in
    M.write t.slots.(h.pid) (txid, !b);
    let b' = ref (M.read t.clock) in
    while !b' <> !b do
      b := !b';
      M.write t.slots.(h.pid) (txid, !b);
      b' := M.read t.clock
    done;
    (* The in-flight committer list: active-set members, mapped to their
       announced txids.  Read after the clock settles: anyone who takes a
       commit timestamp after this point exceeds [b] and is invisible by
       timestamp alone. *)
    let members = A.get_set t.aset in
    let excluded =
      List.filter_map
        (fun q ->
          if q = h.pid then None
          else
            let qtx, _ = M.read t.slots.(q) in
            if qtx >= 0 then Some qtx else None)
        members
    in
    Metrics.note_txn_begin ();
    { h; txid; bts = !b; excluded; writes = []; reads = []; outcome = `Live }

  (* ---- reads ---- *)

  let visible txn chain =
    let rec pick = function
      | [] ->
        (* The pruning watermark provably never outruns an announced
           begin-timestamp; an empty filter would be a pruning bug. *)
        failwith "Psnap_txn: no visible version (pruned below watermark?)"
      | ver :: rest ->
        if ver.cts <= txn.bts && not (List.mem ver.vtxid txn.excluded) then
          ver.v
        else pick rest
    in
    pick chain

  let read txn i =
    check_live txn "read";
    match List.assoc_opt i txn.writes with
    | Some v -> v
    | None ->
      let chain = (S.scan txn.h.sh [| i |]).(0) in
      let v = visible txn chain in
      txn.reads <- (i, v) :: txn.reads;
      v

  (* One partial scan over the declared read set; own writes shadow the
     snapshot per component, results align with the request. *)
  let read_many txn idxs =
    check_live txn "read_many";
    let chains = S.scan txn.h.sh idxs in
    Array.mapi
      (fun k chain ->
        let i = idxs.(k) in
        match List.assoc_opt i txn.writes with
        | Some v -> v
        | None ->
          let v = visible txn chain in
          txn.reads <- (i, v) :: txn.reads;
          v)
      chains

  let write txn i v =
    check_live txn "write";
    if i < 0 || i >= txn.h.t.m then invalid_arg "Psnap_txn.write: bad component";
    txn.writes <- (i, v) :: List.remove_assoc i txn.writes

  (* ---- commit ---- *)

  let clear_slot h = M.write h.t.slots.(h.pid) idle_slot

  let watermark t =
    let w = ref (M.read t.clock) in
    Array.iter
      (fun s ->
        let tx, b = M.read s in
        if tx >= 0 && b < !w then w := b)
      t.slots;
    !w

  (* Keep every version above the watermark plus the newest [n + 1] at or
     below it: a reader skips at most one committed version per excluded
     txid, and there are at most [n] of those above its visible version. *)
  let prune ~n ~watermark chain =
    let rec go kept_below = function
      | [] -> []
      | ver :: rest ->
        if ver.cts > watermark then ver :: go kept_below rest
        else if kept_below <= n then ver :: go (kept_below + 1) rest
        else begin
          Metrics.note_txn_pruned (1 + List.length rest);
          []
        end
    in
    go 0 chain

  let acquire txn desc =
    let t = txn.h.t in
    let rec try_ attempts =
      if attempts <= 0 then false
      else
        match M.read t.lock with
        | Free ->
          if M.cas t.lock ~expected:Free ~desired:(Held desc) then true
          else try_ (attempts - 1)
        | Held _ -> try_ (attempts - 1)
    in
    try_ t.lock_attempts

  let publish_one h ~cts ~txid ~watermark (i, v) =
    let t = h.t in
    let chain = (S.scan h.sh [| i |]).(0) in
    match chain with
    | { cts = c; _ } :: _ when c >= cts ->
      (* Already published (a resume replaying a dead incarnation's
         descriptor); the descriptor holder is exclusive, so [c > cts] is
         impossible and [c = cts] means this very write landed. *)
      ()
    | chain ->
      S.update h.sh i
        ({ cts; vtxid = txid; v } :: prune ~n:t.n ~watermark chain)

  let finish_abort txn ~joined reason =
    if joined then A.leave txn.h.ah;
    clear_slot txn.h;
    txn.outcome <- `Aborted;
    (match reason with
    | Conflict _ -> Metrics.note_txn_conflict ()
    | Busy -> Metrics.note_txn_busy ());
    Error reason

  let commit txn =
    check_live txn "commit";
    let t = txn.h.t in
    match txn.writes with
    | [] ->
      (* Read-only: the partial scans already were the transaction. *)
      clear_slot txn.h;
      txn.outcome <- `Committed None;
      Metrics.note_txn_ro_commit ();
      Ok txn.bts
    | writes -> (
      (* Join the in-flight list before drawing the commit timestamp:
         readers that begin after our fetch&add either exceed it by
         timestamp or find us in the active set and exclude our txid,
         so a half-published write set is never partially visible. *)
      A.join txn.h.ah;
      let desc =
        {
          dpid = txn.h.pid;
          dtxid = txn.txid;
          dbts = txn.bts;
          dexcluded = txn.excluded;
          dcts = None;
          dwrites = writes;
        }
      in
      if not (acquire txn desc) then finish_abort txn ~joined:true Busy
      else
        let idxs = Array.of_list (List.map fst writes) in
        let chains = S.scan txn.h.sh idxs in
        let conflict =
          if t.mode = Lww then None
          else
            let found = ref None in
            Array.iteri
              (fun k chain ->
                if !found = None then
                  match chain with
                  | { cts; vtxid; _ } :: _
                    when cts > txn.bts || List.mem vtxid txn.excluded ->
                    found := Some idxs.(k)
                  | _ -> ())
              chains;
            !found
        in
        match conflict with
        | Some i ->
          let held = M.read t.lock in
          ignore (M.cas t.lock ~expected:held ~desired:Free);
          finish_abort txn ~joined:true (Conflict i)
        | None ->
          if t.mode = Lww then begin
            (* Count the overwrites first-committer-wins would have
               refused: each is a lost-update risk the oracle can catch. *)
            Array.iter
              (fun chain ->
                match chain with
                | { cts; vtxid; _ } :: _
                  when cts > txn.bts || List.mem vtxid txn.excluded ->
                  Metrics.note_txn_lww_overwrite ()
                | _ -> ())
              chains
          end;
          let cts = 1 + M.fetch_and_add t.clock 1 in
          (* Record the drawn timestamp in the descriptor before touching
             any chain, so a resume can roll the publish forward. *)
          M.write t.lock (Held { desc with dcts = Some cts });
          let w = watermark t in
          List.iter
            (publish_one txn.h ~cts ~txid:txn.txid ~watermark:w)
            writes;
          (* Record the outcome before the unlock/leave/slot-clear sequence
             makes the writes visible.  Scheduler decision points live only
             inside memory operations, so this mutation is crash-atomic
             with the last publish: a post-run harvest of the txn record
             reads [`Committed] whenever any peer can see the writes, and a
             crash landing earlier leaves them excluded (slot + active set)
             until a [resume] — which reports the commit itself. *)
          txn.outcome <- `Committed (Some cts);
          Metrics.note_txn_rw_commit ();
          let held = M.read t.lock in
          ignore (M.cas t.lock ~expected:held ~desired:Free);
          A.leave txn.h.ah;
          clear_slot txn.h;
          Ok cts)

  let abort txn =
    check_live txn "abort";
    clear_slot txn.h;
    txn.outcome <- `Aborted;
    Metrics.note_txn_voluntary_abort ()

  (* ---- crash-restart recovery ---- *)

  (* Called by a restarted incarnation before its first transaction: if the
     dead incarnation crashed holding the commit descriptor, complete the
     publish (the descriptor records the writes and, if drawn, the commit
     timestamp — publishes are idempotent under the head-cts guard) and
     release it; always clear this pid's announce slot.  A crashed
     committer that is never resumed stays in the active set with its
     announce slot set, so its partial writes remain excluded by every
     later snapshot: permanently invisible is effectively aborted, and
     soundness never depends on resume being called.

     Returns the observation of a rolled-forward commit (the dead
     incarnation's [txn] record stays [`Live], so this is the only witness
     the SI oracle gets); [None] when there was nothing to complete.  If
     the crash landed between the outcome mutation and the lock release the
     same commit is reported twice — harvesters dedupe by txid, preferring
     the richer record. *)
  let resume h : 'a Psnap_history.Si_check.obs option =
    let t = h.t in
    let rolled =
      match M.read t.lock with
      | Held d when d.dpid = h.pid ->
        let obs =
          match d.dcts with
          | Some cts ->
            let w = watermark t in
            List.iter (publish_one h ~cts ~txid:d.dtxid ~watermark:w) d.dwrites;
            Some
              {
                Psnap_history.Si_check.txid = d.dtxid;
                pid = d.dpid;
                begin_ts = d.dbts;
                excluded = d.dexcluded;
                committed = true;
                commit_ts = Some cts;
                reads = [];
                writes = d.dwrites;
              }
          | None -> None
        in
        let held = M.read t.lock in
        (match held with
        | Held d' when d'.dpid = h.pid ->
          ignore (M.cas t.lock ~expected:held ~desired:Free)
        | _ -> ());
        Metrics.note_txn_resume ();
        obs
      | _ -> None
    in
    clear_slot h;
    rolled

  (* ---- accessors for oracles and harnesses ---- *)

  let txid txn = txn.txid

  let begin_ts txn = txn.bts

  let excluded txn = txn.excluded

  (* The observation record the [Si_check] oracle consumes.  Reads are the
     snapshot reads (own-write hits are not snapshot reads); writes are
     reported only for committed read-write transactions. *)
  let observation txn : 'a Psnap_history.Si_check.obs option =
    match txn.outcome with
    | `Live -> None
    | `Committed cts ->
      Some
        {
          Psnap_history.Si_check.txid = txn.txid;
          pid = txn.h.pid;
          begin_ts = txn.bts;
          excluded = txn.excluded;
          committed = true;
          commit_ts = cts;
          reads = List.rev txn.reads;
          writes = (match cts with None -> [] | Some _ -> List.rev txn.writes);
        }
    | `Aborted ->
      Some
        {
          Psnap_history.Si_check.txid = txn.txid;
          pid = txn.h.pid;
          begin_ts = txn.bts;
          excluded = txn.excluded;
          committed = false;
          commit_ts = None;
          reads = List.rev txn.reads;
          writes = [];
        }
end
