(** Rebuilding snapshot state from a WAL (docs/MODEL.md §13).

    The recovered state is the last fully-sealed checkpoint — the last
    [Checkpoint_end] whose generation also has a [Checkpoint_begin] and
    [Scan_seal] earlier in the log — plus every update record after it,
    replayed in log order.  Log order is apply order (lsns are drawn and
    records appended under the commit lock), and the lsn-monotone filter
    makes replay idempotent under owner-recovery duplicate appends.  An
    incomplete checkpoint (begin without end) is ignored: recovery falls
    back to the previous sealed triple, or to [init]. *)

type 'a state = {
  values : 'a array;  (** recovered component values *)
  next_lsn : int;  (** the lsn the next commit must draw *)
  replayed : int;  (** update records applied on top of the checkpoint *)
  checkpoint_gen : int;  (** generation recovered from; 0 = none *)
}

val replay : init:'a array -> Wal.record list -> 'a state
(** Pure: assumes the record list is a valid log prefix (damage repair
    happens in [Wal.Make.read_all ~repair] first). *)

(** Device-level recovery: read, repair the tail, replay, account
    ([Metrics.note_recovery] / [note_truncation]). *)
module Make (St : Storage.S) : sig
  val load : ?repair:bool -> St.t -> init:'a array -> 'a state * Wal.damage
  (** [repair] defaults to [true]. *)
end
