(* The FAMS-style checkpoint engine (docs/MODEL.md §13).

   A checkpoint batches everything committed so far into one sealed,
   atomically-recoverable unit: holding the commit lock (so no update can
   be mid-apply and the lsn horizon is frozen), the committer captures a
   consistent full view with a regular [scan] — the same seal → quiesce →
   final sub-scan shape as the resilient layer's shard heal, with the
   quiescence provided by the lock instead of inflight tokens — and writes
   a [Checkpoint_begin gen; Scan_seal gen; Checkpoint_end gen] triple,
   then a sync.  Recovery only ever trusts a complete triple, so a
   power loss anywhere inside the window leaves the previous checkpoint
   authoritative and the new one invisible (begin-without-end).

   A power loss between the first append and the sync can silently eat
   part of the triple from the device's write cache; the barrier would
   then cover a hole.  [write] detects this with the device's loss
   counter and rewrites the whole triple — duplicate complete triples are
   harmless (recovery takes the last). *)

module Make (St : Storage.S) = struct
  module W = Wal.Make (St)

  let rec write dev ~gen ~next_lsn ~payload =
    let l0 = St.losses dev in
    W.append dev (Wal.Checkpoint_begin { gen; next_lsn });
    W.append dev (Wal.Scan_seal { gen; payload });
    W.append dev (Wal.Checkpoint_end { gen });
    St.sync dev;
    if St.losses dev <> l0 then write dev ~gen ~next_lsn ~payload
    else Psnap_sched.Metrics.note_checkpoint ()
end
