(** Checksummed, length-prefixed WAL records (docs/MODEL.md §13).

    Each record is framed as an 18-byte ASCII header — [%08x %08x ] of
    (body length, FNV-1a-32 checksum of the body) — followed by the
    marshalled record body.  The checksum is verified {e before} the body
    is unmarshalled, so corrupt frames never reach [Marshal.from_string].
    Decoding stops at the first damaged frame, distinguishing a {e torn}
    tail (incomplete header or body — what a power loss leaves) from an
    in-place {e corruption} (checksum or header mismatch). *)

type record =
  | Update of { lsn : int; pid : int; index : int; payload : string }
      (** one component write, in commit order: lsns are assigned under
          the commit lock, so log order = apply order by construction *)
  | Scan_seal of { gen : int; payload : string }
      (** a sealed full-scan view (marshalled value array), the body of a
          checkpoint *)
  | Checkpoint_begin of { gen : int; next_lsn : int }
      (** opens checkpoint [gen]; the sealed view includes exactly the
          commits with lsn < [next_lsn] *)
  | Checkpoint_end of { gen : int }
      (** seals checkpoint [gen]: only a complete begin/seal/end triple
          counts at recovery *)

type damage = Clean | Torn | Corrupt

type decoded = {
  records : record list;  (** the valid prefix, in log order *)
  good_bytes : int;  (** offset of the first damaged byte; log size when
                         clean *)
  damage : damage;
}

val checksum : string -> int
(** FNV-1a, 32-bit. *)

val header_len : int

val encode : record -> string

val decode_all : string -> decoded

val pp_record : Format.formatter -> record -> unit

(** Log I/O over a storage device. *)
module Make (St : Storage.S) : sig
  val append : St.t -> record -> unit

  val read_all : ?repair:bool -> St.t -> decoded
  (** Decode the device's contents; with [repair] (default false),
      truncate any damaged tail — bumping the truncation metrics — so the
      next pass reads a clean log.  Reads and repair cost no simulated
      steps: recovery-time work (see {!Storage.S.truncate}). *)

  val has_lsn : St.t -> int -> bool
  (** Is there an update record with this lsn in the log's valid prefix?
      Owner recovery uses this to make its completion append
      idempotent. *)
end
