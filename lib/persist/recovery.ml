(* Rebuilding snapshot state from a WAL (docs/MODEL.md §13).

   The recovered state is: the last fully-sealed checkpoint (the last
   [Checkpoint_end] whose generation also has a [Checkpoint_begin] and a
   [Scan_seal] earlier in the log), plus every update record after it
   replayed in log order.  Because lsns are drawn and records appended
   under the commit lock, log order is apply order; the lsn-monotone
   filter makes replay idempotent under the duplicate appends that owner
   recovery may produce (an intent completed twice appends the same lsn
   twice — adjacent, applied once).

   Replay is pure: damage repair happens in [Wal.Make.read_all ~repair]
   before the record list reaches [replay]. *)

type 'a state = {
  values : 'a array;  (** recovered component values *)
  next_lsn : int;  (** the lsn the next commit must draw *)
  replayed : int;  (** update records applied on top of the checkpoint *)
  checkpoint_gen : int;  (** generation recovered from; 0 = none *)
}

let replay ~init records =
  let recs = Array.of_list records in
  let n = Array.length recs in
  (* The last complete begin/seal/end triple: walk once recording where
     each generation's begin and seal appeared, then keep the last end
     whose generation has both, earlier. *)
  let begins = Hashtbl.create 4 and seals = Hashtbl.create 4 in
  let chosen = ref None in
  Array.iteri
    (fun at r ->
      match r with
      | Wal.Checkpoint_begin { gen; next_lsn } ->
        Hashtbl.replace begins gen (at, next_lsn)
      | Wal.Scan_seal { gen; payload } -> Hashtbl.replace seals gen (at, payload)
      | Wal.Checkpoint_end { gen } -> (
        match (Hashtbl.find_opt begins gen, Hashtbl.find_opt seals gen) with
        | Some (b, next_lsn), Some (s, payload) when b < at && s < at ->
          chosen := Some (at, gen, next_lsn, payload)
        | _ -> ())
      | Wal.Update _ -> ())
    recs;
  let base, start, last_lsn0, gen =
    match !chosen with
    | Some (at, gen, next_lsn, payload) ->
      ((Marshal.from_string payload 0 : _ array), at + 1, next_lsn - 1, gen)
    | None -> (Array.copy init, 0, 0, 0)
  in
  let values = Array.copy base in
  let last_lsn = ref last_lsn0 in
  let replayed = ref 0 in
  for at = start to n - 1 do
    match recs.(at) with
    | Wal.Update { lsn; index; payload; _ } when lsn > !last_lsn ->
      values.(index) <- Marshal.from_string payload 0;
      last_lsn := lsn;
      incr replayed
    | _ -> ()
  done;
  (* A crashed-but-logged commit beyond the checkpoint window still bumps
     the lsn horizon even if it was filtered above; the horizon is the max
     over everything the log mentions, so re-drawn lsns never collide. *)
  Array.iter
    (fun r ->
      match r with
      | Wal.Update { lsn; _ } -> if lsn > !last_lsn then last_lsn := lsn
      | Wal.Checkpoint_begin { next_lsn; _ } ->
        if next_lsn - 1 > !last_lsn then last_lsn := next_lsn - 1
      | _ -> ())
    recs;
  {
    values;
    next_lsn = !last_lsn + 1;
    replayed = !replayed;
    checkpoint_gen = gen;
  }

(* Device-level recovery: read, repair the tail, replay, account. *)
module Make (St : Storage.S) = struct
  module W = Wal.Make (St)

  let load ?(repair = true) dev ~init =
    let d = W.read_all ~repair dev in
    let st = replay ~init d.Wal.records in
    Psnap_sched.Metrics.note_recovery ~replayed:st.replayed;
    (st, d.Wal.damage)
end
