(** Pluggable durable storage for the write-ahead log (docs/MODEL.md §13).

    A device is an append-only byte log with an explicit durability
    barrier: [append] buffers bytes at the tail, [sync] guarantees that
    everything appended so far survives a power loss.  Bytes appended
    since the last [sync] live in the device's volatile write cache and
    are dropped — except for a deterministic torn prefix — when the
    simulator injects a {!Psnap_sched.Scheduler.Power_loss} decision.

    Two backends, mirroring [lib/mem]'s pairing: {!Sim} charges one
    simulated step per [append]/[sync] and registers with the simulator's
    power-loss dispatcher; {!Mc} is a mutex-guarded in-memory device for
    the multi-domain loadgen, where the serialization and locking cost of
    the log is the durability overhead being measured. *)

module type S = sig
  type t

  val create : name:string -> t
  (** A fresh, empty device.  [name] labels its steps in simulator
      traces. *)

  val name : t -> string

  val append : t -> string -> unit
  (** Buffer bytes at the tail of the log (volatile until [sync]). *)

  val sync : t -> unit
  (** Durability barrier: everything appended before this call survives
      any later power loss. *)

  val size : t -> int
  (** Bytes in the log, buffered writes included. *)

  val synced_size : t -> int
  (** Bytes guaranteed durable (covered by a completed [sync]). *)

  val read : t -> string
  (** The full current contents, buffered writes included. *)

  val durable_read : t -> string
  (** The prefix guaranteed to survive a power loss right now. *)

  val truncate : t -> int -> unit
  (** [truncate t n] discards every byte at offset [n] and beyond, and
      marks the surviving prefix durable.  Recovery-time repair only: it
      models the failure-atomic tail repair a recovery pass performs
      while the system is down, so it costs no step (see
      docs/MODEL.md §13 on the atomic-recovery modeling choice). *)

  val losses : t -> int
  (** Power losses this device has lived through — the signal a harness
      polls to learn that the in-memory state it pairs with this log died
      and must be rebuilt by recovery. *)
end

(** The simulated device.  Each [append]/[sync] is one scheduled step on a
    per-device pseudo-cell, so the adversary can interleave — or cut power
    — between a record landing in the write cache and the barrier that
    would have made it durable.  Reads and truncation cost nothing: they
    model recovery-time work, which happens while the machine is down and
    outside the adversary's schedule. *)
module Sim : sig
  include S

  val reset : unit -> unit
  (** Forget every device created so far (the power-loss dispatcher stops
      touching them).  Harnesses call this between runs, exactly like
      [Mem_sim]'s per-run resets, so replay is a function of the
      workload. *)

  val set_torn_policy : (unsynced:int -> int) -> unit
  (** How many of the un-synced bytes survive a power loss as a torn tail
      (default: half, rounded down — enough to leave a torn record for
      recovery to repair).  Must be deterministic: replay depends on it. *)

  val losses_total : unit -> int
  (** Power-loss decisions dispatched since the last {!reset}. *)
end

module Mc : S
