(** The FAMS-style checkpoint engine (docs/MODEL.md §13): batch all
    committed updates into one sealed begin/seal/end triple that recovery
    applies atomically — it only ever trusts a {e complete} triple, so a
    power loss inside the write window leaves the previous checkpoint
    authoritative.  The caller must hold the commit lock: the lock is what
    freezes the lsn horizon and quiesces in-flight applies while the view
    is captured (the resilient layer's seal → quiesce → final-scan shape,
    with the lock as the quiescence mechanism). *)

module Make (St : Storage.S) : sig
  val write : St.t -> gen:int -> next_lsn:int -> payload:string -> unit
  (** Append the triple and sync; if a power loss ate part of the triple
      from the write cache before the barrier covered it (detected via
      {!Storage.S.losses}), rewrite the whole triple — duplicate complete
      triples are harmless, recovery takes the last. *)
end
