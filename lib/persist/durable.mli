(** Failure-atomic durable snapshots (docs/MODEL.md §13).

    [Make (M) (Inner) (St)] wraps any snapshot implementation with a
    checksummed write-ahead log + checkpoint layer on a storage device:
    every {e acknowledged} update survives a power loss, and {!Make.recover}
    rebuilds a state the linearizability oracle accepts (durable
    linearizability: completed operations persist; an operation in flight
    at the loss linearizes at most once).

    Commits are serialized through a single {e commit lock} carrying a
    published intent — acquire, append, sync, apply, release — so log
    order equals apply order by construction and nothing reaches [Inner]
    before it is durable; scans never touch the lock and keep [Inner]'s
    wait-freedom.  Updates are blocking (a log latch): a crashed lock
    holder blocks writers until its next incarnation completes the
    published intent via {!Make.resume}.  There is deliberately no helping:
    a helper racing a later same-component commit could clobber the newer
    value.

    Values are serialized with [Marshal]; components must be marshallable
    (no closures, no custom blocks without serializers). *)

module Make
    (M : Psnap_mem.Mem_intf.S)
    (Inner : Psnap_snapshot.Snapshot_intf.S)
    (St : Storage.S) : sig
  include Psnap_snapshot.Snapshot_intf.S

  type config = {
    checkpoint_every : int;
        (** write a sealed checkpoint every this many commits; 0 = never *)
    write_ahead : bool;
        (** [false] flips to a deliberately unsound late-log order (apply
            before append + sync): a scan can observe a value whose record
            is still volatile, which a power loss turns into a
            committed-then-lost violation.  Exists to prove the harness
            catches recovery bugs — see the E18 witness schedule. *)
  }

  val default_config : config
  (** [{ checkpoint_every = 0; write_ahead = true }] *)

  val create_with :
    ?config:config -> ?storage:St.t -> n:int -> 'a array -> 'a t
  (** [create] with an explicit configuration and/or device ([create]
      itself uses [default_config] and a fresh device named ["wal"]). *)

  val recover : ?config:config -> St.t -> n:int -> 'a array -> 'a t
  (** Rebuild from a device: repair the damaged tail, land on the last
      sealed checkpoint plus the replayed update suffix, restart lsns
      above everything the log mentions.  Step-free under the simulator
      (log reads and [Inner.create] cost no steps), so the first fiber to
      recover after a blackout completes the rebuild atomically. *)

  val resume : 'a handle -> unit
  (** Complete this pid's published intent, if the commit lock holds one
      from a crashed incarnation.  Recovery bodies call this before
      resuming work after a plain crash–restart; after a power loss there
      is nothing to resume (the lock died with the volatile memory). *)

  val checkpoint_now : 'a handle -> unit
  (** Force a sealed checkpoint, serialized through the commit lock. *)

  val storage : 'a t -> St.t

  val generation : 'a t -> int
  (** Checkpoint generations sealed so far (recovered ones included). *)
end
