(* Pluggable durable storage for the write-ahead log (docs/MODEL.md §13).
   See storage.mli for the model; the Sim backend is the fault-injectable
   device the power-loss nemesis acts on. *)

module type S = sig
  type t

  val create : name:string -> t

  val name : t -> string

  val append : t -> string -> unit

  val sync : t -> unit

  val size : t -> int

  val synced_size : t -> int

  val read : t -> string

  val durable_read : t -> string

  val truncate : t -> int -> unit

  val losses : t -> int
end

module Metrics = Psnap_sched.Metrics

module Sim = struct
  type t = {
    dev_name : string;
    oid : int;  (** pseudo-cell id: device steps appear in traces and are
                    targetable by name-based nemeses like real cells *)
    buf : Buffer.t;
    mutable synced : int;  (** bytes covered by a completed [sync] *)
    mutable losses : int;
  }

  (* Devices subject to the power-loss dispatcher.  Like [Mem_sim]'s fault
     registry: devices of finished runs linger until [reset], which is
     harmless (mutating a dead run's device is unobservable) and keeps
     registration O(1).  Harnesses reset between runs. *)
  let devices : t list ref = ref []

  let dispatched = ref 0

  let reset () =
    devices := [];
    dispatched := 0

  let default_torn_policy ~unsynced = unsynced / 2

  let torn_policy = ref default_torn_policy

  let set_torn_policy f = torn_policy := f

  let losses_total () = !dispatched

  let create ~name =
    let t =
      {
        dev_name = name;
        oid = Psnap_sched.Sim.fresh_oid ();
        buf = Buffer.create 256;
        synced = 0;
        losses = 0;
      }
    in
    devices := t :: !devices;
    t

  let name t = t.dev_name

  (* One simulated step per device operation, charged like a shared-memory
     access so the adversary can schedule (or crash, or cut power) around
     it.  Outside a run — WAL unit tests, recovery-time repair — device
     operations are free, like cell allocation. *)
  let step t op =
    if Psnap_sched.Sim.current_serial () <> None then
      Psnap_sched.Sim.step { oid = t.oid; obj_name = t.dev_name; op }

  let append t s =
    step t Psnap_sched.Event.Write;
    Buffer.add_string t.buf s;
    Metrics.note_wal_append (String.length s)

  (* [sync] steps as a distinct op kind (F&A) so nemeses can target "the
     barrier step" as opposed to "the append step" via [view.op_of]. *)
  let sync t =
    step t Psnap_sched.Event.Faa;
    t.synced <- Buffer.length t.buf;
    Metrics.note_wal_sync ()

  let size t = Buffer.length t.buf

  let synced_size t = t.synced

  let read t = Buffer.contents t.buf

  let durable_read t = String.sub (Buffer.contents t.buf) 0 t.synced

  let truncate t n =
    let n = max 0 (min n (Buffer.length t.buf)) in
    let s = Buffer.sub t.buf 0 n in
    Buffer.clear t.buf;
    Buffer.add_string t.buf s;
    t.synced <- n

  let losses t = t.losses

  (* The power-loss dispatcher: every registered device keeps its durable
     prefix plus a deterministic torn fragment of its write cache, and
     remembers the blackout.  Returns the number of devices that actually
     dropped bytes. *)
  let apply_power_loss () =
    let hit = ref 0 in
    List.iter
      (fun t ->
        let len = Buffer.length t.buf in
        if len > t.synced then begin
          let unsynced = len - t.synced in
          let torn = max 0 (min unsynced (!torn_policy ~unsynced)) in
          truncate t (t.synced + torn);
          incr hit
        end;
        (* Counted even when nothing dropped: the machine lost power, so
           any in-memory state paired with this log is gone regardless. *)
        t.losses <- t.losses + 1)
      !devices;
    incr dispatched;
    Metrics.note_power_loss ();
    !hit

  let () = Psnap_sched.Sim.set_power_loss_dispatcher apply_power_loss
end

(* The multicore device: a mutex-guarded in-memory log.  [sync] is a
   bookkeeping barrier (there is no simulated power loss on the real
   host); what the loadgen measures through this backend is the
   serialization + locking cost durability adds to every update. *)
module Mc = struct
  type t = {
    dev_name : string;
    lock : Mutex.t;
    buf : Buffer.t;
    mutable synced : int;
  }

  let create ~name =
    { dev_name = name; lock = Mutex.create (); buf = Buffer.create 4096; synced = 0 }

  let name t = t.dev_name

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let append t s =
    locked t (fun () -> Buffer.add_string t.buf s);
    Metrics.note_wal_append (String.length s)

  let sync t =
    locked t (fun () -> t.synced <- Buffer.length t.buf);
    Metrics.note_wal_sync ()

  let size t = locked t (fun () -> Buffer.length t.buf)

  let synced_size t = locked t (fun () -> t.synced)

  let read t = locked t (fun () -> Buffer.contents t.buf)

  let durable_read t =
    locked t (fun () -> String.sub (Buffer.contents t.buf) 0 t.synced)

  let truncate t n =
    locked t (fun () ->
        let n = max 0 (min n (Buffer.length t.buf)) in
        let s = Buffer.sub t.buf 0 n in
        Buffer.clear t.buf;
        Buffer.add_string t.buf s;
        t.synced <- n)

  let losses _ = 0
end
