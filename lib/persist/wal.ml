(* Checksummed, length-prefixed WAL records (docs/MODEL.md §13).

   Frame layout: an 18-byte ASCII header — "%08x %08x " of (body length,
   FNV-1a checksum of the body) — followed by the marshalled record body.
   The checksum is verified before the body is ever unmarshalled, so a
   corrupt frame can never reach [Marshal.from_string] (which is unsafe on
   garbage).  Decoding stops at the first damaged frame and reports how
   many bytes were good: a torn tail (incomplete header or body — the
   shape a power loss leaves) and an in-place corruption (checksum or
   header mismatch) are distinguished so recovery can account for them
   separately. *)

type record =
  | Update of { lsn : int; pid : int; index : int; payload : string }
      (** one component write, in commit order: [lsn]s are assigned under
          the commit lock, so log order = apply order by construction *)
  | Scan_seal of { gen : int; payload : string }
      (** a sealed full-scan view (marshalled value array), the body of a
          checkpoint *)
  | Checkpoint_begin of { gen : int; next_lsn : int }
      (** opens checkpoint [gen]; the sealed view includes exactly the
          commits with lsn < [next_lsn] *)
  | Checkpoint_end of { gen : int }
      (** seals checkpoint [gen]: only a begin/seal/end triple counts *)

type damage = Clean | Torn | Corrupt

type decoded = {
  records : record list;  (** the valid prefix, in log order *)
  good_bytes : int;  (** offset of the first damaged byte; log size when
                         clean *)
  damage : damage;
}

(* FNV-1a, 32-bit. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let header_len = 18

let encode r =
  let body = Marshal.to_string r [] in
  Printf.sprintf "%08x %08x %s" (String.length body) (checksum body) body

let hex8 s off =
  let ok = ref true in
  for i = off to off + 7 do
    match s.[i] with
    | '0' .. '9' | 'a' .. 'f' -> ()
    | _ -> ok := false
  done;
  if !ok then int_of_string_opt ("0x" ^ String.sub s off 8) else None

let decode_all s =
  let n = String.length s in
  let rec go off acc =
    let stop damage = { records = List.rev acc; good_bytes = off; damage } in
    if off = n then stop Clean
    else if off + header_len > n then stop Torn
    else
      match (hex8 s off, hex8 s (off + 9), s.[off + 8], s.[off + 17]) with
      | Some len, Some crc, ' ', ' ' ->
        if off + header_len + len > n then stop Torn
        else
          let body = String.sub s (off + header_len) len in
          if checksum body <> crc then stop Corrupt
          else
            go (off + header_len + len) ((Marshal.from_string body 0 : record) :: acc)
      | _ -> stop Corrupt
  in
  go 0 []

let pp_record ppf = function
  | Update { lsn; pid; index; _ } ->
    Fmt.pf ppf "update lsn=%d p%d i=%d" lsn pid index
  | Scan_seal { gen; payload } ->
    Fmt.pf ppf "scan-seal gen=%d (%dB)" gen (String.length payload)
  | Checkpoint_begin { gen; next_lsn } ->
    Fmt.pf ppf "ckpt-begin gen=%d next-lsn=%d" gen next_lsn
  | Checkpoint_end { gen } -> Fmt.pf ppf "ckpt-end gen=%d" gen

(* Log I/O over a storage device. *)
module Make (St : Storage.S) = struct
  let append dev r = St.append dev (encode r)

  (* Decode the device's (volatile) contents; with [repair], truncate any
     damaged tail so the next pass reads a clean log.  Truncation and
     reads cost no steps: this is recovery-time work (storage.mli). *)
  let read_all ?(repair = false) dev =
    let d = decode_all (St.read dev) in
    (match d.damage with
    | Clean -> ()
    | Torn | Corrupt ->
      if repair then begin
        let dropped = St.size dev - d.good_bytes in
        St.truncate dev d.good_bytes;
        Psnap_sched.Metrics.note_truncation ~bytes:dropped
          ~torn:(d.damage = Torn) ~corrupt:(d.damage = Corrupt)
      end);
    d

  (* Does the durable log already hold an update with this lsn?  Used by
     owner recovery to make its completion append idempotent. *)
  let has_lsn dev lsn =
    let d = decode_all (St.read dev) in
    List.exists
      (function Update u -> u.lsn = lsn | _ -> false)
      d.records
end
