(* Failure-atomic durable snapshots (docs/MODEL.md §13).

   [Make (M) (Inner) (St)] wraps any snapshot implementation with a
   write-ahead log on a storage device so that every {e acknowledged}
   update survives a power loss and recovery rebuilds a state the
   linearizability oracle accepts.

   The core difficulty: [Inner] is a black box, so the order in which
   concurrent updates linearize inside it is invisible — any scheme that
   logs updates concurrently (log order ≠ apply order) lets recovery
   replay overwrites of the same component in the wrong order,
   resurrecting overwritten values.  The protocol therefore serializes
   commits through a single {e commit lock} holding the published intent:

     acquire (CAS Free{lsn} -> Held{pid; lsn; i; v})
       -> append Update{lsn} -> sync -> Inner.update i v -> release

   Log order = apply order by construction, and — because nothing reaches
   [Inner] before it is durable — a scan can only ever observe durable
   values, so no completed operation's evidence is ever lost
   (write-ahead invariant).  Scans never touch the lock: they stay as
   wait-free as [Inner]'s.  Updates are blocking, like a database log
   latch; a crashed lock holder blocks writers until its next incarnation
   completes the published intent ([resume], detectable-operation style).
   Only the owner ever completes its intent — helping by other processes
   is deliberately absent, because a helper whose completion races a
   later same-component commit would clobber the newer value.

   A power loss without a crash can eat an appended-but-unsynced record
   from the write cache, after which the committer's own sync would
   cover a hole and acknowledge a non-durable update.  The commit path
   detects an intervening loss with the device's loss counter and
   re-appends; the duplicate lsn a conservative retry can produce is
   collapsed by recovery's lsn-monotone filter.

   [config.write_ahead = false] flips to a deliberately unsound late-log
   order (apply to [Inner] first, then append + sync): a scan can then
   observe a value whose record is still volatile, and a power loss makes
   it a committed-then-lost violation.  This mode exists to demonstrate
   that the harness and oracle actually catch recovery bugs — the
   committed witness schedule in schedules/ drives it (EXPERIMENTS.md
   E18). *)

module Metrics = Psnap_sched.Metrics

module Make
    (M : Psnap_mem.Mem_intf.S)
    (Inner : Psnap_snapshot.Snapshot_intf.S)
    (St : Storage.S) =
struct
  module W = Wal.Make (St)
  module C = Checkpoint.Make (St)
  module R = Recovery.Make (St)

  type config = {
    checkpoint_every : int;
        (** write a sealed checkpoint every this many commits; 0 = never *)
    write_ahead : bool;  (** [false] = the deliberately unsound late-log
                             mode (see above) *)
  }

  let default_config = { checkpoint_every = 0; write_ahead = true }

  (* The commit lock.  [Free] carries the next lsn to draw; [Held] is a
     published intent (enough for the owner's next incarnation to finish
     the commit); [Sealing] serializes an explicit checkpoint the same
     way.  All transitions CAS against the physically-read value, per the
     MEM contract. *)
  type 'a lock_state =
    | Free of int
    | Held of { pid : int; lsn : int; index : int; value : 'a }
    | Sealing of { pid : int; next_lsn : int }

  type 'a t = {
    inner : 'a Inner.t;
    dev : St.t;
    lock : 'a lock_state M.ref_;
    m : int;
    cfg : config;
    mutable commits_since_ckpt : int;  (* guarded by the commit lock *)
    mutable gen : int;  (* guarded by the commit lock *)
  }

  type 'a handle = { h : 'a Inner.handle; pid : int; t : 'a t }

  let name = "durable(" ^ Inner.name ^ ")"

  let make_lock next_lsn = M.make ~name:"durable.lock" (Free next_lsn)

  let create_with ?(config = default_config) ?storage ~n init =
    let dev =
      match storage with Some d -> d | None -> St.create ~name:"wal"
    in
    {
      inner = Inner.create ~n init;
      dev;
      lock = make_lock 1;
      m = Array.length init;
      cfg = config;
      commits_since_ckpt = 0;
      gen = 0;
    }

  let create ~n init = create_with ~n init

  (* Rebuild from a device: repair the tail, land on the last sealed
     checkpoint + replayed suffix, restart lsns above everything the log
     mentions.  Step-free by construction — [Inner.create] only allocates
     cells and log reads are recovery-time — so under the simulator the
     first fiber to recover completes the rebuild atomically. *)
  let recover ?(config = default_config) dev ~n init =
    let st, _damage = R.load dev ~init in
    {
      inner = Inner.create ~n st.Recovery.values;
      dev;
      lock = make_lock st.Recovery.next_lsn;
      m = Array.length init;
      cfg = config;
      commits_since_ckpt = 0;
      gen = st.Recovery.checkpoint_gen;
    }

  let storage t = t.dev

  let handle t ~pid = { h = Inner.handle t.inner ~pid; pid; t }

  let scan h idxs = Inner.scan h.h idxs

  let last_scan_collects h = Inner.last_scan_collects h.h

  (* Append + barrier, verified against an intervening power loss: if the
     loss counter moved inside the window the record may have been eaten
     from the write cache before the barrier covered it, so re-append.
     The retry can duplicate an lsn that did survive — harmless, recovery
     applies each lsn once. *)
  let rec append_durably t record =
    let l0 = St.losses t.dev in
    W.append t.dev record;
    St.sync t.dev;
    if St.losses t.dev <> l0 then append_durably t record

  (* Owner-recovery variant: the previous incarnation may already have
     appended (and even synced) this lsn, so check the log first. *)
  let rec append_durably_resumed t record ~lsn =
    let l0 = St.losses t.dev in
    if not (W.has_lsn t.dev lsn) then W.append t.dev record;
    St.sync t.dev;
    if St.losses t.dev <> l0 then append_durably_resumed t record ~lsn

  (* Must hold the lock (Held or Sealing). *)
  let do_checkpoint h ~next_lsn =
    let t = h.t in
    t.gen <- t.gen + 1;
    let values = Inner.scan h.h (Array.init t.m (fun i -> i)) in
    C.write t.dev ~gen:t.gen ~next_lsn
      ~payload:(Marshal.to_string values []);
    t.commits_since_ckpt <- 0

  let maybe_checkpoint h ~next_lsn =
    let t = h.t in
    if t.cfg.checkpoint_every > 0
       && t.commits_since_ckpt >= t.cfg.checkpoint_every
    then do_checkpoint h ~next_lsn

  (* Finish a commit whose intent is published in the lock.  [resumed]
     marks an intent inherited from a crashed incarnation of this pid. *)
  let complete h ~lsn ~index ~value ~resumed =
    let t = h.t in
    let record =
      Wal.Update { lsn; pid = h.pid; index; payload = Marshal.to_string value [] }
    in
    if t.cfg.write_ahead then begin
      if resumed then append_durably_resumed t record ~lsn
      else append_durably t record;
      (* Re-applying an inherited intent may write a value [Inner] already
         holds — same value, observationally idempotent. *)
      Inner.update h.h index value
    end
    else begin
      (* Late-log mode (unsound on purpose): visible before durable.  A
         power loss between the apply and the sync is a
         committed-then-lost bug the oracle flags. *)
      Inner.update h.h index value;
      W.append t.dev record;
      St.sync t.dev
    end;
    Metrics.note_commit ();
    t.commits_since_ckpt <- t.commits_since_ckpt + 1;
    maybe_checkpoint h ~next_lsn:(lsn + 1);
    M.write t.lock (Free (lsn + 1))

  (* Blocking acquire: spin one lock read per iteration (the honest cost
     of a log latch — scans never pay it).  A Held/Sealing state owned by
     this pid must be a dead incarnation's: operations of one handle are
     sequential, so a live incarnation can never meet its own lock. *)
  let rec update h index value =
    let t = h.t in
    let cur = M.read t.lock in
    match cur with
    | Free lsn ->
      let intent = Held { pid = h.pid; lsn; index; value } in
      if M.cas t.lock ~expected:cur ~desired:intent then
        complete h ~lsn ~index ~value ~resumed:false
      else update h index value
    | Held { pid; lsn; index = i0; value = v0 } when pid = h.pid ->
      complete h ~lsn ~index:i0 ~value:v0 ~resumed:true;
      update h index value
    | Sealing { pid; next_lsn } when pid = h.pid ->
      (* A checkpoint died with its incarnation: the incomplete triple is
         invisible to recovery, so just release. *)
      M.write t.lock (Free next_lsn);
      update h index value
    | Held _ | Sealing _ -> update h index value

  (* Completes this pid's published intent, if any.  Recovery bodies call
     it before resuming work after a plain crash–restart (after a power
     loss there is nothing to resume: the lock died with the memory). *)
  let resume h =
    match M.read h.t.lock with
    | Held { pid; lsn; index; value } when pid = h.pid ->
      complete h ~lsn ~index ~value ~resumed:true
    | Sealing { pid; next_lsn } when pid = h.pid ->
      M.write h.t.lock (Free next_lsn)
    | Free _ | Held _ | Sealing _ -> ()

  (* Force a sealed checkpoint now, serialized through the lock. *)
  let rec checkpoint_now h =
    let t = h.t in
    let cur = M.read t.lock in
    match cur with
    | Free next_lsn ->
      if
        M.cas t.lock ~expected:cur
          ~desired:(Sealing { pid = h.pid; next_lsn })
      then begin
        do_checkpoint h ~next_lsn;
        M.write t.lock (Free next_lsn)
      end
      else checkpoint_now h
    | Held { pid; lsn; index; value } when pid = h.pid ->
      complete h ~lsn ~index ~value ~resumed:true;
      checkpoint_now h
    | Sealing { pid; next_lsn } when pid = h.pid ->
      M.write t.lock (Free next_lsn);
      checkpoint_now h
    | Held _ | Sealing _ -> checkpoint_now h

  let generation t = t.gen
end
