(** The unbounded register array I[1..] of the active set algorithm
    (Figure 2).  The paper simply assumes an infinite array; a real shared
    memory provides one as a directory of chunks installed on demand with
    compare&swap.

    Chunks double in size, so the directory is a small fixed array and the
    translation from index to chunk is local.  A slot access costs O(1)
    extra steps (one directory read); installing a chunk costs one extra
    CAS, charged to the join that triggers it. *)

module Make (M : Mem_intf.S) : sig
  type 'a t

  (** [create ?name default] — an array whose every slot initially holds
      [default].  Allocates only the directory; chunks are installed on
      first access. *)
  val create : ?name:string -> 'a -> 'a t

  (** [read t i] — the current value of slot [i] ([i >= 0]).
      @raise Invalid_argument on a negative index. *)
  val read : 'a t -> int -> 'a

  (** [write t i v] — store [v] in slot [i] ([i >= 0]).
      @raise Invalid_argument on a negative index. *)
  val write : 'a t -> int -> 'a -> unit

  (** The base cell behind slot [i], for algorithms that CAS slots
      directly.  Installs the covering chunk if needed. *)
  val cell : 'a t -> int -> 'a M.ref_
end
