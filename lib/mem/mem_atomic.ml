(* Real shared memory: OCaml 5 atomics.  Every operation maps to a single
   linearizable primitive of the runtime. *)

type 'a ref_ = 'a Atomic.t

let make ?name v =
  ignore name;
  Atomic.make v

let read = Atomic.get
let write = Atomic.set
let cas r ~expected ~desired = Atomic.compare_and_set r expected desired
let fetch_and_add = Atomic.fetch_and_add
