(** Load-linked/store-conditional emulated over compare&swap.

    Every successful SC installs a freshly allocated box, so a CAS against
    the box returned by LL succeeds exactly when no SC intervened — the
    standard ABA-free emulation of LL/SC in a garbage-collected runtime.
    Used by the f-array of Jayanti [20], which the paper discusses in its
    related work (Section 5).

    LL costs one step, SC one step; validate is SC without effect. *)

module Make (M : Mem_intf.S) = struct
  type 'a box = { v : 'a }

  type 'a t = 'a box M.ref_

  type 'a tag = 'a box
  (** witness returned by {!ll}, consumed by {!sc} *)

  let make ?name v : 'a t = M.make ?name { v }

  (** [ll t] — the current value and the tag to validate against. *)
  let ll (t : 'a t) =
    let b = M.read t in
    (b.v, b)

  (** [sc t tag v] — store [v] iff no successful SC happened since the LL
      that returned [tag]. *)
  let sc (t : 'a t) (tag : 'a tag) v = M.cas t ~expected:tag ~desired:{ v }

  (** Plain read (no reservation). *)
  let read (t : 'a t) = (M.read t).v
end
