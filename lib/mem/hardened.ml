(* Self-validating and replicated registers: algorithmic hardening against
   the memory-fault model of docs/MODEL.md §9.

   Both constructions are functors over {!Mem_intf.S}, so any algorithm of
   this repository — itself a functor over the same signature — can be
   instantiated over a hardened memory instead of a raw one and survive
   seeded fault campaigns that break the raw variant (EXPERIMENTS.md E15).

   The common mechanism is a {e tagged} value: the payload travels with a
   sequence number, a unique nonce and a checksum over all three.  The
   fault model garbles stored values by flipping an immediate field of the
   stored block ([Corrupt]), serves superseded values ([Stale_read]), drops
   or false-acks writes ([Lost_write]) and freezes cells ([Stuck_cell]);
   tagging makes the first two detectable locally (checksum mismatch,
   sequence regression) and read-back verification catches the third.  A
   single cell cannot survive [Stuck_cell]; that is what {!Replicated} is
   for.

   Hardening is not free: each logical access costs several base-object
   steps (each a scheduling point).  The step counts of the paper's
   theorems apply to the {e logical} accesses; the multiplicative overhead
   is reported by the harness. *)

type 'a tagged = { seq : int; nonce : int; sum : int; v : 'a }

(* The nonce makes every tagged value unique, so (seq, nonce) totally
   orders writes even when two concurrent writers pick the same sequence
   number.  A plain global counter is deterministic under the cooperative
   simulator: allocation order is a function of the schedule. *)
let nonce_counter = ref 0

(* The checksum must not traverse the payload: register payloads are
   routinely mutable shared structures (chunk arrays, views, cells), and
   hashing their transitive contents would spuriously invalidate every
   tagged value whose payload is later mutated in place.  Immediate
   payloads cannot be mutated, so they are folded in; boxed payloads are
   protected by the tag alone — sufficient against the fault model, which
   garbles a stored block by flipping its first immediate field, and for a
   tagged record that field is always [seq]. *)
let payload_hash v =
  let r = Obj.repr v in
  if Obj.is_int r then (Obj.obj r : int) else 0

let checksum ~seq ~nonce v = Hashtbl.hash (seq, nonce, payload_hash v)

let tag ~seq v =
  incr nonce_counter;
  let nonce = !nonce_counter in
  { seq; nonce; sum = checksum ~seq ~nonce v; v }

let valid t = t.sum = checksum ~seq:t.seq ~nonce:t.nonce t.v

let newer a b = a.seq > b.seq || (a.seq = b.seq && a.nonce > b.nonce)

(* How many times an operation re-runs its fault-recovery path before
   giving up and serving the last known-good value.  Each armed fault
   fires at most once per arming, so a small bound suffices; the bound
   exists so a stuck cell cannot turn a read into an unbounded loop. *)
let retry_limit = 4

(* ---- detection / repair accounting (surfaced via Metrics) ---- *)

type stats = {
  corrupt_detected : int;  (** checksum mismatches observed *)
  stale_detected : int;  (** sequence regressions observed *)
  lost_detected : int;  (** read-back verifications that found a write
                            missing (dropped or false-acked) *)
  repairs : int;  (** repair writes issued (read-repair + re-installs) *)
  retries : int;  (** operation-level retries after a detected fault *)
}

let s_corrupt = ref 0

let s_stale = ref 0

let s_lost = ref 0

let s_repairs = ref 0

let s_retries = ref 0

let stats () =
  {
    corrupt_detected = !s_corrupt;
    stale_detected = !s_stale;
    lost_detected = !s_lost;
    repairs = !s_repairs;
    retries = !s_retries;
  }

let reset_stats () =
  s_corrupt := 0;
  s_stale := 0;
  s_lost := 0;
  s_repairs := 0;
  s_retries := 0

let note_corrupt () = incr s_corrupt

let note_stale () = incr s_stale

let note_lost () = incr s_lost

let note_repair () = incr s_repairs

let note_retry () = incr s_retries

(* ---- single-cell self-validation ---- *)

module Selfcheck (M : Mem_intf.S) : Mem_intf.S = struct
  (* [cache] is the newest validly-tagged value any operation has seen:
     the detector's reference point for sequence regressions and the
     donor value for repairing a corrupted cell.  It lives outside [M] on
     purpose — it is the register's own metadata, not a shared base
     object, and mutating it costs no step (cooperative simulator: no
     interleaving within an operation's local code). *)
  type 'a ref_ = { cell : 'a tagged M.ref_; mutable cache : 'a tagged }

  let make ?(name = "hard") v =
    let t0 = tag ~seq:1 v in
    { cell = M.make ~name t0; cache = t0 }

  let seen t cur = if newer cur t.cache then t.cache <- cur

  (* Repair a detected-bad [cur] with the last known-good value.  CAS
     rather than a blind write: if the cell changed since we read it, the
     newer contents must not be clobbered. *)
  let repair t cur = ignore (M.cas t.cell ~expected:cur ~desired:t.cache);
    note_repair ()

  let read t =
    let rec go attempts =
      let cur = M.read t.cell in
      if not (valid cur) then begin
        note_corrupt ();
        repair t cur;
        if attempts < retry_limit then begin
          note_retry ();
          go (attempts + 1)
        end
        else t.cache.v
      end
      else if newer t.cache cur then begin
        note_stale ();
        if attempts < retry_limit then begin
          note_retry ();
          go (attempts + 1)
        end
        else t.cache.v
      end
      else begin
        seen t cur;
        cur.v
      end
    in
    go 0

  let write t v =
    let nt = tag ~seq:(t.cache.seq + 1) v in
    let rec install attempts =
      M.write t.cell nt;
      let back = M.read t.cell in
      if back == nt || (valid back && newer back nt) then ()
      else begin
        (* The write vanished (lost, or the cell is stuck): a raw register
           would silently diverge here. *)
        note_lost ();
        if attempts < retry_limit then begin
          note_retry ();
          note_repair ();
          install (attempts + 1)
        end
      end
    in
    install 0;
    seen t nt

  let cas t ~expected ~desired =
    (* [installed] carries the tagged value of a CAS that was acknowledged
       but not found by the verification read, so a retry that discovers
       it did land (e.g. the verification read itself was served stale)
       reports success exactly once. *)
    let rec attempt attempts installed =
      let cur = M.read t.cell in
      match installed with
      | Some nt when cur == nt || (valid cur && newer cur nt) ->
        seen t nt;
        true
      | _ ->
        if not (valid cur) then begin
          note_corrupt ();
          repair t cur;
          if attempts < retry_limit then begin
            note_retry ();
            attempt (attempts + 1) installed
          end
          else false
        end
        else if newer t.cache cur then begin
          note_stale ();
          if attempts < retry_limit then begin
            note_retry ();
            attempt (attempts + 1) installed
          end
          else false
        end
        else if cur.v != expected then begin
          seen t cur;
          false
        end
        else begin
          let nt = tag ~seq:(cur.seq + 1) desired in
          if M.cas t.cell ~expected:cur ~desired:nt then begin
            let back = M.read t.cell in
            if back == nt || (valid back && newer back nt) then begin
              seen t nt;
              true
            end
            else begin
              (* Acknowledged-but-lost CAS: the nastiest [Lost_write]. *)
              note_lost ();
              if attempts < retry_limit then begin
                note_retry ();
                attempt (attempts + 1) (Some nt)
              end
              else false
            end
          end
          else false
        end
    in
    attempt 0 None

  let fetch_and_add t k =
    let rec go () =
      let old = read t in
      if cas t ~expected:old ~desired:(old + k) then old else go ()
    in
    go ()
end

(* ---- k-fold replication with majority read and read-repair ---- *)

module Replicated (M : Mem_intf.S) (K : sig
  val k : int
end) : Mem_intf.S = struct
  let () =
    if K.k < 1 then invalid_arg "Hardened.Replicated: k must be positive"

  (* Tolerates ⌊(k-1)/2⌋ simultaneously faulty replicas: a read needs one
     surviving validly-tagged copy of the newest value, and CAS commits at
     a designated replica, failing over when that replica stops accepting
     writes.  [cache] plays the same roles as in {!Selfcheck}. *)
  type 'a ref_ = {
    cells : 'a tagged M.ref_ array;
    mutable cache : 'a tagged;
    mutable commit : int;  (** index of the replica where CAS linearizes;
                               advanced when that replica is found stuck *)
  }

  let make ?(name = "rep") v =
    let t0 = tag ~seq:1 v in
    {
      cells =
        Array.init K.k (fun i ->
            M.make ~name:(Printf.sprintf "%s/%d" name i) t0);
      cache = t0;
      commit = 0;
    }

  let seen t cur = if newer cur t.cache then t.cache <- cur

  (* CAS-guarded repair (never clobbers a value newer than [w]); returns
     false when the cell kept its bad contents — the stuck-cell smell. *)
  let repair_cell cell ~bad ~good =
    note_repair ();
    M.cas cell ~expected:bad ~desired:good

  let read t =
    let rec go attempts =
      let vals = Array.map M.read t.cells in
      let best = ref None in
      Array.iter
        (fun c ->
          if valid c then
            match !best with
            | Some b when not (newer c b) -> ()
            | _ -> best := Some c
          else note_corrupt ())
        vals;
      match !best with
      | None ->
        (* Every replica garbled at once: reseed all of them from the last
           known-good value. *)
        Array.iteri
          (fun i c -> ignore (repair_cell t.cells.(i) ~bad:c ~good:t.cache))
          vals;
        if attempts < retry_limit then begin
          note_retry ();
          go (attempts + 1)
        end
        else t.cache.v
      | Some w ->
        if newer t.cache w then begin
          (* The newest surviving replica is older than a value already
             observed: a stale regression across the whole array. *)
          note_stale ();
          Array.iteri
            (fun i c ->
              if newer t.cache c || not (valid c) then
                ignore (repair_cell t.cells.(i) ~bad:c ~good:t.cache))
            vals;
          if attempts < retry_limit then begin
            note_retry ();
            go (attempts + 1)
          end
          else t.cache.v
        end
        else begin
          seen t w;
          (* Read-repair: bring garbled and lagging replicas up to the
             winner so a single fault does not accumulate. *)
          Array.iteri
            (fun i c ->
              if c != w && (not (valid c) || newer w c) then
                ignore (repair_cell t.cells.(i) ~bad:c ~good:w))
            vals;
          w.v
        end
    in
    go 0

  let write t v =
    let nt = tag ~seq:(t.cache.seq + 1) v in
    Array.iter
      (fun cell ->
        let rec install attempts =
          let cur = M.read cell in
          if cur == nt || (valid cur && newer cur nt) then ()
          else if M.cas cell ~expected:cur ~desired:nt then begin
            let back = M.read cell in
            if back == nt || (valid back && newer back nt) then ()
            else begin
              note_lost ();
              if attempts < retry_limit then begin
                note_retry ();
                note_repair ();
                install (attempts + 1)
              end
              (* else: this replica refuses the write (stuck) — the
                 majority of the others carries the value. *)
            end
          end
          else if attempts < retry_limit then begin
            note_retry ();
            install (attempts + 1)
          end
        in
        install 0)
      t.cells;
    seen t nt

  (* After a successful commit, push the committed value to the other
     replicas so reads keep finding it even if the commit replica is the
     next fault victim. *)
  let propagate t nt =
    Array.iteri
      (fun i cell ->
        if i <> t.commit then begin
          let cur = M.read cell in
          if not (valid cur) || newer nt cur then
            ignore (repair_cell cell ~bad:cur ~good:nt)
        end)
      t.cells

  let fail_over t = t.commit <- (t.commit + 1) mod K.k

  let cas t ~expected ~desired =
    let rec attempt attempts installed =
      let cell = t.cells.(t.commit) in
      let cur = M.read cell in
      match installed with
      | Some nt when cur == nt || (valid cur && newer cur nt) ->
        seen t nt;
        propagate t nt;
        true
      | _ ->
        if not (valid cur) then begin
          note_corrupt ();
          if
            (not (repair_cell cell ~bad:cur ~good:t.cache))
            && M.read cell == cur
          then fail_over t;
          if attempts < retry_limit then begin
            note_retry ();
            attempt (attempts + 1) installed
          end
          else false
        end
        else if newer t.cache cur then begin
          note_stale ();
          if
            (not (repair_cell cell ~bad:cur ~good:t.cache))
            && M.read cell == cur
          then fail_over t;
          if attempts < retry_limit then begin
            note_retry ();
            attempt (attempts + 1) installed
          end
          else false
        end
        else if cur.v != expected then begin
          seen t cur;
          false
        end
        else begin
          let nt = tag ~seq:(cur.seq + 1) desired in
          if M.cas cell ~expected:cur ~desired:nt then begin
            let back = M.read cell in
            if back == nt || (valid back && newer back nt) then begin
              seen t nt;
              propagate t nt;
              true
            end
            else begin
              note_lost ();
              fail_over t;
              if attempts < retry_limit then begin
                note_retry ();
                attempt (attempts + 1) (Some nt)
              end
              else false
            end
          end
          else false
        end
    in
    attempt 0 None

  let fetch_and_add t k =
    let rec go () =
      let old = read t in
      if cas t ~expected:old ~desired:(old + k) then old else go ()
    in
    go ()
end
