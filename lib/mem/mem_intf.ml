(** Base shared objects of the paper's model (Section 2): linearizable
    registers, compare&swap objects and fetch&increment objects.

    Every algorithm in this repository is a functor over {!S}, so the same
    code runs against two backends:

    - {!Mem_atomic}: OCaml 5 [Atomic.t] — real shared memory, for wall-clock
      benchmarks and multi-domain examples;
    - [Psnap_sched.Mem_sim]: the step-counting simulator — every call is one
      scheduling point and one counted {e step}, which is the cost unit of
      Theorems 1–3.

    Compare&swap compares with {e physical} equality, like
    [Atomic.compare_and_set].  All cell contents stored by the algorithms are
    immutable values, and a CAS is always performed against the exact value
    previously read, so physical equality is the faithful model of a
    hardware pointer CAS (and avoids the ABA problem exactly the way the
    paper's tagged values do). *)

module type S = sig
  (** A linearizable shared cell.  Plain registers use {!read}/{!write};
      compare&swap objects use {!read}/{!cas}; fetch&increment objects use
      {!fetch_and_add}/{!read}. *)
  type 'a ref_

  (** [make ?name v] allocates a fresh cell.  Allocation is not a shared
      memory access and costs no step; [name] labels the cell in simulator
      traces. *)
  val make : ?name:string -> 'a -> 'a ref_

  val read : 'a ref_ -> 'a

  val write : 'a ref_ -> 'a -> unit

  (** [cas r ~expected ~desired] atomically: if the current contents is
      physically equal to [expected], stores [desired] and returns [true];
      otherwise returns [false]. *)
  val cas : 'a ref_ -> expected:'a -> desired:'a -> bool

  (** [fetch_and_add r k] atomically adds [k] and returns the {e previous}
      value. *)
  val fetch_and_add : int ref_ -> int -> int
end
