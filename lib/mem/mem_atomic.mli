(** Real shared memory: OCaml 5 atomics.

    Every operation of {!Mem_intf.S} maps to a single linearizable
    primitive of the multicore runtime, so the algorithms' step counts
    translate one-to-one.  The type equality ['a ref_ = 'a Atomic.t] is
    exposed so multicore client code (the runtime serving layer, the
    loadgen) can interoperate with plain [Atomic] values.

    [cas] compares with physical equality ([==]), matching the
    simulator backend; [~name] labels are accepted for interface
    compatibility and ignored. *)

type 'a ref_ = 'a Atomic.t

val make : ?name:string -> 'a -> 'a ref_

val read : 'a ref_ -> 'a

val write : 'a ref_ -> 'a -> unit

val cas : 'a ref_ -> expected:'a -> desired:'a -> bool

val fetch_and_add : int ref_ -> int -> int
(** Returns the previous value. *)
