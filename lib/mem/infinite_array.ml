(* The unbounded register array I[1..] of the active set algorithm
   (Figure 2).  The paper simply assumes an infinite array; a real shared
   memory provides one as a directory of chunks installed on demand with
   compare&swap.  Slot accesses cost O(1) extra steps (one directory read);
   installing a chunk costs one extra CAS, charged to the join that triggers
   it.

   Chunks double in size, so the directory itself is a small fixed array:
   chunk c covers indices [2^c - 1, 2^(c+1) - 2] relative to [base_bits].
   With 60 chunks the array is effectively unbounded. *)

module Make (M : Mem_intf.S) = struct
  type 'a t = {
    dir : 'a chunk option M.ref_ array;
    default : 'a;
  }

  and 'a chunk = 'a M.ref_ array

  let max_chunks = 60

  let create ?(name = "inf") default =
    let dir =
      Array.init max_chunks (fun c ->
          M.make ~name:(Printf.sprintf "%s.dir%d" name c) None)
    in
    { dir; default }

  (* chunk c has size 2^c and starts at global index 2^c - 1 *)
  let locate i =
    if i < 0 then invalid_arg "Infinite_array: negative index";
    let c = ref 0 and base = ref 0 and size = ref 1 in
    while i >= !base + !size do
      base := !base + !size;
      size := !size * 2;
      incr c
    done;
    (!c, i - !base)

  let chunk_size c = 1 lsl c

  (* Local allocation costs no steps; the CAS install is one step.  If the
     install loses a race, the winner's chunk is used.  The install is
     retried while the slot is still [None]: under a weak (LL/SC-style) CAS
     a failure does not imply another process installed a chunk — it may be
     spurious.  [@psnap.helping] *)
  let get_chunk t c =
    let rec install fresh =
      if M.cas t.dir.(c) ~expected:None ~desired:fresh then
        match fresh with Some ch -> ch | None -> assert false
      else (
        match M.read t.dir.(c) with
        | Some ch -> ch
        | None -> install fresh)
    in
    match M.read t.dir.(c) with
    | Some ch -> ch
    | None ->
      install (Some (Array.init (chunk_size c) (fun _ -> M.make t.default)))

  let cell t i =
    let c, off = locate i in
    (get_chunk t c).(off)

  let read t i = M.read (cell t i)
  let write t i v = M.write (cell t i) v
end
