(** Self-validating and replicated registers: algorithmic hardening against
    the memory-fault model of docs/MODEL.md §9.

    Each stored value travels as a {e tagged} record — payload plus
    sequence number, unique nonce and checksum — so a corrupted cell is
    detected by checksum mismatch, a stale (superseded) value by sequence
    regression, and a dropped or false-acknowledged write by read-back
    verification.  {!Selfcheck} detects and repairs on a single base cell;
    {!Replicated} additionally spreads each register over [k] base cells
    and tolerates ⌊(k−1)/2⌋ of them being simultaneously faulty (including
    permanently stuck).

    Hardened operations cost several base-object steps per logical access;
    the step bounds of the paper's theorems apply to logical accesses. *)

(** Detection and repair counters, cumulative across all hardened
    registers (both functors) since the last {!reset_stats}. *)
type stats = {
  corrupt_detected : int;  (** checksum mismatches observed *)
  stale_detected : int;  (** sequence regressions observed *)
  lost_detected : int;  (** writes found missing by read-back *)
  repairs : int;  (** repair writes issued *)
  retries : int;  (** operation-level retries after a detected fault *)
}

val stats : unit -> stats

val reset_stats : unit -> unit

(** A single base cell with tagged values: detects corruption and
    staleness, repairs from the last known-good value, verifies its own
    writes.  Cannot survive a stuck cell — use {!Replicated} for that. *)
module Selfcheck (_ : Mem_intf.S) : Mem_intf.S

(** [k]-fold replication over the base memory: reads take the newest
    validly-tagged replica and read-repair the rest; writes install on
    every replica with read-back verification; CAS linearizes at a
    designated commit replica and fails over when that replica stops
    accepting writes.  Tolerates ⌊(k−1)/2⌋ faulty replicas.
    @raise Invalid_argument at functor application if [k < 1]. *)
module Replicated (_ : Mem_intf.S) (_ : sig
  val k : int
end) : Mem_intf.S
