(** Load-linked / store-conditional emulated over compare&swap.

    [Make (M)] builds LL/SC cells on any {!Mem_intf.S} backend.  Every
    successful SC installs a freshly allocated box, and [sc] validates by
    CAS on {e physical equality} of the box returned by [ll] — so an SC
    succeeds exactly when no other successful SC intervened since the
    matching LL, even if the stored {e value} went away and came back.
    This is the standard ABA-free emulation of LL/SC in a
    garbage-collected runtime, and the primitive assumed by the f-array
    of Jayanti [20], discussed in the paper's related work (Section 5).

    Costs: [ll] and [read] are one shared-memory step, [sc] is one step
    (the CAS).  A failed SC leaves the cell unchanged.

    The reservation is carried by the returned {!tag}, not by the cell:
    any number of processes may hold overlapping reservations, and a
    process may hold reservations on many cells at once (unlike hardware
    LL/SC, there is no spurious failure and no single-reservation
    limit). *)

module Make (M : Mem_intf.S) : sig
  type 'a t
  (** An LL/SC cell holding values of type ['a]. *)

  type 'a tag
  (** Reservation witness returned by {!ll}, consumed by {!sc}.  Opaque;
      valid until the next {e successful} SC on the same cell. *)

  val make : ?name:string -> 'a -> 'a t
  (** [make ?name v] — a fresh cell initialized to [v].  [name] labels
      the underlying cell for traces and fault targeting, as in
      {!Mem_intf.S.make}. *)

  val ll : 'a t -> 'a * 'a tag
  (** [ll t] — the current value together with the tag that a subsequent
      {!sc} validates against. *)

  val sc : 'a t -> 'a tag -> 'a -> bool
  (** [sc t tag v] — store [v] and return [true] iff no successful SC
      happened on [t] since the {!ll} that returned [tag]; otherwise
      leave [t] unchanged and return [false]. *)

  val read : 'a t -> 'a
  (** Plain read, no reservation. *)
end
