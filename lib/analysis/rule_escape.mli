(** R1 (no-escape): raw mutable state ([ref]/[Array]/[Bytes]/mutable
    fields) in an algorithm library must carry a
    [[@psnap.local_state "reason"]] waiver — every shared-memory access
    is supposed to go through the [Mem] backend so it costs a step. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
