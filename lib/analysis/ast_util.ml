(** Small Parsetree helpers shared by the rules. *)

open Parsetree
module SSet = Set.Make (String)

let rec last_of_longident = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last_of_longident l

(** Head module of a dotted path: [Array.set] -> [Some "Array"],
    [Stdlib.Array.set] -> [Some "Array"] (the [Stdlib] prefix is
    transparent), plain idents -> [None]. *)
let head_module lid =
  let rec strip = function
    | Longident.Ldot (Longident.Lident "Stdlib", s) -> Longident.Lident s
    | Longident.Ldot (p, s) -> Longident.Ldot (strip p, s)
    | l -> l
  in
  match strip lid with
  | Longident.Ldot (p, _) -> (
    match p with
    | Longident.Lident m -> Some m
    | Longident.Ldot (_, m) -> Some m
    | Longident.Lapply _ -> None)
  | Longident.Lident _ | Longident.Lapply _ -> None

(** Variable names bound by a pattern (tuples, aliases, constraints). *)
let rec pattern_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p -> pattern_vars p
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
    pattern_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

(** [expr_exists p e] — some subexpression of [e] satisfies [p]. *)
let expr_exists p e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if p e then found := true;
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(** Applies (or mentions) an identifier whose last path component is
    [name] — e.g. [ident_used "read" e] is true for [M.read r] and
    [Slots.read t j]. *)
let ident_used name e =
  expr_exists
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> last_of_longident txt = name
      | _ -> false)
    e

(** All plain (unqualified) identifier names mentioned anywhere in [e]. *)
let mentioned_names e =
  let acc = ref SSet.empty in
  ignore
    (expr_exists
       (fun e ->
         (match e.pexp_desc with
         | Pexp_ident { txt = Longident.Lident x; _ } -> acc := SSet.add x !acc
         | _ -> ());
         false)
       e);
  !acc

(** [loc_within ~outer loc] — [loc] lies inside [outer] (same file, both
    real locations).  Character offsets are enough: the parser produces
    properly nested locations for nested expressions. *)
let loc_within ~(outer : Location.t) (loc : Location.t) =
  (not outer.loc_ghost) && (not loc.loc_ghost)
  && outer.loc_start.pos_fname = loc.loc_start.pos_fname
  && outer.loc_start.pos_cnum <= loc.loc_start.pos_cnum
  && loc.loc_end.pos_cnum <= outer.loc_end.pos_cnum

(** The base variable of a mutation target: [x] -> [x], [x.f] -> [x],
    [x.f.g] -> [x]; anything else -> [None]. *)
let rec target_base e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | Pexp_field (b, _) -> target_base b
  | Pexp_constraint (b, _) -> target_base b
  | _ -> None

(* In-place operations whose first argument is the mutated structure. *)
let inplace_mutators =
  SSet.of_list [ "set"; "unsafe_set"; "fill"; "blit"; "sort" ]

(** Recognize an expression that mutates a value in place, returning the
    name of the mutated base variable: [x := e], [incr x]/[decr x],
    [x.f <- e], [x.(i) <- e] / [Array.set x ..] / [Bytes.set x ..] /
    [Array.sort cmp x].  [None] for non-mutations and for targets that are
    not rooted in a plain variable. *)
let mutation_target e =
  match e.pexp_desc with
  | Pexp_setfield (lhs, _, _) -> target_base lhs
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    let name = last_of_longident txt in
    let head = head_module txt in
    let positional =
      List.filter_map
        (fun ((lbl : Asttypes.arg_label), a) ->
          match lbl with Nolabel -> Some a | _ -> None)
        args
    in
    match (head, name, positional) with
    | None, (":=" | "incr" | "decr"), tgt :: _ -> target_base tgt
    | Some ("Array" | "Bytes"), "sort", [ _; tgt ] -> target_base tgt
    | Some ("Array" | "Bytes"), op, tgt :: _ when SSet.mem op inplace_mutators
      ->
      target_base tgt
    | _ -> None)
  | _ -> None

(** Walk every module expression of a structure (functor bodies,
    [module M = struct .. end], includes), calling [f] on each structure
    found, [f] being responsible only for the items of that structure. *)
let rec iter_structures (f : structure -> unit) (str : structure) =
  f str;
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_expr; _ } -> iter_module f pmb_expr
      | Pstr_recmodule mbs ->
        List.iter (fun { pmb_expr; _ } -> iter_module f pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } -> iter_module f pincl_mod
      | _ -> ())
    str

and iter_module f me =
  match me.pmod_desc with
  | Pmod_structure s -> iter_structures f s
  | Pmod_functor (_, me) | Pmod_constraint (me, _) -> iter_module f me
  | Pmod_apply (a, b) ->
    iter_module f a;
    iter_module f b
  | _ -> ()
