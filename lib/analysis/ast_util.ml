(** Small Parsetree helpers shared by the rules. *)

open Parsetree

let rec last_of_longident = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last_of_longident l

(** Head module of a dotted path: [Array.set] -> [Some "Array"],
    [Stdlib.Array.set] -> [Some "Array"] (the [Stdlib] prefix is
    transparent), plain idents -> [None]. *)
let head_module lid =
  let rec strip = function
    | Longident.Ldot (Longident.Lident "Stdlib", s) -> Longident.Lident s
    | Longident.Ldot (p, s) -> Longident.Ldot (strip p, s)
    | l -> l
  in
  match strip lid with
  | Longident.Ldot (p, _) -> (
    match p with
    | Longident.Lident m -> Some m
    | Longident.Ldot (_, m) -> Some m
    | Longident.Lapply _ -> None)
  | Longident.Lident _ | Longident.Lapply _ -> None

(** Variable names bound by a pattern (tuples, aliases, constraints). *)
let rec pattern_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p -> pattern_vars p
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
    pattern_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

(** [expr_exists p e] — some subexpression of [e] satisfies [p]. *)
let expr_exists p e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if p e then found := true;
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(** Applies (or mentions) an identifier whose last path component is
    [name] — e.g. [ident_used "read" e] is true for [M.read r] and
    [Slots.read t j]. *)
let ident_used name e =
  expr_exists
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> last_of_longident txt = name
      | _ -> false)
    e

(** Walk every module expression of a structure (functor bodies,
    [module M = struct .. end], includes), calling [f] on each structure
    found, [f] being responsible only for the items of that structure. *)
let rec iter_structures (f : structure -> unit) (str : structure) =
  f str;
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_expr; _ } -> iter_module f pmb_expr
      | Pstr_recmodule mbs ->
        List.iter (fun { pmb_expr; _ } -> iter_module f pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } -> iter_module f pincl_mod
      | _ -> ())
    str

and iter_module f me =
  match me.pmod_desc with
  | Pmod_structure s -> iter_structures f s
  | Pmod_functor (_, me) | Pmod_constraint (me, _) -> iter_module f me
  | Pmod_apply (a, b) ->
    iter_module f a;
    iter_module f b
  | _ -> ()
