(** R3 (loop-bound): in the wait-free algorithm libraries, a retry loop
    over shared memory must carry an annotation stating why it terminates:

    - [[@psnap.helping]] — termination comes from a helping mechanism;
    - [[@psnap.bounded "reason"]] — an explicit iteration bound.

    Detected shapes: [while true] loops, and [let rec] functions whose body
    touches shared memory — directly (an application of
    [read]/[write]/[cas]/[fetch_and_add]/[ll]/[sc]) or through another
    binding in the same file that does (computed as a fixpoint, so a loop
    that retries via a local [collect] helper is still caught).  Pure local
    recursion (binary search, list merges) is not flagged. *)

open Parsetree
module SSet = Set.Make (String)

let prims = SSet.of_list [ "read"; "write"; "cas"; "fetch_and_add"; "ll"; "sc" ]

let uses_prim e =
  Ast_util.expr_exists
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
        SSet.mem (Ast_util.last_of_longident txt) prims
      | _ -> false)
    e

(** Plain (unqualified) idents mentioned in [e], minus [except]. *)
let plain_idents ~except e =
  let acc = ref SSet.empty in
  ignore
    (Ast_util.expr_exists
       (fun e ->
         (match e.pexp_desc with
         | Pexp_ident { txt = Longident.Lident x; _ } when x <> except ->
           acc := SSet.add x !acc
         | _ -> ());
         false)
       e);
  !acc

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | _ -> None

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  (* Pass 1: every named binding in the file, for the shared-touch
     fixpoint. *)
  let bindings = ref [] in
  let collect =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match binding_name vb with
          | Some n -> bindings := (n, vb.pvb_expr) :: !bindings
          | None -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  collect.structure collect str;
  let shared = ref SSet.empty in
  List.iter
    (fun (n, e) -> if uses_prim e then shared := SSet.add n !shared)
    !bindings;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, e) ->
        if
          (not (SSet.mem n !shared))
          && not (SSet.is_empty (SSet.inter (plain_idents ~except:n e) !shared))
        then begin
          shared := SSet.add n !shared;
          changed := true
        end)
      !bindings
  done;
  let touches_shared ~name e =
    uses_prim e
    || not (SSet.is_empty (SSet.inter (plain_idents ~except:name e) !shared))
  in

  (* Pass 2: flag unannotated recursive shared-memory loops and
     [while true]. *)
  (* A [let rec ... and ...] group is one loop: mutually recursive
     functions form a single retry cycle, so a termination waiver on any
     binding of the group covers the whole group (the annotation argues
     about the cycle, not about one participant).  Malformed waivers are
     still reported per binding. *)
  let check_rec_bindings vbs =
    let statuses =
      List.map (fun vb -> Waiver.loop_bound vb.pvb_attributes) vbs
    in
    List.iter
      (function
        | Waiver.Malformed (loc, msg) ->
          diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg)
        | Waiver.Waived _ | Waiver.Not_waived -> ())
      statuses;
    let group_waived =
      List.exists
        (function Waiver.Waived _ -> true | _ -> false)
        statuses
    in
    if not group_waived then
      List.iter
        (fun vb ->
          let name = Option.value ~default:"_" (binding_name vb) in
          if touches_shared ~name vb.pvb_expr then
            diag
              (Diagnostic.v ~rule:Loop_bound ~loc:vb.pvb_loc
                 (Printf.sprintf
                    "recursive function '%s' retries over shared memory \
                     without a termination annotation: add [@psnap.helping] \
                     or [@psnap.bounded \"bound\"] stating why it is \
                     wait-free"
                    name)))
        vbs
  in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_let (Asttypes.Recursive, vbs, _) -> check_rec_bindings vbs
    | Pexp_while
        ( {
            pexp_desc =
              Pexp_construct ({ txt = Longident.Lident "true"; _ }, None);
            _;
          },
          _ ) -> (
      match Waiver.loop_bound e.pexp_attributes with
      | Waiver.Waived _ -> ()
      | Waiver.Malformed (loc, msg) ->
        diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg)
      | Waiver.Not_waived ->
        diag
          (Diagnostic.v ~rule:Loop_bound ~loc:e.pexp_loc
             "'while true' loop in a wait-free module: annotate the loop \
              with [@psnap.helping] or [@psnap.bounded \"bound\"], or bound \
              it explicitly"))
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item it item =
    (match item.pstr_desc with
    | Pstr_value (Asttypes.Recursive, vbs) -> check_rec_bindings vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it item
  in
  let main = { Ast_iterator.default_iterator with expr; structure_item } in
  main.structure main str
