(** Diagnostics emitted by the psnap-lint rules, with human-readable and
    JSON renderings.  A diagnostic pins a rule violation to a
    file:line:col so editors and CI can jump to it. *)

type rule =
  | Escape  (** R1: raw mutable state in an algorithm library *)
  | Cas_discipline  (** R2: [cas ~expected] not bound from a prior read *)
  | Loop_bound  (** R3: unannotated retry loop over shared memory *)
  | Domain_escape
      (** R4: raw mutable state captured by a closure passed to
          [Domain.spawn] *)
  | Atomic_publication
      (** R5: plain mutation of state published through (or acquired
          from) an [Atomic.t] container *)
  | Frozen_view
      (** R6: a scan result / published view mutated after publication *)
  | Waiver_syntax  (** malformed waiver attribute (e.g. missing reason) *)
  | Parse_error  (** the file does not parse *)

(** "R1" .. "R6", "W0", "E0". *)
val rule_id : rule -> string

(** "no-escape", "cas-discipline", ..., "frozen-view". *)
val rule_name : rule -> string

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

val v : rule:rule -> loc:Location.t -> string -> t

(** Stable presentation order: by position, then rule. *)
val compare_pos : t -> t -> int

(** [file:line:col: [Rn/name] message]. *)
val pp : Format.formatter -> t -> unit

val to_json : t -> string

(** The whole report as one JSON object, for the [--json] CI artifact. *)
val report_json : files:int -> t list -> string
