(** Recognition of the waiver attributes that document deliberate
    exceptions to the lint rules:

    - [[@psnap.local_state "reason"]] — R1 waiver: this binding / record
      field / expression is genuinely process-local scratch state, never
      shared between processes.  The reason string is mandatory: every
      waiver must say {e why} the state cannot leak into step counts.
    - [[@psnap.helping]] — R3 waiver: the loop terminates because of a
      helping mechanism (condition (2) of the collect engine, f-array
      double-refresh collision, ...).
    - [[@psnap.bounded "reason"]] — R3 waiver: the loop has an explicit
      iteration bound, stated in the reason.
    - [[@lint "R4,R6: reason"]] — the generic form: a comma-separated
      list of rule ids, optionally followed by [": reason"].  It waives
      exactly the listed rules on the annotated node, so one attribute
      can silence several rules at once ([[@lint "R1,R4"]]).  The
      concurrency rules R4–R6 have no dedicated attribute and are waived
      only through this form. *)

open Parsetree

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun (a : attribute) -> a.attr_name.txt = name) attrs

(** Result of looking for a waiver on a node. *)
type check =
  | Not_waived
  | Waived of string  (** the reason *)
  | Malformed of Location.t * string  (** waiver present but unusable *)

(* "R4,R6: reason" -> (["R4"; "R6"], "reason"); without a colon the whole
   payload is the id list and the reason is empty. *)
let parse_rule_list s =
  let ids_part, reason =
    match String.index_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, "")
  in
  let ids =
    String.split_on_char ',' ids_part
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  (ids, reason)

let looks_like_rule_id s =
  String.length s >= 2
  && (s.[0] = 'R' || s.[0] = 'W' || s.[0] = 'E')
  && String.for_all (fun c -> c >= '0' && c <= '9')
       (String.sub s 1 (String.length s - 1))

(** Generic waiver: [[@lint "R1,R4"]] or [[@lint "R4: reason"]].  Waives
    [rule] iff its id appears in the comma-separated list. *)
let generic ~rule attrs =
  match find_attr "lint" attrs with
  | None -> Not_waived
  | Some a -> (
    match string_payload a with
    | None ->
      Malformed
        ( a.attr_loc,
          "[@lint] must carry a string payload listing rule ids, e.g. \
           [@lint \"R1,R4: reason\"]" )
    | Some s -> (
      let ids, reason = parse_rule_list s in
      match List.find_opt (fun id -> not (looks_like_rule_id id)) ids with
      | Some bad ->
        Malformed
          ( a.attr_loc,
            Printf.sprintf
              "[@lint] payload %S: %S is not a rule id (expected R<n>, \
               comma-separated)" s bad )
      | None ->
        if ids = [] then
          Malformed (a.attr_loc, "[@lint] payload lists no rule ids")
        else if List.mem rule ids then
          Waived (if reason = "" then s else reason)
        else Not_waived))

(* Dedicated attribute first; a malformed dedicated waiver is reported even
   if a generic one would apply, so broken annotations never pass silently. *)
let with_generic ~rule attrs = function
  | Not_waived -> generic ~rule attrs
  | (Waived _ | Malformed _) as r -> r

(** R1 waiver: [[@psnap.local_state "reason"]] (reason mandatory), or the
    generic [[@lint "R1,..."]] form. *)
let local_state attrs =
  (match find_attr "psnap.local_state" attrs with
  | None -> Not_waived
  | Some a -> (
    match string_payload a with
    | Some s when String.trim s <> "" -> Waived s
    | _ ->
      Malformed
        ( a.attr_loc,
          "[@psnap.local_state] must carry a reason string explaining why \
           this state is process-local" )))
  |> with_generic ~rule:"R1" attrs

(** R3 waiver: [[@psnap.helping]] (no payload needed), [[@psnap.bounded
    "reason"]] (reason mandatory), or the generic [[@lint "R3,..."]]. *)
let loop_bound attrs =
  (match find_attr "psnap.helping" attrs with
  | Some _ -> Waived "helping"
  | None -> (
    match find_attr "psnap.bounded" attrs with
    | None -> Not_waived
    | Some a -> (
      match string_payload a with
      | Some s when String.trim s <> "" -> Waived s
      | _ ->
        Malformed
          ( a.attr_loc,
            "[@psnap.bounded] must carry a reason string stating the \
             iteration bound" ))))
  |> with_generic ~rule:"R3" attrs

(** R4 (domain-escape) waiver — generic form only. *)
let domain_escape attrs = generic ~rule:"R4" attrs

(** R5 (atomic-publication) waiver — generic form only. *)
let atomic_publication attrs = generic ~rule:"R5" attrs

(** R6 (frozen-view) waiver — generic form only. *)
let frozen_view attrs = generic ~rule:"R6" attrs
