(** Recognition of the waiver attributes that document deliberate
    exceptions to the lint rules:

    - [[@psnap.local_state "reason"]] — R1 waiver: this binding / record
      field / expression is genuinely process-local scratch state, never
      shared between processes.  The reason string is mandatory: every
      waiver must say {e why} the state cannot leak into step counts.
    - [[@psnap.helping]] — R3 waiver: the loop terminates because of a
      helping mechanism (condition (2) of the collect engine, f-array
      double-refresh collision, ...).
    - [[@psnap.bounded "reason"]] — R3 waiver: the loop has an explicit
      iteration bound, stated in the reason. *)

open Parsetree

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun (a : attribute) -> a.attr_name.txt = name) attrs

(** Result of looking for a waiver on a node. *)
type check =
  | Not_waived
  | Waived of string  (** the reason *)
  | Malformed of Location.t * string  (** waiver present but unusable *)

(** R1 waiver: [[@psnap.local_state "reason"]]; the reason is mandatory. *)
let local_state attrs =
  match find_attr "psnap.local_state" attrs with
  | None -> Not_waived
  | Some a -> (
    match string_payload a with
    | Some s when String.trim s <> "" -> Waived s
    | _ ->
      Malformed
        ( a.attr_loc,
          "[@psnap.local_state] must carry a reason string explaining why \
           this state is process-local" ))

(** R3 waiver: [[@psnap.helping]] (no payload needed) or
    [[@psnap.bounded "reason"]] (reason mandatory). *)
let loop_bound attrs =
  match find_attr "psnap.helping" attrs with
  | Some _ -> Waived "helping"
  | None -> (
    match find_attr "psnap.bounded" attrs with
    | None -> Not_waived
    | Some a -> (
      match string_payload a with
      | Some s when String.trim s <> "" -> Waived s
      | _ ->
        Malformed
          ( a.attr_loc,
            "[@psnap.bounded] must carry a reason string stating the \
             iteration bound" )))
