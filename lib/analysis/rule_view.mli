(** R6 (frozen-view): views are frozen at publication.  A scan result
    or published [View.t]/[View_repr] value handed across the shard
    boundary must not be mutated afterwards — borrowers share it
    wholesale.  Waiver: [[@lint "R6: reason"]] on the mutation or the
    binding of the view. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
