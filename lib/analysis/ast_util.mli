(** Small Parsetree helpers shared by the rules. *)

module SSet : Set.S with type elt = string

val last_of_longident : Longident.t -> string

(** Head module of a dotted path: [Array.set] -> [Some "Array"],
    [Stdlib.Array.set] -> [Some "Array"] (the [Stdlib] prefix is
    transparent), plain idents -> [None]. *)
val head_module : Longident.t -> string option

(** Variable names bound by a pattern (tuples, aliases, constraints). *)
val pattern_vars : Parsetree.pattern -> string list

(** [expr_exists p e] — some subexpression of [e] satisfies [p]. *)
val expr_exists :
  (Parsetree.expression -> bool) -> Parsetree.expression -> bool

(** Applies (or mentions) an identifier whose last path component is
    [name]. *)
val ident_used : string -> Parsetree.expression -> bool

(** All plain (unqualified) identifier names mentioned anywhere in [e]. *)
val mentioned_names : Parsetree.expression -> SSet.t

(** [loc_within ~outer loc] — [loc] lies inside [outer] (same file, both
    real locations). *)
val loc_within : outer:Location.t -> Location.t -> bool

(** The base variable of a mutation target: [x] -> [x], [x.f] -> [x],
    [x.f.g] -> [x]; anything else -> [None]. *)
val target_base : Parsetree.expression -> string option

(** Recognize an expression that mutates a value in place, returning the
    name of the mutated base variable: [x := e], [incr x]/[decr x],
    [x.f <- e], [x.(i) <- e] / [Array.set x ..] / [Bytes.set x ..] /
    [Array.sort cmp x].  [None] for non-mutations and for targets not
    rooted in a plain variable. *)
val mutation_target : Parsetree.expression -> string option

(** Walk every module expression of a structure (functor bodies,
    [module M = struct .. end], includes), calling [f] on each structure
    found. *)
val iter_structures :
  (Parsetree.structure -> unit) -> Parsetree.structure -> unit
