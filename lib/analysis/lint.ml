(** psnap-lint driver: parse OCaml sources with compiler-libs and run the
    memory-discipline rules over them.

    The rules apply to the {e algorithm libraries} — [lib/snapshot],
    [lib/activeset], [lib/apps] — whose step counts the theorems are stated
    about.  Backend and infrastructure code ([lib/mem], [lib/sched], ...)
    legitimately implements the mutation the algorithms must not perform,
    so it is exempt (reported as skipped). *)

type ruleset = Algorithm | Exempt

let algorithm_dirs = [ "lib/snapshot"; "lib/activeset"; "lib/apps" ]

(* Path components, so "x/lib/snapshot/foo.ml" matches "lib/snapshot". *)
let ruleset_for_path path =
  let parts =
    String.split_on_char '/' (String.concat "/" (String.split_on_char '\\' path))
  in
  let rec has_pair = function
    | a :: (b :: _ as rest) ->
      List.mem (a ^ "/" ^ b) algorithm_dirs || has_pair rest
    | _ -> false
  in
  if has_pair parts then Algorithm else Exempt

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(** Lint one compilation unit given as a string.  [ruleset] defaults to
    what [file]'s path implies. *)
let lint_source ?ruleset ~file source =
  let ruleset =
    match ruleset with Some r -> r | None -> ruleset_for_path file
  in
  match ruleset with
  | Exempt -> []
  | Algorithm -> (
    match parse ~file source with
    | exception e ->
      let loc, msg =
        match Location.error_of_exn e with
        | Some (`Ok err) ->
          ( err.Location.main.loc,
            Format.asprintf "%a" Location.print_report err )
        | _ -> (Location.in_file file, Printexc.to_string e)
      in
      [ Diagnostic.v ~rule:Parse_error ~loc msg ]
    | str ->
      let diags = ref [] in
      let diag d = diags := d :: !diags in
      Rule_escape.check str ~diag;
      Rule_cas.check str ~diag;
      Rule_loops.check str ~diag;
      List.sort Diagnostic.compare_pos !diags)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~file:path (read_file path)

let is_ml path = Filename.check_suffix path ".ml"

let rec find_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "" || entry.[0] = '.' || entry = "_build" then []
           else find_ml_files (Filename.concat path entry))
  else if is_ml path then [ path ]
  else []

(** Lint every [.ml] file under the given paths.  Returns the files that
    were actually checked (algorithm ruleset) and all diagnostics, in
    stable order. *)
let lint_paths paths =
  let files = List.concat_map find_ml_files paths in
  let checked =
    List.filter (fun f -> ruleset_for_path f = Algorithm) files
  in
  let diags = List.concat_map lint_file checked in
  (checked, List.sort Diagnostic.compare_pos diags)
