(** psnap-lint driver: parse OCaml sources with compiler-libs and run the
    memory-discipline and domain-sharing rules over them.

    Two rulesets, decided by path:

    - {e Algorithm} ([lib/snapshot], [lib/activeset], [lib/apps]) — the
      libraries whose step counts the theorems are stated about.  They get
      the memory-discipline rules R1–R3 plus the concurrency rules R4–R6
      (a view frozen by R6 matters most where views are built).
    - {e Runtime} ([lib/runtime], [lib/mem]) — Domains-facing serving and
      register code.  Raw mutability is its job (R1–R3 do not apply), but
      whatever crosses a domain boundary must be synchronized: R4
      domain-escape, R5 atomic-publication, R6 frozen-view.

    Everything else ([lib/sched] — the single-threaded simulator — test
    harnesses, ...) is exempt (reported as skipped). *)

type ruleset = Algorithm | Runtime | Exempt

let algorithm_dirs = [ "lib/snapshot"; "lib/activeset"; "lib/apps" ]

let runtime_dirs =
  [ "lib/runtime"; "lib/mem"; "lib/persist"; "lib/net"; "lib/txn" ]

(* Path components, so "x/lib/snapshot/foo.ml" matches "lib/snapshot". *)
let ruleset_for_path path =
  let parts =
    String.split_on_char '/' (String.concat "/" (String.split_on_char '\\' path))
  in
  let rec has_pair dirs = function
    | a :: (b :: _ as rest) ->
      List.mem (a ^ "/" ^ b) dirs || has_pair dirs rest
    | _ -> false
  in
  if has_pair algorithm_dirs parts then Algorithm
  else if has_pair runtime_dirs parts then Runtime
  else Exempt

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(** Lint one compilation unit given as a string.  [ruleset] defaults to
    what [file]'s path implies. *)
let lint_source ?ruleset ~file source =
  let ruleset =
    match ruleset with Some r -> r | None -> ruleset_for_path file
  in
  match ruleset with
  | Exempt -> []
  | (Algorithm | Runtime) as rs -> (
    match parse ~file source with
    | exception e ->
      let loc, msg =
        match Location.error_of_exn e with
        | Some (`Ok err) ->
          ( err.Location.main.loc,
            Format.asprintf "%a" Location.print_report err )
        | _ -> (Location.in_file file, Printexc.to_string e)
      in
      [ Diagnostic.v ~rule:Parse_error ~loc msg ]
    | str ->
      let diags = ref [] in
      let diag d = diags := d :: !diags in
      (match rs with
      | Algorithm ->
        Rule_escape.check str ~diag;
        Rule_cas.check str ~diag;
        Rule_loops.check str ~diag
      | Runtime | Exempt -> ());
      Rule_domain.check str ~diag;
      Rule_publish.check str ~diag;
      Rule_view.check str ~diag;
      (* Several rules inspect the same waiver attributes, so one
         malformed [@lint] would be reported once per rule: collapse
         structurally identical diagnostics. *)
      List.sort_uniq Stdlib.compare !diags
      |> List.sort Diagnostic.compare_pos)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?ruleset path = lint_source ?ruleset ~file:path (read_file path)

let is_ml path = Filename.check_suffix path ".ml"

let rec find_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "" || entry.[0] = '.' || entry = "_build" then []
           else find_ml_files (Filename.concat path entry))
  else if is_ml path then [ path ]
  else []

(** Lint every [.ml] file under the given paths.  Returns the files that
    were actually checked and all diagnostics, in stable order.  By
    default each file gets the ruleset its path implies (exempt files are
    skipped); [?ruleset] forces one on every file — how the fixture files
    under [test/], exempt by path, are linted in CI. *)
let lint_paths ?ruleset paths =
  let files = List.concat_map find_ml_files paths in
  let checked =
    match ruleset with
    | Some _ -> files
    | None -> List.filter (fun f -> ruleset_for_path f <> Exempt) files
  in
  let diags = List.concat_map (lint_file ?ruleset) checked in
  (checked, List.sort Diagnostic.compare_pos diags)
