(** R6 (frozen-view): a view is frozen at publication.  Scan results and
    published views ([View.t] / [View_repr] values, and the component
    vectors returned by [scan]) are handed across the shard boundary and
    borrowed wholesale by the helping mechanism — the atomicity argument
    (docs/MODEL.md §10) depends on nobody patching them afterwards.  An
    in-place mutation of a scan result is exactly the unpublished-view bug
    the runtime fixtures seed: the mutation is visible to some helpers and
    not others, so two borrowers of "the same" view disagree.

    Detection: within each top-level binding the rule tracks (through let
    chains, aliases and field projections) the names bound from a
    view-producing call — an application whose callee's last path component
    is [scan] or [of_pairs]/[publish], or any [View.*] call — and flags
    in-place mutations ([x.(i) <- ..], [x.f <- ..], [Array.set/fill/blit/
    sort], [:=]) whose target base is one of them.  Freshly-built arrays
    being {e assembled} before publication ([Array.make] + fill + return)
    are untouched: their binding is not view-derived.

    Waiver: [[@lint "R6: reason"]] on the mutation expression or on the
    binding of the view. *)

open Parsetree
module SSet = Ast_util.SSet

let producer_names = SSet.of_list [ "scan"; "of_pairs"; "publish" ]

(* Does this expression (an RHS) produce a view?  Either a call to a view
   producer, or a reference to / projection of an already-frozen name. *)
let rec view_rhs ~frozen e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    SSet.mem (Ast_util.last_of_longident txt) producer_names
    || Ast_util.head_module txt = Some "View"
  | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x frozen
  | Pexp_field (b, _) | Pexp_constraint (b, _) -> view_rhs ~frozen b
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
    List.exists (fun c -> view_rhs ~frozen c.pc_rhs) cases
  | Pexp_ifthenelse (_, a, b) ->
    view_rhs ~frozen a
    || (match b with Some b -> view_rhs ~frozen b | None -> false)
  | Pexp_sequence (_, b) -> view_rhs ~frozen b
  | _ -> false

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  let bad_waiver (loc, msg) =
    diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg)
  in
  let rec walk (frozen : SSet.t) (e : expression) =
    match Waiver.frozen_view e.pexp_attributes with
    | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
    | Waiver.Waived _ -> ()
    | Waiver.Not_waived -> (
      (match Ast_util.mutation_target e with
      | Some tgt when SSet.mem tgt frozen ->
        diag
          (Diagnostic.v ~rule:Frozen_view ~loc:e.pexp_loc
             (Printf.sprintf
                "in-place mutation of '%s', a published view / scan result: \
                 views are frozen at publication (borrowers share them \
                 wholesale) — copy before patching, or waive with [@lint \
                 \"R6: reason\"]"
                tgt))
      | _ -> ());
      match e.pexp_desc with
      | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk frozen vb.pvb_expr) vbs;
        let frozen' =
          List.fold_left
            (fun acc vb ->
              match Waiver.frozen_view vb.pvb_attributes with
              | Waiver.Waived _ -> acc
              | Waiver.Malformed _ | Waiver.Not_waived ->
                if view_rhs ~frozen:acc vb.pvb_expr then
                  List.fold_left
                    (fun s n -> SSet.add n s)
                    acc
                    (Ast_util.pattern_vars vb.pvb_pat)
                else acc)
            frozen vbs
        in
        walk frozen' body
      | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> walk frozen e');
          }
        in
        Ast_iterator.default_iterator.expr it e)
  in
  Ast_util.iter_structures
    (fun items ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter (fun vb -> walk SSet.empty vb.pvb_expr) vbs
          | Pstr_eval (e, _) -> walk SSet.empty e
          | _ -> ())
        items)
    str
