(** Diagnostics emitted by the psnap-lint rules, with human-readable and
    JSON renderings.  A diagnostic pins a rule violation to a file:line:col
    so editors and CI can jump to it. *)

type rule =
  | Escape  (** R1: raw mutable state in an algorithm library *)
  | Cas_discipline  (** R2: [cas ~expected] not bound from a prior read *)
  | Loop_bound  (** R3: unannotated retry loop over shared memory *)
  | Domain_escape
      (** R4: raw mutable state captured by a closure passed to
          [Domain.spawn] *)
  | Atomic_publication
      (** R5: plain mutation of state published through (or acquired
          from) an [Atomic.t] container *)
  | Frozen_view
      (** R6: a scan result / published view mutated after publication *)
  | Waiver_syntax  (** malformed waiver attribute (e.g. missing reason) *)
  | Parse_error  (** the file does not parse *)

let rule_id = function
  | Escape -> "R1"
  | Cas_discipline -> "R2"
  | Loop_bound -> "R3"
  | Domain_escape -> "R4"
  | Atomic_publication -> "R5"
  | Frozen_view -> "R6"
  | Waiver_syntax -> "W0"
  | Parse_error -> "E0"

let rule_name = function
  | Escape -> "no-escape"
  | Cas_discipline -> "cas-discipline"
  | Loop_bound -> "loop-bound"
  | Domain_escape -> "domain-escape"
  | Atomic_publication -> "atomic-publication"
  | Frozen_view -> "frozen-view"
  | Waiver_syntax -> "waiver-syntax"
  | Parse_error -> "parse-error"

type t = { rule : rule; file : string; line : int; col : int; message : string }

let v ~rule ~(loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

(** Stable presentation order: by position, then rule. *)
let compare_pos a b =
  compare (a.file, a.line, a.col, rule_id a.rule)
    (b.file, b.line, b.col, rule_id b.rule)

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s/%s] %s" d.file d.line d.col
    (rule_id d.rule) (rule_name d.rule) d.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"rule":"%s","name":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (rule_id d.rule) (rule_name d.rule) (json_escape d.file) d.line d.col
    (json_escape d.message)

(** The whole report as one JSON object, for the [--json] CI artifact. *)
let report_json ~files diags =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf {|{"tool":"psnap-lint","files_checked":%d,"violations":%d,"diagnostics":[|}
       files (List.length diags));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (to_json d))
    diags;
  Buffer.add_string b "]}";
  Buffer.contents b
