(** R5 (atomic-publication): state published through an [Atomic.t]
    container must only change by republication — a plain in-place
    mutation of a value already stored into (or loaded from) an atomic is
    an unreleased write racing with every reader that holds the pointer.
    Waiver: [[@lint "R5: reason"]] on the mutation or the binding. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
