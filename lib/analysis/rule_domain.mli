(** R4 (domain-escape): raw mutable state ([ref]/[Array]/[Bytes]/
    [Hashtbl]/...) must not flow into a closure passed to [Domain.spawn]
    — cross-domain locations must be [Atomic.t], Mutex-guarded, or
    waived.  Interprocedural: a root reaching the spawned closure through
    file-local helper functions is caught too (capture summaries computed
    as a fixpoint); roots allocated inside the spawned closure itself are
    domain-local and exempt.  Waiver: [[@lint "R4: reason"]] on the
    root's binding or the spawn expression. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
