(** R3 (loop-bound): a retry loop over shared memory ([while true] or a
    recursive function touching the [Mem] primitives, directly or through
    helpers) must carry [[@psnap.helping]] or [[@psnap.bounded "reason"]]
    stating why it terminates.  A [let rec .. and ..] group is one loop:
    a waiver on any binding covers the group. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
