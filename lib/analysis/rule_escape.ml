(** R1 (no-escape): in algorithm libraries, every shared-memory access must
    go through the [Mem_intf.S] functor parameter, so that the simulator
    counts it as a step.  Raw OCaml mutability — [ref] cells, mutable
    record fields, array/bytes mutation, [Hashtbl], direct [Atomic] — is an
    {e escape}: the simulator cannot see it, so a stray one silently
    corrupts the step counts Theorems 1-3 are validated against.

    Escapes that are genuinely process-local scratch state (never shared
    between processes, hence invisible to the model's cost measure) are
    waived by [[@psnap.local_state "reason"]]:

    - on a [let] binding — the binding's body is exempt, and the bound
      names become legal targets for [:=]/[!]/[incr]/array-set/[Hashtbl]
      operations elsewhere in the file;
    - on a record field declaration — the field and assignments to it (or
      to its contents) are exempt;
    - on an expression — that subtree is exempt. *)

open Parsetree
module SSet = Set.Make (String)

let ref_family = SSet.of_list [ "ref"; ":="; "!"; "incr"; "decr" ]

let mutators = SSet.of_list [ "set"; "unsafe_set"; "fill"; "blit" ]

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  let waived_fields = ref SSet.empty in
  let waived_names = ref SSet.empty in
  let add_diag ~loc msg = diag (Diagnostic.v ~rule:Escape ~loc msg) in
  let bad_waiver (loc, msg) = diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg) in

  (* Pass 1: record label declarations — collect waivers, flag unwaived
     mutable fields. *)
  let type_pass =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
            List.iter
              (fun (ld : label_declaration) ->
                match Waiver.local_state ld.pld_attributes with
                | Waiver.Waived _ ->
                  waived_fields := SSet.add ld.pld_name.txt !waived_fields
                | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
                | Waiver.Not_waived ->
                  if ld.pld_mutable = Mutable then
                    add_diag ~loc:ld.pld_loc
                      (Printf.sprintf
                         "mutable record field '%s' in an algorithm library: \
                          shared state must live in Mem cells; if this is \
                          process-local, annotate it with [@psnap.local_state \
                          \"reason\"]"
                         ld.pld_name.txt))
              labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  type_pass.structure type_pass str;

  (* A mutation whose target is a waived name or waived field is part of the
     waived local state. *)
  let waived_target e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x !waived_names
    | Pexp_field (_, { txt; _ }) ->
      SSet.mem (Ast_util.last_of_longident txt) !waived_fields
    | _ -> false
  in
  let any_arg_waived args =
    List.exists (fun ((_ : Asttypes.arg_label), e) -> waived_target e) args
  in

  (* Pass 2: expressions. *)
  let rec expr it (e : expression) =
    match Waiver.local_state e.pexp_attributes with
    | Waiver.Waived _ -> ()
    | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
    | Waiver.Not_waived -> (
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let name = Ast_util.last_of_longident txt in
        let head = Ast_util.head_module txt in
        (if head = None && SSet.mem name ref_family then begin
           if name = "ref" then
             add_diag ~loc
               "ref cell allocated in an algorithm library: use a Mem cell \
                (M.make), or waive genuinely local scratch state with \
                [@psnap.local_state \"reason\"] on its binding"
           else if not (any_arg_waived args) then
             add_diag ~loc
               (Printf.sprintf
                  "'%s' on a ref cell that is not waived local state: shared \
                   accesses must go through the Mem functor parameter" name)
         end
         else
           match head with
           | Some ("Array" | "Bytes") when SSet.mem name mutators ->
             if not (any_arg_waived args) then
               add_diag ~loc
                 (Printf.sprintf
                    "in-place %s.%s in an algorithm library: mutation is \
                     invisible to the step-counting simulator; waive local \
                     scratch arrays with [@psnap.local_state \"reason\"]"
                    (Option.get head) name)
           | Some "Hashtbl" ->
             if not (any_arg_waived args) then
               add_diag ~loc
                 "Hashtbl use in an algorithm library: hash tables are \
                  unsynchronized mutable state; use Mem cells, or waive a \
                  process-local table with [@psnap.local_state \"reason\"]"
           | Some "Atomic" ->
             add_diag ~loc
               "direct Atomic use bypasses the Mem functor parameter: the \
                simulator backend would not count these accesses as steps"
           | _ -> ());
        List.iter (fun (_, a) -> expr it a) args
      | Pexp_ident { txt; loc } -> (
        match Ast_util.head_module txt with
        | Some "Hashtbl" ->
          add_diag ~loc
            "Hashtbl use in an algorithm library: hash tables are \
             unsynchronized mutable state (waivable with \
             [@psnap.local_state \"reason\"])"
        | Some "Atomic" ->
          add_diag ~loc
            "direct Atomic use bypasses the Mem functor parameter"
        | _ ->
          if txt = Longident.Lident "ref" then
            add_diag ~loc
              "ref constructor used as a value in an algorithm library")
      | Pexp_setfield (lhs, { txt; loc }, rhs) ->
        let field = Ast_util.last_of_longident txt in
        if not (SSet.mem field !waived_fields) then
          add_diag ~loc
            (Printf.sprintf
               "assignment to record field '%s' that is not waived local \
                state" field);
        expr it lhs;
        expr it rhs
      | Pexp_setinstvar ({ txt; _ }, rhs) ->
        add_diag ~loc:e.pexp_loc
          (Printf.sprintf "instance variable assignment '%s <- ...'" txt);
        expr it rhs
      | _ -> Ast_iterator.default_iterator.expr it e)
  and value_binding it vb =
    match Waiver.local_state vb.pvb_attributes with
    | Waiver.Waived _ ->
      waived_names :=
        List.fold_left
          (fun s n -> SSet.add n s)
          !waived_names
          (Ast_util.pattern_vars vb.pvb_pat)
    | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
    | Waiver.Not_waived -> Ast_iterator.default_iterator.value_binding it vb
  in
  let main = { Ast_iterator.default_iterator with expr; value_binding } in
  main.structure main str
