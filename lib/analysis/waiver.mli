(** Recognition of the waiver attributes that document deliberate
    exceptions to the lint rules:

    - [[@psnap.local_state "reason"]] — R1: genuinely process-local
      scratch state (reason mandatory);
    - [[@psnap.helping]] / [[@psnap.bounded "reason"]] — R3: why a retry
      loop terminates;
    - [[@lint "R4,R6: reason"]] — the generic form: a comma-separated
      list of rule ids, optionally followed by [": reason"], waiving
      exactly the listed rules on the annotated node.  The concurrency
      rules R4–R6 have no dedicated attribute and are waived only through
      this form. *)

(** Result of looking for a waiver on a node. *)
type check =
  | Not_waived
  | Waived of string  (** the reason *)
  | Malformed of Location.t * string  (** waiver present but unusable *)

(** [parse_rule_list "R4,R6: reason"] = [(["R4"; "R6"], "reason")];
    without a colon the whole payload is the id list and the reason is
    empty. *)
val parse_rule_list : string -> string list * string

(** [R<n>], [W<n>] or [E<n>]. *)
val looks_like_rule_id : string -> bool

(** Generic waiver: waives [rule] iff its id appears in the payload's
    comma-separated list. *)
val generic : rule:string -> Parsetree.attributes -> check

(** R1 waiver: [[@psnap.local_state "reason"]] or [[@lint "R1,..."]]. *)
val local_state : Parsetree.attributes -> check

(** R3 waiver: [[@psnap.helping]], [[@psnap.bounded "reason"]] or
    [[@lint "R3,..."]]. *)
val loop_bound : Parsetree.attributes -> check

(** R4 (domain-escape) waiver — generic form only. *)
val domain_escape : Parsetree.attributes -> check

(** R5 (atomic-publication) waiver — generic form only. *)
val atomic_publication : Parsetree.attributes -> check

(** R6 (frozen-view) waiver — generic form only. *)
val frozen_view : Parsetree.attributes -> check
