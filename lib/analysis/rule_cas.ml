(** R2 (cas-discipline): every [cas] call must pass an [~expected] value
    bound from a prior [read] in the same lexical scope.

    The Mem model's compare&swap compares with {e physical} equality
    (see [lib/mem/mem_intf.ml]): it is only a faithful model of a hardware
    pointer CAS — and only avoids the ABA problem the way the paper's
    tagged values do — if the expected value is the exact value previously
    read from the cell, never a reconstructed or constant value.  This rule
    enforces that shape syntactically: the [~expected] argument must be
    (or be let-bound to) an expression that performs a [read]. *)

open Parsetree
module SSet = Set.Make (String)

let derives_from_read e = Ast_util.ident_used "read" e

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  let rec walk (env : SSet.t) (e : expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk env vb.pvb_expr) vbs;
      let env' =
        List.fold_left
          (fun env vb ->
            if derives_from_read vb.pvb_expr then
              List.fold_left
                (fun env n -> SSet.add n env)
                env
                (Ast_util.pattern_vars vb.pvb_pat)
            else env)
          env vbs
      in
      walk env' body
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when Ast_util.last_of_longident txt = "cas" ->
      (match
         List.find_opt
           (fun (lbl, _) -> lbl = Asttypes.Labelled "expected")
           args
       with
      | Some (_, expected) ->
        let ok =
          derives_from_read expected
          ||
          match expected.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x env
          | _ -> false
        in
        if not ok then
          diag
            (Diagnostic.v ~rule:Cas_discipline ~loc:expected.pexp_loc
               "cas ~expected must be bound from a prior read of the cell \
                (physical-equality CAS: comparing against a reconstructed \
                or constant value reintroduces ABA; see lib/mem/mem_intf.ml)")
      | None -> ());
      List.iter (fun (_, a) -> walk env a) args
    | _ ->
      (* Generic descent preserving [env]. *)
      let it =
        { Ast_iterator.default_iterator with expr = (fun _ e -> walk env e) }
      in
      Ast_iterator.default_iterator.expr it e
  in
  Ast_util.iter_structures
    (fun items ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter (fun vb -> walk SSet.empty vb.pvb_expr) vbs
          | Pstr_eval (e, _) -> walk SSet.empty e
          | _ -> ())
        items)
    str
