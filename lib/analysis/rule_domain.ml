(** R4 (domain-escape): raw mutable state must not flow into a closure
    passed to [Domain.spawn].  A [ref] cell, array, [Bytes] buffer or
    [Hashtbl] captured by a spawned closure is shared between domains with
    no synchronization: the OCaml memory model makes the resulting races
    undefined-ish (values read may be out of thin air for unboxed fields),
    and the serving layer's correctness argument assumes every cross-domain
    location is an [Atomic.t] or is guarded by a [Mutex].

    The analysis is an interprocedural {e capture summary} over the file,
    in the spirit of [Rule_escape]'s fixpoint: for every named binding we
    compute the set of raw mutable roots it mentions that were allocated
    {e outside} its own body (roots allocated inside a function are fresh
    per call, hence domain-local once the function is the spawned entry
    point).  At a [Domain.spawn arg] site the summary of [arg] — the roots
    it captures directly plus, transitively, the summaries of every
    function it mentions — is checked; each reached root that is not an
    [Atomic.t]/[Mutex]/[Condition]/[Semaphore] allocation and carries no
    waiver is flagged.

    Known syntactic approximations (see docs/MODEL.md §12): allocation is
    recognized by constructor shape ([ref e], [Array.make], ...), so a
    mutable structure returned by an arbitrary function is invisible, as is
    mutable state reached through record fields; shadowing is ignored.

    Waiver: [[@lint "R4: reason"]] on the root's binding or on the spawn
    expression. *)

open Parsetree
module SSet = Ast_util.SSet
module SMap = Map.Make (String)

type root = {
  kind : string;  (** "ref cell", "array", ... for the message *)
  def_loc : Location.t;  (** the allocation site *)
  waived : bool;
}

(* Allocators of raw, unsynchronized mutable state, by (head module, last
   name).  [None] as head module = the bare [ref] constructor. *)
let raw_allocator head name =
  match (head, name) with
  | None, "ref" -> Some "ref cell"
  | Some "Array", ("make" | "init" | "create_float" | "make_matrix") ->
    Some "array"
  | Some "Bytes", ("create" | "make" | "init") -> Some "byte buffer"
  | Some "Hashtbl", "create" -> Some "hash table"
  | Some "Queue", "create" | Some "Stack", "create" -> Some "mutable queue"
  | Some "Buffer", "create" -> Some "buffer"
  | _ -> None

(* Allocators that are safe to share across domains. *)
let safe_allocator head name =
  match (head, name) with
  | Some "Atomic", "make"
  | Some "Mutex", "create"
  | Some "Condition", "create"
  | Some ("Semaphore" | "Binary" | "Counting"), "make" ->
    true
  | _ -> false

(* Only bindings that are syntactically functions get a propagated capture
   summary: mentioning a non-function binding cannot re-execute its body,
   and the flat name space would otherwise conflate unrelated same-named
   locals across scopes. *)
let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
  | _ -> false

(* Classify a binding's RHS: the outermost allocation decides.  [ref e]
   parses as an application of the [ref] constructor. *)
let classify_rhs e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let name = Ast_util.last_of_longident txt in
    let head = Ast_util.head_module txt in
    if safe_allocator head name then `Safe
    else (
      match raw_allocator head name with
      | Some kind -> `Raw kind
      | None -> `Other)
  | _ -> `Other

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  let bad_waiver (loc, msg) =
    diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg)
  in
  let waived attrs =
    match Waiver.domain_escape attrs with
    | Waiver.Waived _ -> true
    | Waiver.Malformed (loc, msg) ->
      bad_waiver (loc, msg);
      true (* a malformed waiver is already reported; don't double-flag *)
    | Waiver.Not_waived -> false
  in

  (* Pass 1: every named binding (with its body and span), and every raw
     mutable root, across the whole file including nested modules. *)
  let bindings = ref [] (* (name, body, span) *) in
  let roots = ref SMap.empty in
  let collect =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } -> (
            if is_function vb.pvb_expr then
              bindings := (name, vb.pvb_expr, vb.pvb_loc) :: !bindings;
            match classify_rhs vb.pvb_expr with
            | `Raw kind ->
              roots :=
                SMap.add name
                  {
                    kind;
                    def_loc = vb.pvb_loc;
                    waived = waived vb.pvb_attributes;
                  }
                  !roots
            | `Safe | `Other -> ())
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  collect.structure collect str;
  let bindings = List.rev !bindings in
  let roots = !roots in

  (* Summary of a named binding: raw roots it mentions that are defined
     outside its own span.  Fixpoint over the call graph: mentioning a
     binding imports that binding's summary (minus roots local to us). *)
  let base_summary body span =
    SSet.filter
      (fun n ->
        match SMap.find_opt n roots with
        | Some r -> not (Ast_util.loc_within ~outer:span r.def_loc)
        | None -> false)
      (Ast_util.mentioned_names body)
  in
  let summaries =
    ref
      (List.fold_left
         (fun m (n, body, span) -> SMap.add n (base_summary body span) m)
         SMap.empty bindings)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, body, span) ->
        let cur = SMap.find n !summaries in
        let imported =
          SSet.fold
            (fun callee acc ->
              match SMap.find_opt callee !summaries with
              | Some s -> SSet.union acc s
              | None -> acc)
            (Ast_util.mentioned_names body)
            SSet.empty
        in
        let imported =
          SSet.filter
            (fun r ->
              match SMap.find_opt r roots with
              | Some root -> not (Ast_util.loc_within ~outer:span root.def_loc)
              | None -> false)
            imported
        in
        let next = SSet.union cur imported in
        if not (SSet.equal next cur) then begin
          summaries := SMap.add n next !summaries;
          changed := true
        end)
      bindings
  done;

  (* Roots reached by a spawn argument: its own out-of-span mentions plus
     the summaries of every function it mentions, filtered again against
     the argument's span (a helper defined inside the closure capturing a
     root also defined inside the closure is domain-local). *)
  let reached arg =
    let span = arg.pexp_loc in
    let names = Ast_util.mentioned_names arg in
    let direct = base_summary arg span in
    let via_calls =
      SSet.fold
        (fun callee acc ->
          match SMap.find_opt callee !summaries with
          | Some s -> SSet.union acc s
          | None -> acc)
        names SSet.empty
    in
    SSet.filter
      (fun r ->
        match SMap.find_opt r roots with
        | Some root -> not (Ast_util.loc_within ~outer:span root.def_loc)
        | None -> false)
      (SSet.union direct via_calls)
  in

  (* Pass 2: spawn sites. *)
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
      when Ast_util.head_module txt = Some "Domain"
           && Ast_util.last_of_longident txt = "spawn" -> (
      match
        List.find_opt
          (fun ((lbl : Asttypes.arg_label), _) -> lbl = Asttypes.Nolabel)
          args
      with
      | Some (_, arg) when not (waived e.pexp_attributes) ->
        SSet.iter
          (fun r ->
            let root = SMap.find r roots in
            if not root.waived then
              diag
                (Diagnostic.v ~rule:Domain_escape ~loc
                   (Printf.sprintf
                      "'%s' (a raw %s allocated at line %d) is captured by \
                       the closure passed to Domain.spawn: cross-domain \
                       mutable state must be an Atomic.t, Mutex-guarded, or \
                       waived with [@lint \"R4: reason\"] on its binding"
                      r root.kind root.def_loc.Location.loc_start.pos_lnum)))
          (reached arg)
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let main = { Ast_iterator.default_iterator with expr } in
  main.structure main str
