(** R5 (atomic-publication): state that crosses a domain boundary through an
    [Atomic.t] container must only change by {e republication} — build a
    fresh value, then release it with one [Atomic.set] / [compare_and_set] /
    [exchange].  Two plain-mutation shapes break that protocol:

    - {e mutate-after-publish}: a structure is stored into an atomic (other
      domains can now load it) and then patched in place — the patch is a
      plain write with no release fence, so a reader that already holds the
      pointer races with it.  This is the classic inverted
      initialize-then-publish bug in shard rebuild / breaker-state code.
    - {e mutate-acquired}: a structure loaded from an atomic
      ([Atomic.get]) is mutated in place — same race, seen from the
      consumer side.

    The rule tracks, per top-level binding and in evaluation order, the
    names published into an atomic and the names bound from [Atomic.get],
    and flags any later in-place mutation ([:=], [incr], [x.f <- ..],
    [x.(i) <- ..], [Array.set/fill/blit/sort], ...) whose target base is
    one of them.  Purely syntactic: aliases through data structures and
    publications via helper functions are invisible (docs/MODEL.md §12).

    Waiver: [[@lint "R5: reason"]] on the mutation expression or on the
    binding that introduced the name. *)

open Parsetree
module SSet = Ast_util.SSet

let atomic_call name e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when Ast_util.head_module txt = Some "Atomic"
         && Ast_util.last_of_longident txt = name ->
    Some args
  | _ -> None

(* The value argument being published: [Atomic.set a v] -> [v],
   [Atomic.exchange a v] -> [v], [Atomic.compare_and_set a old new] ->
   [new]. *)
let published_value e =
  let positional args =
    List.filter_map
      (fun ((lbl : Asttypes.arg_label), a) ->
        match lbl with Nolabel -> Some a | _ -> None)
      args
  in
  match atomic_call "set" e with
  | Some args -> (
    match positional args with [ _; v ] -> Some v | _ -> None)
  | None -> (
    match atomic_call "exchange" e with
    | Some args -> (
      match positional args with [ _; v ] -> Some v | _ -> None)
    | None -> (
      match atomic_call "compare_and_set" e with
      | Some args -> (
        match positional args with [ _; _; v ] -> Some v | _ -> None)
      | None -> None))

let derives_from_atomic_get e =
  Ast_util.expr_exists
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
        Ast_util.head_module txt = Some "Atomic"
        && Ast_util.last_of_longident txt = "get"
      | _ -> false)
    e

let check (str : structure) ~(diag : Diagnostic.t -> unit) =
  let bad_waiver (loc, msg) =
    diag (Diagnostic.v ~rule:Waiver_syntax ~loc msg)
  in
  (* [shared] accumulates, in traversal (≈ evaluation) order, the names
     whose contents another domain may already be reading: published into
     an atomic, or loaded from one.  [why] remembers which, for the
     message. *)
  let shared = ref SSet.empty in
  let why : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let mark name reason =
    shared := SSet.add name !shared;
    if not (Hashtbl.mem why name) then Hashtbl.add why name reason
  in
  let waived_binding = ref SSet.empty in
  let rec walk (e : expression) =
    (match Waiver.atomic_publication e.pexp_attributes with
    | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
    | Waiver.Waived _ -> ()
    | Waiver.Not_waived -> (
      (* Flag before descending so the innermost diagnostic wins. *)
      match Ast_util.mutation_target e with
      | Some tgt
        when SSet.mem tgt !shared && not (SSet.mem tgt !waived_binding) ->
        diag
          (Diagnostic.v ~rule:Atomic_publication ~loc:e.pexp_loc
             (Printf.sprintf
                "in-place mutation of '%s', which was %s: a plain write to \
                 atomically-published state is unreleased — build a fresh \
                 value and republish it with Atomic.set/compare_and_set, or \
                 waive with [@lint \"R5: reason\"]"
                tgt
                (Option.value ~default:"shared through an Atomic.t"
                   (Hashtbl.find_opt why tgt))))
      | _ -> ()));
    (* Record publications/acquisitions, then descend in syntax order
       (which matches evaluation order for the sequential shapes —
       sequences, lets — this rule cares about). *)
    (match published_value e with
    | Some v -> (
      match Ast_util.target_base v with
      | Some n -> mark n "published into an Atomic.t container"
      | None -> ())
    | None -> ());
    (match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          walk vb.pvb_expr;
          (match Waiver.atomic_publication vb.pvb_attributes with
          | Waiver.Waived _ ->
            List.iter
              (fun n -> waived_binding := SSet.add n !waived_binding)
              (Ast_util.pattern_vars vb.pvb_pat)
          | Waiver.Malformed (loc, msg) -> bad_waiver (loc, msg)
          | Waiver.Not_waived -> ());
          if derives_from_atomic_get vb.pvb_expr then
            List.iter
              (fun n -> mark n "loaded from an Atomic.t with Atomic.get")
              (Ast_util.pattern_vars vb.pvb_pat))
        vbs;
      walk body
    | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e' -> if e' != e then walk e');
        }
      in
      Ast_iterator.default_iterator.expr it e)
  in
  Ast_util.iter_structures
    (fun items ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            (* Publication state is per top-level binding: a name published
               in one function stays hot for the rest of that function
               only. *)
            List.iter
              (fun vb ->
                shared := SSet.empty;
                Hashtbl.reset why;
                waived_binding := SSet.empty;
                walk vb.pvb_expr)
              vbs
          | Pstr_eval (e, _) ->
            shared := SSet.empty;
            Hashtbl.reset why;
            waived_binding := SSet.empty;
            walk e
          | _ -> ())
        items)
    str
