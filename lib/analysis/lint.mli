(** psnap-lint driver: parse OCaml sources with compiler-libs and run the
    memory-discipline and domain-sharing rules over them. *)

(** Which rules apply to a file, decided by path:

    - {!Algorithm} ([lib/snapshot], [lib/activeset], [lib/apps]) — the
      memory-discipline rules R1–R3 plus the concurrency rules R4–R6;
    - {!Runtime} ([lib/runtime], [lib/mem]) — Domains-facing code: raw
      mutability is its job (no R1–R3), but whatever crosses a domain
      boundary must be synchronized (R4–R6);
    - {!Exempt} — everything else (the single-threaded simulator, test
      harnesses); skipped. *)
type ruleset = Algorithm | Runtime | Exempt

val algorithm_dirs : string list

val runtime_dirs : string list

val ruleset_for_path : string -> ruleset

(** Lint one compilation unit given as a string.  [ruleset] defaults to
    what [file]'s path implies. *)
val lint_source :
  ?ruleset:ruleset -> file:string -> string -> Diagnostic.t list

val lint_file : ?ruleset:ruleset -> string -> Diagnostic.t list

(** Lint every [.ml] file under the given paths.  Returns the files
    actually checked and all diagnostics, in stable order.  By default
    each file gets the ruleset its path implies (exempt files are
    skipped); [?ruleset] forces one on every file — how the fixture files
    under [test/], exempt by path, are linted in CI. *)
val lint_paths :
  ?ruleset:ruleset -> string list -> string list * Diagnostic.t list
