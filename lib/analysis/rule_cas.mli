(** R2 (cas-discipline): the [~expected] argument of a [cas] must be
    bound from a prior [read] of the same cell in the same scope — CASing
    a guessed or stale value is how ABA bugs start. *)

(** Run the rule over one parsed compilation unit, reporting each
    violation (and each malformed waiver) through [diag]. *)
val check :
  Parsetree.structure -> diag:(Diagnostic.t -> unit) -> unit
