(** Multicore load generator for snapshot implementations.

    Drives any {!Psnap_snapshot.Snapshot_intf.S} (over the Atomic
    backend) with one OCaml domain per client, measuring per-operation
    latency into per-domain {!Histogram}s that are merged into a single
    report when the run ends.  Supports:

    - {e closed-loop} arrivals (each domain issues the next operation as
      soon as the previous one returns: measures capacity) and
      {e open-loop} arrivals at a target aggregate rate (operations are
      scheduled on a fixed cadence and latency is measured from the
      {e scheduled} arrival, so queueing delay is charged to the object —
      the coordinated-omission-aware protocol);
    - uniform and zipfian key popularity;
    - a probabilistic update:scan mix or dedicated updater/scanner
      domains;
    - warmup exclusion: operations issued before the warmup deadline are
      executed but not recorded.

    The driver blocks for [warmup_s + duration_s] wall seconds, then
    stops the domains and merges their histograms. *)

(** Exact zipfian sampler over ranks [0..n-1] ([P(i) ∝ (i+1)^-theta]),
    via a precomputed CDF and binary search.  The structure is read-only
    after [create] and safe to share across domains; per-domain
    randomness comes from the caller's [Random.State]. *)
module Zipf : sig
  type t

  val create : theta:float -> n:int -> t

  val sample : t -> Random.State.t -> int
end

type dist = Uniform | Zipfian of float  (** zipf exponent theta *)

type mix =
  | Ratio of float  (** probability that an operation is an update *)
  | Dedicated of { updaters : int; scanners : int }
      (** fixed roles; must sum to [domains] *)

type loop =
  | Closed
  | Open_rate of float  (** target aggregate arrivals per second *)

type scan_pattern =
  | Random_set  (** r independent draws from [dist] *)
  | Window
      (** a contiguous range read: [dist] picks the base index, the scan
          covers the next [r] components (mod [m]) — the access pattern
          range partitioning is designed for *)

type config = {
  m : int;  (** components *)
  r : int;  (** scan width *)
  domains : int;
  dist : dist;
  mix : mix;
  loop : loop;
  scan_pattern : scan_pattern;
  warmup_s : float;
  duration_s : float;
  seed : int;
}

val default : config
(** m=1024, r=8, 2 domains, uniform, 50:50 mix, closed loop, random scan
    sets, 0.2 s warmup, 1 s measured. *)

type report = {
  elapsed_s : float;  (** measured post-warmup wall time *)
  updates : int;  (** recorded (post-warmup) updates *)
  scans : int;
  update_lat : Histogram.t;
  scan_lat : Histogram.t;
}

val run : (module Psnap_snapshot.Snapshot_intf.S) -> config -> report
(** @raise Invalid_argument on inconsistent configs (r > m, mix outside
    [0,1], dedicated roles not summing to [domains], ...). *)

val throughput : report -> float
(** Recorded operations per measured second. *)

val json_fields : impl:string -> config -> report -> (string * string) list
(** Flat key/value summary (throughput, p50/p90/p99/p99.9 and mean/max
    per operation kind, plus the config) for JSON artifacts; values are
    pre-rendered JSON literals. *)

val dist_to_string : dist -> string

val mix_to_string : mix -> string

val loop_to_string : loop -> string

val scan_pattern_to_string : scan_pattern -> string
