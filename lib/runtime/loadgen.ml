(* Domains-based load generator for the Atomic-backed snapshot
   implementations: one OCaml domain per simulated client, closed- or
   open-loop arrivals, uniform or zipfian key popularity, configurable
   update:scan mix and scan width, warmup exclusion, per-domain latency
   histograms merged into a single report after the domains join.

   Timing uses bechamel's monotonic clock (CLOCK_MONOTONIC, ns).  Values
   written are unique per (domain, sequence) so the resulting traffic is
   also usable under history checkers. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Zipfian sampler over ranks 0..n-1 with exponent theta: weight of rank
   i is (i+1)^-theta.  The CDF is precomputed once (O(n) floats) and
   shared read-only across domains; a sample is one uniform draw plus a
   binary search — exact, not the YCSB approximation. *)
module Zipf = struct
  type t = { cdf : float array }

  let create ~theta ~n =
    if n < 1 then invalid_arg "Zipf.create: n < 1";
    if theta < 0.0 then invalid_arg "Zipf.create: theta < 0";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (i + 1) ** theta));
      cdf.(i) <- !acc
    done;
    let z = !acc in
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. z
    done;
    { cdf }

  let sample t rng =
    let u = Random.State.float rng 1.0 in
    (* smallest i with cdf.(i) >= u *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end

type dist = Uniform | Zipfian of float

type mix = Ratio of float | Dedicated of { updaters : int; scanners : int }

type loop = Closed | Open_rate of float

type scan_pattern = Random_set | Window

type config = {
  m : int;
  r : int;
  domains : int;
  dist : dist;
  mix : mix;
  loop : loop;
  scan_pattern : scan_pattern;
  warmup_s : float;
  duration_s : float;
  seed : int;
}

let default =
  {
    m = 1024;
    r = 8;
    domains = 2;
    dist = Uniform;
    mix = Ratio 0.5;
    loop = Closed;
    scan_pattern = Random_set;
    warmup_s = 0.2;
    duration_s = 1.0;
    seed = 0;
  }

type report = {
  elapsed_s : float;  (** measured post-warmup wall time *)
  updates : int;
  scans : int;
  update_lat : Histogram.t;
  scan_lat : Histogram.t;
}

let throughput rep =
  if rep.elapsed_s <= 0.0 then 0.0
  else float_of_int (rep.updates + rep.scans) /. rep.elapsed_s

let validate cfg =
  if cfg.m < 1 then invalid_arg "Loadgen: m < 1";
  if cfg.r < 1 || cfg.r > cfg.m then invalid_arg "Loadgen: need 1 <= r <= m";
  if cfg.domains < 1 then invalid_arg "Loadgen: domains < 1";
  if cfg.duration_s <= 0.0 then invalid_arg "Loadgen: duration <= 0";
  (match cfg.mix with
  | Ratio p when p < 0.0 || p > 1.0 -> invalid_arg "Loadgen: mix not in [0,1]"
  | Dedicated { updaters; scanners } ->
    if updaters < 0 || scanners < 0 || updaters + scanners <> cfg.domains then
      invalid_arg "Loadgen: updaters + scanners must equal domains"
  | Ratio _ -> ());
  match cfg.loop with
  | Open_rate r when r <= 0.0 -> invalid_arg "Loadgen: open-loop rate <= 0"
  | _ -> ()

let run (module S : Psnap_snapshot.Snapshot_intf.S) cfg =
  validate cfg;
  let t = S.create ~n:cfg.domains (Array.init cfg.m (fun i -> -(i + 1))) in
  let zipf =
    match cfg.dist with
    | Zipfian theta -> Some (Zipf.create ~theta ~n:cfg.m)
    | Uniform -> None
  in
  let stop = Atomic.make false in
  let t0 = now_ns () in
  let warm_end = t0 + int_of_float (cfg.warmup_s *. 1e9) in
  let worker pid () =
    let rng = Random.State.make [| cfg.seed; pid; 0x9e3779b9 |] in
    let h = S.handle t ~pid in
    let uh = Histogram.create () and sh = Histogram.create () in
    let idxs = Array.make cfg.r 0 in
    let seq = ref 0 in
    let sample_idx () =
      match zipf with
      | Some z -> Zipf.sample z rng
      | None -> Random.State.int rng cfg.m
    in
    let is_update () =
      match cfg.mix with
      | Ratio p -> Random.State.float rng 1.0 < p
      | Dedicated { updaters; _ } -> pid < updaters
    in
    (* open loop: arrivals every [interval] ns per domain, latency measured
       from the scheduled arrival (coordinated-omission-aware: if the
       object is slow, queued arrivals inflate the reported latency) *)
    let interval =
      match cfg.loop with
      | Closed -> 0
      | Open_rate rate ->
        int_of_float (1e9 *. float_of_int cfg.domains /. rate)
    in
    let next = ref (t0 + (pid * 1000)) in
    while not (Atomic.get stop) do
      let issue_t =
        match cfg.loop with
        | Closed -> now_ns ()
        | Open_rate _ ->
          while now_ns () < !next && not (Atomic.get stop) do
            Domain.cpu_relax ()
          done;
          !next
      in
      (if is_update () then begin
         incr seq;
         S.update h (sample_idx ()) ((pid * 1_000_000_000) + !seq);
         let d = now_ns () - issue_t in
         if issue_t >= warm_end then Histogram.record uh d
       end
       else begin
         (match cfg.scan_pattern with
         | Random_set ->
           for k = 0 to cfg.r - 1 do
             idxs.(k) <- sample_idx ()
           done
         | Window ->
           (* contiguous range read: the distribution picks the window
              base, the scan covers the next r components (mod m) *)
           let base = sample_idx () in
           for k = 0 to cfg.r - 1 do
             idxs.(k) <- (base + k) mod cfg.m
           done);
         ignore (S.scan h idxs);
         let d = now_ns () - issue_t in
         if issue_t >= warm_end then Histogram.record sh d
       end);
      if interval > 0 then next := !next + interval
    done;
    (uh, sh)
  in
  let doms = Array.init cfg.domains (fun pid -> Domain.spawn (worker pid)) in
  Unix.sleepf (cfg.warmup_s +. cfg.duration_s);
  Atomic.set stop true;
  let t_stop = now_ns () in
  let parts = Array.map Domain.join doms in
  let update_lat = Histogram.create () and scan_lat = Histogram.create () in
  Array.iter
    (fun (uh, sh) ->
      Histogram.merge_into ~dst:update_lat uh;
      Histogram.merge_into ~dst:scan_lat sh)
    parts;
  {
    elapsed_s = float_of_int (t_stop - max warm_end t0) /. 1e9;
    updates = Histogram.count update_lat;
    scans = Histogram.count scan_lat;
    update_lat;
    scan_lat;
  }

(* ---- reporting ---- *)

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipfian theta -> Printf.sprintf "zipf(%.2f)" theta

let mix_to_string = function
  | Ratio p -> Printf.sprintf "%.0f:%.0f" (100.0 *. p) (100.0 *. (1.0 -. p))
  | Dedicated { updaters; scanners } ->
    Printf.sprintf "%du+%ds" updaters scanners

let loop_to_string = function
  | Closed -> "closed"
  | Open_rate r -> Printf.sprintf "open@%.0f/s" r

let scan_pattern_to_string = function
  | Random_set -> "random"
  | Window -> "window"

let json_fields ~impl cfg rep =
  let h_fields prefix h =
    [
      (prefix ^ "_p50_ns", string_of_int (Histogram.percentile h 50.0));
      (prefix ^ "_p90_ns", string_of_int (Histogram.percentile h 90.0));
      (prefix ^ "_p99_ns", string_of_int (Histogram.percentile h 99.0));
      (prefix ^ "_p999_ns", string_of_int (Histogram.percentile h 99.9));
      (prefix ^ "_max_ns", string_of_int (Histogram.max_value h));
      (prefix ^ "_mean_ns", Printf.sprintf "%.1f" (Histogram.mean h));
    ]
  in
  [
    ("impl", Printf.sprintf "%S" impl);
    ("m", string_of_int cfg.m);
    ("r", string_of_int cfg.r);
    ("domains", string_of_int cfg.domains);
    ("dist", Printf.sprintf "%S" (dist_to_string cfg.dist));
    ("mix", Printf.sprintf "%S" (mix_to_string cfg.mix));
    ("loop", Printf.sprintf "%S" (loop_to_string cfg.loop));
    ("scan_pattern", Printf.sprintf "%S" (scan_pattern_to_string cfg.scan_pattern));
    ("warmup_s", Printf.sprintf "%.3f" cfg.warmup_s);
    ("duration_s", Printf.sprintf "%.3f" cfg.duration_s);
    ("elapsed_s", Printf.sprintf "%.3f" rep.elapsed_s);
    ("updates", string_of_int rep.updates);
    ("scans", string_of_int rep.scans);
    ("throughput_ops_s", Printf.sprintf "%.0f" (throughput rep));
  ]
  @ h_fields "update" rep.update_lat
  @ h_fields "scan" rep.scan_lat
