(** Resilient serving: deadlines, backoff, circuit breakers and
    self-healing shards over sharded partial snapshots.

    [Make (M) (S) (R) (C)] supervises a {!Sharded}-style construction —
    [C.shards] instances of the primary snapshot implementation [S] over
    memory backend [M], epoch-validated cross-shard scans — and makes
    every operation {e bounded and honest}: an operation either completes
    with its full guarantee or returns an explicit, machine-readable
    account of what it could not guarantee.  It never retries without
    bound and never silently serves a skewed cross-shard view.

    {2 Deadlines and backoff}

    A validated cross-shard scan runs agreement rounds exactly like
    {!Sharded}, but under a round budget [C.max_rounds].  Between failed
    rounds it backs off — bounded exponential delay with deterministic
    (pid, attempt)-derived jitter, spent as reads of a scratch cell so
    each delay unit is a scheduling point in the simulator and a cheap
    spin on real atomics.  When the budget is exhausted the scan returns
    [Degraded] carrying the last round's values (each shard's fragment is
    still an atomic sub-snapshot), the suspect shards, and the
    [(component, epoch)] pairs that failed validation.  See
    docs/MODEL.md §11 for the exact degradation contract.

    {2 Circuit breakers}

    Each shard has a closed / open / half-open breaker fed by three
    evidence streams: hardened-register fault detections
    ({!Psnap_mem.Hardened.stats} deltas sampled around each sub-scan),
    validation-failure attribution from budget-exhausted scans, and
    stuck-epoch detections from updates.  [C.breaker_threshold]
    consecutive strikes open the circuit; while open, scans read the
    shard once, {e unvalidated}, report it in [Degraded.suspects], and do
    not burn validation rounds on it — a stalled or fault-saturated shard
    cannot drag down scans of healthy shards.  After
    [C.breaker_cooldown] scans the breaker half-opens and probes:
    [C.probe_successes] consecutive validated scans re-close it; one
    failed probe reopens it.

    {2 Self-healing}

    A stuck epoch cell (fetch&add that stopped adding) is detected by
    non-monotone epoch draws and triggers a heal: the shard pointer is
    CASed from [Active] to [Sealed] (updaters that see [Sealed] back off
    and help), the healer waits — boundedly, [C.heal_quiesce] probes —
    for in-flight updates to drain, takes one final sub-scan of the
    quiescent instance, rebuilds it on the {e replacement} implementation
    [R] (typically hardened, replicated memory) with a fresh epoch cell,
    and CASes the new instance in with a bumped generation.  Handles
    re-resolve their per-shard sub-handles by generation, so the swap is
    transparent.  If quiescence is never reached (e.g. an updater crashed
    inside its window) the heal {e aborts} and restores the old instance:
    bounded failure, not an unbounded wait.

    Correctness of the swap rests on the inflight protocol: an update
    holds a per-shard inflight token from {e before} it reads the shard
    pointer until {e after} it installs its value, so [Sealed] + counter
    at zero implies no update can ever land on the old instance again,
    and the final sub-scan captures the shard's exact last state.

    Updates remain bounded: even with a stuck epoch cell the update
    installs immediately — tags are [(epoch, nonce)] pairs and the nonce
    alone makes every tag unique, so validation never mistakes a changed
    component for an unchanged one even while epochs repeat.

    All supervision events are counted in {!Psnap_sched.Metrics}
    ([serving]): rounds, retries, degraded scans, backoff steps, breaker
    transitions, heals, stuck epochs. *)

module type CONFIG = sig
  val shards : int
  (** Number of shards (clamped to [m] at [create]). *)

  val partition : [ `Round_robin | `Range ]
  (** Component placement, as in {!Sharded.CONFIG}. *)

  val max_rounds : int
  (** Scan round budget, ≥ 2.  A validated cross-shard scan runs at most
      this many rounds before returning [Degraded]. *)

  val backoff_base : int
  (** Backoff delay after the first failed validation round, in scratch
      reads (= simulator steps).  [0] disables backoff. *)

  val backoff_max : int
  (** Cap on the exponential delay (before jitter, which adds at most the
      same amount again). *)

  val breaker_threshold : int
  (** Consecutive strikes that open a shard's circuit. *)

  val breaker_cooldown : int
  (** Scans touching an open shard before its breaker half-opens. *)

  val probe_successes : int
  (** Consecutive validated scans that re-close a half-open breaker. *)

  val heal_quiesce : int
  (** Inflight-counter probes a healer spends waiting for quiescence
      before aborting the heal, ≥ 1. *)
end

module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (R : Psnap_snapshot.Snapshot_intf.S)
    (C : CONFIG) : sig
  type 'a t

  type 'a handle

  type breaker_state = Closed | Open | Half_open

  type 'a outcome =
    | Atomic of 'a array
        (** fully validated: linearizable across all touched shards *)
    | Degraded of {
        values : 'a array;
            (** best-effort view: every shard's fragment is individually
                an atomic sub-snapshot of that shard, but cross-shard
                consistency is NOT guaranteed *)
        suspects : int list;
            (** shards that were skipped (breaker open) or still failed
                validation when the round budget ran out *)
        failed : (int * int) list;
            (** [(component index, last observed epoch)] for each
                component that failed validation in the final round pair;
                empty when degradation is due to open breakers only *)
        rounds : int;  (** rounds actually spent *)
      }

  val name : string

  val create : n:int -> 'a array -> 'a t

  val handle : 'a t -> pid:int -> 'a handle

  val update : 'a handle -> int -> 'a -> unit
  (** Bounded: one inflight increment, one pointer read, one epoch draw,
      one [S.update]/[R.update], one decrement — retried only across a
      heal of the target shard, which itself is bounded. *)

  val scan_outcome : 'a handle -> int array -> 'a outcome
  (** The honest scan: [Atomic] or an explicit [Degraded] account.  At
      most [C.max_rounds] rounds.  Also recorded in
      {!Psnap_sched.Metrics} ([note_scan_rounds], [note_degraded_scan],
      [note_backoff]). *)

  val scan : 'a handle -> int array -> 'a array
  (** [scan_outcome] projected to values (the
      {!Psnap_snapshot.Snapshot_intf.S} shape); check
      [last_scan_degraded] to tell the outcomes apart. *)

  val last_scan_collects : 'a handle -> int

  val last_scan_rounds : 'a handle -> int
  (** Rounds spent by this handle's most recent scan (≤ [C.max_rounds]). *)

  val last_scan_degraded : 'a handle -> bool
  (** Whether this handle's most recent scan returned [Degraded]. *)

  val nshards : 'a t -> int
  (** Effective shard count ([min C.shards m]). *)

  val breaker_state : 'a t -> int -> breaker_state

  val force_open : 'a t -> int -> unit
  (** Open shard [s]'s breaker and pin it open (cooldown never elapses):
      for experiments that hold a circuit open for a whole run. *)

  val heal : 'a t -> pid:int -> int -> unit
  (** Seal shard [s] and drive a heal to completion or bounded abort.
      Performs shared-memory accesses: call only from inside a running
      process (in the simulator, inside [Sim.run]). *)

  val shard_gen : 'a t -> pid:int -> int -> int
  (** Shard [s]'s current generation (1 initially, +1 per completed
      heal).  One shared read. *)

  (** The plain snapshot face, for [S]-generic harnesses (the load
      generator, the benchmarks): [scan] returns values, with [Degraded]
      visible only through [last_scan_degraded] and the metrics
      counters.  Shares ['a t] and ['a handle] with the outer module, so
      [force_open] / [heal] / [breaker_state] apply to objects created
      through [Snap.create]. *)
  module Snap :
    Psnap_snapshot.Snapshot_intf.S
      with type 'a t = 'a t
       and type 'a handle = 'a handle
end
