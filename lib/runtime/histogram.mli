(** Log-bucketed latency histogram (HDR-style) for the serving layer.

    Non-negative integer samples (nanoseconds) are binned into buckets of
    geometrically growing width: small values are exact, larger ones are
    quantized with relative error at most 1/32.  Recording is a single
    unsynchronized array increment into a domain-private instance — the
    lock-free discipline is {e ownership}: one histogram per recording
    domain, merged after the domains join ({!merge} commutes and is
    associative, so the merged result is independent of domain count and
    join order). *)

type t

val create : unit -> t

(** [record t v] adds one sample.  Negative values clamp to 0. *)
val record : t -> int -> unit

val count : t -> int

(** Sum of all recorded samples (exact, not re-quantized). *)
val total : t -> int

(** Smallest / largest recorded sample; 0 when empty. *)
val min_value : t -> int

val max_value : t -> int

(** Exact arithmetic mean; 0.0 when empty. *)
val mean : t -> float

(** [percentile t p] — the value at percentile [p] (in [0..100], clamped):
    the representative value of the bucket holding the sample of rank
    [ceil (p/100 * count)], clamped to the observed [min..max] range (so a
    single-sample histogram reports that sample exactly, at every [p]).
    Quantization error is at most 1/32 relative.  0 when empty. *)
val percentile : t -> float -> int

(** Functional merge of two histograms (neither argument is modified). *)
val merge : t -> t -> t

(** In-place merge of [src] into [dst]. *)
val merge_into : dst:t -> t -> unit

(** Non-empty buckets as [(representative value, count)], ascending —
    for tests and debugging dumps. *)
val buckets : t -> (int * int) list

(**/**)

(** Exposed for the unit tests of the binning math. *)

val index_of : int -> int

val value_of : int -> int

val bucket_bounds : int -> int * int
