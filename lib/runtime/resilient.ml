(* Resilient serving: a supervision layer over sharded partial snapshots
   that makes every operation bounded and honest about degradation.

   See resilient.mli for the API contract and docs/MODEL.md §11 for the
   degradation semantics.  The construction mirrors Sharded's geometry
   (per-shard snapshot instances, epoch-validated cross-shard rounds) and
   adds three mechanisms on top:

   - scans carry a round budget with exponential backoff between failed
     validation rounds; on exhaustion they return [Degraded] instead of
     retrying forever;
   - each shard has a circuit breaker (closed / open / half-open) fed by
     hardened-register fault counters, validation-failure attribution and
     stuck-epoch detection; open shards are read once, unvalidated, and
     flagged;
   - a wounded shard is healed: sealed against updates, drained to
     quiescence, copied by one final sub-scan, rebuilt on the replacement
     implementation [R] (hardened memory), and swapped in by CAS.

   Values are stored as [((epoch, nonce), v)].  Epochs come from a
   per-shard, per-generation fetch&increment cell and give scans their
   ABA-free validation (as in Sharded); the nonce is drawn from a plain
   OCaml counter and makes tags unique even when the epoch cell is stuck
   (a stuck fetch&add returns the same epoch twice — the nonce keeps the
   two updates distinguishable, so validation never silently accepts a
   changed component, and the non-monotone draw is itself the detector
   that triggers healing). *)

module Metrics = Psnap_sched.Metrics

module type CONFIG = sig
  val shards : int

  val partition : [ `Round_robin | `Range ]

  val max_rounds : int

  val backoff_base : int

  val backoff_max : int

  val breaker_threshold : int

  val breaker_cooldown : int

  val probe_successes : int

  val heal_quiesce : int
end

module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (R : Psnap_snapshot.Snapshot_intf.S)
    (C : CONFIG) =
struct
  let name =
    Printf.sprintf "resilient-%dx%s%s" C.shards S.name
      (match C.partition with `Round_robin -> "" | `Range -> "/range")

  (* Nonce source: a plain (step-free) OCaml counter, exactly like the
     hardened registers' tag nonces — supervisor bookkeeping, not shared
     algorithm state.  Under the cooperative simulator increments are
     atomic between scheduling points; under real domains they are
     unsynchronized, and a duplicated nonce merely weakens one validation
     comparison to epoch-only (Sharded's guarantee). *)
  let nonce_counter = ref 0

  let next_nonce () =
    incr nonce_counter;
    !nonce_counter

  type tag = int * int  (** (epoch, nonce) *)

  type 'a impl =
    | Prim of (tag * 'a) S.t  (** original shard instance *)
    | Healed of (tag * 'a) R.t  (** post-heal replacement instance *)

  type 'a shard_state = {
    gen : int;  (** generation: bumped by every completed heal *)
    impl : 'a impl;
    epoch : int M.ref_;  (** per-generation epoch source; a heal installs
                             a fresh cell, so a stuck one is left behind *)
  }

  (* The shard pointer.  Both constructors carry the same payload; the
     Sealed state is the heal protocol's write barrier: an updater that
     reads [Sealed] backs off (dropping its inflight token) and helps
     complete the heal.  Every transition installs a freshly allocated
     state record, so pointer CASes never suffer ABA. *)
  type 'a cell_state = Active of 'a shard_state | Sealed of 'a shard_state

  type breaker_state = Closed | Open | Half_open

  (* Supervisor-local bookkeeping (no shared-memory steps): breaker
     state machines are observability/routing hints, not part of the
     linearizability argument — scans of an open shard are still each an
     atomic fragment; the breaker only decides whether cross-shard
     validation includes the shard. *)
  type breaker = {
    mutable bstate : breaker_state;
    mutable strikes : int;  (** consecutive fault evidence while closed *)
    mutable cooldown : int;  (** touches left before open -> half-open *)
    mutable probes : int;  (** consecutive validated probes half-open *)
  }

  type 'a t = {
    ptrs : 'a cell_state M.ref_ array;
    inflight : int M.ref_ array;  (** updates inside their pointer-read ->
                                      install window, per shard *)
    scratch : int M.ref_;  (** backoff target: reads cost steps/yield *)
    breakers : breaker array;
    n : int;
    nshards : int;
    m : int;
    q : int;
    rem : int;
  }

  type 'a shard_handle = HP of (tag * 'a) S.handle | HR of (tag * 'a) R.handle

  type 'a handle = {
    t : 'a t;
    pid : int;
    cache : (int * 'a shard_handle) option array;
        (** per shard: handle for a given generation, rebuilt lazily after
            a heal swaps the instance *)
    last_epoch : int array;  (** newest epoch drawn per shard (this handle) *)
    last_gen : int array;
    stuck_reported : bool array;  (** one heal trigger per (shard, handle) *)
    mutable collects : int;
    mutable rounds : int;
    mutable degraded : bool;
  }

  type 'a outcome =
    | Atomic of 'a array
    | Degraded of {
        values : 'a array;
        suspects : int list;
        failed : (int * int) list;
        rounds : int;
      }

  (* ---- geometry (same placement functions as Sharded) ---- *)

  let locate t i =
    match C.partition with
    | `Round_robin -> (i mod t.nshards, i / t.nshards)
    | `Range ->
      let cut = t.rem * (t.q + 1) in
      if i < cut then (i / (t.q + 1), i mod (t.q + 1))
      else
        let j = i - cut in
        (t.rem + (j / t.q), j mod t.q)

  let shard_size t s =
    match C.partition with
    | `Round_robin -> (t.m - s + t.nshards - 1) / t.nshards
    | `Range -> if s < t.rem then t.q + 1 else t.q

  let create ~n init =
    let m = Array.length init in
    if m = 0 then invalid_arg "Resilient.create: empty";
    if C.shards < 1 then invalid_arg "Resilient.create: shards < 1";
    if C.max_rounds < 2 then invalid_arg "Resilient.create: max_rounds < 2";
    if C.heal_quiesce < 1 then invalid_arg "Resilient.create: heal_quiesce < 1";
    let nshards = min C.shards m in
    let q = m / nshards and rem = m mod nshards in
    let size s =
      match C.partition with
      | `Round_robin -> (m - s + nshards - 1) / nshards
      | `Range -> if s < rem then q + 1 else q
    in
    let global s j =
      match C.partition with
      | `Round_robin -> (j * nshards) + s
      | `Range ->
        if s < rem then (s * (q + 1)) + j
        else (rem * (q + 1)) + ((s - rem) * q) + j
    in
    let ptrs =
      Array.init nshards (fun s ->
          let sub =
            S.create ~n
              (Array.init (size s) (fun j -> ((0, 0), init.(global s j))))
          in
          (* drawn epochs start at 1: never collide with the initial 0 *)
          let epoch = M.make ~name:(Printf.sprintf "rshard%d.epoch" s) 1 in
          M.make
            ~name:(Printf.sprintf "rshard%d.ptr" s)
            (Active { gen = 1; impl = Prim sub; epoch }))
    in
    let inflight =
      Array.init nshards (fun s ->
          M.make ~name:(Printf.sprintf "rshard%d.inflight" s) 0)
    in
    {
      ptrs;
      inflight;
      scratch = M.make ~name:"resilient.backoff" 0;
      breakers =
        Array.init nshards (fun _ ->
            { bstate = Closed; strikes = 0; cooldown = 0; probes = 0 });
      n;
      nshards;
      m;
      q;
      rem;
    }

  let handle t ~pid =
    {
      t;
      pid;
      cache = Array.make t.nshards None;
      last_epoch = Array.make t.nshards (-1);
      last_gen = Array.make t.nshards 0;
      stuck_reported = Array.make t.nshards false;
      collects = 0;
      rounds = 0;
      degraded = false;
    }

  (* ---- circuit breakers ---- *)

  let strike t s =
    let b = t.breakers.(s) in
    match b.bstate with
    | Open -> ()
    | Half_open ->
      (* a failed probe reopens immediately *)
      b.bstate <- Open;
      b.cooldown <- C.breaker_cooldown;
      b.probes <- 0;
      Metrics.note_breaker `Open
    | Closed ->
      b.strikes <- b.strikes + 1;
      if b.strikes >= C.breaker_threshold then begin
        b.bstate <- Open;
        b.cooldown <- C.breaker_cooldown;
        Metrics.note_breaker `Open
      end

  (* A fully validated scan that included shard [s]: clears consecutive
     strikes; counts as a successful probe when half-open. *)
  let breaker_ok t s =
    let b = t.breakers.(s) in
    match b.bstate with
    | Closed -> b.strikes <- 0
    | Half_open ->
      b.probes <- b.probes + 1;
      if b.probes >= C.probe_successes then begin
        b.bstate <- Closed;
        b.strikes <- 0;
        b.probes <- 0;
        Metrics.note_breaker `Close
      end
    | Open -> ()

  (* Called once per scan per touched shard: ticks the open-state cooldown
     and says whether THIS scan must skip validating the shard. *)
  let breaker_skips t s =
    let b = t.breakers.(s) in
    match b.bstate with
    | Closed -> false
    | Half_open -> false
    | Open ->
      if b.cooldown > 0 then b.cooldown <- b.cooldown - 1;
      if b.cooldown <= 0 then begin
        (* next scan probes it half-open; this one still skips *)
        b.bstate <- Half_open;
        b.probes <- 0;
        Metrics.note_breaker `Half_open
      end;
      true

  let reclose t s =
    let b = t.breakers.(s) in
    if b.bstate <> Closed then Metrics.note_breaker `Close;
    b.bstate <- Closed;
    b.strikes <- 0;
    b.probes <- 0;
    b.cooldown <- 0

  (* ---- self-healing ---- *)

  (* Completes (or aborts) a heal whose shard pointer is Sealed.  Any
     process may help; all transitions race through CAS on the physically
     unique sealed state, so exactly one helper's outcome lands.

     Quiescence: every update holds an inflight token from before its
     pointer read until after its install, so once the counter reads 0
     with the pointer Sealed, no update can ever land on the old instance
     again (a later updater sees Sealed and backs off).  The final
     sub-scan below therefore captures the shard's exact final state.  If
     the counter never drains within the budget — an updater crashed
     inside its window, or the system is overloaded — the heal is
     aborted and the old instance restored: honest failure over an
     unbounded wait. *)
  let complete_heal t ~pid s =
    match M.read t.ptrs.(s) with
    | Active _ -> ()
    | Sealed st as sealed ->
      let budget = ref C.heal_quiesce in
      let quiet = ref false in
      while (not !quiet) && !budget > 0 do
        decr budget;
        if M.read t.inflight.(s) = 0 then quiet := true
      done;
      if not !quiet then begin
        if M.cas t.ptrs.(s) ~expected:sealed ~desired:(Active st) then
          Metrics.note_heal `Aborted
      end
      else begin
        let idxs = Array.init (shard_size t s) Fun.id in
        let rows =
          match st.impl with
          | Prim p -> S.scan (S.handle p ~pid) idxs
          | Healed r -> R.scan (R.handle r ~pid) idxs
        in
        let maxe = Array.fold_left (fun a ((e, _), _) -> max a e) 0 rows in
        let epoch =
          M.make ~name:(Printf.sprintf "rshard%d.epoch" s) (maxe + 1)
        in
        let st' = Active { gen = st.gen + 1; impl = Healed (R.create ~n:t.n rows); epoch } in
        if M.cas t.ptrs.(s) ~expected:sealed ~desired:st' then begin
          reclose t s;
          Metrics.note_heal `Completed
        end
      end

  (* Seal shard [s] and drive the heal to completion (or abort).  Raced
     seals help whatever state they find. *)
  let request_heal t ~pid s =
    (match M.read t.ptrs.(s) with
    | Sealed _ -> ()
    | Active _ as cur -> (
      match cur with
      | Active st ->
        if M.cas t.ptrs.(s) ~expected:cur ~desired:(Sealed st) then
          Metrics.note_heal `Started
      | Sealed _ -> ()));
    complete_heal t ~pid s

  (* Current Active state of a shard, helping any in-progress heal.
     Bounded in practice: complete_heal always leaves the pointer Active
     (swap or abort), and a re-seal needs a fresh fault trigger. *)
  let[@psnap.bounded
       "complete_heal leaves the pointer Active (swap or abort); re-seals \
        require a fresh fault trigger, charged to the fault budget"] rec
      active_state t ~pid s =
    match M.read t.ptrs.(s) with
    | Active st -> st
    | Sealed _ ->
      complete_heal t ~pid s;
      active_state t ~pid s

  (* ---- handles per (shard, generation) ---- *)

  let handle_for h s (st : 'a shard_state) =
    match h.cache.(s) with
    | Some (g, hd) when g = st.gen -> hd
    | _ ->
      let hd =
        match st.impl with
        | Prim p -> HP (S.handle p ~pid:h.pid)
        | Healed r -> HR (R.handle r ~pid:h.pid)
      in
      h.cache.(s) <- Some (st.gen, hd);
      hd

  (* ---- update ---- *)

  let[@psnap.bounded
       "retries only while the shard is Sealed; complete_heal unseals it \
        (swap or abort) before the retry"] rec update h i v =
    let t = h.t in
    if i < 0 || i >= t.m then invalid_arg "Resilient.update: index";
    let s, j = locate t i in
    ignore (M.fetch_and_add t.inflight.(s) 1);
    match M.read t.ptrs.(s) with
    | Sealed _ ->
      (* a heal is draining this shard: drop our token so it can reach
         quiescence, help finish, then retry on the new instance *)
      ignore (M.fetch_and_add t.inflight.(s) (-1));
      complete_heal t ~pid:h.pid s;
      update h i v
    | Active st ->
      let e = M.fetch_and_add st.epoch 1 in
      (* Epoch draws are strictly increasing per generation unless the
         cell stopped applying adds (Stuck_cell).  The nonce keeps the
         update's tag unique regardless, so we install first — the object
         stays linearizable — and trigger healing after releasing our
         inflight token (healing waits for quiescence, which includes
         us). *)
      let stuck = st.gen = h.last_gen.(s) && e <= h.last_epoch.(s) in
      h.last_gen.(s) <- st.gen;
      h.last_epoch.(s) <- max e h.last_epoch.(s);
      (match handle_for h s st with
      | HP hp -> S.update hp j ((e, next_nonce ()), v)
      | HR hr -> R.update hr j ((e, next_nonce ()), v));
      ignore (M.fetch_and_add t.inflight.(s) (-1));
      if stuck then begin
        Metrics.note_stuck_epoch ();
        strike t s;
        if not h.stuck_reported.(s) then begin
          h.stuck_reported.(s) <- true;
          request_heal t ~pid:h.pid s
        end
      end

  (* ---- scan ---- *)

  (* Deterministic bounded exponential backoff: [steps] reads of the
     scratch cell — each a scheduling point in the simulator (other
     processes run; the disagreeing update can finish) and a cheap spin on
     real atomics.  Jitter derives from (pid, attempt), so concurrent
     scanners de-synchronize without any randomness to replay. *)
  let backoff h attempt =
    if C.backoff_base > 0 then begin
      let d = min C.backoff_max (C.backoff_base lsl min attempt 16) in
      let d = max 1 d in
      let steps = d + (((h.pid * 31) + (attempt * 17)) mod (d + 1)) in
      Metrics.note_backoff steps;
      for _ = 1 to steps do
        ignore (M.read h.t.scratch)
      done
    end

  let hardened_evidence () =
    let s = Psnap_mem.Hardened.stats () in
    s.Psnap_mem.Hardened.corrupt_detected + s.stale_detected + s.lost_detected
    + s.retries

  let scan_outcome h idxs =
    let t = h.t in
    let len = Array.length idxs in
    h.collects <- 0;
    h.rounds <- 0;
    h.degraded <- false;
    if len = 0 then Atomic [||]
    else begin
      Array.iter
        (fun i ->
          if i < 0 || i >= t.m then invalid_arg "Resilient.scan: index")
        idxs;
      (* group requested components by shard (same layout as Sharded) *)
      let locs = Array.make t.nshards [] in
      for k = len - 1 downto 0 do
        let s, j = locate t idxs.(k) in
        locs.(s) <- (j, k) :: locs.(s)
      done;
      let touched = ref [] in
      for s = t.nshards - 1 downto 0 do
        if locs.(s) <> [] then touched := s :: !touched
      done;
      let touched = Array.of_list !touched in
      let nt = Array.length touched in
      let sub_idx =
        Array.map (fun s -> Array.of_list (List.map fst locs.(s))) touched
      in
      let sub_pos =
        Array.map (fun s -> Array.of_list (List.map snd locs.(s))) touched
      in
      (* open circuits: their sub-scan is taken once, unvalidated; the
         result is a per-shard-atomic fragment and the scan is Degraded *)
      let skip = Array.map (fun s -> breaker_skips t s) touched in
      let n_validated = ref 0 in
      Array.iter (fun sk -> if not sk then incr n_validated) skip;
      let open_suspects =
        Array.to_list touched
        |> List.filteri (fun k _ -> skip.(k))
      in
      let round () =
        h.rounds <- h.rounds + 1;
        Array.init nt (fun k ->
            let s = touched.(k) in
            let ev0 = hardened_evidence () in
            let st = active_state t ~pid:h.pid s in
            let rows =
              match handle_for h s st with
              | HP hp ->
                let r = S.scan hp sub_idx.(k) in
                h.collects <- h.collects + S.last_scan_collects hp;
                r
              | HR hr ->
                let r = R.scan hr sub_idx.(k) in
                h.collects <- h.collects + R.last_scan_collects hr;
                r
            in
            (* hardened detections that surfaced during this sub-scan are
               attributed to this shard — a heuristic (other processes run
               concurrently), but fault-saturated shards dominate the
               deltas they sit on *)
            if hardened_evidence () > ev0 then strike t s;
            rows)
      in
      let emit rows =
        let _, v0 = rows.(0).(0) in
        let out = Array.make len v0 in
        for k = 0 to nt - 1 do
          let pos = sub_pos.(k) and row = rows.(k) in
          for p = 0 to Array.length row - 1 do
            out.(pos.(p)) <- snd row.(p)
          done
        done;
        out
      in
      (* shards (by position k) whose tags changed between two rounds —
         only validated shards participate *)
      let disagreeing prev cur =
        let dis = ref [] in
        for k = nt - 1 downto 0 do
          if not skip.(k) then begin
            let pk = prev.(k) and ck = cur.(k) in
            let differs = ref false in
            for p = 0 to Array.length pk - 1 do
              if fst pk.(p) <> fst ck.(p) then differs := true
            done;
            if !differs then dis := k :: !dis
          end
        done;
        !dis
      in
      (* components that failed validation, with the epoch last seen *)
      let failed_of prev cur dis =
        List.concat_map
          (fun k ->
            let pk = prev.(k) and ck = cur.(k) and pos = sub_pos.(k) in
            let acc = ref [] in
            for p = Array.length pk - 1 downto 0 do
              if fst pk.(p) <> fst ck.(p) then
                acc := (idxs.(pos.(p)), fst (fst ck.(p))) :: !acc
            done;
            !acc)
          dis
      in
      let finish outcome =
        Metrics.note_scan_rounds h.rounds;
        (match outcome with
        | Degraded _ ->
          h.degraded <- true;
          Metrics.note_degraded_scan ()
        | Atomic _ -> ());
        outcome
      in
      if !n_validated >= 2 then begin
        (* epoch-validated double collect over whole rounds, with a round
           budget: C.max_rounds rounds in total, then Degraded *)
        let[@psnap.bounded
             "at most C.max_rounds rounds: every iteration increments \
              h.rounds and the budget check precedes the recursion"] rec
            settle prev =
          let cur = round () in
          match disagreeing prev cur with
          | [] ->
            Array.iteri (fun k s -> if not skip.(k) then breaker_ok t s) touched;
            if open_suspects = [] then finish (Atomic (emit cur))
            else
              finish
                (Degraded
                   {
                     values = emit cur;
                     suspects = open_suspects;
                     failed = [];
                     rounds = h.rounds;
                   })
          | dis when h.rounds >= C.max_rounds ->
            let suspects = List.map (fun k -> touched.(k)) dis in
            List.iter (fun s -> strike t s) suspects;
            finish
              (Degraded
                 {
                   values = emit cur;
                   suspects = open_suspects @ suspects;
                   failed = failed_of prev cur dis;
                   rounds = h.rounds;
                 })
          | _ ->
            backoff h (h.rounds - 1);
            settle cur
        in
        settle (round ())
      end
      else begin
        (* 0 or 1 validated shards: a single round suffices — each
           sub-scan is linearizable on its own, so one validated shard
           needs no cross-round agreement (and its trivially successful
           validation still counts as a probe) while open shards never
           get one *)
        let cur = round () in
        Array.iteri (fun k s -> if not skip.(k) then breaker_ok t s) touched;
        if open_suspects = [] then finish (Atomic (emit cur))
        else
          finish
            (Degraded
               {
                 values = emit cur;
                 suspects = open_suspects;
                 failed = [];
                 rounds = h.rounds;
               })
      end
    end

  let scan h idxs =
    match scan_outcome h idxs with
    | Atomic vs -> vs
    | Degraded { values; _ } -> values

  let last_scan_collects h = h.collects

  let last_scan_rounds h = h.rounds

  let last_scan_degraded h = h.degraded

  (* ---- introspection / administration ---- *)

  let nshards t = t.nshards

  let breaker_state t s = t.breakers.(s).bstate

  let force_open t s =
    let b = t.breakers.(s) in
    if b.bstate <> Open then Metrics.note_breaker `Open;
    b.bstate <- Open;
    (* effectively never half-opens on its own: for experiments that hold
       a circuit open for a whole run *)
    b.cooldown <- max_int

  let shard_gen t ~pid:_ s =
    match M.read t.ptrs.(s) with
    | Active st | Sealed st -> st.gen

  let heal = request_heal

  (* The plain Snapshot_intf face: Degraded scans return their fragment
     values like any other scan, flagged only through the metrics counters
     and [last_scan_degraded].  This is what the load generator and other
     S-generic harnesses drive; correctness harnesses that must tell the
     two outcomes apart use [scan_outcome] directly. *)
  module Snap = struct
    type nonrec 'a t = 'a t

    type nonrec 'a handle = 'a handle

    let name = name

    let create = create

    let handle = handle

    let update = update

    let scan = scan

    let last_scan_collects = last_scan_collects
  end
end
