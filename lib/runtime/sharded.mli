(** Sharded partial snapshot objects: the serving-layer construction that
    turns Theorem 3's locality into horizontal scale.

    [Make (M) (S) (C)] partitions an [m]-component vector across
    [C.shards] independent instances of any partial snapshot [S] built
    over the same memory backend [M].  Updates route to one shard; a
    cross-shard [scan] runs per-shard {e partial} scans, so by the paper's
    locality property (Theorem 3: a partial scan of [r] components costs
    [O(r²)] steps independent of [m], [n] and contention) the cost of a
    sharded scan depends only on the components requested, never on the
    total vector size — which is exactly what makes sharding pay: each
    shard also gets its own announcement structures and active set, so
    updaters only ever help scanners of their own shard.

    {2 Cross-shard atomicity}

    Per-shard sub-scans are individually linearizable, but a multi-shard
    scan could otherwise observe shard A before an update [u_A] and shard
    B after a later update [u_B] — a cut no single linearization point
    explains.  [`Validated] mode closes this with an epoch-validated
    double collect:

    - every shard carries an epoch source, bumped with a wait-free
      fetch&increment by each update, and the update installs the pair
      [(epoch, value)] into its shard {e atomically} (it is one [S.update]
      of the pair);
    - a scan repeats rounds of per-shard sub-scans until two {e
      consecutive} rounds return identical epochs for every requested
      component, then returns the last round's values.

    Epochs are unique per shard, so equal epochs across two rounds mean
    the component did not change between the two sub-scans that read it
    (no ABA).  Every round-[k] sub-scan precedes every round-[k+1]
    sub-scan, so each touched shard is provably constant over an interval
    containing the instant between the two rounds — the whole scan
    linearizes there.  Storing the epoch {e inside} the shard is
    essential: an epoch in a separate register, bumped before or after
    the data write, lets a slow writer place its write inside the scan's
    validation window undetected (docs/MODEL.md §10 gives the
    counterexample).

    Updates stay wait-free (one fetch&increment plus one [S.update]).
    Validated scans are {e lock-free}, not wait-free: a retry happens
    only when a requested component actually changed between rounds, so
    someone else completed an update — and a crashed updater cannot wedge
    the loop, because an interrupted update either installed its epoch or
    never will.  This is the same guarantee-for-cost trade as the
    helping-free [Snapshot.Nonblocking] baseline, bought per scan width
    [r], not per object size [m].

    {2 Relaxed mode}

    [`Relaxed] skips validation: one round, no retries, wait-free if [S]
    is.  Each shard's fragment is still an atomic sub-snapshot, but the
    combined view is {e not} linearizable across shards (reads within one
    shard are mutually consistent; reads from different shards may be
    skewed).  Appropriate when every scan's index set stays inside one
    shard — then it {e is} linearizable — or when per-shard consistency
    is all the application needs (e.g. per-shard aggregation). *)

module type CONFIG = sig
  val shards : int
  (** Number of shards (clamped to [m] at [create], so no shard is
      empty). *)

  val partition : [ `Round_robin | `Range ]
  (** Component placement: [`Round_robin] stripes component [i] to shard
      [i mod shards] (spreads hot low-numbered keys); [`Range] assigns
      contiguous blocks of [m / shards] components (preserves locality of
      range scans: a narrow range scan touches one shard). *)

  val mode : [ `Validated | `Relaxed ]
  (** Cross-shard scan consistency; see above. *)
end

(** The result is a full {!Psnap_snapshot.Snapshot_intf.S}: it drops into
    every existing harness — the simulator workloads, the checkers, the
    load generator — exactly like a flat instance.
    [last_scan_collects] reports the sub-scan collects summed over every
    round of the most recent scan, so validation retries show up in the
    collect statistics.  Every scan also reports its round count through
    [Psnap_sched.Metrics.note_scan_rounds], so validation retry rates are
    visible in campaign summaries without threading handles around. *)
module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (C : CONFIG) : sig
  include Psnap_snapshot.Snapshot_intf.S

  val last_scan_rounds : 'a handle -> int
  (** Validation rounds of this handle's most recent [scan] (1 for relaxed
      or single-shard scans; ≥ 2 for validated cross-shard scans, where
      every round beyond the second is a retry forced by a concurrent
      update). *)
end
