(* Log-bucketed latency histogram (HDR-style), the observability primitive
   of the serving layer.

   Values (nanoseconds, non-negative ints) are binned into buckets whose
   width grows geometrically: values below [2 * sub_count] are exact, and
   each octave above is split into [sub_count] linear sub-buckets, so the
   relative quantization error is bounded by 1/sub_count everywhere.  With
   sub_count = 32 the whole 62-bit range needs < 2k buckets.

   Concurrency model: a histogram is a plain record owned by one domain —
   recording is a single unsynchronized array increment (no CAS, no
   contention, nothing for other domains to wait on).  Each load-generator
   domain records into its own instance and the driver merges them after
   the domains have joined; merging commutes, so per-domain recording plus
   a join-time merge is equivalent to one shared lock-free histogram
   without paying for cross-domain cache traffic on the hot path. *)

let sub_bits = 5

let sub_count = 1 lsl sub_bits (* 32 *)

(* Bit length of [v] (0 for 0): position of the highest set bit + 1. *)
let bit_length v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

(* Buckets [0, 2*sub_count) are exact.  For larger [v] with top bit at
   position [sub_bits + o + 1], the top [sub_bits + 1] bits select the
   bucket: index = sub_count * o + (v lsr o), which is continuous across
   octave boundaries. *)
let index_of v =
  let v = if v < 0 then 0 else v in
  if v < 2 * sub_count then v
  else
    let o = bit_length v - 1 - sub_bits in
    (sub_count * o) + (v lsr o)

(* Inverse: the lowest value mapping to bucket [i], and the bucket width. *)
let bucket_bounds i =
  if i < 2 * sub_count then (i, 1)
  else
    let o = (i / sub_count) - 1 in
    let s = i - (sub_count * o) in
    (s lsl o, 1 lsl o)

(* Representative value reported for a bucket: its midpoint (exact for the
   unit-width buckets). *)
let value_of i =
  let lo, w = bucket_bounds i in
  lo + (w asr 1)

let n_buckets = index_of max_int + 1

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  counts : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = 0; counts = Array.make n_buckets 0 }

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count

let total t = t.sum

let min_value t = if t.count = 0 then 0 else t.min_v

let max_value t = t.max_v

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let merge_into ~dst src =
  Array.iteri (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    (* clamp the bucket midpoint to the observed range, so single-sample
       and extreme percentiles report exact recorded values *)
    let v = value_of (!i - 1) in
    if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v
  end

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (value_of i, t.counts.(i)) :: !acc
  done;
  !acc
