(* Sharded partial snapshot: partition m components across independent
   snapshot instances, with epoch-validated cross-shard scans.

   See sharded.mli for the atomicity argument and docs/MODEL.md §10 for
   why a separate per-shard epoch *cell* read around the sub-scans would
   be unsound (a writer suspended between its epoch bump and its data
   write masks itself) — the epoch here is installed *inside* the shard,
   atomically with the value, so the per-shard sub-scan reads data and
   version information in one linearizable operation. *)

module type CONFIG = sig
  val shards : int

  val partition : [ `Round_robin | `Range ]

  val mode : [ `Validated | `Relaxed ]
end

module Make
    (M : Psnap_mem.Mem_intf.S)
    (S : Psnap_snapshot.Snapshot_intf.S)
    (C : CONFIG) =
struct
  let relaxed = C.mode = `Relaxed

  let name =
    Printf.sprintf "sharded-%dx%s%s%s" C.shards S.name
      (match C.partition with `Round_robin -> "" | `Range -> "/range")
      (if relaxed then "/relaxed" else "")

  type 'a t = {
    sub : (int * 'a) S.t array;  (** per-shard instances storing
                                     (epoch, value) pairs *)
    epochs : int M.ref_ array;  (** per-shard epoch source: every update
                                    draws a fresh shard-unique epoch by
                                    fetch&increment *)
    nshards : int;  (** [min C.shards m]: no shard is ever empty *)
    m : int;
    q : int;  (** range partition: base block size [m / nshards] *)
    rem : int;  (** range partition: the first [rem] shards get [q+1] *)
  }

  type 'a handle = {
    t : 'a t;
    hs : (int * 'a) S.handle array;
    mutable collects : int;
    mutable rounds : int;  (** validation rounds of the most recent scan *)
  }

  (* component i -> (shard, local index) *)
  let locate t i =
    match C.partition with
    | `Round_robin -> (i mod t.nshards, i / t.nshards)
    | `Range ->
      let cut = t.rem * (t.q + 1) in
      if i < cut then (i / (t.q + 1), i mod (t.q + 1))
      else
        let j = i - cut in
        (t.rem + (j / t.q), j mod t.q)

  let create ~n init =
    let m = Array.length init in
    if m = 0 then invalid_arg "Sharded.create: empty";
    if C.shards < 1 then invalid_arg "Sharded.create: shards < 1";
    let nshards = min C.shards m in
    let q = m / nshards and rem = m mod nshards in
    let size s =
      match C.partition with
      | `Round_robin -> (m - s + nshards - 1) / nshards
      | `Range -> if s < rem then q + 1 else q
    in
    (* inverse of [locate]: the global index of shard [s]'s slot [j] *)
    let global s j =
      match C.partition with
      | `Round_robin -> (j * nshards) + s
      | `Range ->
        if s < rem then (s * (q + 1)) + j
        else (rem * (q + 1)) + ((s - rem) * q) + j
    in
    let sub =
      Array.init nshards (fun s ->
          S.create ~n (Array.init (size s) (fun j -> (0, init.(global s j)))))
    in
    (* drawn epochs start at 1, so they never collide with the initial 0 *)
    let epochs =
      Array.init nshards (fun s ->
          M.make ~name:(Printf.sprintf "shard%d.epoch" s) 1)
    in
    { sub; epochs; nshards; m; q; rem }

  let handle t ~pid =
    {
      t;
      hs = Array.map (fun st -> S.handle st ~pid) t.sub;
      collects = 0;
      rounds = 0;
    }

  let update h i v =
    let t = h.t in
    if i < 0 || i >= t.m then invalid_arg "Sharded.update: index";
    let s, j = locate t i in
    let e = M.fetch_and_add t.epochs.(s) 1 in
    S.update h.hs.(s) j (e, v)

  let scan h idxs =
    let t = h.t in
    let len = Array.length idxs in
    h.collects <- 0;
    h.rounds <- 0;
    if len = 0 then [||]
    else begin
      Array.iter
        (fun i -> if i < 0 || i >= t.m then invalid_arg "Sharded.scan: index")
        idxs;
      (* group the requested components by shard, remembering each one's
         slot in the output vector *)
      let locs = Array.make t.nshards [] in
      for k = len - 1 downto 0 do
        let s, j = locate t idxs.(k) in
        locs.(s) <- (j, k) :: locs.(s)
      done;
      let touched = ref [] in
      for s = t.nshards - 1 downto 0 do
        if locs.(s) <> [] then touched := s :: !touched
      done;
      let touched = Array.of_list !touched in
      let nt = Array.length touched in
      let sub_idx =
        Array.map (fun s -> Array.of_list (List.map fst locs.(s))) touched
      in
      let sub_pos =
        Array.map (fun s -> Array.of_list (List.map snd locs.(s))) touched
      in
      (* one round: a partial scan of every touched shard.  Each sub-scan
         is linearizable on its own; rounds execute sequentially. *)
      let round () =
        h.rounds <- h.rounds + 1;
        Array.init nt (fun k ->
            let r = S.scan h.hs.(touched.(k)) sub_idx.(k) in
            h.collects <- h.collects + S.last_scan_collects h.hs.(touched.(k));
            r)
      in
      (* epochs identify updates uniquely per shard, so equal epoch
         vectors across two consecutive rounds mean no touched component
         changed between the two rounds' sub-scans (no ABA). *)
      let agree a b =
        let ok = ref true in
        for k = 0 to nt - 1 do
          let ak = a.(k) and bk = b.(k) in
          for p = 0 to Array.length ak - 1 do
            if fst ak.(p) <> fst bk.(p) then ok := false
          done
        done;
        !ok
      in
      let emit rows =
        let _, v0 = rows.(0).(0) in
        let out = Array.make len v0 in
        for k = 0 to nt - 1 do
          let pos = sub_pos.(k) and row = rows.(k) in
          for p = 0 to Array.length row - 1 do
            out.(pos.(p)) <- snd row.(p)
          done
        done;
        out
      in
      let out =
        if relaxed || nt = 1 then
          (* a single sub-scan is linearizable on its own: scans that stay
             inside one shard (the common case under range partitioning
             with window workloads) need no validation round *)
          emit (round ())
        else begin
          (* sliding double collect over whole rounds: retry costs one
             extra round, and only when some touched component really
             changed — lock-free, and never stuck behind a crashed updater
             (a crashed update either installed its epoch or never will;
             neither makes consecutive rounds disagree forever). *)
          let rec settle prev =
            let cur = round () in
            if agree prev cur then emit cur else settle cur
          in
          settle (round ())
        end
      in
      Psnap_sched.Metrics.note_scan_rounds h.rounds;
      out
    end

  let last_scan_collects h = h.collects

  let last_scan_rounds h = h.rounds
end
