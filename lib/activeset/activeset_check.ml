(* Compile-time checks that both implementations satisfy the signature. *)
module _ : Activeset_intf.S = Bounded.Make (Psnap_mem.Mem_atomic)
module _ : Activeset_intf.S = Fai_cas.Make (Psnap_mem.Mem_atomic)
