(** The active set abstraction (Section 2.1 of the paper).

    Maintains a group with dynamic membership: a process [join]s, is
    {e active} once its join completes, [leave]s, and is {e inactive} once
    the leave completes.  [get_set] returns a set of process ids containing
    every process active throughout the operation, no process inactive
    throughout it, and any subset of the processes that are joining or
    leaving meanwhile.

    [join] and [leave] calls of one process must alternate, starting with a
    [join] (enforced by assertions on the per-process handle). *)

module type S = sig
  type t

  type handle
  (** Per-process state; one per (object, process id). *)

  val name : string

  val create : n:int -> unit -> t
  (** [n] is the number of processes (ignored by implementations that do not
      need a bound). *)

  val handle : t -> pid:int -> handle

  val join : handle -> unit

  val leave : handle -> unit

  val get_set : t -> int list
  (** Current members, sorted ascending, duplicate-free. *)
end
