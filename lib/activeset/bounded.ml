(** The straightforward register-only active set for a known bound of [n]
    processes: one single-writer flag per process.

    [join]/[leave] are one step; [get_set] always takes [n] steps — it is
    not adaptive.  This is the baseline against which Figure 2's algorithm
    is compared (experiment E7), and the register-only active set used to
    instantiate the Figure 1 snapshot (the paper uses the adaptive collect
    of Afek, Stupp and Touitou there; this module is the non-adaptive but
    register-only stand-in, see DESIGN.md §6). *)

module Make (M : Psnap_mem.Mem_intf.S) : Activeset_intf.S = struct
  type t = { flags : bool M.ref_ array }

  type handle = {
    t : t;
    pid : int;
    mutable joined : bool;
        [@psnap.local_state
          "single-owner handle flag guarding join/leave alternation; never \
           read by another process"]
  }

  let name = "bounded"

  let create ~n () =
    { flags = Array.init n (fun i -> M.make ~name:(Printf.sprintf "A[%d]" i) false) }

  let handle t ~pid = { t; pid; joined = false }

  let join h =
    assert (not h.joined);
    h.joined <- true;
    M.write h.t.flags.(h.pid) true

  let leave h =
    assert h.joined;
    h.joined <- false;
    M.write h.t.flags.(h.pid) false

  let get_set t =
    let n = Array.length t.flags in
    let[@psnap.bounded "exactly n flag reads, one per process"] rec go acc pid
        =
      if pid < 0 then acc
      else go (if M.read t.flags.(pid) then pid :: acc else acc) (pid - 1)
    in
    go [] (n - 1)
end
