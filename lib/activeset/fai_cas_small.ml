(** The small-objects variant of the Figure 2 active set, per the remark
    after Theorem 2: "we can instead store the list of intervals in a set
    of O(C) registers and store in C a pointer to this set of registers.
    This just adds O(C) steps to the complexity of getSet operations but it
    ensures that all objects used are of a reasonable size."

    The compare&swap object [C] holds a pointer to an immutable array of
    single-interval registers; a getSet reads the intervals one register at
    a time and publishes its improved list by writing a fresh register
    array and CASing the pointer. *)

module Interval_set = Psnap_interval.Interval_set

module Make (M : Psnap_mem.Mem_intf.S) : Activeset_intf.S = struct
  module Slots = Psnap_mem.Infinite_array.Make (M)

  type entry = Empty | Occupied of int | Vacated

  type skip_list = (int * int) M.ref_ array
  (** sorted, coalesced intervals, one per small register *)

  type t = {
    slots : entry Slots.t;
    next : int M.ref_;
    skips : skip_list M.ref_;
  }

  type handle = {
    t : t;
    pid : int;
    mutable slot : int;
        [@psnap.local_state
          "single-owner handle field remembering the slot handed out by H; \
           never read by another process"]
  }

  let name = "fai-cas-small"

  let create ~n:_ () =
    {
      slots = Slots.create ~name:"I" Empty;
      next = M.make ~name:"H" 0;
      skips = M.make ~name:"C" [||];
    }

  let handle t ~pid = { t; pid; slot = -1 }

  let join h =
    assert (h.slot < 0);
    let l = M.fetch_and_add h.t.next 1 in
    Slots.write h.t.slots l (Occupied h.pid);
    h.slot <- l

  let leave h =
    assert (h.slot >= 0);
    Slots.write h.t.slots h.slot Vacated;
    h.slot <- -1

  (* one read per interval register: the O(C) surcharge of the remark *)
  let read_skips (regs : skip_list) =
    Array.fold_left
      (fun s r ->
        let lo, hi = M.read r in
        Interval_set.add_range ~lo ~hi s)
      Interval_set.empty regs

  (* one write per interval register: fresh registers, then publish *)
  let publish_skips s : skip_list =
    Array.of_list
      (List.map
         (fun (lo, hi) ->
           let r = M.make (lo, hi) in
           M.write r (lo, hi);
           r)
         (Interval_set.intervals s))

  let get_set t =
    let old_regs = M.read t.skips in
    let old_skips = read_skips old_regs in
    let h = M.read t.next in
    let[@psnap.local_state
         "accumulator for the result list, private to this getSet"] members =
      ref []
    in
    let[@psnap.local_state
         "candidate interval list built privately, published only via the \
          final CAS"] new_skips =
      ref old_skips
    in
    if h > 0 then
      Interval_set.fold_gaps ~lo:0 ~hi:(h - 1)
        (fun () j ->
          match Slots.read t.slots j with
          | Vacated -> new_skips := Interval_set.add j !new_skips
          | Occupied pid -> members := pid :: !members
          | Empty -> ())
        () old_skips;
    (if not (Interval_set.equal !new_skips old_skips) then
       let fresh = publish_skips !new_skips in
       ignore (M.cas t.skips ~expected:old_regs ~desired:fresh));
    List.sort_uniq compare !members
end
