(** The new active set algorithm of the paper (Figure 2, Section 4.1),
    from an unbounded array of single-use slots, a fetch&increment object
    handing them out, and a compare&swap object holding a sorted, coalesced
    list of intervals of slot indices known to be permanently vacated.

    [join] is two steps; [leave] is one; [get_set] costs amortized O(C)
    (Theorem 2).  See DESIGN.md §2 for the one documented deviation from
    the pseudocode (distinguishing never-written from vacated slots). *)

module Make (M : Psnap_mem.Mem_intf.S) : Activeset_intf.S
