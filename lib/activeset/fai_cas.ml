(** The new active set algorithm of the paper (Figure 2, Section 4.1).

    - [I\[0..\]] is an unbounded array of registers; each slot is used by at
      most one [join]/[leave] pair and never recycled.
    - [H] is a fetch&increment object handing out fresh slots.
    - [C] is a compare&swap object holding a sorted, coalesced list of
      intervals of slot indices known to be permanently vacated.

    [join] is two steps (fetch&increment + write); [leave] is one step.
    [get_set] reads [C] and [H], then every slot of [I] not covered by a
    skip interval, and finally tries once to CAS its improved interval list
    into [C].  Theorem 2: amortized O(1) per join, O(Ċ) per leave, O(C) per
    getSet.

    Deviation from the paper's pseudocode, documented in DESIGN.md §2: the
    pseudocode initializes slots to the same value 0 that [leave] writes.  A
    getSet reading a slot between its fetch&increment and the join's write
    of the id would then mark a {e live} slot as permanently vacated in [C],
    hiding that process from every later getSet.  We distinguish [Empty]
    (never written — joiner mid-flight, skip but do not record) from
    [Vacated] (written by leave — may enter [C]).  The amortized analysis is
    unaffected: an [Empty] slot's owner is mid-[join], so it is counted in
    the contention C(G) of every getSet G that reads the slot. *)

module Interval_set = Psnap_interval.Interval_set

module Make (M : Psnap_mem.Mem_intf.S) = struct
  module Slots = Psnap_mem.Infinite_array.Make (M)

  type entry = Empty | Occupied of int | Vacated

  type t = {
    slots : entry Slots.t;  (** I *)
    next : int M.ref_;  (** H: number of slots handed out *)
    skips : Interval_set.t M.ref_;  (** C *)
  }

  type handle = {
    t : t;
    pid : int;
    mutable slot : int;
        [@psnap.local_state
          "single-owner handle field remembering the slot handed out by H; \
           never read by another process"]
  }
  (** [slot = -1] iff the process is not active (join/leave alternation). *)

  let name = "fai-cas"

  let create ~n:_ () =
    {
      slots = Slots.create ~name:"I" Empty;
      next = M.make ~name:"H" 0;
      skips = M.make ~name:"C" Interval_set.empty;
    }

  let handle t ~pid = { t; pid; slot = -1 }

  let join h =
    assert (h.slot < 0);
    let l = M.fetch_and_add h.t.next 1 in
    Slots.write h.t.slots l (Occupied h.pid);
    h.slot <- l

  let leave h =
    assert (h.slot >= 0);
    Slots.write h.t.slots h.slot Vacated;
    h.slot <- -1

  let get_set t =
    let old_skips = M.read t.skips in
    let h = M.read t.next in
    let[@psnap.local_state
         "accumulator for the result list, private to this getSet"] members =
      ref []
    in
    let[@psnap.local_state
         "candidate interval list built privately, published only via the \
          final CAS"] new_skips =
      ref old_skips
    in
    if h > 0 then
      Interval_set.fold_gaps ~lo:0 ~hi:(h - 1)
        (fun () j ->
          match Slots.read t.slots j with
          | Vacated -> new_skips := Interval_set.add j !new_skips
          | Occupied pid -> members := pid :: !members
          | Empty -> () (* joiner between its F&I and its write: in-flight *))
        () old_skips;
    (* One attempt, as in the pseudocode; on failure someone else published
       an interval list at least as fresh as [old_skips]. *)
    ignore (M.cas t.skips ~expected:old_skips ~desired:!new_skips);
    List.sort_uniq compare !members
end
