(** A register-only, contention-adaptive active set in the spirit of Afek,
    Stupp and Touitou's adaptive collect [3] — the building block Section 3
    of the paper prescribes for Figure 1's announcements ("We use an active
    set algorithm [3]").

    Structure: an unbounded binary tree of Moir–Anderson {e splitters}.  On
    its {e first} join, a process walks from the root, entering the
    splitter at each node: at most one process {e stops} per splitter, and
    of [k] processes entering, at most [k-1] are sent right and at most
    [k-1] down — so a process stops within depth [k] when [k] processes
    acquire concurrently.  The stop node becomes the process's {e owned
    node}, forever; later joins and all leaves just toggle the node's mark
    in O(1) steps, like the long-lived collect of [3].

    [get_set] walks the [used]-flagged part of the tree (nodes some walk
    has touched) and gathers the marked owners: its cost adapts to the
    total acquisition contention seen so far — at most quadratic in the
    number of {e distinct} joiners, independent of [n] — rather than to the
    process bound like {!Bounded}, and unlike Figure 2 it needs no stronger
    primitive than reads and writes.  The trade-offs among the three active
    sets are measured in experiment E7/E2 terms by the test suites.

    Splitter code per node (one-shot, standard):
    {v
      X := id                      (* 1 write  *)
      if Y then go right           (* 1 read   *)
      Y := true                    (* 1 write  *)
      if X = id then stop          (* 1 read   *)
      else go down
    v} *)

module Make (M : Psnap_mem.Mem_intf.S) : Activeset_intf.S = struct
  module Arr = Psnap_mem.Infinite_array.Make (M)

  type t = {
    x : int Arr.t;  (** splitter X per node; -1 = unset *)
    y : bool Arr.t;  (** splitter Y per node *)
    used : bool Arr.t;  (** some walk touched this node *)
    owner : int Arr.t;  (** pid that stopped here; -1 = none *)
    mark : bool Arr.t;  (** owner currently active *)
  }

  type handle = {
    t : t;
    pid : int;
    mutable node : int;
        [@psnap.local_state
          "single-owner handle field caching the node this process stopped \
           at; never read by another process"]
    mutable joined : bool;
        [@psnap.local_state
          "single-owner handle flag guarding join/leave alternation; never \
           read by another process"]
  }
  (** [node = -1] until the first join acquires an owned node. *)

  let name = "splitter-tree"

  (* root at index 1; down child 2u, right child 2u+1 *)
  let create ~n:_ () =
    {
      x = Arr.create ~name:"X" (-1);
      y = Arr.create ~name:"Y" false;
      used = Arr.create ~name:"U" false;
      owner = Arr.create ~name:"O" (-1);
      mark = Arr.create ~name:"M" false;
    }

  let handle t ~pid = { t; pid; node = -1; joined = false }

  let max_depth = 60

  let acquire h =
    let t = h.t in
    let[@psnap.bounded
         "splitter property: of k concurrent entrants at most k-1 go right \
          and at most k-1 go down, so a process stops within depth k; the \
          max_depth cutoff makes the bound explicit"] rec walk u depth =
      if depth > max_depth then
        failwith "Splitter_tree: walk exceeded depth bound";
      Arr.write t.used u true;
      Arr.write t.x u h.pid;
      if Arr.read t.y u then walk ((2 * u) + 1) (depth + 1)
      else begin
        Arr.write t.y u true;
        if Arr.read t.x u = h.pid then begin
          Arr.write t.owner u h.pid;
          h.node <- u
        end
        else walk (2 * u) (depth + 1)
      end
    in
    walk 1 0

  let join h =
    assert (not h.joined);
    h.joined <- true;
    if h.node < 0 then acquire h;
    Arr.write h.t.mark h.node true

  let leave h =
    assert h.joined;
    h.joined <- false;
    Arr.write h.t.mark h.node false

  let get_set t =
    let[@psnap.local_state
         "accumulator for the result list, private to this getSet"] members =
      ref []
    in
    let[@psnap.bounded
         "visits only used-flagged nodes: at most quadratic in the number of \
          distinct joiners so far"] rec dfs u =
      if Arr.read t.used u then begin
        (if Arr.read t.mark u then
           let p = Arr.read t.owner u in
           if p >= 0 then members := p :: !members);
        dfs (2 * u);
        dfs ((2 * u) + 1)
      end
    in
    dfs 1;
    List.sort_uniq compare !members
end
