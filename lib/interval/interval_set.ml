(* Sorted list of disjoint, non-adjacent closed intervals.  The list is kept
   canonical so that structural equality coincides with set equality and the
   value can be used as the contents of a CAS object. *)

type t = (int * int) list

let empty = []

let is_empty s = s = []

let rec insert lo hi = function
  | [] -> [ (lo, hi) ]
  | (lo', hi') :: rest ->
    if hi + 1 < lo' then (lo, hi) :: (lo', hi') :: rest
    else if hi' + 1 < lo then (lo', hi') :: insert lo hi rest
    else
      (* overlapping or adjacent: coalesce and keep absorbing to the right *)
      absorb (min lo lo') (max hi hi') rest

and absorb lo hi = function
  | (lo', hi') :: rest when lo' <= hi + 1 -> absorb lo (max hi hi') rest
  | rest -> (lo, hi) :: rest

let add_range ~lo ~hi s =
  if lo > hi then invalid_arg "Interval_set.add_range: lo > hi";
  insert lo hi s

let add i s = insert i i s

let rec mem i = function
  | [] -> false
  | (lo, hi) :: rest -> if i < lo then false else i <= hi || mem i rest

let union a b =
  (* Merge two sorted canonical lists, coalescing as we go. *)
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest |> renorm
    | (la, ha) :: ta, (lb, _) :: _ when la <= lb -> go ((la, ha) :: acc) ta b
    | _, (lb, hb) :: tb -> go ((lb, hb) :: acc) a tb
  and renorm = function
    | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
      renorm ((l1, max h1 h2) :: rest)
    | (l1, h1) :: rest -> (l1, h1) :: renorm rest
    | [] -> []
  in
  go [] a b

let interval_count = List.length

let cardinal s = List.fold_left (fun n (lo, hi) -> n + hi - lo + 1) 0 s

let intervals s = s

let of_intervals l =
  List.fold_left (fun s (lo, hi) -> add_range ~lo ~hi s) empty l

let fold_gaps ~lo ~hi f init s =
  (* Walk [lo, hi], skipping covered stretches. *)
  let rec go acc i s =
    if i > hi then acc
    else
      match s with
      | [] -> go (f acc i) (i + 1) s
      | (l, h) :: rest ->
        if h < i then go acc i rest
        else if l <= i then go acc (h + 1) rest
        else go (f acc i) (i + 1) s
  in
  go init lo s

let equal = ( = )

let invariant_ok s =
  let rec go = function
    | [] -> true
    | [ (lo, hi) ] -> lo <= hi
    | (lo, hi) :: ((lo', _) :: _ as rest) ->
      lo <= hi && hi + 1 < lo' && go rest
  in
  go s

let pp ppf s =
  Fmt.pf ppf "@[{%a}@]"
    (Fmt.list ~sep:Fmt.comma (fun ppf (lo, hi) ->
         if lo = hi then Fmt.int ppf lo else Fmt.pf ppf "%d-%d" lo hi))
    s
