(** Sets of integers represented as sorted lists of disjoint, coalesced
    closed intervals [\[lo, hi\]].

    This is the data structure stored in the compare&swap object [C] of the
    active set algorithm of Figure 2 in the paper: the set of array indices
    known to be permanently vacated.  The representation invariant —
    intervals sorted by [lo], pairwise disjoint, and non-adjacent (so the
    representation is canonical) — is exactly the "coalesced, kept in sorted
    order" requirement of Section 4.1.

    All operations are purely functional; values are immutable and can be
    installed in a CAS object compared by physical equality. *)

type t

val empty : t

val is_empty : t -> bool

(** [add i s] inserts the single index [i], coalescing with any adjacent or
    containing interval.  O(k) where k is the number of intervals. *)
val add : int -> t -> t

(** [add_range ~lo ~hi s] inserts all of [\[lo, hi\]].  Raises
    [Invalid_argument] if [lo > hi]. *)
val add_range : lo:int -> hi:int -> t -> t

val mem : int -> t -> bool

(** [union a b] — O(|a| + |b|) merge with coalescing. *)
val union : t -> t -> t

(** Number of intervals in the representation (length of the list the CAS
    object stores; the paper bounds it by Theta(C)). *)
val interval_count : t -> int

(** Number of integers contained in the set. *)
val cardinal : t -> int

(** Intervals in increasing order. *)
val intervals : t -> (int * int) list

val of_intervals : (int * int) list -> t

(** [fold_gaps ~lo ~hi f init s] folds [f] over every integer of [\[lo, hi\]]
    that is {e not} in [s], in increasing order.  This is the traversal a
    [getSet] performs: it visits exactly the entries of [I] not covered by a
    skip interval. *)
val fold_gaps : lo:int -> hi:int -> ('a -> int -> 'a) -> 'a -> t -> 'a

(** Structural equality (the representation is canonical, so this is set
    equality). *)
val equal : t -> t -> bool

(** Representation invariant check, used by the property-based tests. *)
val invariant_ok : t -> bool

val pp : t Fmt.t
