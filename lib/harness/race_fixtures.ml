(** Seeded workloads for the happens-before race checker ({!Psnap.Race}).

    Two intentionally racy fixtures — the dynamic twins of the static
    fixtures under [test/fixtures/] — and two clean controls.  Each builds
    a fresh workload per call, so runs replay deterministically under a
    recorded schedule (oids are reset by {!run}). *)

open Psnap

type t = {
  name : string;
  n : int;  (** number of pids *)
  racy : bool;  (** expected verdict under any interleaving schedule *)
  describe : string;
  procs : unit -> (unit -> unit) array;
      (** fresh shared state + process bodies; call once per run *)
}

(* The plain-ref counter of test/fixtures/racy_counter.ml: two domains
   bump one unsynchronized cell with read-increment-write.  Every
   interleaving has unordered conflicting accesses, so any schedule
   witnesses the race. *)
let racy_counter =
  {
    name = "racy-counter";
    n = 2;
    racy = true;
    describe =
      "two pids read-increment-write one plain (unsynchronized) cell";
    procs =
      (fun () ->
        let c = Mem.Sim.make_plain ~name:"counter" 0 in
        let bump () =
          for _ = 1 to 3 do
            let v = Mem.Sim.read c in
            Mem.Sim.write c (v + 1)
          done
        in
        [| bump; bump |]);
  }

(* Control for racy-counter: the same counter as a default (atomic) cell
   with a bounded CAS retry loop.  Reads acquire and successful CASes
   release, so every pair of conflicting accesses is ordered. *)
let cas_counter =
  {
    name = "cas-counter";
    n = 2;
    racy = false;
    describe = "the same counter, atomic with CAS retry: every access synchronizes";
    procs =
      (fun () ->
        let c = Mem.Sim.make ~name:"counter" 0 in
        let bump () =
          for _ = 1 to 3 do
            (* Bounded retry: with 2 pids and 3 increments each, at most
               [n * increments] conflicts, so 16 attempts always suffice. *)
            let rec attempt budget =
              if budget > 0 then begin
                let v = Mem.Sim.read c in
                if not (Mem.Sim.cas c ~expected:v ~desired:(v + 1)) then
                  attempt (budget - 1)
              end
            in
            attempt 16
          done
        in
        [| bump; bump |]);
  }

(* The unpublished-view bug of test/fixtures/unpublished_view.ml: a writer
   fills a plain buffer, publishes a flag through an atomic cell (release),
   and then patches the buffer *after* publication.  The reader acquires
   the flag and reads the buffer: the pre-publication write is ordered by
   the flag edge, the post-publication patch is not — that plain
   write/read pair is the race. *)
let unpublished_view =
  {
    name = "unpublished-view";
    n = 2;
    racy = true;
    describe =
      "writer patches a plain buffer after releasing its publication flag";
    procs =
      (fun () ->
        let flag = Mem.Sim.make ~name:"published" 0 in
        let buf = Mem.Sim.make_plain ~name:"view" 0 in
        let writer () =
          Mem.Sim.write buf 41;
          (* correctly ordered: before the release *)
          Mem.Sim.write flag 1;
          Mem.Sim.write buf 42
          (* the bug: after the release *)
        in
        let reader () =
          (* Poll the flag (acquire) until published; bounded so the run
             terminates under any schedule. *)
          let rec wait budget =
            if budget > 0 && Mem.Sim.read flag = 0 then wait (budget - 1)
          in
          wait 100;
          ignore (Mem.Sim.read buf)
        in
        [| writer; reader |]);
  }

(* Clean control at algorithm scale: a fig3 partial-snapshot run.  All of
   fig3's shared state lives in default (atomic) cells, so the checker
   reports no races by construction — the dynamic face of the paper's
   claim that every inter-process interaction goes through registers and
   CAS. *)
let clean_fig3 =
  {
    name = "clean-fig3";
    n = 3;
    racy = false;
    describe = "fig3 snapshot, 2 updaters + 1 scanner: all state atomic";
    procs =
      (fun () ->
        let obj = Instance.sim_fig3.Instance.create ~n:3 [| 0; 0; 0 |] in
        [|
          (fun () ->
            for k = 1 to 3 do
              obj.Instance.update ~pid:0 0 (10 + k)
            done);
          (fun () ->
            for k = 1 to 3 do
              obj.Instance.update ~pid:1 1 (20 + k)
            done);
          (fun () -> ignore (obj.Instance.scan ~pid:2 [| 0; 1 |]));
        |]);
  }

let all = [ racy_counter; cas_counter; unpublished_view; clean_fig3 ]

let find name = List.find_opt (fun f -> f.name = name) all

(** One run of [f] under [sched] with the detector on: returns the
    simulator result (traced) and the races found.  The detector is
    re-enabled (clearing previous state) per run and left enabled so the
    caller can inspect it; oids are reset so recorded schedules replay. *)
let run ?(record_trace = true) ~sched f =
  Sim.reset_prerun_oids ();
  Race.enable ~n:f.n ();
  let result = Sim.run ~record_trace ~sched (f.procs ()) in
  (result, Race.races ())

(** Replay a decision schedule against [f] (lenient, round-robin tail —
    the shrinker's oracle contract) and report whether any race shows. *)
let races_under f decisions =
  let sched =
    Scheduler.replay_decisions ~lenient:true
      ~fallback:(Scheduler.round_robin ()) decisions
  in
  let _, races = run ~record_trace:false ~sched f in
  races <> []

(** A 1-minimal witness schedule for the first race [f] shows under
    [sched], via ddmin over the prefix of the recorded schedule up to the
    race's second access.  [None] when the run shows no race. *)
let witness ~sched f =
  let result, races = run ~record_trace:true ~sched f in
  match races with
  | [] -> None
  | r :: _ ->
    let prefix =
      Trace.race_window ~from_clock:0 ~until_clock:r.Race.second.Race.clock
        result.Sim.trace
      |> Trace.schedule
    in
    let minimal, oracle_calls =
      Shrink.minimize ~oracle:(races_under f) prefix
    in
    Some (r, minimal, oracle_calls)
