(** First-class-module-friendly wrapper around a snapshot implementation:
    one handle per process, exposed as closures so experiment code can hold
    several implementations in one list without abstract-type escapes. *)

type obj = {
  update : pid:int -> int -> int -> unit;  (** pid, component, value *)
  scan : pid:int -> int array -> int array;
  last_collects : pid:int -> int;
}

type t = { name : string; create : n:int -> int array -> obj }

val of_module : (module Psnap.Snapshot.S) -> t

(** Simulator-backed instances used by the experiment tables. *)

val sim_all : t list
(** afek, fig1, fig3 — the main comparison set *)

val sim_fig1 : t

val sim_fig3 : t

val sim_afek : t

val sim_fig3_bounded : t

val sim_fig1_small : t

val sim_fig3_small : t

val sim_farray : t
