(** Fixed-width ASCII tables for the experiment reports. *)

type t = { title : string; header : string list; rows : string list list }

val make : title:string -> header:string list -> string list list -> t

val print : ?out:Format.formatter -> t -> unit

val to_csv : t -> string

(** Cell formatting helpers. *)

val f1 : float -> string

val f2 : float -> string

val i : int -> string
