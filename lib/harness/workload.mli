(** Standard measured workloads: [updaters] processes storm a snapshot
    object while [scanners] perform partial scans of [r] components under a
    configurable scheduler, with per-operation step counts recorded (sample
    kinds ["update"] and ["scan"]).  Each seed is one complete simulated
    execution; metrics are kept per execution so contention measures stay
    meaningful. *)

open Psnap

type config = {
  impl : Instance.t;
  m : int;
  updaters : int;
  updates : int;  (** per updater *)
  scanners : int;
  scans : int;  (** per scanner *)
  r : int;  (** components per partial scan *)
  sched : int -> Scheduler.t;  (** seed -> scheduler *)
  seeds : int;
  update_range : int option;
      (** restrict updates to components [0 .. range-1]; default all *)
  scan_idxs : int array option;
      (** force the scanned set; default {!scan_set} *)
}

type run = { samples : Metrics.sample list; worst_collects : int }

type outcome = { runs : run list }

(** Scanner [j]'s default component set: [r] distinct components spread
    across the vector, offset by [j]. *)
val scan_set : m:int -> r:int -> int -> int array

val run_one : config -> int -> run

val run : config -> outcome

(** {2 Aggregation} *)

val kind_samples : outcome -> string -> Metrics.sample list

val worst_steps : outcome -> string -> int

val mean_steps : outcome -> string -> float

val worst_collects : outcome -> int

val max_point_contention : outcome -> string -> int

val max_interval_contention : outcome -> string -> int

(** Maximum, over operations of kind [around], of the number of
    [of_]-operations overlapping it (within one execution) — e.g. the [Cu]
    of a scan. *)
val max_overlap : outcome -> around:string -> of_:string -> int
