(** Seeded workloads for the happens-before race checker: two
    intentionally racy fixtures (the dynamic twins of the static fixtures
    under [test/fixtures/]) and two clean controls.  Used by [bin/race],
    [test_race] and the CI lint-race job. *)

open Psnap

type t = {
  name : string;
  n : int;  (** number of pids *)
  racy : bool;  (** expected verdict under any interleaving schedule *)
  describe : string;
  procs : unit -> (unit -> unit) array;
      (** fresh shared state + process bodies; call once per run *)
}

(** Two pids read-increment-write one plain cell — races. *)
val racy_counter : t

(** The same counter as an atomic cell with CAS retry — clean. *)
val cas_counter : t

(** Writer patches a plain buffer after releasing its publication flag —
    the post-publication write races with the acquiring reader. *)
val unpublished_view : t

(** fig3 partial snapshot, 2 updaters + 1 scanner: all shared state is
    atomic, so no races by construction. *)
val clean_fig3 : t

val all : t list

val find : string -> t option

(** One run under [sched] with the detector freshly enabled ([Race] state
    is cleared, oids reset so schedules replay).  Returns the simulator
    result and the races found; the detector is left enabled. *)
val run :
  ?record_trace:bool -> sched:Scheduler.t -> t -> Sim.result * Race.report list

(** Does replaying [decisions] against a fresh instance of the fixture
    (lenient, round-robin tail) still show a race?  The ddmin oracle. *)
val races_under : t -> Scheduler.decision list -> bool

(** A 1-minimal witness schedule for the first race the fixture shows
    under [sched]: [(report, minimal schedule, oracle calls)], or [None]
    if the run is race-free. *)
val witness :
  sched:Scheduler.t ->
  t ->
  (Race.report * Scheduler.decision list * int) option
