(** Standard measured workloads: [updaters] processes storm a snapshot
    object with updates while [scanners] processes perform partial scans of
    [r] components, all under a configurable scheduler, with per-operation
    step counts recorded.  Each seed is one complete simulated execution;
    metrics are kept per execution so contention measures stay
    meaningful. *)

open Psnap

type config = {
  impl : Instance.t;
  m : int;
  updaters : int;
  updates : int;  (** per updater *)
  scanners : int;
  scans : int;  (** per scanner *)
  r : int;  (** components per partial scan *)
  sched : int -> Scheduler.t;  (** seed -> scheduler *)
  seeds : int;
  update_range : int option;
      (** restrict updates to components [0 .. range-1] (adversarial
          workloads that target the scanned set); default: all of [m] *)
  scan_idxs : int array option;
      (** force the scanned set; default: {!scan_set} spreads [r] components
          across the vector *)
}

type run = { samples : Metrics.sample list; worst_collects : int }

type outcome = { runs : run list }

(* scanner j reads r distinct components spread across the vector, offset by
   its index so different scanners overlap partially.  With stride = m/r >= 1
   the offsets k*stride are strictly increasing and below m, so the r
   components are distinct for any r <= m. *)
let scan_set ~m ~r j =
  if r > m then invalid_arg "Workload.scan_set: r > m";
  let stride = m / max r 1 in
  Array.init r (fun k -> (j + (k * stride)) mod m)

let run_one cfg seed =
  let n = cfg.updaters + cfg.scanners in
  let obj = cfg.impl.Instance.create ~n (Array.init cfg.m (fun i -> -i - 1)) in
  let rec_ = Metrics.create () in
  let worst_collects = ref 0 in
  let range = Option.value cfg.update_range ~default:cfg.m in
  let updater pid () =
    for k = 1 to cfg.updates do
      let i = (k + (pid * 7)) mod range in
      Metrics.measure rec_ ~pid ~kind:"update" (fun () ->
          obj.Instance.update ~pid i ((pid * 1_000_000) + k))
    done
  in
  let scanner pid () =
    let idxs =
      match cfg.scan_idxs with
      | Some idxs -> idxs
      | None -> scan_set ~m:cfg.m ~r:cfg.r (pid - cfg.updaters)
    in
    for _ = 1 to cfg.scans do
      Metrics.measure rec_ ~pid ~kind:"scan" (fun () ->
          ignore (obj.Instance.scan ~pid idxs));
      worst_collects := max !worst_collects (obj.Instance.last_collects ~pid)
    done
  in
  let procs =
    Array.init n (fun pid -> if pid < cfg.updaters then updater pid else scanner pid)
  in
  let res = Sim.run ~sched:(cfg.sched seed) procs in
  assert (res.Sim.outcome = Sim.Completed);
  { samples = Metrics.samples rec_; worst_collects = !worst_collects }

let run cfg = { runs = List.init cfg.seeds (run_one cfg) }

(* ---- aggregation over an outcome ---- *)

let kind_samples o kind =
  List.concat_map
    (fun r -> List.filter (fun (s : Metrics.sample) -> s.kind = kind) r.samples)
    o.runs

let worst_steps o kind = Metrics.max_steps (kind_samples o kind)

let mean_steps o kind = Metrics.mean_steps (kind_samples o kind)

let worst_collects o =
  List.fold_left (fun acc r -> max acc r.worst_collects) 0 o.runs

(** Maximum, over all executions, of the point contention seen by any
    operation of [kind]. *)
let max_point_contention o kind =
  List.fold_left
    (fun acc r ->
      max acc
        (Metrics.max_point_contention
           ~over:(fun s -> s.Metrics.kind = kind)
           r.samples))
    0 o.runs

(** Maximum, over operations of kind [around], of the number of operations
    of kind [of_] whose intervals overlap it (within one execution) — the
    per-operation-type interval contention of Section 2, e.g. the Cu of a
    scan. *)
let max_overlap o ~around ~of_ =
  List.fold_left
    (fun acc r ->
      let arounds =
        List.filter (fun (s : Metrics.sample) -> s.kind = around) r.samples
      and others =
        List.filter (fun (s : Metrics.sample) -> s.kind = of_) r.samples
      in
      List.fold_left
        (fun acc s ->
          max acc
            (List.length (List.filter (fun o -> Metrics.overlaps s o) others)))
        acc arounds)
    0 o.runs

let max_interval_contention o kind =
  List.fold_left
    (fun acc r ->
      max acc
        (Metrics.max_interval_contention
           ~over:(fun s -> s.Metrics.kind = kind)
           r.samples))
    0 o.runs
