(** First-class-module-friendly wrapper around a snapshot implementation:
    one handle per process, exposed as closures so experiment code can hold
    several implementations in one list. *)

type obj = {
  update : pid:int -> int -> int -> unit;
  scan : pid:int -> int array -> int array;
  last_collects : pid:int -> int;
}

type t = { name : string; create : n:int -> int array -> obj }

let of_module (module S : Psnap.Snapshot.S) =
  let create ~n init =
    let t = S.create ~n init in
    let handles = Array.init n (fun pid -> S.handle t ~pid) in
    {
      update = (fun ~pid i v -> S.update handles.(pid) i v);
      scan = (fun ~pid idxs -> S.scan handles.(pid) idxs);
      last_collects = (fun ~pid -> S.last_scan_collects handles.(pid));
    }
  in
  { name = S.name; create }

(** The simulator-backed implementations, in comparison order. *)
let sim_all : t list =
  [
    of_module (module Psnap.Sim_afek);
    of_module (module Psnap.Sim_fig1);
    of_module (module Psnap.Sim_fig3);
  ]

let sim_fig1 = of_module (module Psnap.Sim_fig1)

let sim_fig3 = of_module (module Psnap.Sim_fig3)

let sim_afek = of_module (module Psnap.Sim_afek)

let sim_fig3_bounded = of_module (module Psnap.Sim_fig3_bounded_aset)

let sim_fig1_small = of_module (module Psnap.Sim_fig1_small)

let sim_fig3_small = of_module (module Psnap.Sim_fig3_small)

let sim_farray = of_module (module Psnap.Sim_farray)
