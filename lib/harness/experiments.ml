(** The experiment suite of EXPERIMENTS.md: one runner per table.

    The paper (SPAA'08) proves step-complexity bounds instead of reporting
    measurements, so each experiment validates a theorem's bound and shape
    on the step-counting simulator: measured worst/mean steps per operation
    against the bound evaluated with explicit constants, under seeded random
    and adversarial schedules.  All experiments are deterministic (fixed
    seeds). *)

open Psnap

type runner = ?seeds:int -> unit -> Table.t

let default_seeds = 12

(* ---- E1: Figure 1 + Theorem 1 ---- *)

(* scan steps <= announce(1) + join(1) + collects * r + leave(1), with
   collects <= 2*Cu + 1 (Cu = update operations overlapping the scan);
   update steps <= getSet(n) + Cs reads + collects * |args| with
   |args| <= Cs * rmax. *)
let e1 ?(seeds = default_seeds) () =
  let m = 32 in
  let rows =
    List.concat_map
      (fun updaters ->
        List.map
          (fun r ->
            let cfg =
              {
                Workload.impl = Instance.sim_fig1;
                m;
                updaters;
                updates = 20;
                scanners = 2;
                scans = 4;
                r;
                sched =
                  (fun seed ->
                    Scheduler.starve ~victims:[ updaters; updaters + 1 ] ~seed ());
                seeds;
                update_range = None;
                scan_idxs = None;
              }
            in
            let o = Workload.run cfg in
            let n = updaters + 2 in
            let cu = Workload.max_overlap o ~around:"scan" ~of_:"update" in
            let cs = Workload.max_point_contention o "scan" in
            let scan_worst = Workload.worst_steps o "scan" in
            let scan_bound = (((2 * cu) + 1) * r) + 3 in
            let upd_worst = Workload.worst_steps o "update" in
            let cu_u = Workload.max_overlap o ~around:"update" ~of_:"update" in
            let upd_bound = n + cs + (((2 * cu_u) + 1) * cs * r) + 1 in
            [
              Table.i updaters;
              Table.i r;
              Table.i cu;
              Table.i cs;
              Table.i scan_worst;
              Table.i scan_bound;
              Table.f2 (float_of_int scan_worst /. float_of_int scan_bound);
              Table.i upd_worst;
              Table.i upd_bound;
              Table.f2 (float_of_int upd_worst /. float_of_int upd_bound);
            ])
          [ 2; 8 ])
      [ 1; 2; 4; 8 ]
  in
  Table.make ~title:"E1  Figure 1 (registers) vs Theorem 1 bounds"
    ~header:
      [
        "updaters";
        "r";
        "Cu";
        "Cs";
        "scan worst";
        "scan bound";
        "ratio";
        "upd worst";
        "upd bound";
        "ratio";
      ]
    rows

(* ---- E2: Figure 2 + Theorem 2 ---- *)

let e2 ?(seeds = default_seeds) () =
  let module A = Sim_aset_fai in
  let run_cfg ~members ~cycles ~observers ~getsets seed =
    let rec_ = Metrics.create () in
    let t = A.create ~n:(members + observers) () in
    let member pid () =
      let h = A.handle t ~pid in
      for _ = 1 to cycles do
        Metrics.measure rec_ ~pid ~kind:"join" (fun () -> A.join h);
        Metrics.measure rec_ ~pid ~kind:"leave" (fun () -> A.leave h)
      done
    in
    let observer pid () =
      for _ = 1 to getsets do
        Metrics.measure rec_ ~pid ~kind:"getset" (fun () ->
            ignore (A.get_set t))
      done
    in
    let procs =
      Array.init (members + observers) (fun pid ->
          if pid < members then member pid else observer pid)
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    Metrics.samples rec_
  in
  let rows =
    List.map
      (fun members ->
        let runs =
          List.init seeds (fun seed ->
              run_cfg ~members ~cycles:8 ~observers:2 ~getsets:6 seed)
        in
        let worst kind =
          List.fold_left
            (fun acc samples ->
              max acc
                (Metrics.max_steps
                   (List.filter (fun (s : Metrics.sample) -> s.kind = kind) samples)))
            0 runs
        in
        let mean kind =
          let all =
            List.concat_map
              (List.filter (fun (s : Metrics.sample) -> s.kind = kind))
              runs
          in
          Metrics.mean_steps all
        in
        let cbar =
          List.fold_left
            (fun acc samples -> max acc (Metrics.max_interval_contention samples))
            0 runs
        in
        [
          Table.i members;
          Table.i (worst "join");
          Table.i (worst "leave");
          Table.f1 (mean "getset");
          Table.i (worst "getset");
          Table.i cbar;
        ])
      [ 2; 4; 8; 16 ]
  in
  Table.make
    ~title:
      "E2  Figure 2 active set vs Theorem 2 (join/leave O(1) worst case; getSet amortized O(C))"
    ~header:
      [ "members"; "join worst"; "leave worst"; "getSet mean"; "getSet worst"; "C" ]
    rows

(* ---- E3: Figure 3 + Theorem 3 ---- *)

let fig3_cfg ~m ~updaters ~r ~seeds =
  {
    Workload.impl = Instance.sim_fig3;
    m;
    updaters;
    updates = 30;
    scanners = 2;
    scans = 4;
    r;
    sched =
      (fun seed -> Scheduler.starve ~victims:[ updaters; updaters + 1 ] ~seed ());
    seeds;
    update_range = None;
    scan_idxs = None;
  }

let e3a ?(seeds = default_seeds) () =
  let rows =
    List.map
      (fun r ->
        let o = Workload.run (fig3_cfg ~m:64 ~updaters:4 ~r ~seeds) in
        let worst = Workload.worst_steps o "scan" in
        let bound = (((2 * r) + 1) * r) + 7 in
        [
          Table.i r;
          Table.i (Workload.worst_collects o);
          Table.i ((2 * r) + 1);
          Table.i worst;
          Table.i bound;
          Table.f2 (float_of_int worst /. float_of_int bound);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.make ~title:"E3a  Figure 3 scans: worst case O(r^2), 2r+1 collects"
    ~header:
      [ "r"; "collects worst"; "2r+1"; "scan worst"; "bound (2r+1)r+7"; "ratio" ]
    rows

let e3b ?(seeds = default_seeds) () =
  let r = 4 in
  let rows =
    List.map
      (fun m ->
        let o = Workload.run (fig3_cfg ~m ~updaters:4 ~r ~seeds) in
        [
          Table.i m;
          Table.i (Workload.worst_steps o "scan");
          Table.f1 (Workload.mean_steps o "scan");
          Table.i ((((2 * r) + 1) * r) + 7);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Table.make ~title:"E3b  Figure 3 scans are local: cost independent of m (r=4)"
    ~header:[ "m"; "scan worst"; "scan mean"; "bound" ] rows

let e3c ?(seeds = default_seeds) () =
  let r = 4 in
  let rows =
    List.map
      (fun updaters ->
        let o = Workload.run (fig3_cfg ~m:64 ~updaters ~r ~seeds) in
        let cs = Workload.max_point_contention o "scan" in
        let upd_worst = Workload.worst_steps o "update" in
        let upd_mean = Workload.mean_steps o "update" in
        (* amortized bound per update: O(Cs^2 * rmax^2); constants: embedded
           scan (2*Cs*r+1 collects) * (Cs*r reads) + getSet + cas + read *)
        let bound = (((2 * cs * r) + 1) * (cs * r)) + 20 in
        [
          Table.i updaters;
          Table.i (Workload.worst_steps o "scan");
          Table.i ((((2 * r) + 1) * r) + 7);
          Table.f1 upd_mean;
          Table.i upd_worst;
          Table.i bound;
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.make
    ~title:
      "E3c  Figure 3: scan cost contention-independent; updates within amortized bound (r=4)"
    ~header:
      [
        "updaters";
        "scan worst";
        "scan bound";
        "upd mean";
        "upd worst";
        "upd bound";
      ]
    rows

(* ---- E4: locality across implementations ---- *)

let e4 ?(seeds = default_seeds) () =
  let r = 8 in
  let impls = Instance.sim_all in
  let row_of_m m =
    Table.i m
    :: List.concat_map
         (fun impl ->
           let cfg =
             {
               Workload.impl;
               m;
               updaters = 2;
               updates = 15;
               scanners = 2;
               scans = 3;
               r;
               sched = (fun seed -> Scheduler.random ~seed ());
               seeds;
               update_range = None;
               scan_idxs = None;
             }
           in
           let o = Workload.run cfg in
           [ Table.f1 (Workload.mean_steps o "scan") ])
         impls
  in
  let rows = List.map row_of_m [ 16; 64; 256; 1024 ] in
  Table.make
    ~title:
      "E4  Partial scan cost vs m (r=8): full-snapshot baseline grows, Figures 1/3 stay flat"
    ~header:("m" :: List.map (fun i -> i.Instance.name ^ " scan mean") impls)
    rows

(* ---- E5: crossover when r approaches m ---- *)

let e5 ?(seeds = default_seeds) () =
  let m = 64 in
  let row_of_r r =
    (* Worst case uses the rotation adversary with every update targeted at
       the scanned prefix [0..r-1], so scans cannot finish early on a quiet
       component set. *)
    let run impl ~adversarial =
      let cfg =
        {
          Workload.impl;
          m;
          updaters = 2;
          updates = (if adversarial then 60 else 15);
          scanners = 1;
          scans = 3;
          r;
          sched =
            (if adversarial then fun _seed ->
               Scheduler.rotation ~victims:[ 2 ] ~burst:50 ~victim_steps:r ()
             else fun seed -> Scheduler.random ~seed ());
          seeds = (if adversarial then 1 else seeds);
          update_range = (if adversarial then Some r else None);
          scan_idxs = (if adversarial then Some (Array.init r (fun i -> i)) else None);
        }
      in
      Workload.run cfg
    in
    let fig3_rand = run Instance.sim_fig3 ~adversarial:false in
    let afek_rand = run Instance.sim_afek ~adversarial:false in
    let fig3_worst = run Instance.sim_fig3 ~adversarial:true in
    let afek_worst = run Instance.sim_afek ~adversarial:true in
    [
      Table.i r;
      Table.f1 (Workload.mean_steps fig3_rand "scan");
      Table.f1 (Workload.mean_steps afek_rand "scan");
      Table.i (Workload.worst_steps fig3_worst "scan");
      Table.i (Workload.worst_steps afek_worst "scan");
    ]
  in
  let rows = List.map row_of_r [ 4; 8; 16; 32; 64 ] in
  Table.make
    ~title:
      "E5  Crossover, m=64: partial (fig3, O(r^2)) vs full-snapshot projection (afek, O(m) per collect)"
    ~header:
      [
        "r";
        "fig3 mean";
        "afek mean";
        "fig3 worst (adversary)";
        "afek worst (adversary)";
      ]
    rows

(* ---- E6: the helping adversary — collects under an update storm ---- *)

let e6 ?seeds () =
  ignore seeds;
  (* All m = r components are scanned and every update hits one of them, so
     no scan can terminate early on a quiet component.  The adversary
     alternates "let the next updater (round-robin) finish exactly one
     update" with "let the scanner perform one collect (r steps)".  Each
     collect then observes a change by a different process: Figure 1's
     per-process rule needs about one collect per updater before some
     process is seen moving twice, while Figure 3's per-location rule stays
     capped at 2r+1 regardless of how many processes the adversary owns. *)
  let r = 4 in
  let m = r in
  let run_one impl ~updaters =
    let obj = impl.Instance.create ~n:(updaters + 1) (Array.init m (fun i -> -i - 1)) in
    let idxs = Array.init r (fun i -> i) in
    let done_counts = Array.make updaters 0 in
    let worst = ref 0 in
    let procs =
      Array.init (updaters + 1) (fun pid ->
          if pid < updaters then fun () ->
            for k = 1 to 60 do
              obj.Instance.update ~pid ((k + pid) mod m) ((pid * 1_000_000) + k);
              done_counts.(pid) <- done_counts.(pid) + 1
            done
          else fun () ->
            for _ = 1 to 4 do
              ignore (obj.Instance.scan ~pid idxs);
              worst := max !worst (obj.Instance.last_collects ~pid)
            done)
    in
    let scanner = updaters in
    (* adversary state: Some (u, base) = running updater u until its counter
       exceeds base; None with budget = scanner collect in progress *)
    let target = ref None in
    let scan_budget = ref 0 in
    let next_u = ref 0 in
    let pick (view : Scheduler.view) =
      let runnable = view.Scheduler.runnable in
      let mem p = Array.exists (fun q -> q = p) runnable in
      let rec go guard =
        if guard = 0 then Scheduler.Run runnable.(0)
        else
          match !target with
          | Some (u, base) ->
            if mem u && done_counts.(u) <= base then Scheduler.Run u
            else begin
              target := None;
              scan_budget := r;
              go (guard - 1)
            end
          | None ->
            if !scan_budget > 0 && mem scanner then begin
              decr scan_budget;
              Scheduler.Run scanner
            end
            else begin
              (* pick the next live updater, if any *)
              let live =
                List.filter (fun u -> mem u) (List.init updaters (fun u -> u))
              in
              match live with
              | [] -> Scheduler.Run scanner
              | _ ->
                let u = List.nth live (!next_u mod List.length live) in
                incr next_u;
                target := Some (u, done_counts.(u));
                go (guard - 1)
            end
      in
      go 4
    in
    ignore (Sim.run ~sched:{ Scheduler.name = "one-update-per-collect"; pick } procs);
    !worst
  in
  let row_of_updaters updaters =
    [
      Table.i updaters;
      Table.i (run_one Instance.sim_fig1 ~updaters);
      Table.i (run_one Instance.sim_fig3 ~updaters);
      Table.i ((2 * r) + 1);
    ]
  in
  let rows = List.map row_of_updaters [ 1; 2; 4; 8; 16 ] in
  Table.make
    ~title:
      "E6  Collects per scan under an update storm (r=4): Figure 1 grows with contention, Figure 3 capped at 2r+1"
    ~header:
      [ "updaters"; "fig1 worst collects"; "fig3 worst collects"; "fig3 cap" ]
    rows

(* ---- E7: active set adaptivity — Figure 2 vs the bounded baseline ---- *)

let e7 ?(seeds = default_seeds) () =
  ignore seeds;
  let module B = Sim_aset_bounded in
  let module F = Sim_aset_fai in
  (* 2 processes churn [cycles] times and one observer measures a getSet
     after the churn is published; the bounded baseline pays n steps, the
     Figure 2 object pays only for live slots. *)
  let measure_bounded ~n ~cycles =
    let steps = ref 0 in
    let procs =
      [|
        (fun () ->
          let t = B.create ~n () in
          let h0 = B.handle t ~pid:0 and h1 = B.handle t ~pid:1 in
          for _ = 1 to cycles do
            B.join h0;
            B.leave h0;
            B.join h1;
            B.leave h1
          done;
          ignore (B.get_set t);
          let s0 = Sim.steps_of 0 in
          ignore (B.get_set t);
          steps := Sim.steps_of 0 - s0);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
    !steps
  in
  let measure_fai ~n ~cycles =
    ignore n;
    let steps = ref 0 in
    let procs =
      [|
        (fun () ->
          let t = F.create ~n () in
          let h0 = F.handle t ~pid:0 and h1 = F.handle t ~pid:1 in
          for _ = 1 to cycles do
            F.join h0;
            F.leave h0;
            F.join h1;
            F.leave h1
          done;
          ignore (F.get_set t);
          let s0 = Sim.steps_of 0 in
          ignore (F.get_set t);
          steps := Sim.steps_of 0 - s0);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
    !steps
  in
  let measure_splitter ~n ~cycles =
    let module Sp = Sim_aset_splitter in
    ignore n;
    let steps = ref 0 in
    let procs =
      [|
        (fun () ->
          let t = Sp.create ~n () in
          let h0 = Sp.handle t ~pid:0 and h1 = Sp.handle t ~pid:1 in
          for _ = 1 to cycles do
            Sp.join h0;
            Sp.leave h0;
            Sp.join h1;
            Sp.leave h1
          done;
          ignore (Sp.get_set t);
          let s0 = Sim.steps_of 0 in
          ignore (Sp.get_set t);
          steps := Sim.steps_of 0 - s0);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
    !steps
  in
  let rows =
    List.map
      (fun n ->
        let cycles = n / 2 in
        [
          Table.i n;
          Table.i cycles;
          Table.i (measure_bounded ~n ~cycles);
          Table.i (measure_fai ~n ~cycles);
          Table.i (measure_splitter ~n ~cycles);
        ])
      [ 4; 16; 64; 256 ]
  in
  Table.make
    ~title:
      "E7  getSet cost after churn: bounded baseline pays Theta(n); Figure 2 and the [3]-style splitter tree adapt"
    ~header:
      [ "n"; "churn cycles"; "bounded getSet"; "fig2 getSet"; "splitter getSet" ]
    rows

(* ---- E9: related work — the f-array trade-off (Section 5) ---- *)

let e9 ?(seeds = default_seeds) () =
  let r = 8 in
  let rows =
    List.map
      (fun m ->
        let run impl =
          Workload.run
            {
              Workload.impl;
              m;
              updaters = 2;
              updates = 15;
              scanners = 2;
              scans = 3;
              r;
              sched = (fun seed -> Scheduler.random ~seed ());
              seeds;
              update_range = None;
              scan_idxs = None;
            }
        in
        let fa = run Instance.sim_farray and f3 = run Instance.sim_fig3 in
        [
          Table.i m;
          Table.f1 (Workload.mean_steps fa "scan");
          Table.f1 (Workload.mean_steps fa "update");
          Table.f1 (Workload.mean_steps f3 "scan");
          Table.f1 (Workload.mean_steps f3 "update");
        ])
      [ 16; 64; 256; 1024 ]
  in
  Table.make
    ~title:
      "E9  Related work: f-array (O(1) scans, Theta(log m) large-object updates) vs Figure 3 (r=8)"
    ~header:
      [
        "m";
        "farray scan";
        "farray update";
        "fig3 scan";
        "fig3 update";
      ]
    rows

(* ---- E10: small-registers ablation (remarks after Theorems 1 and 3) ---- *)

let e10 ?(seeds = default_seeds) () =
  let m = 32 and r = 8 in
  let run impl =
    Workload.run
      {
        Workload.impl;
        m;
        updaters = 4;
        updates = 25;
        scanners = 2;
        scans = 4;
        r;
        sched = (fun seed -> Scheduler.starve ~victims:[ 4; 5 ] ~seed ());
        seeds;
        update_range = None;
        scan_idxs = None;
      }
  in
  let row name o =
    [
      name;
      Table.f1 (Workload.mean_steps o "scan");
      Table.i (Workload.worst_steps o "scan");
      Table.f1 (Workload.mean_steps o "update");
      Table.i (Workload.worst_steps o "update");
    ]
  in
  Table.make
    ~title:
      "E10  Small-registers ablation: views in one large cell vs one register per pair (m=32, r=8, starved scanners)"
    ~header:[ "variant"; "scan mean"; "scan worst"; "upd mean"; "upd worst" ]
    [
      row "fig1 large" (run Instance.sim_fig1);
      row "fig1 small" (run Instance.sim_fig1_small);
      row "fig3 large" (run Instance.sim_fig3);
      row "fig3 small" (run Instance.sim_fig3_small);
    ]

(* ---- E11: active set ablation inside Figure 3 ---- *)

let e11 ?(seeds = default_seeds) () =
  let m = 32 and r = 4 in
  let rows =
    List.map
      (fun updaters ->
        let run impl =
          Workload.run
            {
              Workload.impl;
              m;
              updaters;
              updates = 15;
              scanners = 2;
              scans = 4;
              r;
              sched = (fun seed -> Scheduler.random ~seed ());
              seeds;
              update_range = None;
              scan_idxs = None;
            }
        in
        let fai = run Instance.sim_fig3
        and bounded = run Instance.sim_fig3_bounded in
        [
          Table.i (updaters + 2);
          Table.f1 (Workload.mean_steps fai "update");
          Table.f1 (Workload.mean_steps bounded "update");
          Table.f1 (Workload.mean_steps fai "scan");
          Table.f1 (Workload.mean_steps bounded "scan");
        ])
      [ 2; 8; 32; 64 ]
  in
  Table.make
    ~title:
      "E11  Ablation: Figure 3 with the Figure 2 active set vs the Theta(n)-getSet bounded active set"
    ~header:
      [
        "processes";
        "upd mean (fig2 aset)";
        "upd mean (bounded aset)";
        "scan mean (fig2 aset)";
        "scan mean (bounded aset)";
      ]
    rows

(* ---- E12: the restricted single-writer/single-scanner model ---- *)

let e12 ?seeds () =
  ignore seeds;
  let module SS = Sim_single_scanner in
  let m = 64 in
  let measure r =
    let owner = Array.init m (fun i -> i mod 2) in
    let t = SS.create ~owner ~scanner:2 (Array.init m (fun i -> -i - 1)) in
    let rec_ = Metrics.create () in
    let writer pid () =
      let h = SS.handle t ~pid in
      for k = 1 to 30 do
        let i = ((2 * k) mod m) + pid in
        Metrics.measure rec_ ~pid ~kind:"update" (fun () ->
            SS.update h i ((pid * 100_000) + k))
      done
    in
    let scanner () =
      let h = SS.handle t ~pid:2 in
      let idxs = Array.init r (fun k -> k * (m / r)) in
      for _ = 1 to 8 do
        Metrics.measure rec_ ~pid:2 ~kind:"scan" (fun () ->
            ignore (SS.scan h idxs))
      done
    in
    ignore
      (Sim.run
         ~sched:(Scheduler.starve ~victims:[ 2 ] ~seed:3 ())
         [| writer 0; writer 1; scanner |]);
    ( Metrics.max_steps (Metrics.by_kind rec_ "update"),
      Metrics.max_steps (Metrics.by_kind rec_ "scan") )
  in
  let fig3 r =
    let o =
      Workload.run
        {
          Workload.impl = Instance.sim_fig3;
          m;
          updaters = 2;
          updates = 30;
          scanners = 1;
          scans = 8;
          r;
          sched = (fun _ -> Scheduler.starve ~victims:[ 2 ] ~seed:3 ());
          seeds = 1;
          update_range = None;
          scan_idxs = None;
        }
    in
    (Workload.worst_steps o "update", Workload.worst_steps o "scan")
  in
  let rows =
    List.map
      (fun r ->
        let ss_u, ss_s = measure r in
        let f3_u, f3_s = fig3 r in
        [ Table.i r; Table.i ss_u; Table.i ss_s; Table.i f3_u; Table.i f3_s ])
      [ 2; 8; 32 ]
  in
  Table.make
    ~title:
      "E12  Restricted model (related work [22]): single-writer/single-scanner O(1) updates and r+1-step scans vs the unrestricted Figure 3"
    ~header:
      [
        "r";
        "sw/ss upd worst";
        "sw/ss scan worst";
        "fig3 upd worst";
        "fig3 scan worst";
      ]
    rows

(* ---- E13: space — the paper's acknowledged open problem (Section 6) ---- *)

let e13 ?seeds () =
  ignore seeds;
  let module F = Sim_aset_fai in
  let module B = Sim_aset_bounded in
  let churn_allocs create join leave getset ~cycles =
    let out = ref 0 in
    ignore
      (Sim.run ~sched:(Scheduler.round_robin ())
         [|
           (fun () ->
             Psnap_sched.Mem_sim.reset_allocations ();
             let t, h0, h1 = create () in
             let base = Psnap_sched.Mem_sim.allocations () in
             for _ = 1 to cycles do
               join h0;
               leave h0;
               join h1;
               leave h1;
               getset t
             done;
             out := Psnap_sched.Mem_sim.allocations () - base);
         |]);
    !out
  in
  let fai ~cycles =
    churn_allocs
      (fun () ->
        let t = F.create ~n:2 () in
        (t, F.handle t ~pid:0, F.handle t ~pid:1))
      F.join F.leave
      (fun t -> ignore (F.get_set t))
      ~cycles
  in
  let bounded ~cycles =
    churn_allocs
      (fun () ->
        let t = B.create ~n:2 () in
        (t, B.handle t ~pid:0, B.handle t ~pid:1))
      B.join B.leave
      (fun t -> ignore (B.get_set t))
      ~cycles
  in
  let rows =
    List.map
      (fun cycles ->
        [
          Table.i cycles;
          Table.i (fai ~cycles);
          Table.i (bounded ~cycles);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Table.make
    ~title:
      "E13  Space: base objects allocated during churn — Figure 2's register use grows with the number of operations (the paper's open problem, Section 6); the bounded baseline allocates nothing"
    ~header:[ "join/leave cycles x2"; "fig2 allocations"; "bounded allocations" ]
    rows

let all ?seeds () =
  [
    e1 ?seeds ();
    e2 ?seeds ();
    e3a ?seeds ();
    e3b ?seeds ();
    e3c ?seeds ();
    e4 ?seeds ();
    e5 ?seeds ();
    e6 ?seeds ();
    e7 ?seeds ();
    e9 ?seeds ();
    e10 ?seeds ();
    e11 ?seeds ();
    e12 ?seeds ();
    e13 ?seeds ();
  ]

let by_name =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3a", e3a);
    ("e3b", e3b);
    ("e3c", e3c);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
  ]
