(** Fixed-width ASCII tables for the experiment reports. *)

type t = { title : string; header : string list; rows : string list list }

let make ~title ~header rows = { title; header; rows }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
      List.fold_left
        (fun w row ->
          match List.nth_opt row c with
          | Some cell -> max w (String.length cell)
          | None -> w)
        0 all)

let print ?(out = Format.std_formatter) t =
  let ws = widths t in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    String.concat "  " (List.map2 pad ws row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') ws)
  in
  Format.fprintf out "@.== %s ==@." t.title;
  Format.fprintf out "%s@.%s@." (line t.header) sep;
  List.iter (fun row -> Format.fprintf out "%s@." (line row)) t.rows;
  Format.fprintf out "@."

let to_csv t =
  let quote s =
    if String.contains s ',' then "\"" ^ s ^ "\"" else s
  in
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map quote row))
       (t.header :: t.rows))

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let i = string_of_int
