(** The experiment suite of EXPERIMENTS.md: one runner per table.

    The paper proves step-complexity bounds instead of reporting
    measurements, so each experiment validates a theorem's bound and shape
    on the step-counting simulator — measured worst/mean steps per
    operation against the bound with explicit constants, under seeded
    random and adversarial schedules.  All runners are deterministic given
    [seeds] (the number of seeded executions per configuration). *)

type runner = ?seeds:int -> unit -> Table.t

val e1 : runner
(** Figure 1 vs Theorem 1 bounds. *)

val e2 : runner
(** Figure 2 active set vs Theorem 2. *)

val e3a : runner
(** Figure 3 scans: O(r²), 2r+1 collects. *)

val e3b : runner
(** Figure 3 locality: cost independent of m. *)

val e3c : runner
(** Figure 3 contention-independence; amortized updates. *)

val e4 : runner
(** Partial-scan cost vs m across implementations. *)

val e5 : runner
(** Crossover when r approaches m. *)

val e6 : runner
(** Collects under the one-update-per-collect adversary. *)

val e7 : runner
(** Active set getSet adaptivity after churn. *)

val e9 : runner
(** f-array trade-off (related work). *)

val e10 : runner
(** Small-registers ablation. *)

val e11 : runner
(** Active set ablation inside Figure 3. *)

val e12 : runner
(** Restricted single-writer/single-scanner model. *)

val e13 : runner
(** Space: allocations during churn (the paper's open problem). *)

val all : ?seeds:int -> unit -> Table.t list

val by_name : (string * runner) list
