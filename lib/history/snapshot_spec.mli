(** Sequential specification of the partial snapshot object over integer
    values, plus two checkers:

    - {!check}: exact linearizability via {!Lin_check} (short histories);
    - {!check_observations}: a sound {e necessary-condition} checker for
      long histories whose written values are globally unique, so each
      scanned value identifies the update that produced it.  It verifies,
      per scan, that read versions are not from the future, not provably
      overwritten, mutually consistent with one linearization point, and
      monotone across real-time-ordered scans.  Any reported violation is a
      genuine linearizability violation (no false alarms); it does not
      catch every violation — the exact checker covers that on small
      cases. *)

type op = Update of int * int | Scan of int array

type res = Ack | Vals of int array

val pp_op : op Fmt.t

val pp_res : res Fmt.t

module Spec :
  Lin_check.SPEC with type state = int array and type op = op and type res = res

module Checker : sig
  type entry = (op, res) History.entry

  exception Too_long of int

  val check : init:int array -> entry list -> bool
end

val check : init:int array -> (op, res) History.entry list -> bool

type violation = {
  scan : (op, res) History.entry;
  component : int;
  reason : string;
}

val pp_violation : violation Fmt.t

(** Duplicate written values (e.g. a crash–restart re-invoking an update)
    are handled by candidate writer lists: a violation is reported only if
    {e every} attribution of a scanned value to one of its candidate
    writers violates, so the checker stays sound; precision is highest —
    and equal to the old unique-values behaviour — when values are
    globally unique. *)
val check_observations :
  init:int array -> (op, res) History.entry list -> violation list
