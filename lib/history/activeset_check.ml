(** Validity checker for active set histories (definition in Section 2.1 of
    the paper).

    From each process's alternating join/leave entries we derive:

    - {e surely-active} spans: from a join's response to the following
      leave's invocation (unbounded if no leave follows);
    - {e surely-inactive} spans: before the first join's invocation, and
      from a leave's response to the following join's invocation.

    A [getSet] returning [S] over interval [\[inv, resp\]] is valid iff [S]
    contains every process with a surely-active span covering the whole
    interval and no process with a surely-inactive span covering it.
    Processes joining or leaving concurrently (including those whose
    operation is pending forever — crashed) may appear or not. *)

type op = Join | Leave | Get_set

type res = Ack | Set of int list

let pp_op ppf = function
  | Join -> Fmt.string ppf "join"
  | Leave -> Fmt.string ppf "leave"
  | Get_set -> Fmt.string ppf "getSet"

let pp_res ppf = function
  | Ack -> Fmt.string ppf "ack"
  | Set s -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) s

type violation = {
  get_set : (op, res) History.entry;
  pid : int;
  missing : bool;  (** true: surely-active pid absent; false: surely-inactive pid present *)
}

let pp_violation ppf v =
  Fmt.pf ppf "%a: p%d %s" (History.pp pp_op pp_res) v.get_set v.pid
    (if v.missing then "surely active but missing" else "surely inactive but present")

type span = { from_ : int; until : int }

let covers s ~inv ~resp = s.from_ <= inv && resp <= s.until

(* Build surely-active and surely-inactive spans for one process from its
   join/leave entries in invocation order.  After a pending (crashed)
   operation the process is joining/leaving "forever": neither active nor
   inactive, so no further spans are produced. *)
let spans_of_pid (entries : (op, res) History.entry list) =
  let active = ref [] and inactive = ref [] in
  let rec go inactive_since = function
    | [] -> inactive := { from_ = inactive_since; until = max_int } :: !inactive
    | (j : (op, res) History.entry) :: rest -> (
      if j.op <> Join then
        invalid_arg "Activeset_check: join/leave do not alternate";
      inactive := { from_ = inactive_since; until = j.inv } :: !inactive;
      match j.resp with
      | None -> ()
      | Some joined -> (
        match rest with
        | [] -> active := { from_ = joined; until = max_int } :: !active
        | (l : (op, res) History.entry) :: rest' -> (
          if l.op <> Leave then
            invalid_arg "Activeset_check: join/leave do not alternate";
          active := { from_ = joined; until = l.inv } :: !active;
          match l.resp with None -> () | Some left -> go left rest')))
  in
  go min_int entries;
  (!active, !inactive)

let check (h : (op, res) History.entry list) : violation list =
  let pids =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : (op, res) History.entry) ->
           match e.op with Join | Leave -> Some e.pid | Get_set -> None)
         h)
  in
  let spans =
    List.map
      (fun pid ->
        let mine =
          List.filter
            (fun (e : (op, res) History.entry) ->
              e.pid = pid && e.op <> Get_set)
            h
          |> List.sort (fun (a : (op, res) History.entry) b -> compare a.inv b.inv)
        in
        (pid, spans_of_pid mine))
      pids
  in
  let violations = ref [] in
  List.iter
    (fun (e : (op, res) History.entry) ->
      match (e.op, e.res, e.resp) with
      | Get_set, Some (Set s), Some resp ->
        (* A pid that never joined at all is surely inactive. *)
        List.iter
          (fun p ->
            if not (List.mem p pids) then
              violations := { get_set = e; pid = p; missing = false } :: !violations)
          s;
        List.iter
          (fun (pid, (active, inactive)) ->
            let in_result = List.mem pid s in
            let surely_active =
              List.exists (fun sp -> covers sp ~inv:e.inv ~resp) active
            in
            let surely_inactive =
              List.exists (fun sp -> covers sp ~inv:e.inv ~resp) inactive
            in
            if surely_active && not in_result then
              violations := { get_set = e; pid; missing = true } :: !violations;
            if surely_inactive && in_result then
              violations := { get_set = e; pid; missing = false } :: !violations)
          spans
      | _ -> ())
    h;
  List.rev !violations
