(* Snapshot-isolation oracle over per-transaction observation records
   (docs/MODEL.md §15).

   Each record reports what the implementation claims about one
   transaction: its begin-timestamp, the txids it excluded as in-flight at
   begin, the values its snapshot reads returned, and — if it committed
   read-write — its commit timestamp and write set.  The checker decides
   the two defining conditions of snapshot isolation against those claims:

   - {e visibility per begin snapshot}: every snapshot read must return the
     value of the committed writer with the greatest commit timestamp that
     is at most the reader's begin-timestamp and whose txid the reader did
     not exclude (the initial value if there is none);

   - {e no lost updates} (first-committer-wins): no two committed
     transactions may write a common component when the first-committed
     one's version was invisible to the second's snapshot — committed
     inside the second's [begin, commit] window or excluded at its begin.

   Like [Snapshot_spec.check_observations] this is a sound necessary
   condition: any reported violation is a real SI violation relative to the
   reported timestamps, and with per-transaction-unique written values the
   visibility check is decisive.  It is what the chaos campaigns run after
   every seeded execution and what the committed e20 witness replays
   through [dune runtest]: the deliberately-unsound last-writer-wins commit
   mode trips [Lost_update] while first-committer-wins stays clean on the
   identical schedule. *)

type 'v obs = {
  txid : int;
  pid : int;
  begin_ts : int;
  excluded : int list;  (** txids in flight at this transaction's begin *)
  committed : bool;
  commit_ts : int option;  (** [Some] only for committed read-write *)
  reads : (int * 'v) list;  (** snapshot reads: (component, value seen) *)
  writes : (int * 'v) list;  (** committed write set; [[]] otherwise *)
}

type 'v violation =
  | Stale_read of {
      txid : int;
      component : int;
      saw : 'v;
      expected : 'v;
      expected_from : int;  (** txid of the writer that should be visible *)
    }
  | Lost_update of {
      txid : int;  (** the second committer, whose commit should have failed *)
      first : int;  (** the first committer it overwrote blindly *)
      component : int;
    }
  | Bad_timestamps of { txid : int; reason : string }

let pp_violation pp_v ppf = function
  | Stale_read { txid; component; saw; expected; expected_from } ->
    Format.fprintf ppf
      "stale read: txn %d read component %d as %a but txn %d's committed %a \
       was visible to its snapshot"
      txid component pp_v saw expected_from pp_v expected
  | Lost_update { txid; first; component } ->
    Format.fprintf ppf
      "lost update: txn %d committed component %d over txn %d's commit, \
       which was invisible to its snapshot (first committer should win)"
      txid component first
  | Bad_timestamps { txid; reason } ->
    Format.fprintf ppf "bad timestamps: txn %d: %s" txid reason

(* The committed writer visible to (begin_ts, excluded) for [component]:
   greatest commit timestamp <= begin_ts with a non-excluded txid. *)
let visible_writer writers ~begin_ts ~excluded component =
  List.fold_left
    (fun best (w : 'v obs) ->
      match (w.commit_ts, List.assoc_opt component w.writes) with
      | Some cts, Some v
        when cts <= begin_ts && not (List.mem w.txid excluded) -> (
        match best with
        | Some (bcts, _, _) when bcts >= cts -> best
        | _ -> Some (cts, w.txid, v))
      | _ -> best)
    None writers

let check ~init obs_list =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let writers =
    List.filter (fun o -> o.committed && o.writes <> []) obs_list
  in
  (* timestamp sanity over committed read-write transactions *)
  let seen_cts = Hashtbl.create 16 in
  List.iter
    (fun (o : 'v obs) ->
      match o.commit_ts with
      | None ->
        if o.committed && o.writes <> [] then
          add
            (Bad_timestamps
               { txid = o.txid; reason = "committed writes without a commit timestamp" })
      | Some cts ->
        if cts <= o.begin_ts then
          add
            (Bad_timestamps
               {
                 txid = o.txid;
                 reason =
                   Printf.sprintf "commit timestamp %d <= begin timestamp %d"
                     cts o.begin_ts;
               });
        (match Hashtbl.find_opt seen_cts cts with
        | Some other ->
          add
            (Bad_timestamps
               {
                 txid = o.txid;
                 reason =
                   Printf.sprintf "commit timestamp %d also drawn by txn %d"
                     cts other;
               })
        | None -> Hashtbl.add seen_cts cts o.txid))
    obs_list;
  (* visibility per begin snapshot — aborted transactions' reads must be
     consistent too: their snapshot was live while they ran *)
  List.iter
    (fun (o : 'v obs) ->
      List.iter
        (fun (component, saw) ->
          let expected_from, expected =
            match
              visible_writer writers ~begin_ts:o.begin_ts
                ~excluded:o.excluded component
            with
            | Some (_, txid, v) -> (txid, v)
            | None ->
              if component >= 0 && component < Array.length init then
                (0, init.(component))
              else (0, saw)
          in
          if saw <> expected then
            add
              (Stale_read
                 { txid = o.txid; component; saw; expected; expected_from }))
        o.reads)
    obs_list;
  (* no lost updates: first committer wins *)
  List.iter
    (fun (second : 'v obs) ->
      match second.commit_ts with
      | None -> ()
      | Some cts2 ->
        List.iter
          (fun (first : 'v obs) ->
            match first.commit_ts with
            | Some cts1
              when first.txid <> second.txid && cts1 < cts2
                   && (cts1 > second.begin_ts
                      || List.mem first.txid second.excluded) ->
              List.iter
                (fun (component, _) ->
                  if List.mem_assoc component first.writes then
                    add
                      (Lost_update
                         { txid = second.txid; first = first.txid; component }))
                second.writes
            | _ -> ())
          writers)
    writers;
  List.rev !violations
