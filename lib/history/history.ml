(** Operation histories: the raw material of linearizability checking.

    A {!recorder} collects invocation/response events with strictly
    increasing timestamps supplied by the caller (the simulator's
    {!Psnap_sched.Sim.mark}, or an atomic counter on real hardware).  An
    operation whose process crashes mid-flight stays {e pending}: its entry
    has a [resp = None], exactly the "incomplete operations" of the paper's
    linearizability definition (Section 2). *)

type ('op, 'res) entry = {
  pid : int;
  op : 'op;
  res : 'res option;
  inv : int;
  resp : int option;
}

let is_pending e = e.resp = None

type ('op, 'res) cell = {
  c_pid : int;
  c_op : 'op;
  mutable c_res : 'res option;
  c_inv : int;
  mutable c_resp : int option;
}

type ('op, 'res) t = {
  now : unit -> int;
  mutable cells : ('op, 'res) cell list;  (** reversed *)
}

let create ~now () = { now; cells = [] }

(** [record t ~pid op f] logs the invocation of [op], runs [f], and logs the
    response.  If [f] never returns (crash), the entry stays pending. *)
let record t ~pid op f =
  let c =
    { c_pid = pid; c_op = op; c_res = None; c_inv = t.now (); c_resp = None }
  in
  t.cells <- c :: t.cells;
  let r = f () in
  (* Response timestamp before publishing the result, so [resp] is a point
     inside the operation's real interval. *)
  c.c_resp <- Some (t.now ());
  c.c_res <- Some r;
  r

(** Completed and pending entries, in invocation order. *)
let entries t =
  List.rev_map
    (fun c ->
      { pid = c.c_pid; op = c.c_op; res = c.c_res; inv = c.c_inv; resp = c.c_resp })
    t.cells

let length t = List.length t.cells

(** The pending (crash-cut) operations of [pid], in invocation order.
    Under crash–restart a new incarnation can consult this to learn which
    of its requests have no recorded response — though the honest recovery
    protocol must of course use {e shared} state (the point of the
    [Detectable] wrapper), this is the ground truth the checker sees. *)
let pending_ops t ~pid =
  entries t
  |> List.filter_map (fun e ->
         if e.pid = pid && is_pending e then Some e.op else None)

(** [precedes a b]: [a] responded before [b] was invoked (real-time
    order). *)
let precedes a b = match a.resp with Some r -> r < b.inv | None -> false

let pp pp_op pp_res ppf e =
  Fmt.pf ppf "p%d %a -> %a [%d,%s]" e.pid pp_op e.op
    (Fmt.option ~none:(Fmt.any "pending") pp_res)
    e.res e.inv
    (match e.resp with Some r -> string_of_int r | None -> "-")
