(** Operation histories: the raw material of linearizability checking.

    A recorder collects invocation/response events with strictly increasing
    timestamps supplied by the caller (the simulator's
    [Psnap_sched.Sim.mark], or an atomic counter on real hardware).  An
    operation whose process crashes mid-flight stays {e pending}: its entry
    has [resp = None] — the "incomplete operations" of the paper's
    linearizability definition (Section 2). *)

type ('op, 'res) entry = {
  pid : int;
  op : 'op;
  res : 'res option;
  inv : int;
  resp : int option;
}

val is_pending : ('op, 'res) entry -> bool

type ('op, 'res) t
(** A recorder.  Not thread-safe: use one per process/domain and merge the
    entry lists (timestamps give the global order). *)

val create : now:(unit -> int) -> unit -> ('op, 'res) t

(** [record t ~pid op f] logs the invocation of [op], runs [f], logs the
    response, and passes the result through.  If [f] never returns (crash)
    the entry stays pending. *)
val record : ('op, 'res) t -> pid:int -> 'op -> (unit -> 'res) -> 'res

(** Completed and pending entries, in invocation order. *)
val entries : ('op, 'res) t -> ('op, 'res) entry list

val length : ('op, 'res) t -> int

(** The pending (crash-cut) operations of [pid], in invocation order.
    Under crash–restart these are the requests a new incarnation of [pid]
    cannot know the fate of without consulting shared state. *)
val pending_ops : ('op, 'res) t -> pid:int -> 'op list

(** [precedes a b] — [a] responded before [b] was invoked (real-time
    order). *)
val precedes : ('op, 'res) entry -> ('op, 'res) entry -> bool

val pp : 'op Fmt.t -> 'res Fmt.t -> ('op, 'res) entry Fmt.t
