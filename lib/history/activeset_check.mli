(** Validity checker for active set histories (Section 2.1 of the paper).

    From each process's alternating join/leave entries the checker derives
    {e surely-active} spans (join response → next leave invocation) and
    {e surely-inactive} spans (leave response → next join invocation, and
    before the first join).  A [getSet] returning [S] over interval
    [\[inv, resp\]] is valid iff [S] contains every process surely active
    throughout the interval and no process surely inactive throughout it;
    processes joining or leaving concurrently — including crashed ones,
    which are transitioning forever — may appear either way. *)

type op = Join | Leave | Get_set

type res = Ack | Set of int list

val pp_op : op Fmt.t

val pp_res : res Fmt.t

type violation = {
  get_set : (op, res) History.entry;
  pid : int;
  missing : bool;
      (** [true]: surely-active pid absent; [false]: surely-inactive pid
          present *)
}

val pp_violation : violation Fmt.t

(** Empty result = valid.  [Invalid_argument] on malformed histories
    (join/leave not alternating per process). *)
val check : (op, res) History.entry list -> violation list
