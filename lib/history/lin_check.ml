(** A Wing–Gong-style linearizability checker.

    Decides whether a finite history is linearizable with respect to a
    sequential specification: is there a choice of linearization points —
    one per completed operation, inside its invocation/response interval,
    and optionally one per pending operation — whose sequential execution
    produces exactly the observed responses?  This is the paper's
    correctness condition (Section 2), checked by exhaustive search with
    memoization on (set of linearized operations, abstract state).

    Worst-case exponential (the problem is NP-hard in general); intended for
    the short histories produced by the schedule-exploration tests. *)

module type SPEC = sig
  type state

  type op

  type res

  val apply : state -> op -> state * res

  val equal_res : res -> res -> bool
end

module Make (S : SPEC) = struct
  type entry = (S.op, S.res) History.entry

  exception Too_long of int

  (** [witness ~init h] — a linearization order (indices into [h], in
      linearization-point order; un-listed pending operations never took
      effect) if [h] is linearizable from [init], else [None]. *)
  let witness ~init (h : entry list) =
    let entries = Array.of_list h in
    let n = Array.length entries in
    if n > 62 then raise (Too_long n);
    (* An operation is linearizable next only if every operation that
       precedes it in real time has already been linearized. *)
    let preds =
      Array.map
        (fun e ->
          let mask = ref 0 in
          Array.iteri
            (fun j o -> if History.precedes o e then mask := !mask lor (1 lsl j))
            entries;
          !mask)
        entries
    in
    let completed_mask = ref 0 in
    Array.iteri
      (fun i e -> if not (History.is_pending e) then completed_mask := !completed_mask lor (1 lsl i))
      entries;
    let memo : (int * S.state, unit) Hashtbl.t = Hashtbl.create 1024 in
    let rec go linearized state =
      if !completed_mask land linearized = !completed_mask then Some []
      else if Hashtbl.mem memo (linearized, state) then None
      else begin
        Hashtbl.add memo (linearized, state) ();
        let found = ref None in
        let i = ref 0 in
        while !found = None && !i < n do
          let bit = 1 lsl !i in
          (if linearized land bit = 0 && preds.(!i) land linearized = preds.(!i)
           then
             let e = entries.(!i) in
             let state', r = S.apply state e.op in
             match e.res with
             | Some res ->
               if S.equal_res res r then
                 Option.iter
                   (fun rest -> found := Some (!i :: rest))
                   (go (linearized lor bit) state')
             | None ->
               (* Pending operation: may take effect (with any response)... *)
               Option.iter
                 (fun rest -> found := Some (!i :: rest))
                 (go (linearized lor bit) state'));
          incr i
        done;
        (* ...or a pending operation may never take effect: covered because
           the success test ignores un-linearized pending entries. *)
        !found
      end
    in
    go 0 init

  (** [check ~init h] — true iff [h] is linearizable from state [init]. *)
  let check ~init h = witness ~init h <> None
end
