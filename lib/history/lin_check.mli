(** A Wing–Gong-style exact linearizability checker.

    Decides whether a finite history is linearizable with respect to a
    sequential specification: is there a choice of linearization points —
    one per completed operation, inside its invocation/response interval,
    and optionally one per pending operation — whose sequential execution
    produces exactly the observed responses?  This is the paper's
    correctness condition (Section 2), checked by exhaustive search with
    memoization on (set of linearized operations, abstract state).

    Worst-case exponential (the problem is NP-hard in general); intended
    for the short histories produced by the schedule-exploration tests. *)

module type SPEC = sig
  type state

  type op

  type res

  val apply : state -> op -> state * res

  val equal_res : res -> res -> bool
end

module Make (S : SPEC) : sig
  type entry = (S.op, S.res) History.entry

  exception Too_long of int
  (** Histories longer than 62 entries exceed the bitmask memoization. *)

  (** [check ~init h] — true iff [h] is linearizable from state [init].
      Pending (crash-cut) operations may linearize at most once, with any
      response, or not at all — the crash–restart reading of the paper's
      incomplete operations: a cut operation either took effect before the
      crash or it did not.  (A {e re-invoked} operation is a fresh history
      entry; exactly-once semantics across incarnations is the job of the
      [Detectable] wrapper's spec, not of the checker.) *)
  val check : init:S.state -> entry list -> bool

  (** [witness ~init h] — a linearization order (indices into [h], in
      linearization-point order) if linearizable, else [None].  Indices of
      pending operations that never took effect are absent from the
      order. *)
  val witness : init:S.state -> entry list -> int list option
end
