(** Sequential specification of the partial snapshot object over integer
    values, plus two checkers:

    - {!Checker}: exact linearizability via {!Lin_check} (for short
      histories);
    - {!check_observations}: a sound {e necessary-condition} checker for
      long histories whose written values are globally unique, so that each
      scanned value identifies the update that produced it.  It verifies,
      per scan, that the read versions are not from the future, not
      provably overwritten, mutually consistent with a single linearization
      point, and monotone across real-time-ordered scans.  Any reported
      violation is a genuine linearizability violation (no false alarms);
      it does not catch every violation — the exact checker covers that on
      small cases. *)

type op = Update of int * int | Scan of int array

type res = Ack | Vals of int array

let pp_op ppf = function
  | Update (i, v) -> Fmt.pf ppf "update(%d,%d)" i v
  | Scan idxs ->
    Fmt.pf ppf "scan(%a)" Fmt.(array ~sep:comma int) idxs

let pp_res ppf = function
  | Ack -> Fmt.string ppf "ack"
  | Vals vs -> Fmt.pf ppf "(%a)" Fmt.(array ~sep:comma int) vs

module Spec = struct
  type state = int array

  type nonrec op = op

  type nonrec res = res

  let apply st = function
    | Update (i, v) ->
      let st' = Array.copy st in
      st'.(i) <- v;
      (st', Ack)
    | Scan idxs -> (st, Vals (Array.map (fun i -> st.(i)) idxs))

  let equal_res a b = a = b
end

module Checker = Lin_check.Make (Spec)

let check ~init h = Checker.check ~init h

(* ---- Observation-based necessary-condition checker ---- *)

type violation = {
  scan : (op, res) History.entry;
  component : int;
  reason : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "component %d of %a: %s" v.component
    (History.pp pp_op pp_res)
    v.scan v.reason

(* Pseudo-entry interval for initial values: before every operation. *)
let init_inv = -1

let init_resp = -1

let check_observations ~init (h : (op, res) History.entry list) :
    violation list =
  (* writer table: value -> (component, inv, resp_or_max) *)
  let writers : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem writers v then
        invalid_arg "check_observations: initial values must be unique";
      Hashtbl.add writers v (i, init_inv, init_resp))
    init;
  let updates_by_component : (int, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri (fun i v -> Hashtbl.add updates_by_component i [ (v, init_inv, init_resp) ]) init;
  List.iter
    (fun (e : (op, res) History.entry) ->
      match e.op with
      | Update (i, v) ->
        if Hashtbl.mem writers v then
          invalid_arg "check_observations: written values must be unique";
        let resp = Option.value e.resp ~default:max_int in
        Hashtbl.add writers v (i, e.inv, resp);
        let l = try Hashtbl.find updates_by_component i with Not_found -> [] in
        Hashtbl.replace updates_by_component i ((v, e.inv, resp) :: l)
      | Scan _ -> ())
    h;
  let violations = ref [] in
  let bad scan component reason =
    violations := { scan; component; reason } :: !violations
  in
  let scans =
    List.filter_map
      (fun (e : (op, res) History.entry) ->
        match (e.op, e.res) with
        | Scan idxs, Some (Vals vs) -> Some (e, idxs, vs)
        | _ -> None)
      h
  in
  (* Per-scan checks. *)
  List.iter
    (fun ((e : (op, res) History.entry), idxs, vs) ->
      let resp = Option.value e.resp ~default:max_int in
      (* Resolve each returned value to its writing update. *)
      let versions =
        Array.map2
          (fun i v ->
            match Hashtbl.find_opt writers v with
            | None ->
              bad e i (Printf.sprintf "returned value %d never written" v);
              None
            | Some (i', winv, wresp) ->
              if i' <> i then (
                bad e i
                  (Printf.sprintf "value %d belongs to component %d" v i');
                None)
              else Some (v, winv, wresp))
          idxs vs
      in
      (* (1) no reads from the future *)
      Array.iteri
        (fun k -> function
          | Some (v, winv, _) when winv >= resp ->
            bad e idxs.(k)
              (Printf.sprintf "value %d written by an update invoked after the scan responded" v)
          | _ -> ())
        versions;
      (* earliest possible linearization point of the scan *)
      let t_lo =
        Array.fold_left
          (fun acc -> function Some (_, winv, _) -> max acc winv | None -> acc)
          e.inv versions
      in
      (* (2)+(3) overwrite: some update W on component i lies entirely after
         the read version and entirely before every possible linearization
         point of the scan *)
      Array.iteri
        (fun k version ->
          match version with
          | None -> ()
          | Some (v, _, vresp) ->
            let i = idxs.(k) in
            let others = try Hashtbl.find updates_by_component i with Not_found -> [] in
            List.iter
              (fun (w, winv, wresp) ->
                if w <> v && winv > vresp && wresp < t_lo then
                  bad e i
                    (Printf.sprintf
                       "stale read: value %d was overwritten by %d before the scan could linearize"
                       v w))
              others)
        versions)
    scans;
  (* (4) monotonicity across real-time-ordered scans *)
  let resolved =
    List.map
      (fun (e, idxs, vs) ->
        let m = Hashtbl.create 8 in
        Array.iteri
          (fun k i ->
            match Hashtbl.find_opt writers vs.(k) with
            | Some (i', winv, wresp) when i' = i -> Hashtbl.replace m i (vs.(k), winv, wresp)
            | _ -> ())
          idxs;
        (e, m))
      scans
  in
  List.iter
    (fun ((e1 : (op, res) History.entry), m1) ->
      List.iter
        (fun ((e2 : (op, res) History.entry), m2) ->
          if History.precedes e1 e2 then
            Hashtbl.iter
              (fun i (v1, w1inv, _) ->
                match Hashtbl.find_opt m2 i with
                | Some (v2, _, w2resp) when v2 <> v1 && w2resp < w1inv ->
                  bad e2 i
                    (Printf.sprintf
                       "non-monotone: later scan saw %d which precedes %d seen by an earlier scan"
                       v2 v1)
                | _ -> ())
              m1)
        resolved)
    resolved;
  List.rev !violations
