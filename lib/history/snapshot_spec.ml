(** Sequential specification of the partial snapshot object over integer
    values, plus two checkers:

    - {!Checker}: exact linearizability via {!Lin_check} (for short
      histories);
    - {!check_observations}: a sound {e necessary-condition} checker for
      long histories whose written values are globally unique, so that each
      scanned value identifies the update that produced it.  It verifies,
      per scan, that the read versions are not from the future, not
      provably overwritten, mutually consistent with a single linearization
      point, and monotone across real-time-ordered scans.  Any reported
      violation is a genuine linearizability violation (no false alarms);
      it does not catch every violation — the exact checker covers that on
      small cases. *)

type op = Update of int * int | Scan of int array

type res = Ack | Vals of int array

let pp_op ppf = function
  | Update (i, v) -> Fmt.pf ppf "update(%d,%d)" i v
  | Scan idxs ->
    Fmt.pf ppf "scan(%a)" Fmt.(array ~sep:comma int) idxs

let pp_res ppf = function
  | Ack -> Fmt.string ppf "ack"
  | Vals vs -> Fmt.pf ppf "(%a)" Fmt.(array ~sep:comma int) vs

module Spec = struct
  type state = int array

  type nonrec op = op

  type nonrec res = res

  let apply st = function
    | Update (i, v) ->
      let st' = Array.copy st in
      st'.(i) <- v;
      (st', Ack)
    | Scan idxs -> (st, Vals (Array.map (fun i -> st.(i)) idxs))

  let equal_res a b = a = b
end

module Checker = Lin_check.Make (Spec)

let check ~init h = Checker.check ~init h

(* ---- Observation-based necessary-condition checker ---- *)

type violation = {
  scan : (op, res) History.entry;
  component : int;
  reason : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "component %d of %a: %s" v.component
    (History.pp pp_op pp_res)
    v.scan v.reason

(* Pseudo-entry interval for initial values: before every operation. *)
let init_inv = -1

let init_resp = -1

(* Under crash–restart the same value may legitimately be written more than
   once (a recovering process re-invokes an update it cannot know the fate
   of), so a scanned value no longer identifies one producing update but a
   {e candidate list} of them.  Every check below quantifies over the
   candidates: a violation is reported only when {b every} attribution of
   the value to one of its candidate writers violates — which keeps the
   checker sound (no false alarms) at the cost of missing violations hidden
   by the ambiguity.  Histories with globally unique values degenerate to
   singleton candidate lists and get exactly the old precision. *)
let check_observations ~init (h : (op, res) History.entry list) :
    violation list =
  (* writer table: value -> candidate (component, inv, resp_or_max) list *)
  let writers : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let add_writer v cand =
    let l = try Hashtbl.find writers v with Not_found -> [] in
    Hashtbl.replace writers v (cand :: l)
  in
  Array.iteri (fun i v -> add_writer v (i, init_inv, init_resp)) init;
  let updates_by_component : (int, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri (fun i v -> Hashtbl.add updates_by_component i [ (v, init_inv, init_resp) ]) init;
  List.iter
    (fun (e : (op, res) History.entry) ->
      match e.op with
      | Update (i, v) ->
        let resp = Option.value e.resp ~default:max_int in
        add_writer v (i, e.inv, resp);
        let l = try Hashtbl.find updates_by_component i with Not_found -> [] in
        Hashtbl.replace updates_by_component i ((v, e.inv, resp) :: l)
      | Scan _ -> ())
    h;
  let violations = ref [] in
  let bad scan component reason =
    violations := { scan; component; reason } :: !violations
  in
  let scans =
    List.filter_map
      (fun (e : (op, res) History.entry) ->
        match (e.op, e.res) with
        | Scan idxs, Some (Vals vs) -> Some (e, idxs, vs)
        | _ -> None)
      h
  in
  (* Per-scan checks. *)
  List.iter
    (fun ((e : (op, res) History.entry), idxs, vs) ->
      let resp = Option.value e.resp ~default:max_int in
      (* Resolve each returned value to its candidate writing updates on the
         scanned component. *)
      let versions =
        Array.map2
          (fun i v ->
            match Hashtbl.find_opt writers v with
            | None ->
              bad e i (Printf.sprintf "returned value %d never written" v);
              None
            | Some cands -> (
              match
                List.filter_map
                  (fun (i', winv, wresp) ->
                    if i' = i then Some (winv, wresp) else None)
                  cands
              with
              | [] ->
                let i', _, _ = List.hd cands in
                bad e i
                  (Printf.sprintf "value %d belongs to component %d" v i');
                None
              | here -> Some (v, here)))
          idxs vs
      in
      (* (1) no reads from the future: every candidate writer was invoked
         after the scan responded *)
      Array.iteri
        (fun k -> function
          | Some (v, cands)
            when List.for_all (fun (winv, _) -> winv >= resp) cands ->
            bad e idxs.(k)
              (Printf.sprintf "value %d written by an update invoked after the scan responded" v)
          | _ -> ())
        versions;
      (* earliest possible linearization point of the scan: each read value
         forces the scan past the earliest invocation among its candidates *)
      let t_lo =
        Array.fold_left
          (fun acc -> function
            | Some (_, cands) ->
              max acc
                (List.fold_left (fun m (winv, _) -> min m winv) max_int cands)
            | None -> acc)
          e.inv versions
      in
      (* (2)+(3) overwrite: whichever candidate produced the read value,
         some update of a different value lies entirely after it and
         entirely before every possible linearization point of the scan *)
      Array.iteri
        (fun k version ->
          match version with
          | None -> ()
          | Some (v, cands) ->
            let i = idxs.(k) in
            let others = try Hashtbl.find updates_by_component i with Not_found -> [] in
            let overwritten (_, cresp) =
              List.exists
                (fun (w, winv, wresp) ->
                  w <> v && winv > cresp && wresp < t_lo)
                others
            in
            if List.for_all overwritten cands then
              bad e i
                (Printf.sprintf
                   "stale read: value %d was overwritten before the scan could linearize"
                   v))
        versions)
    scans;
  (* (4) monotonicity across real-time-ordered scans — restricted to values
     with a {e unique} candidate writer on the scanned component, where the
     version order is unambiguous *)
  let resolved =
    List.map
      (fun (e, idxs, vs) ->
        let m = Hashtbl.create 8 in
        Array.iteri
          (fun k i ->
            match Hashtbl.find_opt writers vs.(k) with
            | Some cands -> (
              match
                List.filter (fun (i', _, _) -> i' = i) cands
              with
              | [ (_, winv, wresp) ] -> Hashtbl.replace m i (vs.(k), winv, wresp)
              | _ -> ())
            | None -> ())
          idxs;
        (e, m))
      scans
  in
  List.iter
    (fun ((e1 : (op, res) History.entry), m1) ->
      List.iter
        (fun ((e2 : (op, res) History.entry), m2) ->
          if History.precedes e1 e2 then
            Hashtbl.iter
              (fun i (v1, w1inv, _) ->
                match Hashtbl.find_opt m2 i with
                | Some (v2, _, w2resp) when v2 <> v1 && w2resp < w1inv ->
                  bad e2 i
                    (Printf.sprintf
                       "non-monotone: later scan saw %d which precedes %d seen by an earlier scan"
                       v2 v1)
                | _ -> ())
              m1)
        resolved)
    resolved;
  List.rev !violations
