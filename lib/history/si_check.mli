(** Snapshot-isolation oracle over per-transaction observation records
    (docs/MODEL.md §15).

    The transactional layer ([Psnap_txn]) reports, for every finished
    transaction, its begin-timestamp, the txids it treated as in flight at
    begin, its snapshot reads, and — when it committed read-write — its
    commit timestamp and write set.  {!check} decides the two defining SI
    conditions against those claims: visibility per begin snapshot, and no
    lost updates (first committer wins).

    Like [Snapshot_spec.check_observations] this is a sound necessary
    condition: every reported violation is a real SI violation relative to
    the reported timestamps, and with per-transaction-unique written values
    the visibility check is decisive. *)

type 'v obs = {
  txid : int;
  pid : int;
  begin_ts : int;
  excluded : int list;  (** txids in flight at this transaction's begin *)
  committed : bool;
  commit_ts : int option;  (** [Some] only for committed read-write *)
  reads : (int * 'v) list;  (** snapshot reads: (component, value seen) *)
  writes : (int * 'v) list;  (** committed write set; [[]] otherwise *)
}

type 'v violation =
  | Stale_read of {
      txid : int;
      component : int;
      saw : 'v;
      expected : 'v;
      expected_from : int;  (** txid of the writer that should be visible *)
    }
  | Lost_update of {
      txid : int;  (** the second committer, whose commit should have failed *)
      first : int;  (** the first committer it overwrote blindly *)
      component : int;
    }
  | Bad_timestamps of { txid : int; reason : string }

val pp_violation :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v violation -> unit

(** [check ~init obs] — all SI violations implied by the reported
    observations, in deterministic order.  [init] supplies the value a
    snapshot read must see when no committed writer is visible. *)
val check : init:'v array -> 'v obs list -> 'v violation list
