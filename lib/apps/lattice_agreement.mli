(** One-shot lattice agreement from a snapshot object.

    Lattice agreement and atomic snapshots are two faces of the same
    problem: Attiya, Herlihy and Rachman [10] build snapshots {e from}
    lattice agreement (Section 5 of the paper); this module is the easy
    direction — given a linearizable snapshot, lattice agreement is one
    update plus one scan.  Each process proposes a lattice element and
    decides a value such that

    - {b validity}: its own proposal ≤ its decision ≤ the join of all
      proposals made so far;
    - {b comparability}: any two decisions are ordered by ≤.

    Comparability is exactly the containment ordering of linearizable
    scans: a later scan sees a superset of the proposals an earlier one
    saw, so the joins form a chain.  The lattice is supplied as
    [bottom]/[join]; e.g. sets with union, or integer vectors with
    pointwise max. *)

module Make (S : Psnap.Snapshot.S) : sig
  type 'v t

  type 'v handle

  val create : n:int -> bottom:'v -> join:('v -> 'v -> 'v) -> unit -> 'v t
  (** An instance for [n] processes over the join-semilattice
      ([bottom], [join]). *)

  val handle : 'v t -> pid:int -> 'v handle

  val propose : 'v handle -> 'v -> 'v
  (** [propose h x] — publish [x] and decide the join of everything
      visible.  At most one call per process (one-shot). *)
end
