(** Detectable (exactly-once) updates over a partial snapshot object, for
    the crash–restart fault model.

    A process that crashes between invoking [update] and observing its
    return cannot know whether the update took effect; the naive recovery —
    re-invoke everything in the request log — can apply an update {e twice},
    which is observable (a scan sees the overwritten value reappear) and
    non-linearizable.  The classic remedy (detectable objects à la
    Friedman et al., and the crash-prone registers of
    Imbs–Mostéfaoui–Perrin–Raynal, PAPERS.md) is an {e operation id} plus a
    {e response register} in shared memory:

    - every request carries a per-process sequence number [seq];
    - the process {b claims} [seq] in its single-writer shared claim
      register {e before} applying the underlying update, and writes its
      single-writer {b response register} {e after} the apply returns;
    - a new incarnation reads the claim register ({!resume}) and re-invokes
      only requests {e above} it; comparing the two registers ({!status})
      further tells it, per request, whether the apply completed or the
      crash landed in the claim–apply window ([`Maybe_lost]).

    Claim-before-apply yields {e at-most-once}: a crash between claim and
    apply loses the update entirely, which is linearizable — the cut
    operation is pending in the history and may linearize zero times.  A
    crash after apply is detected by the claim and never re-applied.
    Together with the client re-invoking un-claimed requests
    (at-least-once), this is exactly-once for every request whose claim was
    written.

    {!Spec} is the matching sequential specification: updates are keyed by
    [(pid, seq)] and duplicates are absorbed (idempotent no-ops), so any
    {e observable} double application is a linearizability violation the
    checker catches — see [test_crash_restart.ml]. *)

module Make (M : Psnap.Mem.S) (S : Psnap.Snapshot.S) = struct
  type 'a t = {
    snap : 'a S.t;
    claimed : int M.ref_ array;
        (** [claimed.(pid)]: highest sequence number pid has started
            applying; single-writer, survives crashes with the rest of
            shared memory *)
    resp : int M.ref_ array;
        (** [resp.(pid)]: highest sequence number whose apply {e finished}
            (the response register); written strictly after the underlying
            update, so [resp < claimed] pins a crash to the claim–apply
            window *)
  }

  type 'a handle = { t : 'a t; h : 'a S.handle; pid : int }

  let name = "detectable(" ^ S.name ^ ")"

  let create ~n init =
    {
      snap = S.create ~n init;
      claimed =
        Array.init n (fun pid ->
            M.make ~name:(Printf.sprintf "claim[%d]" pid) (-1));
      resp =
        Array.init n (fun pid ->
            M.make ~name:(Printf.sprintf "resp[%d]" pid) (-1));
    }

  let handle t ~pid = { t; h = S.handle t.snap ~pid; pid }

  (** Highest sequence number this pid ever claimed, [-1] if none: the
      first thing a recovering incarnation reads.  Requests at or below it
      must {e not} be re-invoked (their fate is sealed: applied, or lost to
      a crash between claim and apply); requests above it must be. *)
  let resume h = M.read h.t.claimed.(h.pid)

  (** What the response register proves about request [seq] after a crash:
      [`Completed] — the apply finished (and will never be re-applied);
      [`Maybe_lost] — claimed, but the crash hit the claim–apply window, so
      the update may or may not have taken effect (re-applying would risk a
      double apply, so it is {e not} retried — the client is told instead);
      [`Never_claimed] — safe and necessary to re-invoke. *)
  let status h ~seq =
    let c = M.read h.t.claimed.(h.pid) in
    if seq > c then `Never_claimed
    else if seq <= M.read h.t.resp.(h.pid) then `Completed
    else `Maybe_lost

  (** [update h ~seq i v] applies request [seq] at most once across all
      incarnations of [h.pid].  Sequence numbers must be issued in
      increasing order by the client (its request log position).  Returns
      [`Applied] if this call performed the underlying update, [`Skipped]
      if the request was already claimed by an earlier incarnation. *)
  let update h ~seq i v =
    let c = M.read h.t.claimed.(h.pid) in
    if seq <= c then `Skipped
    else begin
      (* Claim strictly before applying: a crash inside this window loses
         the update (at-most-once), a crash after it is detected. *)
      M.write h.t.claimed.(h.pid) seq;
      S.update h.h i v;
      (* Response strictly after applying: an incarnation that finds
         [resp >= seq] knows the update landed exactly once. *)
      M.write h.t.resp.(h.pid) seq;
      `Applied
    end

  let scan h idxs = S.scan h.h idxs

  let last_scan_collects h = S.last_scan_collects h.h
end

(** Sequential specification of the detectable partial snapshot over
    integer values: updates keyed by [(pid, seq)], duplicates absorbed.
    Because a duplicate is a no-op, a history in which a re-invoked update
    {e observably} applies twice (some scan sees the overwritten value
    reappear) is non-linearizable — the property the raw, non-detectable
    recovery violates. *)
module Spec = struct
  type state = { vals : int array; applied : int array }
  (** [applied.(pid)]: highest [seq] linearized for [pid] ([-1] none). *)

  type op = Up of { pid : int; seq : int; i : int; v : int } | Scan of int array

  type res = Ack | Vals of int array

  let init ~n vals = { vals = Array.copy vals; applied = Array.make n (-1) }

  let apply st = function
    | Up { pid; seq; i; v } ->
      if seq <= st.applied.(pid) then (st, Ack) (* duplicate: absorbed *)
      else
        let[@psnap.local_state
             "sequential-spec model state: fresh private copies mutated \
              before being returned; never simulated shared memory"] vals =
          Array.copy st.vals
        in
        let[@psnap.local_state
             "sequential-spec model state: fresh private copy, as above"]
            applied =
          Array.copy st.applied
        in
        vals.(i) <- v;
        applied.(pid) <- seq;
        ({ vals; applied }, Ack)
    | Scan idxs -> (st, Vals (Array.map (fun i -> st.vals.(i)) idxs))

  let equal_res a b = a = b

  let pp_op ppf = function
    | Up { pid; seq; i; v } -> Fmt.pf ppf "up#%d.%d(%d,%d)" pid seq i v
    | Scan idxs -> Fmt.pf ppf "scan(%a)" Fmt.(array ~sep:comma int) idxs

  let pp_res ppf = function
    | Ack -> Fmt.string ppf "ack"
    | Vals vs -> Fmt.pf ppf "(%a)" Fmt.(array ~sep:comma int) vs
end

module Checker = Psnap.Lin_check.Make (Spec)
