(** A small typed key-value facade over the partial snapshot object — the
    downstream-user face of the library: named keys, single-key writes, and
    atomic multi-key reads with a declared key set (the stock-database shape
    of the paper's introduction: unpredictable queries over overlapping
    subsets of a large table).

    Keys are fixed at creation (the snapshot object has a fixed [m]); each
    key maps to one component.  [get_many] is one partial scan: its cost
    depends only on the number of keys asked for, not the table size. *)

module Make (S : Psnap.Snapshot.S) = struct
  type ('k, 'v) t = {
    snap : 'v S.t;
    index : ('k, int) Hashtbl.t;
        [@psnap.local_state
          "key-to-component map, populated once in create and read-only \
           afterwards; key lookup is not a shared-memory step"]
    keys : 'k array;
  }

  type ('k, 'v) handle = { t : ('k, 'v) t; h : 'v S.handle }

  (** [create ~n bindings] — a store for the given keys and initial values,
      shared by [n] processes.  Duplicate keys are rejected. *)
  let create ~n bindings =
    let keys = Array.of_list (List.map fst bindings) in
    let init = Array.of_list (List.map snd bindings) in
    let[@psnap.local_state
         "built privately during create, before the store is shared"] index =
      Hashtbl.create (Array.length keys)
    in
    Array.iteri
      (fun i k ->
        if Hashtbl.mem index k then invalid_arg "Kv.create: duplicate key";
        Hashtbl.add index k i)
      keys;
    { snap = S.create ~n init; index; keys }

  let handle t ~pid = { t; h = S.handle t.snap ~pid }

  let component t k =
    match Hashtbl.find_opt t.index k with
    | Some i -> i
    | None -> invalid_arg "Kv: unknown key"

  let set hd k v = S.update hd.h (component hd.t k) v

  (** Atomic read of one key (a one-component partial scan). *)
  let get hd k = (S.scan hd.h [| component hd.t k |]).(0)

  (** Atomic read of several keys at a single instant.  Duplicates allowed;
      results align with the request. *)
  let get_many hd ks =
    let idxs = Array.of_list (List.map (component hd.t) ks) in
    let vals = S.scan hd.h idxs in
    List.mapi (fun i k -> (k, vals.(i))) ks

  (** Atomic read of everything (a full snapshot). *)
  let get_all hd =
    let m = Array.length hd.t.keys in
    let vals = S.scan hd.h (Array.init m (fun i -> i)) in
    Array.to_list (Array.map2 (fun k v -> (k, v)) hd.t.keys vals)

  let keys t = Array.to_list t.keys

  let mem t k = Hashtbl.mem t.index k
end
