(** A small typed key-value facade over the partial snapshot object — the
    downstream-user face of the library: named keys, single-key writes, and
    atomic multi-key reads with a declared key set (the stock-database shape
    of the paper's introduction: unpredictable queries over overlapping
    subsets of a large table).

    Keys are fixed at creation (the snapshot object has a fixed [m]); each
    key maps to one component.  [get_many] is one partial scan: its cost
    depends only on the number of keys asked for, not the table size. *)

module Make (S : Psnap.Snapshot.S) = struct
  type ('k, 'v) t = {
    snap : 'v S.t;
    index : ('k, int) Hashtbl.t;
        [@psnap.local_state
          "key-to-component map, populated once in create and read-only \
           afterwards; key lookup is not a shared-memory step"]
    keys : 'k array;
  }

  type ('k, 'v) handle = { t : ('k, 'v) t; h : 'v S.handle }

  (** [create ~n bindings] — a store for the given keys and initial values,
      shared by [n] processes.  Duplicate keys are rejected. *)
  let create ~n bindings =
    let keys = Array.of_list (List.map fst bindings) in
    let init = Array.of_list (List.map snd bindings) in
    let[@psnap.local_state
         "built privately during create, before the store is shared"] index =
      Hashtbl.create (Array.length keys)
    in
    Array.iteri
      (fun i k ->
        if Hashtbl.mem index k then invalid_arg "Kv.create: duplicate key";
        Hashtbl.add index k i)
      keys;
    { snap = S.create ~n init; index; keys }

  let handle t ~pid = { t; h = S.handle t.snap ~pid }

  let component t k =
    match Hashtbl.find_opt t.index k with
    | Some i -> i
    | None -> invalid_arg "Kv: unknown key"

  let set hd k v = S.update hd.h (component hd.t k) v

  (** Atomic read of one key (a one-component partial scan). *)
  let get hd k = (S.scan hd.h [| component hd.t k |]).(0)

  (** Atomic read of several keys at a single instant.  Duplicates allowed;
      results align with the request. *)
  let get_many hd ks =
    let idxs = Array.of_list (List.map (component hd.t) ks) in
    let vals = S.scan hd.h idxs in
    List.mapi (fun i k -> (k, vals.(i))) ks

  (** Atomic read of everything (a full snapshot). *)
  let get_all hd =
    let m = Array.length hd.t.keys in
    let vals = S.scan hd.h (Array.init m (fun i -> i)) in
    Array.to_list (Array.map2 (fun k v -> (k, v)) hd.t.keys vals)

  let keys t = Array.to_list t.keys

  let mem t k = Hashtbl.mem t.index k
end

(** The transactional store facade (docs/MODEL.md §15): the same typed
    key-value surface over the MVCC layer.  [get]/[get_many] inside a
    transaction read the begin snapshot; [set] buffers a write published
    only by [commit]; a transaction that never wrote is the paper's
    read-only transaction — one partial scan, no validation, no abort. *)
module Make_txn (T : Psnap_txn.Txn.S) = struct
  type ('k, 'v) t = {
    store : 'v T.t;
    index : ('k, int) Hashtbl.t;
        [@psnap.local_state
          "key-to-component map, populated once in create and read-only \
           afterwards; key lookup is not a shared-memory step"]
    keys : 'k array;
  }

  type ('k, 'v) handle = { t : ('k, 'v) t; h : 'v T.handle }

  type ('k, 'v) txn = { ht : ('k, 'v) t; x : 'v T.txn }

  (** [create ~n bindings] — a transactional store for the given keys and
      initial values, shared by [n] processes.  Duplicate keys are
      rejected; [mode] selects first-committer-wins (default) or the
      deliberately-unsound last-writer-wins commit mode. *)
  let create ?mode ~n bindings =
    let keys = Array.of_list (List.map fst bindings) in
    let init = Array.of_list (List.map snd bindings) in
    let[@psnap.local_state
         "built privately during create, before the store is shared"] index =
      Hashtbl.create (Array.length keys)
    in
    Array.iteri
      (fun i k ->
        if Hashtbl.mem index k then invalid_arg "Kv.create: duplicate key";
        Hashtbl.add index k i)
      keys;
    { store = T.create ?mode ~n init; index; keys }

  let handle t ~pid = { t; h = T.handle t.store ~pid }

  let component t k =
    match Hashtbl.find_opt t.index k with
    | Some i -> i
    | None -> invalid_arg "Kv: unknown key"

  let begin_ hd = { ht = hd.t; x = T.begin_ hd.h }

  let get tx k = T.read tx.x (component tx.ht k)

  (** Snapshot read of several keys.  Duplicates allowed; results align
      with the request. *)
  let get_many tx ks =
    let idxs = Array.of_list (List.map (component tx.ht) ks) in
    let vals = T.read_many tx.x idxs in
    List.mapi (fun i k -> (k, vals.(i))) ks

  let get_all tx =
    let m = Array.length tx.ht.keys in
    let vals = T.read_many tx.x (Array.init m (fun i -> i)) in
    Array.to_list (Array.map2 (fun k v -> (k, v)) tx.ht.keys vals)

  let set tx k v = T.write tx.x (component tx.ht k) v

  let commit tx = T.commit tx.x

  let abort tx = T.abort tx.x

  let resume hd = T.resume hd.h

  let observation tx = T.observation tx.x

  let keys t = Array.to_list t.keys

  let mem t k = Hashtbl.mem t.index k
end
