(** Detectable (exactly-once) updates over a partial snapshot object, for
    the crash–restart fault model.

    A process that crashes between invoking [update] and observing its
    return cannot know whether the update took effect; the naive recovery
    — re-invoke everything in the request log — can apply an update
    {e twice}, which is observable (a scan sees the overwritten value
    reappear) and non-linearizable.  The remedy (detectable objects à la
    Friedman et al., and the crash-prone registers of
    Imbs–Mostéfaoui–Perrin–Raynal, PAPERS.md) is a per-process claim
    register written {e before} the underlying apply and a response
    register written {e after} it: a new incarnation re-invokes only
    requests above the claim ({!Make.resume}), and {!Make.status} pins
    each claimed request to [`Completed] or the claim–apply window
    ([`Maybe_lost]).  See [test_crash_restart.ml] for the checker-backed
    demonstration. *)

module Make (M : Psnap.Mem.S) (S : Psnap.Snapshot.S) : sig
  type 'a t

  type 'a handle

  val name : string

  val create : n:int -> 'a array -> 'a t

  val handle : 'a t -> pid:int -> 'a handle

  val resume : 'a handle -> int
  (** Highest sequence number this pid ever claimed, [-1] if none: the
      first thing a recovering incarnation reads.  Requests at or below it
      must {e not} be re-invoked (their fate is sealed: applied, or lost
      to a crash between claim and apply); requests above it must be. *)

  val status :
    'a handle -> seq:int -> [ `Completed | `Maybe_lost | `Never_claimed ]
  (** What the response register proves about request [seq] after a
      crash: [`Completed] — the apply finished (and will never be
      re-applied); [`Maybe_lost] — claimed, but the crash hit the
      claim–apply window, so re-applying would risk a double apply and is
      not attempted; [`Never_claimed] — safe and necessary to
      re-invoke. *)

  val update : 'a handle -> seq:int -> int -> 'a -> [ `Applied | `Skipped ]
  (** [update h ~seq i v] applies request [seq] at most once across all
      incarnations of [h.pid].  Sequence numbers must be issued in
      increasing order by the client (its request log position).  Returns
      [`Applied] if this call performed the underlying update, [`Skipped]
      if the request was already claimed by an earlier incarnation. *)

  val scan : 'a handle -> int array -> 'a array

  val last_scan_collects : 'a handle -> int
end

(** Sequential specification of the detectable partial snapshot over
    integer values: updates keyed by [(pid, seq)], duplicates absorbed.
    Because a duplicate is a no-op, a history in which a re-invoked update
    {e observably} applies twice (some scan sees the overwritten value
    reappear) is non-linearizable — the property the raw, non-detectable
    recovery violates. *)
module Spec : sig
  type state = { vals : int array; applied : int array }
  (** [applied.(pid)]: highest [seq] linearized for [pid] ([-1] none). *)

  type op =
    | Up of { pid : int; seq : int; i : int; v : int }
    | Scan of int array

  type res = Ack | Vals of int array

  val init : n:int -> int array -> state

  val apply : state -> op -> state * res

  val equal_res : res -> res -> bool

  val pp_op : Format.formatter -> op -> unit

  val pp_res : Format.formatter -> res -> unit
end

module Checker : module type of Psnap.Lin_check.Make (Spec)
