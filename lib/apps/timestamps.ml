(** Concurrent timestamping from snapshots — the introduction of the paper
    lists timestamping [16] among the classic snapshot applications.

    [next h] returns a globally ordered label [(counter, pid)]: it scans
    all announcement components atomically, picks one past the maximum, and
    publishes it.  The snapshot's linearizability gives the {e monotonicity}
    property timestamping needs: if one [next] completes before another
    begins, the later one returns a strictly larger label.  Concurrent
    calls may be ordered either way but always receive distinct labels
    (ties broken by process id). *)

module Make (S : Psnap.Snapshot.S) = struct
  type t = { snap : int S.t; n : int }

  type handle = { t : t; pid : int; h : int S.handle }

  type label = { counter : int; pid : int }

  let compare_label a b =
    match compare a.counter b.counter with
    | 0 -> compare a.pid b.pid
    | c -> c

  let create ~n () = { snap = S.create ~n (Array.make n 0); n }

  let handle t ~pid = { t; pid; h = S.handle t.snap ~pid }

  let next hd =
    let all = Array.init hd.t.n (fun q -> q) in
    let seen = S.scan hd.h all in
    let counter = 1 + Array.fold_left max 0 seen in
    S.update hd.h hd.pid counter;
    { counter; pid = hd.pid }

  (** The largest label issued so far (by any completed [next]); like
      [next] without publishing. *)
  let current hd =
    let all = Array.init hd.t.n (fun q -> q) in
    let seen = S.scan hd.h all in
    Array.fold_left max 0 seen
end
