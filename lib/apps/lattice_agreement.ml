(** One-shot lattice agreement from a snapshot object.

    Lattice agreement and atomic snapshots are two faces of the same
    problem: Attiya, Herlihy and Rachman [10] build snapshots {e from}
    lattice agreement (Section 5 of the paper); this module is the easy
    direction — given a linearizable snapshot, lattice agreement is one
    update plus one scan.  Each process proposes a lattice element and
    decides a value such that

    - {b validity}: its own proposal ≤ its decision ≤ the join of all
      proposals made so far;
    - {b comparability}: any two decisions are ordered by ≤.

    Comparability is exactly the containment ordering of linearizable
    scans: a later scan sees a superset of the proposals an earlier one
    saw, so the joins form a chain.  With partial snapshots the instance
    can live inside a larger vector and only scan its own components.

    The lattice is supplied as [bottom]/[join]; e.g. sets with union, or
    integer vectors with pointwise max. *)

module Make (S : Psnap.Snapshot.S) = struct
  type 'v t = { snap : 'v S.t; n : int; join : 'v -> 'v -> 'v }

  type 'v handle = { t : 'v t; pid : int; h : 'v S.handle }

  (** [create ~n ~bottom ~join ()] — an instance for [n] processes over the
      join-semilattice ([bottom], [join]). *)
  let create ~n ~bottom ~join () =
    { snap = S.create ~n (Array.make n bottom); n; join }

  let handle t ~pid = { t; pid; h = S.handle t.snap ~pid }

  (** [propose h x] — publish [x] and decide the join of everything
      visible.  At most one call per process (one-shot). *)
  let propose hd x =
    S.update hd.h hd.pid x;
    let seen = S.scan hd.h (Array.init hd.t.n (fun q -> q)) in
    Array.fold_left hd.t.join x seen
end
