(** Commit–adopt built on a partial snapshot object — the paper's
    introduction cites snapshots as "a building block for ... randomized
    consensus [6, 7]"; commit–adopt (Gafni's graded agreement) is the
    canonical such block, and is used by [examples/consensus.ml] to build a
    full randomized consensus.

    [propose h ~pid v] grades its outcome, with the wait-free guarantees:

    - {b validity}: the carried value is some process's proposal;
    - {b convergence}: if every participant proposes the same [v], every
      outcome is [Commit v];
    - {b agreement}: if {e any} process returns [Commit w], every other
      process returns [Commit w] or [Adopt w] — never [Free _] — so a
      protocol that re-proposes the carried value can only ever commit [w];
    - [Free v] (no grade-1 evidence seen) tells a randomized consensus
      layer it is safe to replace [v] by a coin flip: no process can have
      committed in this instance before the [Free] holder's second scan.

    The two rounds live in one partial snapshot object of [2n] components —
    each round's scan is a declared-subset partial scan of [n] of them,
    exactly the access pattern partial snapshots make cheap. *)

module Make (S : Psnap.Snapshot.S) = struct
  type 'v slot = Empty | R1 of 'v | R2 of bool * 'v

  type 'v t = { snap : 'v slot S.t; n : int }

  type 'v handle = { t : 'v t; h : 'v slot S.handle }

  type 'v outcome =
    | Commit of 'v  (** decided *)
    | Adopt of 'v  (** must carry this value forward *)
    | Free of 'v  (** own value; no one can have committed — a coin may
                      replace it *)

  let value_of = function Commit v | Adopt v | Free v -> v

  let committed = function Commit _ -> true | Adopt _ | Free _ -> false

  let create ~n () =
    { snap = S.create ~n (Array.make (2 * n) Empty); n }

  let handle t ~pid = { t; h = S.handle t.snap ~pid }

  let propose hd ~pid v =
    let n = hd.t.n in
    let round1 = Array.init n (fun q -> q) in
    let round2 = Array.init n (fun q -> n + q) in
    (* round 1: post my proposal, scan the proposals *)
    S.update hd.h pid (R1 v);
    let seen = S.scan hd.h round1 in
    let proposals =
      Array.to_list seen
      |> List.filter_map (function
           | R1 w | R2 (_, w) -> Some w
           | Empty -> None)
    in
    let unanimous =
      match proposals with
      | [] -> true
      | w :: rest -> List.for_all (fun x -> x = w) rest
    in
    (* round 2: post (all-agreed?, value), scan round 2 *)
    S.update hd.h (n + pid) (R2 (unanimous, v));
    let seen2 = S.scan hd.h round2 in
    let grades =
      Array.to_list seen2
      |> List.filter_map (function
           | R2 (g, w) -> Some (g, w)
           | R1 _ | Empty -> None)
    in
    match List.find_opt (fun (g, _) -> g) grades with
    | Some (_, w) ->
      if List.for_all (fun (g, _) -> g) grades then Commit w else Adopt w
    | None -> Free v
end
