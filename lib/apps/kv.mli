(** A small typed key-value facade over the partial snapshot object — the
    downstream-user face of the library: named keys, single-key writes,
    and atomic multi-key reads with a declared key set (the stock-database
    shape of the paper's introduction: unpredictable queries over
    overlapping subsets of a large table).

    Keys are fixed at creation (the snapshot object has a fixed [m]); each
    key maps to one component.  {!Make.get_many} is one partial scan: its
    cost depends only on the number of keys asked for, not the table
    size. *)

module Make (S : Psnap.Snapshot.S) : sig
  type ('k, 'v) t

  type ('k, 'v) handle

  val create : n:int -> ('k * 'v) list -> ('k, 'v) t
  (** [create ~n bindings] — a store for the given keys and initial
      values, shared by [n] processes.  Duplicate keys are rejected. *)

  val handle : ('k, 'v) t -> pid:int -> ('k, 'v) handle

  val set : ('k, 'v) handle -> 'k -> 'v -> unit
  (** Write one key (one component update).  Unknown keys raise
      [Invalid_argument]. *)

  val get : ('k, 'v) handle -> 'k -> 'v
  (** Atomic read of one key (a one-component partial scan). *)

  val get_many : ('k, 'v) handle -> 'k list -> ('k * 'v) list
  (** Atomic read of several keys at a single instant.  Duplicates
      allowed; results align with the request. *)

  val get_all : ('k, 'v) handle -> ('k * 'v) list
  (** Atomic read of everything (a full snapshot). *)

  val keys : ('k, 'v) t -> 'k list
  (** The declared key set, in creation order. *)

  val mem : ('k, 'v) t -> 'k -> bool
end
