(** A small typed key-value facade over the partial snapshot object — the
    downstream-user face of the library: named keys, single-key writes,
    and atomic multi-key reads with a declared key set (the stock-database
    shape of the paper's introduction: unpredictable queries over
    overlapping subsets of a large table).

    Keys are fixed at creation (the snapshot object has a fixed [m]); each
    key maps to one component.  {!Make.get_many} is one partial scan: its
    cost depends only on the number of keys asked for, not the table
    size. *)

module Make (S : Psnap.Snapshot.S) : sig
  type ('k, 'v) t

  type ('k, 'v) handle

  val create : n:int -> ('k * 'v) list -> ('k, 'v) t
  (** [create ~n bindings] — a store for the given keys and initial
      values, shared by [n] processes.  Duplicate keys are rejected. *)

  val handle : ('k, 'v) t -> pid:int -> ('k, 'v) handle

  val set : ('k, 'v) handle -> 'k -> 'v -> unit
  (** Write one key (one component update).  Unknown keys raise
      [Invalid_argument]. *)

  val get : ('k, 'v) handle -> 'k -> 'v
  (** Atomic read of one key (a one-component partial scan). *)

  val get_many : ('k, 'v) handle -> 'k list -> ('k * 'v) list
  (** Atomic read of several keys at a single instant.  Duplicates
      allowed; results align with the request. *)

  val get_all : ('k, 'v) handle -> ('k * 'v) list
  (** Atomic read of everything (a full snapshot). *)

  val keys : ('k, 'v) t -> 'k list
  (** The declared key set, in creation order. *)

  val mem : ('k, 'v) t -> 'k -> bool
end

(** The transactional store facade (docs/MODEL.md §15): the same typed
    key-value surface over the MVCC snapshot-isolation layer.  Reads
    inside a transaction see its begin snapshot (plus its own buffered
    writes); {!Make_txn.set} buffers a write published only by
    {!Make_txn.commit}; a transaction that never wrote is a read-only
    transaction — one partial scan, no validation, no abort. *)
module Make_txn (T : Psnap_txn.Txn.S) : sig
  type ('k, 'v) t

  type ('k, 'v) handle

  type ('k, 'v) txn
  (** One transaction of one handle; finished by [commit] or [abort]. *)

  val create :
    ?mode:Psnap_txn.Txn.mode -> n:int -> ('k * 'v) list -> ('k, 'v) t
  (** [create ~n bindings] — a transactional store for the given keys and
      initial values, shared by [n] processes.  Duplicate keys are
      rejected. *)

  val handle : ('k, 'v) t -> pid:int -> ('k, 'v) handle

  val begin_ : ('k, 'v) handle -> ('k, 'v) txn

  val get : ('k, 'v) txn -> 'k -> 'v
  (** Snapshot read of one key.  Unknown keys raise [Invalid_argument]. *)

  val get_many : ('k, 'v) txn -> 'k list -> ('k * 'v) list
  (** Snapshot read of several keys (one partial scan).  Duplicates
      allowed; results align with the request. *)

  val get_all : ('k, 'v) txn -> ('k * 'v) list
  (** Snapshot read of every key. *)

  val set : ('k, 'v) txn -> 'k -> 'v -> unit
  (** Buffer a write, published by {!commit}. *)

  val commit : ('k, 'v) txn -> (int, Psnap_txn.Txn.abort_reason) result

  val abort : ('k, 'v) txn -> unit

  val resume : ('k, 'v) handle -> 'v Psnap.Si_check.obs option
  (** Crash-restart recovery for this pid (see [Psnap_txn.Txn.S.resume]);
      [Some obs] reports a dead incarnation's rolled-forward commit. *)

  val observation : ('k, 'v) txn -> 'v Psnap.Si_check.obs option

  val keys : ('k, 'v) t -> 'k list

  val mem : ('k, 'v) t -> 'k -> bool
end
