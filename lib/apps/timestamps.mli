(** Concurrent timestamping from snapshots — the introduction of the paper
    lists timestamping [16] among the classic snapshot applications.

    {!Make.next} returns a globally ordered label [(counter, pid)]: it
    scans all announcement components atomically, picks one past the
    maximum, and publishes it.  The snapshot's linearizability gives the
    {e monotonicity} property timestamping needs: if one [next] completes
    before another begins, the later one returns a strictly larger label.
    Concurrent calls may be ordered either way but always receive distinct
    labels (ties broken by process id). *)

module Make (S : Psnap.Snapshot.S) : sig
  type t

  type handle

  type label = { counter : int; pid : int }

  val compare_label : label -> label -> int
  (** Total order: by counter, ties by process id. *)

  val create : n:int -> unit -> t

  val handle : t -> pid:int -> handle

  val next : handle -> label
  (** Draw and publish a fresh label, strictly larger than every label
      whose [next] completed before this call began. *)

  val current : handle -> int
  (** The largest counter issued so far (by any completed [next]); like
      [next] without publishing. *)
end
