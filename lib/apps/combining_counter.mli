(** A wait-free linearizable counter with atomic multi-counter reads — one
    of the "concurrent object constructions" the paper's introduction cites
    snapshots for [8, 17].

    Each process accumulates its contribution in its own component
    (single-writer, so a plain read-modify-write is safe); a read scans all
    contributions atomically and sums them.  Several counters can share one
    snapshot object, and {!Make.read_many} returns an atomic view
    {e across} counters — a consistent sum over any subset, which is
    exactly a partial scan, and impossible with independent atomic
    integers. *)

module Make (S : Psnap.Snapshot.S) : sig
  type t

  type handle

  val create : n:int -> counters:int -> unit -> t
  (** [create ~n ~counters ()] — [counters] counters shared by [n]
      processes, in one snapshot object of [n * counters] components. *)

  val handle : t -> pid:int -> handle

  val add : handle -> counter:int -> int -> unit
  (** Add a (possibly negative) delta to one counter.  Out-of-range
      counter indices raise [Invalid_argument]. *)

  val incr : handle -> counter:int -> unit

  val read : handle -> counter:int -> int
  (** Atomic read of one counter: a partial scan of its [n] slots. *)

  val read_many : handle -> int list -> (int * int) list
  (** Atomic read of several counters at one instant — one partial scan
      over all their slots; results align with the request. *)
end
