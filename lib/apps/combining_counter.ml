(** A wait-free linearizable counter with atomic multi-counter reads — one
    of the "concurrent object constructions" the paper's introduction cites
    snapshots for [8, 17].

    Each process accumulates its contribution in its own component
    (single-writer, so a plain read-modify-write is safe); a read scans all
    contributions atomically and sums them.  Several counters can share one
    snapshot object, and [read_many] returns an atomic view {e across}
    counters — a consistent sum over any subset, which is exactly a partial
    scan, and impossible with independent atomic integers. *)

module Make (S : Psnap.Snapshot.S) = struct
  type t = { snap : int S.t; n : int; counters : int }

  type handle = {
    t : t;
    pid : int;
    h : int S.handle;
    mutable local : int array;
        [@psnap.local_state
          "per-process running contributions; single-writer scratch, only \
           ever published through S.update"]
  }

  let create ~n ~counters () =
    { snap = S.create ~n (Array.make (n * counters) 0); n; counters }

  let handle t ~pid =
    { t; pid; h = S.handle t.snap ~pid; local = Array.make t.counters 0 }

  let slot t ~counter ~pid = (counter * t.n) + pid

  let add hd ~counter delta =
    if counter < 0 || counter >= hd.t.counters then
      invalid_arg "Combining_counter.add: counter index";
    hd.local.(counter) <- hd.local.(counter) + delta;
    S.update hd.h (slot hd.t ~counter ~pid:hd.pid) hd.local.(counter)

  let incr hd ~counter = add hd ~counter 1

  (** Atomic read of one counter: a partial scan of its [n] slots. *)
  let read hd ~counter =
    let idxs = Array.init hd.t.n (fun q -> slot hd.t ~counter ~pid:q) in
    Array.fold_left ( + ) 0 (S.scan hd.h idxs)

  (** Atomic read of several counters at one instant: one partial scan over
      all their slots. *)
  let read_many hd counters =
    let idxs =
      Array.concat
        (List.map
           (fun counter ->
             if counter < 0 || counter >= hd.t.counters then
               invalid_arg "Combining_counter.read_many: counter index";
             Array.init hd.t.n (fun q -> slot hd.t ~counter ~pid:q))
           counters)
    in
    let vals = S.scan hd.h idxs in
    List.mapi
      (fun k counter ->
        let base = k * hd.t.n in
        let[@psnap.local_state
             "summation scratch over the already-atomic scan result"] sum =
          ref 0
        in
        for q = 0 to hd.t.n - 1 do
          sum := !sum + vals.(base + q)
        done;
        (counter, !sum))
      counters
end
