(** Commit–adopt built on a partial snapshot object — the paper's
    introduction cites snapshots as "a building block for ... randomized
    consensus [6, 7]"; commit–adopt (Gafni's graded agreement) is the
    canonical such block, and is used by [examples/consensus.ml] to build a
    full randomized consensus.

    {!Make.propose} grades its outcome, with the wait-free guarantees:

    - {b validity}: the carried value is some process's proposal;
    - {b convergence}: if every participant proposes the same [v], every
      outcome is [Commit v];
    - {b agreement}: if {e any} process returns [Commit w], every other
      process returns [Commit w] or [Adopt w] — never [Free _] — so a
      protocol that re-proposes the carried value can only ever commit
      [w];
    - [Free v] (no grade-1 evidence seen) tells a randomized consensus
      layer it is safe to replace [v] by a coin flip.

    The two rounds live in one partial snapshot object of [2n] components —
    each round's scan is a declared-subset partial scan of [n] of them,
    exactly the access pattern partial snapshots make cheap. *)

module Make (S : Psnap.Snapshot.S) : sig
  type 'v t

  type 'v handle

  type 'v outcome =
    | Commit of 'v  (** decided *)
    | Adopt of 'v  (** must carry this value forward *)
    | Free of 'v
        (** own value; no one can have committed — a coin may replace it *)

  val value_of : 'v outcome -> 'v

  val committed : 'v outcome -> bool

  val create : n:int -> unit -> 'v t

  val handle : 'v t -> pid:int -> 'v handle

  val propose : 'v handle -> pid:int -> 'v -> 'v outcome
  (** One graded proposal; at most one call per process per instance. *)
end
