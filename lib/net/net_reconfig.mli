(** Online reconfiguration of the replicated snapshot service
    (docs/MODEL.md §16): epoch-fenced membership changes, replica
    replacement and health tracking over {!Net_abd}'s protocol rounds.

    A reconfiguration is two-phase: {e seal} the current configuration
    (collect a read quorum of state snapshots; under fencing every ack
    closes its replica to the old epoch, so no stale quorum can commit
    after the handoff), then {e transfer and activate} (install the
    merged state at a write quorum of the new members under the new
    epoch, durably record the new configuration).  Retired replicas stay
    sealed and drain.  Epochs are write-ahead proposed in the manager's
    durable cell before any replica seals, so a crashed-and-restarted
    manager never reuses an epoch and re-drives an interrupted
    reconfiguration to completion.

    The manager also suspects members via bounded silent-step probe
    timeouts and auto-proposes replacement configurations from the spare
    pool, and serves [Scheduler.Reconfig] decisions (the [config_churn]
    nemesis) as rotation requests.

    {!Naive} mode drops the fence — the split-brain lost write it allows
    is the E21 witness. *)

type mode =
  | Fenced  (** sound: seal before transfer, epoch fencing on *)
  | Naive
      (** deliberately unsound: membership swaps without fencing — a write
          concurrent with the transfer can be lost (E21) *)

type t

(** [attach c] installs a membership manager on cluster [c] (which must
    have been built with [~spares] or [~with_manager]): allocates the
    manager's durable state cell, sets the fencing discipline from
    [mode], enables the client-side configuration chase, and installs the
    [Sim.set_reconfig_dispatcher] hook that turns [Scheduler.Reconfig]
    decisions into churn requests.  [miss_threshold] consecutive missed
    probes (each a single [Ping] attempt polled [probe_budget] steps)
    suspect a member; [max_reconfigs] caps proposals so a storm of
    suspicions cannot thrash the run.
    @raise Invalid_argument if [c] has no manager endpoint. *)
val attach :
  ?mode:mode ->
  ?miss_threshold:int ->
  ?probe_budget:int ->
  ?max_reconfigs:int ->
  Net_abd.sim_cluster ->
  t

(** Clears the reconfiguration-decision dispatcher (run teardown). *)
val detach : t -> unit

val mode : t -> mode

(** The manager's durably recorded current configuration.  Reads the
    cell: call outside the run (pre/post-mortem) or from a fiber. *)
val current_config : t -> Net_abd.config

(** Completed reconfigurations (activations) so far. *)
val reconfig_count : t -> int

(** Pool nodes suspected dead (sticky: never re-admitted), as node
    ids. *)
val suspected_nodes : t -> int list

(** The manager fiber's body — run it at its node's pid
    ([Net_abd.manager_node]); retires when the client sessions close.
    Also its own correct restart body: everything it needs is durable. *)
val manager_body : t -> unit -> unit

(** {2 Loadgen (multicore) variant}

    The control thread is the sequencer — same two-phase protocol, no
    crash model, activation published through the cluster's shared
    configuration cell. *)

type mc_t

val mc_attach : ?mode:mode -> Net_abd.mc_cluster -> mc_t
val mc_current_config : mc_t -> Net_abd.config

(** [mc_reconfigure t ~members] — seal, transfer, activate; returns the
    new configuration.
    @raise Net_abd.Unavailable when a phase cannot reach its quorum. *)
val mc_reconfigure : mc_t -> members:int list -> Net_abd.config
