(** ABD-style multi-writer quorum registers over the message transport
    (docs/MODEL.md §14): a [Psnap_mem.Mem_intf.S] backend whose cells are
    replicated across [replicas] crash-prone replica processes, so every
    snapshot algorithm in the repository runs unchanged against a
    partition-tolerant replicated service.

    Reads and writes follow Attiya–Bar-Noy–Dolev: a Get round to a
    majority, then (for writes, and for reads that saw a lagging replier)
    a Put round installing the maximally-tagged value at a majority —
    the read write-back that makes reads linearizable.  [cas] and
    [fetch_and_add] are forwarded to the register's home replica, which
    applies them atomically against its durable state under per-client
    deduplication (at-most-once despite resends and duplicated
    deliveries); the client replicates the result to a majority before
    returning.  Every phase is bounded (resends with growing poll budgets,
    then {!Unavailable}), and a per-client circuit breaker makes a
    partitioned client fail fast instead of spinning.

    Node numbering: clients are nodes [0 .. clients-1] (client node id =
    simulator pid), replicas are nodes [clients .. clients+replicas-1] —
    the ids the network nemeses ([Scheduler.partition_storm], ...) and
    [Net_fault] schedule lines refer to. *)

(** Raised when an operation cannot reach a majority within its attempt
    budget, or fails fast on an open circuit breaker.  The operation may
    or may not have taken effect (a quorum write can land without its ack
    arriving) — exactly the "pending operation" a linearizability checker
    must leave open. *)
exception Unavailable of string

type mode =
  | Abd  (** sound: reads write back the maximal value when needed *)
  | Weak
      (** unsound fast read: never write back — exhibits new/old inversion
          under partitions (the E19 witness) *)

(** {2 Simulated cluster} *)

type sim_cluster

(** [cluster ~clients ~replicas ()] builds a fresh simulated cluster,
    resets the transport registry ({!Net.Sim.reset}) and installs the
    cluster as the target of {!Sim_mem}.  Replica durable state lives in
    one simulated memory cell per replica, so it survives crash/restart
    of the replica fiber.  [poll_budget] is the per-phase poll-step
    budget of attempt 1 (attempt [k] polls [k] times that);
    [breaker_cooldown] is the number of operations failed fast after an
    [Unavailable] before a half-open probe. *)
val cluster :
  ?mode:mode ->
  ?poll_budget:int ->
  ?max_attempts:int ->
  ?breaker_cooldown:int ->
  clients:int ->
  replicas:int ->
  unit ->
  sim_cluster

val set_mode : sim_cluster -> mode -> unit
val clients : sim_cluster -> int
val replicas : sim_cluster -> int

(** [replica_body c ~index] — fiber body of replica [index]; serves
    requests until its inbox is empty and every client session is closed.
    Also the correct restart body after a replica crash. *)
val replica_body : sim_cluster -> index:int -> unit -> unit

(** [wrap_client c ~pid body] — client fiber body: one bootstrap step, the
    workload (an escaping {!Unavailable} is absorbed — the client gives
    up), then closes the session so replicas may retire. *)
val wrap_client : sim_cluster -> pid:int -> (unit -> unit) -> unit -> unit

(** Restart body for a crashed client: (idempotently) closes its
    session. *)
val close_client : sim_cluster -> pid:int -> unit -> unit

(** The quorum-register memory backend of the installed {!cluster}.
    Operations must run inside client fibers wrapped by {!wrap_client};
    outside a run they act directly on pre-run register contents. *)
module Sim_mem : Psnap_mem.Mem_intf.S

(** {2 Multicore cluster (loadgen backend)} *)

type mc_cluster

(** [mc_cluster ~clients ~replicas ()] — the wall-clock variant over
    mutex-guarded inboxes; installs itself as the target of {!Mc_mem}.
    Replicas run as domains executing {!mc_replica_body}; client domains
    claim node ids on first operation (at most [clients] of them,
    including the spawning domain if it operates). *)
val mc_cluster :
  ?poll_budget:int ->
  ?max_attempts:int ->
  clients:int ->
  replicas:int ->
  unit ->
  mc_cluster

val mc_replica_body : mc_cluster -> index:int -> unit -> unit

(** Tell replica domains to retire once their inboxes drain; join them
    afterwards. *)
val mc_stop : mc_cluster -> unit

module Mc_mem : Psnap_mem.Mem_intf.S
