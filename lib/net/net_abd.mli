(** ABD-style multi-writer quorum registers over the message transport
    (docs/MODEL.md §14): a [Psnap_mem.Mem_intf.S] backend whose cells are
    replicated across [replicas] crash-prone replica processes, so every
    snapshot algorithm in the repository runs unchanged against a
    partition-tolerant replicated service.

    Reads and writes follow Attiya–Bar-Noy–Dolev: a Get round to a
    majority, then (for writes, and for reads that saw a lagging replier)
    a Put round installing the maximally-tagged value at a majority —
    the read write-back that makes reads linearizable.  [cas] and
    [fetch_and_add] are forwarded to the register's home replica, which
    applies them atomically against its durable state under per-client
    deduplication (at-most-once despite resends and duplicated
    deliveries); the client replicates the result to a majority before
    returning.  Every phase is bounded (resends with growing poll budgets,
    then {!Unavailable}), and a per-client circuit breaker makes a
    partitioned client fail fast instead of spinning.

    The module also carries the epoch-fenced reconfiguration plumbing of
    docs/MODEL.md §16 — {!config}, the fencing discipline in the replica
    state machine, the client-side configuration chase, and the
    manager-side protocol rounds ({!collect_state}, {!install_state},
    {!probe}) — while the reconfiguration {e policy} (health tracking,
    replacement selection, epoch sequencing, durable manager state) lives
    in {!Net_reconfig}.

    Node numbering: clients are nodes [0 .. clients-1] (client node id =
    simulator pid), the replica pool occupies nodes
    [clients .. clients+pool-1] where [pool = replicas + spares], and a
    cluster built with spares or [~with_manager] places the membership
    manager's endpoint at node [clients+pool] — the ids the network
    nemeses ([Scheduler.partition_storm], ...) and [Net_fault] schedule
    lines refer to. *)

(** Raised when an operation cannot reach a majority within its attempt
    budget, or fails fast on an open circuit breaker.  The operation may
    or may not have taken effect (a quorum write can land without its ack
    arriving) — exactly the "pending operation" a linearizability checker
    must leave open. *)
exception Unavailable of string

type mode =
  | Abd  (** sound: reads write back the maximal value when needed *)
  | Weak
      (** unsound fast read: never write back — exhibits new/old inversion
          under partitions (the E19 witness) *)

(** {2 Configurations}

    An epoch number plus the member list (absolute node ids) serving that
    epoch.  Every data message carries its sender's epoch; a {e fenced}
    replica rejects operations below its epoch (or at its epoch while
    sealed) and stays silent on operations above it, which is what makes
    quorums of different epochs unable to commit concurrently
    (docs/MODEL.md §16). *)

type config = { epoch : int; members : int list }

(** Majority of the member list. *)
val quorum_of : config -> int

val pp_config : Format.formatter -> config -> unit

(** {2 Simulated cluster} *)

type sim_cluster

(** [cluster ~clients ~replicas ()] builds a fresh simulated cluster,
    resets the transport registry ({!Net.Sim.reset}) and installs the
    cluster as the target of {!Sim_mem}.  Replica durable state lives in
    one simulated memory cell per replica, so it survives crash/restart
    of the replica fiber.  [poll_budget] is the per-phase poll-step
    budget of attempt 1 (attempt [k] polls [k] times that);
    [breaker_cooldown] is the number of operations failed fast after an
    [Unavailable] before a half-open probe.

    [spares] extra pool replicas (idle until a reconfiguration promotes
    them) and the manager endpoint are opt-in, so that clusters built
    without them keep the node/oid layout of earlier releases and the
    committed witness schedules replay unchanged.  [spares > 0] implies
    [with_manager]. *)
val cluster :
  ?mode:mode ->
  ?poll_budget:int ->
  ?max_attempts:int ->
  ?breaker_cooldown:int ->
  ?spares:int ->
  ?with_manager:bool ->
  clients:int ->
  replicas:int ->
  unit ->
  sim_cluster

val set_mode : sim_cluster -> mode -> unit

(** Fencing discipline switch: [set_fenced c false] is the deliberately
    unsound naive reconfiguration mode (replicas serve every epoch and
    [Seal] snapshots without sealing) that the E21 witness convicts of a
    split-brain lost write.  On by default. *)
val set_fenced : sim_cluster -> bool -> unit

(** Enables the client-side configuration chase on [Unavailable].  Set by
    [Net_reconfig.attach]; off by default so plain clusters spend no
    steps on discovery broadcasts. *)
val set_reconfig_active : sim_cluster -> bool -> unit

val clients : sim_cluster -> int
val replicas : sim_cluster -> int

(** Pool size: [replicas + spares]. *)
val pool : sim_cluster -> int

(** Configuration 0: epoch 0 over the first [replicas] pool nodes. *)
val initial_config : sim_cluster -> config

(** All pool node ids, [clients .. clients+pool-1]. *)
val pool_nodes : sim_cluster -> int list

(** The manager's node id, if the cluster was built with one. *)
val manager_node : sim_cluster -> int option

(** True while any client session is open — the retirement condition of
    replica fibers and of [Net_reconfig]'s manager fiber.  Reads
    simulated memory: call from a fiber inside a run. *)
val sessions_open : sim_cluster -> bool

(** The epoch client [pid] currently operates under (its cached
    configuration) — harness observability for the chase. *)
val client_epoch : sim_cluster -> pid:int -> int

(** [replica_body c ~index] — fiber body of pool replica [index]; serves
    requests until its inbox is empty and every client session is closed.
    Also the correct restart body after a replica crash.  Spares run the
    same body and idle until promoted. *)
val replica_body : sim_cluster -> index:int -> unit -> unit

(** [wrap_client c ~pid body] — client fiber body: one bootstrap step, the
    workload (an escaping {!Unavailable} is absorbed — the client gives
    up), then closes the session so replicas may retire. *)
val wrap_client : sim_cluster -> pid:int -> (unit -> unit) -> unit -> unit

(** Restart body for a crashed client: (idempotently) closes its
    session. *)
val close_client : sim_cluster -> pid:int -> unit -> unit

(** The quorum-register memory backend of the installed {!cluster}.
    Operations must run inside client fibers wrapped by {!wrap_client};
    outside a run they act directly on pre-run register contents. *)
module Sim_mem : Psnap_mem.Mem_intf.S

(** {2 Manager-side protocol rounds}

    The mechanism under [Net_reconfig]'s policy loop.  All three operate
    on a protocol context; obtain one with {!manager_ctx} (simulated) or
    {!mc_manager_ctx} (loadgen). *)

type ctx

(** The membership manager's protocol endpoint.  Simulated variant: call
    from the manager fiber.
    @raise Failure if the cluster was built without a manager. *)
val manager_ctx : sim_cluster -> ctx

(** A collected state-transfer payload: every register's maximally-tagged
    value, the maximal RMW counter and the merged dedup tables of a read
    quorum. *)
type xfer

(** Number of registers carried by a transfer payload. *)
val xfer_registers : xfer -> int

(** [collect_state ctx ~cfg] — seal-and-collect in one round: broadcast
    [Seal cfg.epoch] to [cfg.members] and merge a read quorum of state
    snapshots.  Under fencing every ack also closed its replica to the
    old epoch, so the merge contains every write that ever reached an ack
    quorum (majorities intersect).  With fencing off this is the naive
    unsealed snapshot the E21 witness convicts.
    @raise Unavailable if no quorum answers within the attempt budget. *)
val collect_state : ctx -> cfg:config -> xfer

(** [install_state ctx ~cfg x] — broadcast [Install] carrying [x] and the
    new configuration to [cfg.members]; returns once a write quorum has
    acked (and merged) it.  Idempotent: retries and duplicates merge to
    the same state.
    @raise Unavailable if no quorum acks within the attempt budget. *)
val install_state : ctx -> cfg:config -> xfer -> unit

(** [probe ctx ~node ~budget] — one bounded [Ping]: a single attempt with
    [budget] poll steps.  [false] is a {e silent-step timeout}, not proof
    of death — [Net_reconfig] suspects a replica only after several
    consecutive misses. *)
val probe : ctx -> node:int -> budget:int -> bool

(** {2 Multicore cluster (loadgen backend)} *)

type mc_cluster

(** [mc_cluster ~clients ~replicas ()] — the wall-clock variant over
    mutex-guarded inboxes; installs itself as the target of {!Mc_mem}.
    Replicas run as domains executing {!mc_replica_body}; client domains
    claim node ids on first operation (at most [clients] of them,
    including the spawning domain if it operates).  [spares] and
    [with_manager] mirror {!cluster}. *)
val mc_cluster :
  ?poll_budget:int ->
  ?max_attempts:int ->
  ?spares:int ->
  ?with_manager:bool ->
  clients:int ->
  replicas:int ->
  unit ->
  mc_cluster

val mc_set_fenced : mc_cluster -> bool -> unit
val mc_set_reconfig_active : mc_cluster -> bool -> unit

(** The active configuration cell: written by the loadgen's control
    thread at activation, read by freshly claimed clients and by parked
    clients at their next operation. *)
val mc_config : mc_cluster -> config

val mc_set_config : mc_cluster -> config -> unit
val mc_manager_node : mc_cluster -> int
val mc_pool_nodes : mc_cluster -> int list

(** The manager's protocol endpoint under the loadgen, for the control
    thread driving {!collect_state}/{!install_state}.  Non-blocking
    receive: bounded polling must keep running when a quorum of the old
    members is dead, so the round can give up cleanly. *)
val mc_manager_ctx : mc_cluster -> ctx

val mc_replica_body : mc_cluster -> index:int -> unit -> unit

(** Tell replica domains to retire once their inboxes drain; join them
    afterwards. *)
val mc_stop : mc_cluster -> unit

(** Permanently kill pool replica [index]: its domain body exits at the
    next receive.  The loadgen's replacement for the simulator's
    [replica_death] nemesis. *)
val mc_kill : mc_cluster -> index:int -> unit

(** Broadcast every inbox condition.  Client receives park at most one
    condition-wait, so a periodic [mc_wake] ticker guarantees parked
    clients re-check their attempt budgets (and give up as [Unavailable])
    even while a dead quorum is being replaced. *)
val mc_wake : mc_cluster -> unit

module Mc_mem : Psnap_mem.Mem_intf.S
