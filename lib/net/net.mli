(** Message-passing substrate for the crash-prone distributed backend
    (docs/MODEL.md §14): [nodes] endpoints connected by directed per-link
    FIFO channels, in two interchangeable transports.

    {!Sim} is the deterministic transport of the cooperative simulator:
    every [send] and every [recv] poll is one scheduler step charged to a
    per-node pseudo-object ("net.n<i>"), so message interleaving rides the
    same replayable decision stream as shared-memory steps, and network
    faults arrive as [Scheduler.Net_fault] decisions — replayable from a
    schedule file and shrinkable with [Shrink.ddmin].  {!Mc} is the
    multicore transport of the loadgen: one mutex-guarded inbox per node,
    no fault injection.

    Fault-effect semantics of {!Sim} (absorbed decisions — effects that
    cannot apply — are no-ops, keeping lenient replay and ddmin sound):
    [Drop_msg] pops the link's oldest message; [Dup_msg] appends a copy of
    the oldest; [Delay_msg] moves the oldest to the back (a reorder);
    [Cut_link] marks the directed link cut — sends still enqueue, but the
    queue is {e held} until [Heal_link], after which held messages drain
    in order. *)

module Sim : sig
  type 'm t

  (** [create ~nodes ()] builds a transport and registers it with the
      global [Net_fault] dispatcher (installed into [Sim.set_net_fault_dispatcher]
      at module initialisation).  Transports accumulate until {!reset}. *)
  val create : nodes:int -> unit -> 'm t

  (** Drop all registered transports and zero the injected/absorbed
      counters.  Call between campaign runs. *)
  val reset : unit -> unit

  (** [(injected, absorbed)] fault-decision totals since the last
      {!reset}.  A decision is absorbed when no registered transport could
      apply its effect (empty link, already-cut link, ...). *)
  val fault_counts : unit -> int * int

  (** All directed links currently holding at least one message, over all
      registered transports — the [~inflight] oracle of the
      [Scheduler.dup_flood] and [Scheduler.lag_spike] nemeses. *)
  val inflight_links : unit -> (int * int) array

  (** [send t ~src ~dst m] enqueues [m] on the [src -> dst] link (one
      scheduler step charged to [src] when inside a run).  Sends to a cut
      link are held, not lost.  Raises [Invalid_argument] on [src = dst]
      or out-of-range nodes. *)
  val send : 'm t -> src:int -> dst:int -> 'm -> unit

  (** [recv t ~self] polls [self]'s incoming links round-robin (one
      scheduler step) and pops the oldest message of the first non-empty,
      non-cut link, if any. *)
  val recv : 'm t -> self:int -> 'm option
end

module Mc : sig
  type 'm t

  val create : nodes:int -> unit -> 'm t

  val send : 'm t -> dst:int -> 'm -> unit
  (** Enqueue and wake the destination's waiter. *)

  val recv : 'm t -> self:int -> 'm option
  (** Non-blocking poll. *)

  val recv_wait : 'm t -> self:int -> should_stop:(unit -> bool) -> 'm option
  (** Block on the inbox condition until a message arrives or
      [should_stop ()] holds; [None] only when stopped with an empty
      inbox.  Wake-ups for a flipped stop flag come from {!wake_all}.
      Only safe when a reply is guaranteed to be in flight — with
      permanent replica failures, prefer {!recv_wait1}. *)

  val recv_wait1 : 'm t -> self:int -> should_stop:(unit -> bool) -> 'm option
  (** Like {!recv_wait} but parks at most one condition-wait: a wake-up
      that finds the inbox empty returns [None] instead of re-parking, so
      a caller's attempt budget bounds the total wait even when the
      awaited replica is permanently dead.  Pair with a periodic
      {!wake_all} ticker to guarantee forward progress. *)

  val wake_all : 'm t -> unit
  (** Broadcast every inbox condition (call after setting a stop flag). *)
end
