(* Online reconfiguration of the replicated snapshot service
   (docs/MODEL.md §16): the membership/health policy layer over
   [Net_abd]'s protocol rounds.

   The manager is a single sequencer.  A reconfiguration to a target
   configuration runs in two phases:

   1. {e seal} the current configuration — [Net_abd.collect_state]
      broadcasts [Seal] to the old members and merges a read quorum of
      state snapshots; under fencing every ack also closes its replica to
      the old epoch, so no write can commit at the old configuration
      after the collected state is fixed (quorum intersection);
   2. {e transfer and activate} — [Net_abd.install_state] writes the
      merged state under the new epoch to a write quorum of the new
      members, then the manager durably records the new configuration as
      current.  Retired replicas stay sealed and drain until the client
      sessions close.

   The manager's durable state (current configuration + the
   write-ahead proposed target) lives in one simulated memory cell, so a
   crashed-and-restarted manager resumes: epochs are proposed durably
   {e before} the seal, which makes them never reused, and an interrupted
   reconfiguration is re-driven to completion (both phases are
   idempotent).

   Health: the manager probes current members round-robin with bounded
   silent-step timeouts ([Net_abd.probe]); a member missing
   [miss_threshold] consecutive probes is suspected and a replacement
   configuration is proposed, swapping in the lowest-numbered pool node
   that is neither a member nor previously suspected (permanently-dead
   nodes must not be re-admitted — their fibers are gone).  When the
   spare pool is exhausted the configuration shrinks, never below one
   member.

   Churn: a [Scheduler.Reconfig] decision reaches the manager through
   [Sim.set_reconfig_dispatcher] as a rotation request — replace the
   lowest member with the lowest unused healthy pool node (or re-issue
   the same members under a fresh epoch when no spare is available),
   which exercises seal/transfer/activate even while a partition storm
   rages.

   Naive mode ([Naive]) drops the fence: replicas answer every epoch and
   the collect round snapshots without sealing, so a write concurrent
   with the transfer can commit at old members only and be missing from
   the new epoch — the split-brain lost write of the E21 witness.  The
   two-phase structure and the durable epochs are kept; the {e only}
   difference is the missing fence, which is exactly the point. *)

module Sim_k = Psnap_sched.Sim
module Msim = Psnap_sched.Mem_sim
module Metrics = Psnap_sched.Metrics

type mode = Fenced | Naive

(* Manager durable state.  [proposed] is the write-ahead record: set
   before the seal, cleared at activation. *)
type mstate = { cur : Net_abd.config; proposed : Net_abd.config option }

type t = {
  c : Net_abd.sim_cluster;
  mode : mode;
  state : mstate Msim.ref_;
  churn : bool ref;  (* set by the [Reconfig] decision dispatcher *)
  misses : int array;  (* per pool node: consecutive missed probes *)
  suspected : bool array;  (* per pool node: sticky — never re-admitted *)
  miss_threshold : int;
  probe_budget : int;
  mutable probe_at : int;  (* round-robin cursor into the member list *)
  mutable reconfigs : int;
  max_reconfigs : int;
}

let attach ?(mode = Fenced) ?(miss_threshold = 4) ?(probe_budget = 24)
    ?(max_reconfigs = 8) c =
  (match Net_abd.manager_node c with
  | Some _ -> ()
  | None ->
      invalid_arg
        "Net_reconfig.attach: build the cluster with ~spares or \
         ~with_manager");
  Net_abd.set_fenced c (mode = Fenced);
  Net_abd.set_reconfig_active c true;
  let pool = Net_abd.pool c in
  let t =
    {
      c;
      mode;
      state =
        Msim.make ~name:"reconfig.manager.state"
          { cur = Net_abd.initial_config c; proposed = None };
      churn = ref false;
      misses = Array.make pool 0;
      suspected = Array.make pool false;
      miss_threshold;
      probe_budget;
      probe_at = 0;
      reconfigs = 0;
      max_reconfigs;
    }
  in
  Sim_k.set_reconfig_dispatcher (fun () ->
      if !(t.churn) then false
      else begin
        t.churn := true;
        Metrics.note_churn_request ();
        true
      end);
  t

let detach t =
  ignore t;
  Sim_k.clear_reconfig_dispatcher ()

let mode t = t.mode

(* Observability (pre-run / post-mortem: reads the cell directly). *)
let current_config t = (Msim.read t.state).cur
let reconfig_count t = t.reconfigs

let suspected_nodes t =
  let clients = Net_abd.clients t.c in
  let acc = ref [] in
  Array.iteri (fun i s -> if s then acc := (clients + i) :: !acc) t.suspected;
  List.rev !acc

(* ---- replacement selection (deterministic) ---- *)

(* Healthy pool nodes not in [members] and never suspected, lowest
   first. *)
let spare_candidates t members =
  List.filter
    (fun n ->
      (not (List.mem n members))
      && not t.suspected.(n - Net_abd.clients t.c))
    (Net_abd.pool_nodes t.c)

(* Replacement after suspicions: drop every suspected member, refill from
   the spare candidates up to the old size; never below one member. *)
let replacement_members t members =
  let clients = Net_abd.clients t.c in
  let alive =
    List.filter (fun n -> not t.suspected.(n - clients)) members
  in
  let want = List.length members in
  let rec refill acc spares =
    if List.length acc >= want then acc
    else
      match spares with [] -> acc | s :: tl -> refill (acc @ [ s ]) tl
  in
  let next = refill alive (spare_candidates t members) in
  if next = [] then None else Some next

(* Rotation on a churn request: swap the lowest member for the lowest
   unused healthy pool node; with no spare available, re-issue the same
   members under a fresh epoch (still a full seal/transfer/activate). *)
let rotation_members t members =
  match (members, spare_candidates t members) with
  | _ :: rest, s :: _ -> rest @ [ s ]
  | _, [] | [], _ -> members

(* ---- the two-phase reconfiguration ---- *)

(* Drive one reconfiguration to [target].  [false] means a phase could
   not reach its quorum — the durable [proposed] record stays and the
   manager loop re-drives it (both phases are idempotent). *)
let reconfigure t ~(target : Net_abd.config) =
  let ctx = Net_abd.manager_ctx t.c in
  let st = Msim.read t.state in
  (* write-ahead: the epoch is burned before any replica seals *)
  if st.proposed <> Some target then
    Msim.write t.state { st with proposed = Some target };
  match
    (try Some (Net_abd.collect_state ctx ~cfg:st.cur)
     with Net_abd.Unavailable _ -> None)
  with
  | None -> false
  | Some x -> (
      match
        (try
           Net_abd.install_state ctx ~cfg:target x;
           Some ()
         with Net_abd.Unavailable _ -> None)
      with
      | None -> false
      | Some () ->
          Msim.write t.state { cur = target; proposed = None };
          t.reconfigs <- t.reconfigs + 1;
          Metrics.note_reconfig ();
          (match t.mode with
          | Fenced -> Metrics.note_activation ()
          | Naive -> Metrics.note_naive_swap ());
          (* the replaced members' miss counters start afresh *)
          List.iter
            (fun n -> t.misses.(n - Net_abd.clients t.c) <- 0)
            target.members;
          true)

let next_epoch (st : mstate) =
  1
  + max st.cur.epoch
      (match st.proposed with Some p -> p.epoch | None -> st.cur.epoch)

let propose t members =
  let st = Msim.read t.state in
  reconfigure t ~target:{ epoch = next_epoch st; members }

(* ---- health probing ---- *)

(* One probe step: ping the member under the round-robin cursor; a miss
   past the threshold marks it suspected (sticky) and triggers a
   replacement proposal. *)
let probe_step t =
  let st = Msim.read t.state in
  let members = st.cur.members in
  let n = List.length members in
  if n = 0 then ()
  else begin
    let node = List.nth members (t.probe_at mod n) in
    t.probe_at <- t.probe_at + 1;
    let i = node - Net_abd.clients t.c in
    if not t.suspected.(i) then begin
      let ctx = Net_abd.manager_ctx t.c in
      if Net_abd.probe ctx ~node ~budget:t.probe_budget then t.misses.(i) <- 0
      else begin
        t.misses.(i) <- t.misses.(i) + 1;
        if t.misses.(i) >= t.miss_threshold then begin
          t.suspected.(i) <- true;
          Metrics.note_suspicion ();
          match replacement_members t members with
          | Some next when next <> members ->
              Metrics.note_replacement ();
              ignore (reconfigure t ~target:{ epoch = next_epoch (Msim.read t.state); members = next })
          | _ -> ()
        end
      end
    end
  end

(* ---- the manager fiber ---- *)

(* Single sequencer: recover an interrupted reconfiguration, serve churn
   requests, probe for health; retire when the client sessions close.
   Correct as its own restart body — everything it needs is in the
   durable state cell. *)
let manager_body t () =
  let rec loop () =
    let st = Msim.read t.state in
    (* the bootstrap read above also sets the fiber's pid on entry *)
    if not (Net_abd.sessions_open t.c) then ()
    else begin
      (match st.proposed with
      | Some target when target.epoch > st.cur.epoch ->
          (* interrupted mid-flight (crash or missed quorum): re-drive *)
          ignore (reconfigure t ~target)
      | _ ->
          if !(t.churn) then begin
            t.churn := false;
            if t.reconfigs < t.max_reconfigs then
              ignore (propose t (rotation_members t st.cur.members))
          end
          else if t.reconfigs < t.max_reconfigs then probe_step t);
      loop ()
    end
  in
  loop ()

(* ---- loadgen (multicore) variant ---- *)

(* Under the loadgen the control thread is the sequencer: no crash model
   applies to it, so the durable cell and the dispatcher are unnecessary;
   what remains is the same two-phase protocol over [mc_manager_ctx]. *)
type mc_t = {
  mc : Net_abd.mc_cluster;
  mc_mode : mode;
  mutable mc_cur : Net_abd.config;
}

let mc_attach ?(mode = Fenced) mc =
  Net_abd.mc_set_fenced mc (mode = Fenced);
  Net_abd.mc_set_reconfig_active mc true;
  { mc; mc_mode = mode; mc_cur = Net_abd.mc_config mc }

let mc_current_config t = t.mc_cur

(* [mc_reconfigure t ~members] — seal the current configuration, transfer
   to [members] under a fresh epoch, activate by publishing the new
   configuration to the shared cell.
   @raise Net_abd.Unavailable when a phase cannot reach its quorum (the
   caller decides whether the service is permanently lost). *)
let mc_reconfigure t ~members =
  let target : Net_abd.config = { epoch = t.mc_cur.epoch + 1; members } in
  let ctx = Net_abd.mc_manager_ctx t.mc in
  let x = Net_abd.collect_state ctx ~cfg:t.mc_cur in
  Net_abd.install_state ctx ~cfg:target x;
  t.mc_cur <- target;
  Net_abd.mc_set_config t.mc target;
  Metrics.note_reconfig ();
  (match t.mc_mode with
  | Fenced -> Metrics.note_activation ()
  | Naive -> Metrics.note_naive_swap ());
  target
