(* ABD-style multi-writer quorum registers over the crash-prone message
   transport (docs/MODEL.md §14) — the [Mem_intf.S] backend that lets every
   snapshot algorithm in the repository run unchanged against a replicated,
   partition-tolerant service.

   Layout: nodes [0 .. clients-1] are client endpoints (client node id =
   simulator pid), nodes [clients .. clients+replicas-1] are replicas.
   Each replica is a single-writer state machine whose durable state lives
   in one simulated memory cell, so it survives crash/restart of the
   replica fiber.

   Protocol (Attiya–Bar-Noy–Dolev, multi-writer form):

   - values carry tags [(ts, wpid)], ordered lexicographically; replicas
     apply a [Put] only when its tag is strictly greater than the stored
     one, which makes every phase message idempotent under duplication and
     resend;
   - [write]: a Get round to a majority learns the maximal timestamp T,
     then a Put round with tag [(T+1, self)] installs the value at a
     majority;
   - [read]: a Get round to a majority picks the maximally-tagged value;
     if some replier is behind, a write-back Put round installs that value
     at a majority before returning (the read-repair that makes reads
     linearizable).  When every quorum replier already reported the
     maximal tag the write-back is soundly skipped.  [Weak] mode skips the
     write-back unconditionally — the classically unsound "fast read" that
     the E19 witness convicts of new/old inversion;
   - [cas]/[fetch_and_add]: forwarded to the register's home replica
     (chosen statically as [rid mod replicas]), which applies the
     read-modify-write atomically against its durable state under a
     per-client dedup table (at-most-once despite resends and duplicated
     deliveries), tags the result from its monotone counter, and returns
     it; the client then replicates the new value to a majority before
     returning.  Sound here because no algorithm in this repository mixes
     plain writes with RMW on the same cell: RMW tags of a cell are
     totally ordered by its home's counter;
   - every phase is bounded: a request is rebroadcast at most
     [max_attempts] times with a linearly growing poll budget between
     resends (poll-step backoff), after which the operation raises
     {!Unavailable} — surfaced through a per-client circuit breaker
     ([Metrics.note_breaker]) so a partitioned client fails fast instead
     of spinning.

   Values cross the wire as [Obj.t].  The packing is confined to this
   module and is sound for the same reason [Mem_intf]'s physical-equality
   CAS is: each register holds values of one static type, messages are
   passed by pointer (never serialized), so physical equality of packed
   values coincides with the backend contract. *)

module Sim_k = Psnap_sched.Sim
module Msim = Psnap_sched.Mem_sim
module Metrics = Psnap_sched.Metrics

exception Unavailable of string

type mode = Abd | Weak

(* ---- tags and wire format ---- *)

type tag = { ts : int; wpid : int }

let tag0 = { ts = 0; wpid = -1 }
let tag_lt a b = a.ts < b.ts || (a.ts = b.ts && a.wpid < b.wpid)

type value = Obj.t

let pack : 'a -> value = Obj.repr
let unpack : value -> 'a = Obj.obj

(* One register: [home] is a replica index in [0 .. replicas-1].  [init]
   doubles as the pre-run contents — [Mem_intf] setup code that runs
   outside [Sim.run] reads and writes it directly. *)
type reg = { rid : int; rname : string; home : int; mutable init : value }

type rmw_op = Cas_op of { expected : value; desired : value } | Faa_op of int

type body =
  | Get of { rid : int }
  | Gotten of { rid : int; tag : tag; v : value }
  | Put of { rid : int; tag : tag; v : value }
  | Put_ack of { rid : int }
  | Rmw of { rid : int; op : rmw_op }
  | Rmw_reply of { rid : int; res : value; tag : tag; v : value; applied : bool }

type msg = { src : int; reqid : int; body : body }

(* ---- replica state machine ---- *)

module Imap = Map.Make (Int)

type rstate = {
  vals : (tag * value) Imap.t;  (* rid -> current tagged value *)
  next_ts : int;  (* monotone RMW tag counter *)
  dedup : (int * body) Imap.t;  (* client node -> (last reqid, its reply) *)
}

let rstate0 = { vals = Imap.empty; next_ts = 1; dedup = Imap.empty }

let lookup ~init_of st rid =
  match Imap.find_opt rid st.vals with
  | Some tv -> tv
  | None -> (tag0, init_of rid)

(* Pure transition: one request in, next state and optional reply out.
   Shared verbatim by the simulated and the multicore replica bodies. *)
let serve ~init_of ~rnode st (m : msg) : rstate * body option =
  match m.body with
  | Get { rid } ->
      let tag, v = lookup ~init_of st rid in
      (st, Some (Gotten { rid; tag; v }))
  | Put { rid; tag; v } ->
      let cur, _ = lookup ~init_of st rid in
      let st =
        if tag_lt cur tag then { st with vals = Imap.add rid (tag, v) st.vals }
        else st
      in
      (st, Some (Put_ack { rid }))
  | Rmw { rid; op } -> (
      match Imap.find_opt m.src st.dedup with
      | Some (last, reply) when last = m.reqid ->
          (st, Some reply) (* duplicate of the served request: replay *)
      | Some (last, _) when m.reqid < last ->
          (st, None) (* stale duplicate: the client has moved on *)
      | _ ->
          let cur_tag, cur = lookup ~init_of st rid in
          let finish tag' v' res applied =
            let reply = Rmw_reply { rid; res; tag = tag'; v = v'; applied } in
            let st =
              {
                vals =
                  (if applied then Imap.add rid (tag', v') st.vals
                   else st.vals);
                next_ts = (if applied then st.next_ts + 1 else st.next_ts);
                dedup = Imap.add m.src (m.reqid, reply) st.dedup;
              }
            in
            (st, Some reply)
          in
          (match op with
          | Cas_op { expected; desired } ->
              if cur == expected then
                finish { ts = st.next_ts; wpid = rnode } desired (pack true)
                  true
              else finish cur_tag cur (pack false) false
          | Faa_op k ->
              let n : int = unpack cur in
              finish { ts = st.next_ts; wpid = rnode } (pack (n + k)) (pack n)
                true))
  | Gotten _ | Put_ack _ | Rmw_reply _ -> (st, None)

(* ---- client-side quorum protocol ---- *)

type cconf = {
  clients : int;
  replicas : int;
  quorum : int;
  poll_budget : int;
  max_attempts : int;
  mutable mode : mode;
  breaker_cooldown : int;
}

type endpoint = {
  self : int;
  send : dst:int -> msg -> unit;
  recv : unit -> msg option;
  relax : unit -> unit;
}

type ctx = { ep : endpoint; cc : cconf; fresh : unit -> int }

let replica_nodes cc = List.init cc.replicas (fun i -> cc.clients + i)

(* One bounded phase: broadcast the request to [targets], poll the inbox
   until [need] holds; rebroadcast with a linearly growing poll budget
   (the backoff), at most [max_attempts] times, then give up.  Returns the
   poll-steps spent (the quorum-latency contribution). *)
let run_phase ctx ~reqid ~targets ~mk ~need ~on =
  let wait = ref 0 in
  let rec attempt k =
    if k > ctx.cc.max_attempts then begin
      Metrics.note_unavailable ();
      raise (Unavailable "no quorum within the attempt budget")
    end;
    if k > 1 then Metrics.note_resend ();
    List.iter
      (fun dst -> ctx.ep.send ~dst { src = ctx.ep.self; reqid; body = mk () })
      targets;
    let rec poll b =
      if need () then ()
      else if b = 0 then attempt (k + 1)
      else begin
        (match ctx.ep.recv () with
        | Some m -> if m.reqid = reqid then on m
        | None -> ctx.ep.relax ());
        incr wait;
        poll (b - 1)
      end
    in
    poll (ctx.cc.poll_budget * k)
  in
  attempt 1;
  Metrics.note_quorum_round ();
  !wait

let put_round ctx ~rid ~tag ~v =
  let reqid = ctx.fresh () in
  let acks = Hashtbl.create 8 in
  run_phase ctx ~reqid ~targets:(replica_nodes ctx.cc)
    ~mk:(fun () -> Put { rid; tag; v })
    ~need:(fun () -> Hashtbl.length acks >= ctx.cc.quorum)
    ~on:(fun m ->
      match m.body with
      | Put_ack { rid = r } when r = rid -> Hashtbl.replace acks m.src ()
      | _ -> ())

let do_read ctx (r : reg) =
  let cc = ctx.cc in
  let reqid = ctx.fresh () in
  let replies : (int, tag) Hashtbl.t = Hashtbl.create 8 in
  let best = ref (tag0, r.init) in
  let w1 =
    run_phase ctx ~reqid ~targets:(replica_nodes cc)
      ~mk:(fun () -> Get { rid = r.rid })
      ~need:(fun () -> Hashtbl.length replies >= cc.quorum)
      ~on:(fun m ->
        match m.body with
        | Gotten { rid; tag; v } when rid = r.rid ->
            if not (Hashtbl.mem replies m.src) then begin
              Hashtbl.replace replies m.src tag;
              if tag_lt (fst !best) tag then best := (tag, v)
            end
        | _ -> ())
  in
  let btag, bv = !best in
  let wait =
    match cc.mode with
    | Weak -> w1 (* unsound fast read: never write back *)
    | Abd ->
        let all_max =
          Hashtbl.fold (fun _ t acc -> acc && not (tag_lt t btag)) replies true
        in
        if all_max then begin
          Metrics.note_writeback ~skipped:true;
          w1
        end
        else begin
          Metrics.note_writeback ~skipped:false;
          w1 + put_round ctx ~rid:r.rid ~tag:btag ~v:bv
        end
  in
  Metrics.note_quorum_op ~wait;
  bv

let do_write ctx (r : reg) v =
  let cc = ctx.cc in
  let reqid = ctx.fresh () in
  let replies : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let max_ts = ref 0 in
  let w1 =
    run_phase ctx ~reqid ~targets:(replica_nodes cc)
      ~mk:(fun () -> Get { rid = r.rid })
      ~need:(fun () -> Hashtbl.length replies >= cc.quorum)
      ~on:(fun m ->
        match m.body with
        | Gotten { rid; tag; _ } when rid = r.rid ->
            if not (Hashtbl.mem replies m.src) then begin
              Hashtbl.replace replies m.src ();
              if tag.ts > !max_ts then max_ts := tag.ts
            end
        | _ -> ())
  in
  let tag = { ts = !max_ts + 1; wpid = ctx.ep.self } in
  let w2 = put_round ctx ~rid:r.rid ~tag ~v in
  Metrics.note_quorum_op ~wait:(w1 + w2)

let do_rmw ctx (r : reg) op =
  let cc = ctx.cc in
  let home = cc.clients + r.home in
  let reqid = ctx.fresh () in
  let result = ref None in
  let w1 =
    run_phase ctx ~reqid ~targets:[ home ]
      ~mk:(fun () -> Rmw { rid = r.rid; op })
      ~need:(fun () -> Option.is_some !result)
      ~on:(fun m ->
        match m.body with
        | Rmw_reply { rid; res; tag; v; applied } when rid = r.rid ->
            if Option.is_none !result then result := Some (res, tag, v, applied)
        | _ -> ())
  in
  match !result with
  | None -> assert false (* [need] held *)
  | Some (res, tag, v, applied) ->
      let w2 = if applied then put_round ctx ~rid:r.rid ~tag ~v else 0 in
      Metrics.note_quorum_op ~wait:(w1 + w2);
      res

(* ---- circuit breaker (per client) ---- *)

type breaker = { mutable state : [ `Closed | `Open of int | `Half ] }

let guard_breaker ~cooldown (b : breaker) f =
  let run () =
    try
      let y = f () in
      (match b.state with
      | `Closed -> ()
      | _ ->
          b.state <- `Closed;
          Metrics.note_breaker `Close);
      y
    with Unavailable _ as e ->
      b.state <- `Open cooldown;
      Metrics.note_breaker `Open;
      raise e
  in
  match b.state with
  | `Closed | `Half -> run ()
  | `Open k when k > 0 ->
      b.state <- `Open (k - 1);
      Metrics.note_unavailable ();
      raise (Unavailable "circuit open")
  | `Open _ ->
      b.state <- `Half;
      Metrics.note_breaker `Half_open;
      run ()

(* ---- simulated cluster ---- *)

type sim_cluster = {
  cc : cconf;
  net : msg Net.Sim.t;
  regs : (int, reg) Hashtbl.t;
  mutable next_rid : int;
  stores : rstate Msim.ref_ array;  (* one durable cell per replica *)
  sessions : int Msim.ref_ array;  (* per client: 1 = open, 0 = closed *)
  breakers : breaker array;
  reqids : int array;  (* per client; client-local, so a plain array *)
}

let current_sim : sim_cluster option ref = ref None

let cluster ?(mode = Abd) ?(poll_budget = 48) ?(max_attempts = 6)
    ?(breaker_cooldown = 8) ~clients ~replicas () =
  if clients < 1 then invalid_arg "Net_abd.cluster: clients < 1";
  if replicas < 1 then invalid_arg "Net_abd.cluster: replicas < 1";
  Net.Sim.reset ();
  let cc =
    {
      clients;
      replicas;
      quorum = (replicas / 2) + 1;
      poll_budget;
      max_attempts;
      mode;
      breaker_cooldown;
    }
  in
  let c =
    {
      cc;
      net = Net.Sim.create ~nodes:(clients + replicas) ();
      regs = Hashtbl.create 64;
      next_rid = 0;
      stores =
        Array.init replicas (fun i ->
            Msim.make ~name:(Printf.sprintf "abd.r%d.store" i) rstate0);
      sessions =
        Array.init clients (fun i ->
            Msim.make ~name:(Printf.sprintf "abd.c%d.session" i) 1);
      breakers = Array.init clients (fun _ -> { state = `Closed });
      reqids = Array.make clients 0;
    }
  in
  current_sim := Some c;
  c

let set_mode c m = c.cc.mode <- m
let clients c = c.cc.clients
let replicas c = c.cc.replicas

let the_cluster () =
  match !current_sim with
  | Some c -> c
  | None -> failwith "Net_abd: no simulated cluster installed"

(* Replica fiber body: serve requests until the inbox is empty and every
   client session is closed.  Usable directly as a restart body — the
   durable state lives in the store cell, not the fiber. *)
let replica_body c ~index () =
  let rnode = c.cc.clients + index in
  let init_of rid = (Hashtbl.find c.regs rid).init in
  let store = c.stores.(index) in
  let sessions_open () =
    let rec go i =
      i < c.cc.clients && (Msim.read c.sessions.(i) > 0 || go (i + 1))
    in
    go 0
  in
  let rec loop () =
    match Net.Sim.recv c.net ~self:rnode with
    | Some m ->
        let st = Msim.read store in
        let st', reply = serve ~init_of ~rnode st m in
        if st' != st then Msim.write store st';
        (match reply with
        | Some body ->
            Net.Sim.send c.net ~src:rnode ~dst:m.src
              { src = rnode; reqid = m.reqid; body }
        | None -> ());
        loop ()
    | None -> if sessions_open () then loop () else ()
  in
  loop ()

(* Client wrapper: one bootstrap step (so [Sim.current_pid] is set before
   the first quorum operation), the workload, then close the session so
   replicas may retire.  An [Unavailable] escaping the workload closes the
   session instead of killing the run — the client gave up, the campaign
   carries on.  [close_client] is the matching restart body: closing the
   session is idempotent, so a crash anywhere in the client is safe. *)
let wrap_client c ~pid body () =
  if pid < 0 || pid >= c.cc.clients then invalid_arg "Net_abd.wrap_client";
  ignore (Msim.read c.sessions.(pid));
  (try body () with Unavailable _ -> ());
  Msim.write c.sessions.(pid) 0

let close_client c ~pid () = Msim.write c.sessions.(pid) 0

let sim_ctx c =
  match Sim_k.current_pid () with
  | Some pid when pid < c.cc.clients ->
      {
        ep =
          {
            self = pid;
            send = (fun ~dst m -> Net.Sim.send c.net ~src:pid ~dst m);
            recv = (fun () -> Net.Sim.recv c.net ~self:pid);
            relax = (fun () -> ());
          };
        cc = c.cc;
        fresh =
          (fun () ->
            let id = c.reqids.(pid) + 1 in
            c.reqids.(pid) <- id;
            id);
      }
  | Some _ -> failwith "Net_abd: replica fiber called a client memory op"
  | None ->
      failwith
        "Net_abd: client op before the fiber's first scheduling point (run \
         the workload via Net_abd.wrap_client)"

module Sim_mem : Psnap_mem.Mem_intf.S = struct
  type 'a ref_ = reg

  let make ?name v =
    let c = the_cluster () in
    let rid = c.next_rid in
    c.next_rid <- rid + 1;
    let rname =
      match name with Some n -> n | None -> Printf.sprintf "abd%d" rid
    in
    let r = { rid; rname; home = rid mod c.cc.replicas; init = pack v } in
    Hashtbl.replace c.regs rid r;
    r

  (* Outside a run there are no replica fibers: operate on the pre-run
     contents directly.  Inside a run, go through breaker + quorum. *)
  let prerun () = Sim_k.current_serial () = None

  let guarded c f =
    let ctx = sim_ctx c in
    guard_breaker ~cooldown:c.cc.breaker_cooldown c.breakers.(ctx.ep.self)
      (fun () -> f ctx)

  let read r =
    let c = the_cluster () in
    if prerun () then unpack r.init
    else unpack (guarded c (fun ctx -> do_read ctx r))

  let write r v =
    let c = the_cluster () in
    if prerun () then r.init <- pack v
    else guarded c (fun ctx -> do_write ctx r (pack v))

  let cas r ~expected ~desired =
    let c = the_cluster () in
    if prerun () then
      if unpack r.init == expected then begin
        r.init <- pack desired;
        true
      end
      else false
    else
      unpack
        (guarded c (fun ctx ->
             do_rmw ctx r
               (Cas_op { expected = pack expected; desired = pack desired })))

  let fetch_and_add r k =
    let c = the_cluster () in
    if prerun () then begin
      let n : int = unpack r.init in
      r.init <- pack (n + k);
      n
    end
    else unpack (guarded c (fun ctx -> do_rmw ctx r (Faa_op k)))
end

(* ---- multicore cluster (loadgen backend) ---- *)

type mc_cluster = {
  mcc : cconf;
  mnet : msg Net.Mc.t;
  mregs : (int, reg) Hashtbl.t;
  mreg_lock : Mutex.t;
  mutable mnext_rid : int;
  stop : bool Atomic.t;
  claim : int Atomic.t;
}

let current_mc : mc_cluster option ref = ref None

let mc_cluster ?(poll_budget = 200_000) ?(max_attempts = 8) ~clients
    ~replicas () =
  if clients < 1 then invalid_arg "Net_abd.mc_cluster: clients < 1";
  if replicas < 1 then invalid_arg "Net_abd.mc_cluster: replicas < 1";
  let mcc =
    {
      clients;
      replicas;
      quorum = (replicas / 2) + 1;
      poll_budget;
      max_attempts;
      mode = Abd;
      breaker_cooldown = 0;
    }
  in
  let c =
    {
      mcc;
      mnet = Net.Mc.create ~nodes:(clients + replicas) ();
      mregs = Hashtbl.create 64;
      mreg_lock = Mutex.create ();
      mnext_rid = 0;
      stop = Atomic.make false;
      claim = Atomic.make 0;
    }
  in
  current_mc := Some c;
  c

let mc_stop c =
  Atomic.set c.stop true;
  Net.Mc.wake_all c.mnet

(* Replica domain body: local state (the domain is the single writer; no
   crash model under the loadgen), sleep on the inbox until stopped. *)
let mc_replica_body c ~index () =
  let rnode = c.mcc.clients + index in
  let init_of rid =
    Mutex.lock c.mreg_lock;
    let r = Hashtbl.find c.mregs rid in
    Mutex.unlock c.mreg_lock;
    r.init
  in
  let st = ref rstate0 in
  let rec loop () =
    match
      Net.Mc.recv_wait c.mnet ~self:rnode ~should_stop:(fun () ->
          Atomic.get c.stop)
    with
    | Some m ->
        let st', reply = serve ~init_of ~rnode !st m in
        st := st';
        (match reply with
        | Some body ->
            Net.Mc.send c.mnet ~dst:m.src { src = rnode; reqid = m.reqid; body }
        | None -> ());
        loop ()
    | None -> ()
  in
  loop ()

(* Client identity under the loadgen: each domain claims a client node id
   on first use and keeps a domain-local request counter. *)
type mc_client = { node : int; mutable next_reqid : int }

let mc_client_key =
  Domain.DLS.new_key (fun () -> { node = -1; next_reqid = 0 })

let mc_self c =
  let cl = Domain.DLS.get mc_client_key in
  if cl.node >= 0 then cl
  else begin
    let id = Atomic.fetch_and_add c.claim 1 in
    if id >= c.mcc.clients then
      failwith "Net_abd: more client domains than the cluster was built for";
    let cl = { node = id; next_reqid = 0 } in
    Domain.DLS.set mc_client_key cl;
    cl
  end

let mc_ctx c =
  let cl = mc_self c in
  {
    ep =
      {
        self = cl.node;
        send = (fun ~dst m -> Net.Mc.send c.mnet ~dst m);
        recv =
          (* blocking: a reply is always in flight while a phase polls, so
             this only parks the client until its replicas answer (None
             solely after [mc_stop], which degrades into plain polling) *)
          (fun () ->
            Net.Mc.recv_wait c.mnet ~self:cl.node ~should_stop:(fun () ->
                Atomic.get c.stop));
        relax = Domain.cpu_relax;
      };
    cc = c.mcc;
    fresh =
      (fun () ->
        let id = cl.next_reqid + 1 in
        cl.next_reqid <- id;
        id);
  }

module Mc_mem : Psnap_mem.Mem_intf.S = struct
  type 'a ref_ = reg

  let the () =
    match !current_mc with
    | Some c -> c
    | None -> failwith "Net_abd: no multicore cluster installed"

  let make ?name v =
    let c = the () in
    Mutex.lock c.mreg_lock;
    let rid = c.mnext_rid in
    c.mnext_rid <- rid + 1;
    let rname =
      match name with Some n -> n | None -> Printf.sprintf "abd%d" rid
    in
    let r = { rid; rname; home = rid mod c.mcc.replicas; init = pack v } in
    Hashtbl.replace c.mregs rid r;
    Mutex.unlock c.mreg_lock;
    r

  let read r =
    let c = the () in
    unpack (do_read (mc_ctx c) r)

  let write r v =
    let c = the () in
    do_write (mc_ctx c) r (pack v)

  let cas r ~expected ~desired =
    let c = the () in
    unpack
      (do_rmw (mc_ctx c) r
         (Cas_op { expected = pack expected; desired = pack desired }))

  let fetch_and_add r k =
    let c = the () in
    unpack (do_rmw (mc_ctx c) r (Faa_op k))
end
