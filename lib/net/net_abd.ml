(* ABD-style multi-writer quorum registers over the crash-prone message
   transport (docs/MODEL.md §14) — the [Mem_intf.S] backend that lets every
   snapshot algorithm in the repository run unchanged against a replicated,
   partition-tolerant service.

   Layout: nodes [0 .. clients-1] are client endpoints (client node id =
   simulator pid), nodes [clients .. clients+pool-1] are the replica pool
   ([pool = replicas + spares]; the spares idle until a reconfiguration
   promotes them), and — when the cluster is built [~with_manager] — node
   [clients+pool] is the membership manager's endpoint.  Each replica is a
   single-writer state machine whose durable state lives in one simulated
   memory cell, so it survives crash/restart of the replica fiber.

   Protocol (Attiya–Bar-Noy–Dolev, multi-writer form):

   - values carry tags [(ts, wpid)], ordered lexicographically; replicas
     apply a [Put] only when its tag is strictly greater than the stored
     one, which makes every phase message idempotent under duplication and
     resend;
   - [write]: a Get round to a majority learns the maximal timestamp T,
     then a Put round with tag [(T+1, self)] installs the value at a
     majority;
   - [read]: a Get round to a majority picks the maximally-tagged value;
     if some replier is behind, a write-back Put round installs that value
     at a majority before returning (the read-repair that makes reads
     linearizable).  When every quorum replier already reported the
     maximal tag the write-back is soundly skipped.  [Weak] mode skips the
     write-back unconditionally — the classically unsound "fast read" that
     the E19 witness convicts of new/old inversion;
   - [cas]/[fetch_and_add]: forwarded to the register's home replica
     (under configuration [cfg]: [members_(rid mod |members|)]), which
     applies the read-modify-write atomically against its durable state
     under a per-client dedup table (at-most-once despite resends and
     duplicated deliveries), tags the result from its monotone counter,
     and returns it; the client then replicates the new value to a
     majority before returning.  Sound here because no algorithm in this
     repository mixes plain writes with RMW on the same cell: RMW tags of
     a cell are totally ordered by its home's counter;
   - every phase is bounded: a request is rebroadcast at most
     [max_attempts] times with a linearly growing poll budget between
     resends (poll-step backoff), after which the operation raises
     {!Unavailable} — surfaced through a per-client circuit breaker
     ([Metrics.note_breaker]) so a partitioned client fails fast instead
     of spinning.

   Reconfiguration plumbing (docs/MODEL.md §16; driven by [Net_reconfig]):

   - a {!config} is an epoch number plus a member list; every data message
     carries the sender's epoch;
   - a {e fenced} replica rejects data operations below its epoch (or at
     its epoch while sealed) with [Stale] carrying its active
     configuration, and stays {e silent} on operations above its epoch —
     it must not serve an epoch whose transferred state it has not yet
     received via [Install].  Quorum intersection then gives the safety
     argument: a write acked at epoch e intersects the seal-collect
     quorum of e (both majorities of e's members), and its value is
     carried into e+1 by the [Install] merge before any e+1 quorum can
     assemble;
   - clients chase the configuration: a [Stale] reply with a newer config
     is adopted and the whole operation restarts under the new epoch; an
     [Unavailable] operation first broadcasts [Get_config] to the whole
     replica pool and retries if that discovers a newer configuration;
   - with fencing off ([set_fenced c false] — the deliberately unsound
     "naive" mode) replicas answer every epoch and [Seal] snapshots state
     {e without} sealing, so a write concurrent with the state transfer
     can commit at the old members only and be missing from the new
     epoch: the split-brain lost write of the E21 witness.

   Known limitation: RMW at-most-once across a reconfiguration relies on
   the home replica's dedup entry reaching the seal-collect quorum; a
   reply lost before the value spreads leaves a re-apply window.  The
   reconfiguration campaigns therefore drive read/write workloads; see
   docs/MODEL.md §16.

   Values cross the wire as [Obj.t].  The packing is confined to this
   module and is sound for the same reason [Mem_intf]'s physical-equality
   CAS is: each register holds values of one static type, messages are
   passed by pointer (never serialized), so physical equality of packed
   values coincides with the backend contract. *)

module Sim_k = Psnap_sched.Sim
module Msim = Psnap_sched.Mem_sim
module Metrics = Psnap_sched.Metrics

exception Unavailable of string

(* Raised inside a client operation when a [Stale] reply revealed a newer
   configuration: the operation must restart from scratch under the new
   epoch (stale partial quorum tallies are worthless).  Never escapes this
   module — {!with_retries} converts an exhausted chase budget into
   {!Unavailable}. *)
exception Epoch_changed

type mode = Abd | Weak

(* ---- configurations ---- *)

type config = { epoch : int; members : int list }

let quorum_of cfg = (List.length cfg.members / 2) + 1

let pp_config ppf cfg =
  Format.fprintf ppf "e%d{%s}" cfg.epoch
    (String.concat "," (List.map string_of_int cfg.members))

(* ---- tags and wire format ---- *)

type tag = { ts : int; wpid : int }

let tag0 = { ts = 0; wpid = -1 }
let tag_lt a b = a.ts < b.ts || (a.ts = b.ts && a.wpid < b.wpid)

type value = Obj.t

let pack : 'a -> value = Obj.repr
let unpack : value -> 'a = Obj.obj

(* One register: [home] is a replica index in [0 .. replicas-1].  [init]
   doubles as the pre-run contents — [Mem_intf] setup code that runs
   outside [Sim.run] reads and writes it directly. *)
type reg = { rid : int; rname : string; home : int; mutable init : value }

type rmw_op = Cas_op of { expected : value; desired : value } | Faa_op of int

module Imap = Map.Make (Int)

type body =
  | Get of { rid : int }
  | Gotten of { rid : int; tag : tag; v : value }
  | Put of { rid : int; tag : tag; v : value }
  | Put_ack of { rid : int }
  | Rmw of { rid : int; op : rmw_op }
  | Rmw_reply of { rid : int; res : value; tag : tag; v : value; applied : bool }
  (* reconfiguration control plane *)
  | Stale of { cfg : config }  (* epoch fence: rejected, here is my config *)
  | Get_config
  | Config_reply of { cfg : config }
  | Seal of { epoch : int }
  | Seal_ack of {
      epoch : int;
      vals : (tag * value) Imap.t;
      next_ts : int;
      dedup : (int * body) Imap.t;
    }
  | Install of {
      cfg : config;
      vals : (tag * value) Imap.t;
      next_ts : int;
      dedup : (int * body) Imap.t;
    }
  | Install_ack of { epoch : int }
  | Ping
  | Pong

type msg = { src : int; reqid : int; epoch : int; body : body }

(* ---- replica state machine ---- *)

type rstate = {
  vals : (tag * value) Imap.t;  (* rid -> current tagged value *)
  next_ts : int;  (* monotone RMW tag counter *)
  dedup : (int * body) Imap.t;  (* client node -> (last reqid, its reply) *)
  rcfg : config;  (* active configuration (learned via [Install]) *)
  sealed : bool;  (* fenced at [rcfg.epoch]: data operations rejected *)
}

let rstate_at cfg =
  { vals = Imap.empty; next_ts = 1; dedup = Imap.empty; rcfg = cfg; sealed = false }

let lookup ~init_of st rid =
  match Imap.find_opt rid st.vals with
  | Some tv -> tv
  | None -> (tag0, init_of rid)

(* State-transfer merges: per register the maximal tag wins (the [Put]
   rule, lifted to whole states), the RMW counter takes the max, and per
   client the dedup entry with the larger request id wins — all
   commutative, associative and idempotent, so [Install] retries and
   overlapping transfers are harmless. *)
let merge_vals a b =
  Imap.union (fun _ (ta, va) (tb, vb) ->
      Some (if tag_lt ta tb then (tb, vb) else (ta, va)))
    a b

let merge_dedup a b =
  Imap.union (fun _ ((ra, _) as xa) ((rb, _) as xb) ->
      Some (if ra >= rb then xa else xb))
    a b

(* Pure transition: one request in, next state and optional reply out.
   Shared verbatim by the simulated and the multicore replica bodies.
   [fenced] is the epoch discipline switch: off, data operations are
   served whatever their epoch and [Seal] snapshots without sealing — the
   naive reconfiguration mode the E21 witness convicts. *)
let serve ~fenced ~init_of ~rnode st (m : msg) : rstate * body option =
  let stale () =
    Metrics.note_stale_reject ();
    (st, Some (Stale { cfg = st.rcfg }))
  in
  match m.body with
  (* control plane: health and discovery answer regardless of epoch *)
  | Ping -> (st, Some Pong)
  | Get_config -> (st, Some (Config_reply { cfg = st.rcfg }))
  | Seal { epoch } ->
      if not fenced then
        (* naive mode: hand out the snapshot without closing the epoch —
           writes concurrent with the transfer can still commit here *)
        (st,
         Some
           (Seal_ack
              { epoch; vals = st.vals; next_ts = st.next_ts; dedup = st.dedup }))
      else if epoch = st.rcfg.epoch then begin
        if not st.sealed then Metrics.note_seal ();
        ({ st with sealed = true },
         Some
           (Seal_ack
              { epoch; vals = st.vals; next_ts = st.next_ts; dedup = st.dedup }))
      end
      else if epoch < st.rcfg.epoch then stale ()
      else (st, None) (* seal from an epoch we were never installed into *)
  | Install { cfg; vals; next_ts; dedup } ->
      let st =
        if cfg.epoch >= st.rcfg.epoch then
          {
            vals = merge_vals st.vals vals;
            next_ts = max st.next_ts next_ts;
            dedup = merge_dedup st.dedup dedup;
            rcfg = cfg;
            sealed = false;
          }
        else st (* stale manager retry: ack without regressing *)
      in
      (st, Some (Install_ack { epoch = cfg.epoch }))
  | (Get _ | Put _ | Rmw _) when fenced && m.epoch < st.rcfg.epoch -> stale ()
  | (Get _ | Put _ | Rmw _) when fenced && st.sealed -> stale ()
  | (Get _ | Put _ | Rmw _) when fenced && m.epoch > st.rcfg.epoch ->
      (* the caller runs an epoch whose transferred state we have not yet
         received: serving would leak pre-transfer (empty) values into a
         new-epoch quorum, so stay silent until [Install] arrives *)
      (st, None)
  | Get { rid } ->
      let tag, v = lookup ~init_of st rid in
      (st, Some (Gotten { rid; tag; v }))
  | Put { rid; tag; v } ->
      let cur, _ = lookup ~init_of st rid in
      let st =
        if tag_lt cur tag then { st with vals = Imap.add rid (tag, v) st.vals }
        else st
      in
      (st, Some (Put_ack { rid }))
  | Rmw { rid; op } -> (
      match Imap.find_opt m.src st.dedup with
      | Some (last, reply) when last = m.reqid ->
          (st, Some reply) (* duplicate of the served request: replay *)
      | Some (last, _) when m.reqid < last ->
          (st, None) (* stale duplicate: the client has moved on *)
      | _ ->
          let cur_tag, cur = lookup ~init_of st rid in
          let finish tag' v' res applied =
            let reply = Rmw_reply { rid; res; tag = tag'; v = v'; applied } in
            let st =
              {
                st with
                vals =
                  (if applied then Imap.add rid (tag', v') st.vals
                   else st.vals);
                next_ts = (if applied then st.next_ts + 1 else st.next_ts);
                dedup = Imap.add m.src (m.reqid, reply) st.dedup;
              }
            in
            (st, Some reply)
          in
          (match op with
          | Cas_op { expected; desired } ->
              if cur == expected then
                finish { ts = st.next_ts; wpid = rnode } desired (pack true)
                  true
              else finish cur_tag cur (pack false) false
          | Faa_op k ->
              let n : int = unpack cur in
              finish { ts = st.next_ts; wpid = rnode } (pack (n + k)) (pack n)
                true))
  | Gotten _ | Put_ack _ | Rmw_reply _ | Stale _ | Config_reply _ | Seal_ack _
  | Install_ack _ | Pong ->
      (st, None)

(* ---- client-side quorum protocol ---- *)

type cconf = {
  clients : int;
  replicas : int;  (* initial member count (configuration 0) *)
  pool : int;  (* replica-pool size: replicas + spares *)
  quorum : int;  (* majority of the initial configuration *)
  poll_budget : int;
  max_attempts : int;
  mutable mode : mode;
  mutable fenced : bool;
  mutable reconfig_active : bool;  (* chase configs on [Unavailable]? *)
  breaker_cooldown : int;
}

type endpoint = {
  self : int;
  send : dst:int -> msg -> unit;
  recv : unit -> msg option;
  relax : unit -> unit;
}

type ctx = {
  ep : endpoint;
  cc : cconf;
  fresh : unit -> int;
  view : unit -> config;  (* the client's cached configuration *)
  adopt : config -> unit;
  pool_nodes : int list;  (* chase broadcast targets: the whole pool *)
}

let pool_nodes_of cc = List.init cc.pool (fun i -> cc.clients + i)

(* One bounded phase: broadcast the request to [targets], poll the inbox
   until [need] holds; rebroadcast with a linearly growing poll budget
   (the backoff), at most [max_attempts] times, then give up.  Returns the
   poll-steps spent (the quorum-latency contribution).  A [Stale] reply
   carrying a strictly newer configuration is adopted here and aborts the
   operation with {!Epoch_changed}; a same-epoch [Stale] (a sealed
   replica) is ignored — the resend/backoff loop rides out the transfer
   window and the [Unavailable] path chases the new configuration. *)
let run_phase ?attempts ?budget ctx ~reqid ~epoch ~targets ~mk ~need ~on =
  let max_attempts = Option.value attempts ~default:ctx.cc.max_attempts in
  let base_budget = Option.value budget ~default:ctx.cc.poll_budget in
  let wait = ref 0 in
  let rec attempt k =
    if k > max_attempts then begin
      Metrics.note_unavailable ();
      raise (Unavailable "no quorum within the attempt budget")
    end;
    if k > 1 then Metrics.note_resend ();
    List.iter
      (fun dst ->
        ctx.ep.send ~dst { src = ctx.ep.self; reqid; epoch; body = mk () })
      targets;
    let rec poll b =
      if need () then ()
      else if b = 0 then attempt (k + 1)
      else begin
        (match ctx.ep.recv () with
        | Some m ->
            if m.reqid = reqid then (
              match m.body with
              | Stale { cfg } ->
                  let cur = ctx.view () in
                  if cfg.epoch > cur.epoch && cfg.members <> [] then begin
                    ctx.adopt cfg;
                    Metrics.note_epoch_chase ();
                    raise Epoch_changed
                  end
              | _ -> on m)
        | None -> ctx.ep.relax ());
        incr wait;
        poll (b - 1)
      end
    in
    poll (base_budget * k)
  in
  attempt 1;
  Metrics.note_quorum_round ();
  !wait

(* Configuration chase: ask the whole pool, adopt a strictly newer
   configuration if any replica knows one.  The [Unavailable] fallback of
   every client operation once reconfiguration is active — this is how a
   client survives its entire cached member set dying. *)
let chase_config ctx =
  if not ctx.cc.reconfig_active then false
  else begin
    let cur = ctx.view () in
    let reqid = ctx.fresh () in
    let best = ref cur in
    (try
       ignore
         (run_phase ctx ~reqid ~epoch:cur.epoch ~targets:ctx.pool_nodes
            ~mk:(fun () -> Get_config)
            ~need:(fun () -> !best.epoch > cur.epoch)
            ~on:(fun m ->
              match m.body with
              | Config_reply { cfg }
                when cfg.epoch > !best.epoch && cfg.members <> [] ->
                  best := cfg
              | _ -> ()))
     with Unavailable _ -> ());
    if !best.epoch > cur.epoch then begin
      ctx.adopt !best;
      Metrics.note_epoch_chase ();
      true
    end
    else false
  end

(* Operation-level retry: restart the whole operation on an epoch change,
   chase the configuration on [Unavailable]; a bounded number of restarts,
   then give up as [Unavailable] (the breaker's department). *)
let with_retries ctx f =
  let budget = ref (ctx.cc.max_attempts + 4) in
  let rec go () =
    match f (ctx.view ()) with
    | y -> y
    | exception Epoch_changed ->
        if !budget > 0 then begin
          decr budget;
          go ()
        end
        else begin
          Metrics.note_unavailable ();
          raise (Unavailable "epoch chase budget exhausted")
        end
    | exception (Unavailable _ as e) ->
        if !budget > 0 && chase_config ctx then begin
          decr budget;
          go ()
        end
        else raise e
  in
  go ()

let put_round ctx ~(view : config) ~rid ~tag ~v =
  let reqid = ctx.fresh () in
  let acks = Hashtbl.create 8 in
  run_phase ctx ~reqid ~epoch:view.epoch ~targets:view.members
    ~mk:(fun () -> Put { rid; tag; v })
    ~need:(fun () -> Hashtbl.length acks >= quorum_of view)
    ~on:(fun m ->
      match m.body with
      | Put_ack { rid = r } when r = rid -> Hashtbl.replace acks m.src ()
      | _ -> ())

let do_read_v ctx (view : config) (r : reg) =
  let cc = ctx.cc in
  let reqid = ctx.fresh () in
  let replies : (int, tag) Hashtbl.t = Hashtbl.create 8 in
  let best = ref (tag0, r.init) in
  let w1 =
    run_phase ctx ~reqid ~epoch:view.epoch ~targets:view.members
      ~mk:(fun () -> Get { rid = r.rid })
      ~need:(fun () -> Hashtbl.length replies >= quorum_of view)
      ~on:(fun m ->
        match m.body with
        | Gotten { rid; tag; v } when rid = r.rid ->
            if not (Hashtbl.mem replies m.src) then begin
              Hashtbl.replace replies m.src tag;
              if tag_lt (fst !best) tag then best := (tag, v)
            end
        | _ -> ())
  in
  let btag, bv = !best in
  let wait =
    match cc.mode with
    | Weak -> w1 (* unsound fast read: never write back *)
    | Abd ->
        let all_max =
          Hashtbl.fold (fun _ t acc -> acc && not (tag_lt t btag)) replies true
        in
        if all_max then begin
          Metrics.note_writeback ~skipped:true;
          w1
        end
        else begin
          Metrics.note_writeback ~skipped:false;
          w1 + put_round ctx ~view ~rid:r.rid ~tag:btag ~v:bv
        end
  in
  Metrics.note_quorum_op ~wait;
  bv

let do_read ctx r = with_retries ctx (fun view -> do_read_v ctx view r)

let do_write_v ctx (view : config) (r : reg) v =
  let reqid = ctx.fresh () in
  let replies : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let max_ts = ref 0 in
  let w1 =
    run_phase ctx ~reqid ~epoch:view.epoch ~targets:view.members
      ~mk:(fun () -> Get { rid = r.rid })
      ~need:(fun () -> Hashtbl.length replies >= quorum_of view)
      ~on:(fun m ->
        match m.body with
        | Gotten { rid; tag; _ } when rid = r.rid ->
            if not (Hashtbl.mem replies m.src) then begin
              Hashtbl.replace replies m.src ();
              if tag.ts > !max_ts then max_ts := tag.ts
            end
        | _ -> ())
  in
  let tag = { ts = !max_ts + 1; wpid = ctx.ep.self } in
  let w2 = put_round ctx ~view ~rid:r.rid ~tag ~v in
  Metrics.note_quorum_op ~wait:(w1 + w2)

let do_write ctx r v = with_retries ctx (fun view -> do_write_v ctx view r v)

let home_of (view : config) rid =
  List.nth view.members (rid mod List.length view.members)

let do_rmw_v ctx (view : config) ~reqid (r : reg) op =
  let home = home_of view r.rid in
  let result = ref None in
  let w1 =
    run_phase ctx ~reqid ~epoch:view.epoch ~targets:[ home ]
      ~mk:(fun () -> Rmw { rid = r.rid; op })
      ~need:(fun () -> Option.is_some !result)
      ~on:(fun m ->
        match m.body with
        | Rmw_reply { rid; res; tag; v; applied } when rid = r.rid ->
            if Option.is_none !result then result := Some (res, tag, v, applied)
        | _ -> ())
  in
  match !result with
  | None -> assert false (* [need] held *)
  | Some (res, tag, v, applied) ->
      let w2 = if applied then put_round ctx ~view ~rid:r.rid ~tag ~v else 0 in
      Metrics.note_quorum_op ~wait:(w1 + w2);
      res

(* The request id is chosen once per logical operation, not per epoch
   retry, so the home's dedup table — carried across the transfer —
   answers a retried RMW instead of re-applying it. *)
let do_rmw ctx r op =
  let reqid = ctx.fresh () in
  with_retries ctx (fun view -> do_rmw_v ctx view ~reqid r op)

(* ---- manager-side protocol rounds (driven by [Net_reconfig]) ---- *)

(* A collected state-transfer payload. *)
type xfer = {
  xvals : (tag * value) Imap.t;
  xnext_ts : int;
  xdedup : (int * body) Imap.t;
}

let xfer0 = { xvals = Imap.empty; xnext_ts = 1; xdedup = Imap.empty }

let xfer_registers x = Imap.cardinal x.xvals

(* Seal-and-collect in one round: broadcast [Seal] to the old members,
   merge a read quorum of state snapshots.  In fenced mode every ack also
   closed its replica to the old epoch, so the merge contains every write
   that ever reached an ack quorum (majorities intersect; a replica that
   sealed first refuses the write, a replica that acked the write first
   reports it here). *)
let collect_state ctx ~(cfg : config) =
  let reqid = ctx.fresh () in
  let acc : (int, xfer) Hashtbl.t = Hashtbl.create 8 in
  ignore
    (run_phase ctx ~reqid ~epoch:cfg.epoch ~targets:cfg.members
       ~mk:(fun () -> Seal { epoch = cfg.epoch })
       ~need:(fun () -> Hashtbl.length acc >= quorum_of cfg)
       ~on:(fun m ->
         match m.body with
         | Seal_ack { epoch; vals; next_ts; dedup } when epoch = cfg.epoch ->
             Hashtbl.replace acc m.src
               { xvals = vals; xnext_ts = next_ts; xdedup = dedup }
         | _ -> ()));
  Hashtbl.fold
    (fun _ x acc ->
      {
        xvals = merge_vals acc.xvals x.xvals;
        xnext_ts = max acc.xnext_ts x.xnext_ts;
        xdedup = merge_dedup acc.xdedup x.xdedup;
      })
    acc xfer0

(* Install the transferred state at a write quorum of the new members.
   Broadcast to all of them — stragglers catch up from the resends, and a
   member that never installs simply never serves the new epoch. *)
let install_state ctx ~(cfg : config) x =
  let reqid = ctx.fresh () in
  let acks = Hashtbl.create 8 in
  ignore
    (run_phase ctx ~reqid ~epoch:cfg.epoch ~targets:cfg.members
       ~mk:(fun () ->
         Install
           { cfg; vals = x.xvals; next_ts = x.xnext_ts; dedup = x.xdedup })
       ~need:(fun () -> Hashtbl.length acks >= quorum_of cfg)
       ~on:(fun m ->
         match m.body with
         | Install_ack { epoch } when epoch = cfg.epoch ->
             Hashtbl.replace acks m.src ()
         | _ -> ()));
  Metrics.note_transfer ~registers:(xfer_registers x)

(* One bounded health probe: a single [Ping] attempt with a small poll
   budget; [false] is a {e silent step timeout}, not proof of death. *)
let probe ctx ~node ~budget =
  let reqid = ctx.fresh () in
  let got = ref false in
  (try
     ignore
       (run_phase ctx ~attempts:1 ~budget ~reqid ~epoch:0 ~targets:[ node ]
          ~mk:(fun () -> Ping)
          ~need:(fun () -> !got)
          ~on:(fun m -> match m.body with Pong -> got := true | _ -> ()))
   with Unavailable _ -> ());
  !got

(* ---- circuit breaker (per client) ---- *)

type breaker = { mutable state : [ `Closed | `Open of int | `Half ] }

let guard_breaker ~cooldown (b : breaker) f =
  let run () =
    try
      let y = f () in
      (match b.state with
      | `Closed -> ()
      | _ ->
          b.state <- `Closed;
          Metrics.note_breaker `Close);
      y
    with Unavailable _ as e ->
      b.state <- `Open cooldown;
      Metrics.note_breaker `Open;
      raise e
  in
  match b.state with
  | `Closed | `Half -> run ()
  | `Open k when k > 0 ->
      b.state <- `Open (k - 1);
      Metrics.note_unavailable ();
      raise (Unavailable "circuit open")
  | `Open _ ->
      b.state <- `Half;
      Metrics.note_breaker `Half_open;
      run ()

(* ---- simulated cluster ---- *)

type sim_cluster = {
  cc : cconf;
  net : msg Net.Sim.t;
  regs : (int, reg) Hashtbl.t;
  mutable next_rid : int;
  stores : rstate Msim.ref_ array;  (* one durable cell per pool replica *)
  sessions : int Msim.ref_ array;  (* per client: 1 = open, 0 = closed *)
  breakers : breaker array;
  reqids : int array;  (* per client; client-local, so a plain array *)
  views : config array;  (* per client: cached configuration *)
  manager_node : int option;
  mutable mgr_reqid : int;
}

let current_sim : sim_cluster option ref = ref None

let initial_config_of ~clients ~replicas =
  { epoch = 0; members = List.init replicas (fun i -> clients + i) }

let cluster ?(mode = Abd) ?(poll_budget = 48) ?(max_attempts = 6)
    ?(breaker_cooldown = 8) ?(spares = 0) ?(with_manager = false) ~clients
    ~replicas () =
  if clients < 1 then invalid_arg "Net_abd.cluster: clients < 1";
  if replicas < 1 then invalid_arg "Net_abd.cluster: replicas < 1";
  if spares < 0 then invalid_arg "Net_abd.cluster: spares < 0";
  Net.Sim.reset ();
  let with_manager = with_manager || spares > 0 in
  let pool = replicas + spares in
  let cc =
    {
      clients;
      replicas;
      pool;
      quorum = (replicas / 2) + 1;
      poll_budget;
      max_attempts;
      mode;
      fenced = true;
      reconfig_active = false;
      breaker_cooldown;
    }
  in
  let cfg0 = initial_config_of ~clients ~replicas in
  let nodes = clients + pool + if with_manager then 1 else 0 in
  let c =
    {
      cc;
      net = Net.Sim.create ~nodes ();
      regs = Hashtbl.create 64;
      next_rid = 0;
      stores =
        Array.init pool (fun i ->
            Msim.make ~name:(Printf.sprintf "abd.r%d.store" i) (rstate_at cfg0));
      sessions =
        Array.init clients (fun i ->
            Msim.make ~name:(Printf.sprintf "abd.c%d.session" i) 1);
      breakers = Array.init clients (fun _ -> { state = `Closed });
      reqids = Array.make clients 0;
      views = Array.make clients cfg0;
      manager_node = (if with_manager then Some (clients + pool) else None);
      mgr_reqid = 0;
    }
  in
  current_sim := Some c;
  c

let set_mode c m = c.cc.mode <- m
let set_fenced c b = c.cc.fenced <- b
let set_reconfig_active c b = c.cc.reconfig_active <- b
let clients c = c.cc.clients
let replicas c = c.cc.replicas
let pool c = c.cc.pool
let initial_config c = initial_config_of ~clients:c.cc.clients ~replicas:c.cc.replicas
let pool_nodes c = pool_nodes_of c.cc
let manager_node c = c.manager_node

let the_cluster () =
  match !current_sim with
  | Some c -> c
  | None -> failwith "Net_abd: no simulated cluster installed"

(* True while any client session is open — the retirement condition shared
   by replica fibers and the membership manager. *)
let sessions_open c =
  let rec go i =
    i < c.cc.clients && (Msim.read c.sessions.(i) > 0 || go (i + 1))
  in
  go 0

(* Replica fiber body: serve requests until the inbox is empty and every
   client session is closed.  Usable directly as a restart body — the
   durable state lives in the store cell, not the fiber.  Spares run the
   same body: they idle (no data traffic targets them) until an [Install]
   promotes them.  A retired member keeps draining, sealed, until the
   sessions close. *)
let replica_body c ~index () =
  let rnode = c.cc.clients + index in
  let init_of rid = (Hashtbl.find c.regs rid).init in
  let store = c.stores.(index) in
  let rec loop () =
    match Net.Sim.recv c.net ~self:rnode with
    | Some m ->
        let st = Msim.read store in
        let st', reply = serve ~fenced:c.cc.fenced ~init_of ~rnode st m in
        if st' != st then Msim.write store st';
        (match reply with
        | Some body ->
            Net.Sim.send c.net ~src:rnode ~dst:m.src
              { src = rnode; reqid = m.reqid; epoch = st'.rcfg.epoch; body }
        | None -> ());
        loop ()
    | None -> if sessions_open c then loop () else ()
  in
  loop ()

(* Client wrapper: one bootstrap step (so [Sim.current_pid] is set before
   the first quorum operation), the workload, then close the session so
   replicas may retire.  An [Unavailable] escaping the workload closes the
   session instead of killing the run — the client gave up, the campaign
   carries on.  [close_client] is the matching restart body: closing the
   session is idempotent, so a crash anywhere in the client is safe. *)
let wrap_client c ~pid body () =
  if pid < 0 || pid >= c.cc.clients then invalid_arg "Net_abd.wrap_client";
  ignore (Msim.read c.sessions.(pid));
  (try body () with Unavailable _ -> ());
  Msim.write c.sessions.(pid) 0

let close_client c ~pid () = Msim.write c.sessions.(pid) 0

let sim_ctx c =
  match Sim_k.current_pid () with
  | Some pid when pid < c.cc.clients ->
      {
        ep =
          {
            self = pid;
            send = (fun ~dst m -> Net.Sim.send c.net ~src:pid ~dst m);
            recv = (fun () -> Net.Sim.recv c.net ~self:pid);
            relax = (fun () -> ());
          };
        cc = c.cc;
        fresh =
          (fun () ->
            let id = c.reqids.(pid) + 1 in
            c.reqids.(pid) <- id;
            id);
        view = (fun () -> c.views.(pid));
        adopt = (fun cfg -> c.views.(pid) <- cfg);
        pool_nodes = pool_nodes_of c.cc;
      }
  | Some _ -> failwith "Net_abd: replica fiber called a client memory op"
  | None ->
      failwith
        "Net_abd: client op before the fiber's first scheduling point (run \
         the workload via Net_abd.wrap_client)"

(* The membership manager's endpoint: an ordinary protocol participant on
   its own node, but with an unchasable view — the manager {e is} the
   configuration authority, so [Stale] replies never make it adopt. *)
let manager_ctx c =
  match c.manager_node with
  | None -> failwith "Net_abd.manager_ctx: cluster built without a manager"
  | Some self ->
      {
        ep =
          {
            self;
            send = (fun ~dst m -> Net.Sim.send c.net ~src:self ~dst m);
            recv = (fun () -> Net.Sim.recv c.net ~self);
            relax = (fun () -> ());
          };
        cc = c.cc;
        fresh =
          (fun () ->
            c.mgr_reqid <- c.mgr_reqid + 1;
            c.mgr_reqid);
        view = (fun () -> { epoch = max_int; members = [] });
        adopt = (fun _ -> ());
        pool_nodes = pool_nodes_of c.cc;
      }

(* The epoch a client currently operates under — harness observability. *)
let client_epoch c ~pid = c.views.(pid).epoch

module Sim_mem : Psnap_mem.Mem_intf.S = struct
  type 'a ref_ = reg

  let make ?name v =
    let c = the_cluster () in
    let rid = c.next_rid in
    c.next_rid <- rid + 1;
    let rname =
      match name with Some n -> n | None -> Printf.sprintf "abd%d" rid
    in
    let r = { rid; rname; home = rid mod c.cc.replicas; init = pack v } in
    Hashtbl.replace c.regs rid r;
    r

  (* Outside a run there are no replica fibers: operate on the pre-run
     contents directly.  Inside a run, go through breaker + quorum. *)
  let prerun () = Sim_k.current_serial () = None

  let guarded c f =
    let ctx = sim_ctx c in
    guard_breaker ~cooldown:c.cc.breaker_cooldown c.breakers.(ctx.ep.self)
      (fun () -> f ctx)

  let read r =
    let c = the_cluster () in
    if prerun () then unpack r.init
    else unpack (guarded c (fun ctx -> do_read ctx r))

  let write r v =
    let c = the_cluster () in
    if prerun () then r.init <- pack v
    else guarded c (fun ctx -> do_write ctx r (pack v))

  let cas r ~expected ~desired =
    let c = the_cluster () in
    if prerun () then
      if unpack r.init == expected then begin
        r.init <- pack desired;
        true
      end
      else false
    else
      unpack
        (guarded c (fun ctx ->
             do_rmw ctx r
               (Cas_op { expected = pack expected; desired = pack desired })))

  let fetch_and_add r k =
    let c = the_cluster () in
    if prerun () then begin
      let n : int = unpack r.init in
      r.init <- pack (n + k);
      n
    end
    else unpack (guarded c (fun ctx -> do_rmw ctx r (Faa_op k)))
end

(* ---- multicore cluster (loadgen backend) ---- *)

type mc_cluster = {
  mcc : cconf;
  mnet : msg Net.Mc.t;
  mregs : (int, reg) Hashtbl.t;
  mreg_lock : Mutex.t;
  mutable mnext_rid : int;
  stop : bool Atomic.t;
  claim : int Atomic.t;
  mcfg : config Atomic.t;  (* the active configuration (manager-written) *)
  killed : bool Atomic.t array;  (* per pool replica: permanently dead *)
}

let current_mc : mc_cluster option ref = ref None

let mc_cluster ?(poll_budget = 200_000) ?(max_attempts = 8) ?(spares = 0)
    ?(with_manager = false) ~clients ~replicas () =
  if clients < 1 then invalid_arg "Net_abd.mc_cluster: clients < 1";
  if replicas < 1 then invalid_arg "Net_abd.mc_cluster: replicas < 1";
  if spares < 0 then invalid_arg "Net_abd.mc_cluster: spares < 0";
  let with_manager = with_manager || spares > 0 in
  let pool = replicas + spares in
  let mcc =
    {
      clients;
      replicas;
      pool;
      quorum = (replicas / 2) + 1;
      poll_budget;
      max_attempts;
      mode = Abd;
      fenced = true;
      reconfig_active = false;
      breaker_cooldown = 0;
    }
  in
  let nodes = clients + pool + if with_manager then 1 else 0 in
  let c =
    {
      mcc;
      mnet = Net.Mc.create ~nodes ();
      mregs = Hashtbl.create 64;
      mreg_lock = Mutex.create ();
      mnext_rid = 0;
      stop = Atomic.make false;
      claim = Atomic.make 0;
      mcfg = Atomic.make (initial_config_of ~clients ~replicas);
      killed = Array.init pool (fun _ -> Atomic.make false);
    }
  in
  current_mc := Some c;
  c

let mc_set_fenced c b = c.mcc.fenced <- b
let mc_set_reconfig_active c b = c.mcc.reconfig_active <- b
let mc_config c = Atomic.get c.mcfg
let mc_set_config c cfg = Atomic.set c.mcfg cfg
let mc_manager_node c = c.mcc.clients + c.mcc.pool
let mc_pool_nodes c = pool_nodes_of c.mcc

let mc_stop c =
  Atomic.set c.stop true;
  Net.Mc.wake_all c.mnet

(* Permanently kill one pool replica: its domain body exits at the next
   receive.  The loadgen's replacement for the simulator's
   [replica_death] nemesis. *)
let mc_kill c ~index =
  Atomic.set c.killed.(index) true;
  Net.Mc.wake_all c.mnet

(* Periodic ticker hook: with single-park client receives, a waker
   guarantees parked clients re-check their budgets even when no traffic
   reaches their inbox (e.g. while a dead quorum is being replaced). *)
let mc_wake c = Net.Mc.wake_all c.mnet

(* Replica domain body: local state (the domain is the single writer; no
   crash model under the loadgen), sleep on the inbox until stopped or
   permanently killed. *)
let mc_replica_body c ~index () =
  let rnode = c.mcc.clients + index in
  let init_of rid =
    Mutex.lock c.mreg_lock;
    let r = Hashtbl.find c.mregs rid in
    Mutex.unlock c.mreg_lock;
    r.init
  in
  let st =
    ref (rstate_at (initial_config_of ~clients:c.mcc.clients ~replicas:c.mcc.replicas))
  in
  let rec loop () =
    match
      Net.Mc.recv_wait c.mnet ~self:rnode ~should_stop:(fun () ->
          Atomic.get c.stop || Atomic.get c.killed.(index))
    with
    | Some m ->
        let st', reply = serve ~fenced:c.mcc.fenced ~init_of ~rnode !st m in
        st := st';
        (match reply with
        | Some body ->
            Net.Mc.send c.mnet ~dst:m.src
              { src = rnode; reqid = m.reqid; epoch = st'.rcfg.epoch; body }
        | None -> ());
        loop ()
    | None -> ()
  in
  loop ()

(* Client identity under the loadgen: each domain claims a client node id
   on first use and keeps a domain-local request counter plus its cached
   configuration. *)
type mc_client = { node : int; mutable next_reqid : int; mutable view : config }

let mc_client_key =
  Domain.DLS.new_key (fun () ->
      { node = -1; next_reqid = 0; view = { epoch = 0; members = [] } })

let mc_self c =
  let cl = Domain.DLS.get mc_client_key in
  if cl.node >= 0 then cl
  else begin
    let id = Atomic.fetch_and_add c.claim 1 in
    if id >= c.mcc.clients then
      failwith "Net_abd: more client domains than the cluster was built for";
    let cl = { node = id; next_reqid = 0; view = Atomic.get c.mcfg } in
    Domain.DLS.set mc_client_key cl;
    cl
  end

let mc_ctx c =
  let cl = mc_self c in
  {
    ep =
      {
        self = cl.node;
        send = (fun ~dst m -> Net.Mc.send c.mnet ~dst m);
        recv =
          (* single-park blocking: replies wake the client immediately in
             the healthy case, but a permanently dead quorum only costs
             one wake-up cycle per poll, so [run_phase]'s attempt budget
             still bounds the operation and surfaces [Unavailable] *)
          (fun () ->
            Net.Mc.recv_wait1 c.mnet ~self:cl.node ~should_stop:(fun () ->
                Atomic.get c.stop));
        relax = Domain.cpu_relax;
      };
    cc = c.mcc;
    fresh =
      (fun () ->
        let id = cl.next_reqid + 1 in
        cl.next_reqid <- id;
        id);
    view =
      (fun () ->
        (* a freshly activated configuration reaches parked clients
           through the shared cell, not only through [Stale] chases *)
        let shared = Atomic.get c.mcfg in
        if shared.epoch > cl.view.epoch then cl.view <- shared;
        cl.view);
    adopt = (fun cfg -> cl.view <- cfg);
    pool_nodes = pool_nodes_of c.mcc;
  }

(* The manager's endpoint under the loadgen: driven from the control
   thread.  Non-blocking receive — during a reconfiguration a quorum of
   the old members may be dead, and the bounded polling of [run_phase]
   must keep running to give up cleanly. *)
let mc_manager_ctx c =
  let self = mc_manager_node c in
  let reqid = ref 0 in
  {
    ep =
      {
        self;
        send = (fun ~dst m -> Net.Mc.send c.mnet ~dst m);
        recv = (fun () -> Net.Mc.recv c.mnet ~self);
        relax = Domain.cpu_relax;
      };
    cc = c.mcc;
    fresh =
      (fun () ->
        incr reqid;
        !reqid);
    view = (fun () -> { epoch = max_int; members = [] });
    adopt = (fun _ -> ());
    pool_nodes = pool_nodes_of c.mcc;
  }

module Mc_mem : Psnap_mem.Mem_intf.S = struct
  type 'a ref_ = reg

  let the () =
    match !current_mc with
    | Some c -> c
    | None -> failwith "Net_abd: no multicore cluster installed"

  let make ?name v =
    let c = the () in
    Mutex.lock c.mreg_lock;
    let rid = c.mnext_rid in
    c.mnext_rid <- rid + 1;
    let rname =
      match name with Some n -> n | None -> Printf.sprintf "abd%d" rid
    in
    let r = { rid; rname; home = rid mod c.mcc.replicas; init = pack v } in
    Hashtbl.replace c.mregs rid r;
    Mutex.unlock c.mreg_lock;
    r

  let read r =
    let c = the () in
    unpack (do_read (mc_ctx c) r)

  let write r v =
    let c = the () in
    do_write (mc_ctx c) r (pack v)

  let cas r ~expected ~desired =
    let c = the () in
    unpack
      (do_rmw (mc_ctx c) r
         (Cas_op { expected = pack expected; desired = pack desired }))

  let fetch_and_add r k =
    let c = the () in
    unpack (do_rmw (mc_ctx c) r (Faa_op k))
end
