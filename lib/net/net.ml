(* Message-passing substrate for the crash-prone distributed backend
   (docs/MODEL.md §14).

   Two transports share one wire model — [nodes] endpoints connected by
   directed per-link FIFO channels:

   - {!Sim} is the deterministic transport of the cooperative simulator.
     Every [send] and every [recv] poll is one scheduler step charged to
     the acting node's pseudo-object ("net.n<i>"), so message interleaving
     is decided by the same replayable decision stream as shared-memory
     steps, and the network nemeses ([Scheduler.partition_storm] and
     friends) inject faults as ordinary decisions that shrink under
     [Shrink.ddmin].

   - {!Mc} is the multicore transport used by the loadgen: one
     mutex-guarded inbox queue per node, no fault injection.

   Fault semantics of {!Sim} (mirroring [Mem_sim]'s absorbed-decision
   discipline — an effect that cannot apply reports [false] and the
   decision is a no-op, which keeps lenient replay and ddmin sound):

   - [Drop_msg src dst]: pop the oldest message of the link, if any.
   - [Dup_msg src dst]: append a copy of the oldest message, if any.
   - [Delay_msg src dst]: move the oldest message to the back (a reorder;
     absorbed when the link holds fewer than two messages).
   - [Cut_link src dst]: mark the directed link cut.  A cut link still
     accepts sends; it HOLDS its queue — nothing is delivered until the
     link heals, at which point held messages drain in order.  (A message
     that must die needs an explicit [Drop_msg].)
   - [Heal_link src dst]: clear the cut mark. *)

module Sim_k = Psnap_sched.Sim
module Event = Psnap_sched.Event
module Metrics = Psnap_sched.Metrics

module Sim = struct
  type 'm link = {
    mutable q : 'm list;  (* oldest first *)
    mutable cut : bool;
  }

  type 'm t = {
    nodes : int;
    links : 'm link array array;  (* links.(src).(dst) *)
    oids : int array;
    names : string array;
    cursor : int array;  (* per-node round-robin receive cursor *)
  }

  (* Registry of live transports, type-erased into closures — the same
     shape as [Storage.Sim]'s device list.  Transports of finished runs
     linger harmlessly until the next [reset]. *)
  let fault_hooks : (Event.net_fault_kind -> src:int -> dst:int -> bool) list ref
      =
    ref []

  let inflight_hooks : (unit -> (int * int) list) list ref = ref []
  let injected = ref 0
  let absorbed = ref 0

  let reset () =
    fault_hooks := [];
    inflight_hooks := [];
    injected := 0;
    absorbed := 0

  let fault_counts () = (!injected, !absorbed)

  let apply_fault t kind ~src ~dst =
    if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes || src = dst then
      false
    else
      let l = t.links.(src).(dst) in
      match kind with
      | Event.Drop_msg -> (
          match l.q with
          | _ :: tl ->
              l.q <- tl;
              true
          | [] -> false)
      | Event.Dup_msg -> (
          match l.q with
          | m :: _ ->
              l.q <- l.q @ [ m ];
              true
          | [] -> false)
      | Event.Delay_msg -> (
          match l.q with
          | m :: (_ :: _ as tl) ->
              l.q <- tl @ [ m ];
              true
          | _ -> false)
      | Event.Cut_link ->
          if l.cut then false
          else (
            l.cut <- true;
            true)
      | Event.Heal_link ->
          if l.cut then (
            l.cut <- false;
            true)
          else false

  let inflight t () =
    let acc = ref [] in
    for src = t.nodes - 1 downto 0 do
      for dst = t.nodes - 1 downto 0 do
        if t.links.(src).(dst).q <> [] then acc := (src, dst) :: !acc
      done
    done;
    !acc

  let create ~nodes () =
    if nodes < 1 then invalid_arg "Net.Sim.create: nodes < 1";
    let t =
      {
        nodes;
        links =
          Array.init nodes (fun _ ->
              Array.init nodes (fun _ -> { q = []; cut = false }));
        oids = Array.init nodes (fun _ -> Sim_k.fresh_oid ());
        names = Array.init nodes (Printf.sprintf "net.n%d");
        cursor = Array.make nodes 0;
      }
    in
    fault_hooks := apply_fault t :: !fault_hooks;
    inflight_hooks := inflight t :: !inflight_hooks;
    t

  (* Installed once at module initialisation: [Sim.run] forwards every
     [Net_fault] decision here; we offer it to every registered
     transport. *)
  let dispatch kind ~src ~dst =
    let hit =
      List.fold_left
        (fun acc hook -> if hook kind ~src ~dst then true else acc)
        false !fault_hooks
    in
    if hit then (
      incr injected;
      Metrics.note_net_fault kind)
    else incr absorbed;
    hit

  let () = Sim_k.set_net_fault_dispatcher dispatch

  let inflight_links () =
    Array.of_list (List.concat_map (fun hook -> hook ()) !inflight_hooks)

  (* Outside a run (instance construction, post-mortem inspection) the
     transport works un-charged; inside a run every send/poll is a step. *)
  let step t node op =
    if Sim_k.current_serial () <> None then
      Sim_k.step { oid = t.oids.(node); obj_name = t.names.(node); op }

  let send t ~src ~dst m =
    if src = dst then invalid_arg "Net.Sim.send: self link";
    if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
      invalid_arg "Net.Sim.send: node out of range";
    step t src Event.Write;
    let l = t.links.(src).(dst) in
    l.q <- l.q @ [ m ];
    Metrics.note_send ()

  let recv t ~self =
    if self < 0 || self >= t.nodes then
      invalid_arg "Net.Sim.recv: node out of range";
    step t self Event.Read;
    let start = t.cursor.(self) in
    t.cursor.(self) <- (start + 1) mod t.nodes;
    let rec scan k =
      if k >= t.nodes then None
      else
        let src = (start + k) mod t.nodes in
        let l = t.links.(src).(self) in
        match l.q with
        | m :: tl when not l.cut ->
            l.q <- tl;
            Metrics.note_deliver ();
            Some m
        | _ -> scan (k + 1)
    in
    scan 0
end

module Mc = struct
  type 'm t = {
    nodes : int;
    locks : Mutex.t array;
    conds : Condition.t array;
    inboxes : 'm Queue.t array;
  }

  let create ~nodes () =
    if nodes < 1 then invalid_arg "Net.Mc.create: nodes < 1";
    {
      nodes;
      locks = Array.init nodes (fun _ -> Mutex.create ());
      conds = Array.init nodes (fun _ -> Condition.create ());
      inboxes = Array.init nodes (fun _ -> Queue.create ());
    }

  let send t ~dst m =
    if dst < 0 || dst >= t.nodes then
      invalid_arg "Net.Mc.send: node out of range";
    Mutex.lock t.locks.(dst);
    Queue.push m t.inboxes.(dst);
    Condition.signal t.conds.(dst);
    Mutex.unlock t.locks.(dst);
    Metrics.note_send ()

  let recv t ~self =
    if self < 0 || self >= t.nodes then
      invalid_arg "Net.Mc.recv: node out of range";
    Mutex.lock t.locks.(self);
    let m = Queue.take_opt t.inboxes.(self) in
    Mutex.unlock t.locks.(self);
    if m <> None then Metrics.note_deliver ();
    m

  (* Blocking receive: sleep on the inbox condition until a message or
     [should_stop ()]; None only when stopped with an empty inbox.  On an
     oversubscribed host (fewer cores than domains) this is the difference
     between scheduler-quantum ping-pong and microsecond wakeups. *)
  let recv_wait t ~self ~should_stop =
    if self < 0 || self >= t.nodes then
      invalid_arg "Net.Mc.recv_wait: node out of range";
    Mutex.lock t.locks.(self);
    let rec take () =
      match Queue.take_opt t.inboxes.(self) with
      | Some m ->
          Mutex.unlock t.locks.(self);
          Metrics.note_deliver ();
          Some m
      | None ->
          if should_stop () then begin
            Mutex.unlock t.locks.(self);
            None
          end
          else begin
            Condition.wait t.conds.(self) t.locks.(self);
            take ()
          end
    in
    take ()

  (* Single-park receive: at most one condition-wait, so a dead peer can
     only cost the caller one wake-up cycle per call instead of an
     unbounded sleep.  [recv_wait]'s reply-always-in-flight invariant
     breaks once replicas can die permanently; bounded attempt budgets
     above this primitive restore the give-up-as-Unavailable discipline. *)
  let recv_wait1 t ~self ~should_stop =
    if self < 0 || self >= t.nodes then
      invalid_arg "Net.Mc.recv_wait1: node out of range";
    Mutex.lock t.locks.(self);
    let deliver m =
      Mutex.unlock t.locks.(self);
      Metrics.note_deliver ();
      Some m
    in
    match Queue.take_opt t.inboxes.(self) with
    | Some m -> deliver m
    | None ->
        if should_stop () then begin
          Mutex.unlock t.locks.(self);
          None
        end
        else begin
          Condition.wait t.conds.(self) t.locks.(self);
          match Queue.take_opt t.inboxes.(self) with
          | Some m -> deliver m
          | None ->
              Mutex.unlock t.locks.(self);
              None
        end

  (* Wake every waiter (used by a cluster shutting down: set the stop flag
     first, then broadcast). *)
  let wake_all t =
    Array.iteri
      (fun i mu ->
        Mutex.lock mu;
        Condition.broadcast t.conds.(i);
        Mutex.unlock mu)
      t.locks
end
