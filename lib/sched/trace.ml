(** Post-mortem analysis of recorded executions ([Sim.run ~record_trace]).
    Used by scheduler tests and for debugging: who took which steps, on
    which objects, and how bursty the interleaving was. *)

module Int_map = Map.Make (Int)

module Obj_map = Map.Make (struct
  type t = int * string

  let compare = compare
end)

let steps (trace : Event.t list) =
  List.filter_map
    (function
      | Event.Step _ as e -> Some e
      | Event.Crash _ | Event.Restart _ | Event.Mem_fault _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        None)
    trace

let bump key m = Int_map.update key (fun n -> Some (1 + Option.value ~default:0 n)) m

let steps_by_pid trace =
  List.fold_left
    (fun m -> function
      | Event.Step { pid; _ } -> bump pid m
      | Event.Crash _ | Event.Restart _ | Event.Mem_fault _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        m)
    Int_map.empty trace
  |> Int_map.bindings

let steps_by_object trace =
  List.fold_left
    (fun m -> function
      | Event.Step { oid; obj_name; _ } ->
        Obj_map.update (oid, obj_name)
          (fun n -> Some (1 + Option.value ~default:0 n))
          m
      | Event.Crash _ | Event.Restart _ | Event.Mem_fault _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        m)
    Obj_map.empty trace
  |> Obj_map.bindings
  |> List.map (fun ((oid, name), n) -> (oid, name, n))
  |> List.sort (fun (oid1, n1, a) (oid2, n2, b) ->
         (* hottest first; ties broken by (oid, name) so the order is a
            function of the trace alone *)
         match compare b a with 0 -> compare (oid1, n1) (oid2, n2) | c -> c)

let context_switches trace =
  let rec go last n = function
    | [] -> n
    | Event.Step { pid; _ } :: rest ->
      go (Some pid) (match last with Some p when p <> pid -> n + 1 | _ -> n) rest
    | ( Event.Crash _ | Event.Restart _ | Event.Mem_fault _
      | Event.Power_loss _ | Event.Net_fault _ | Event.Reconfig _ )
      :: rest ->
      go last n rest
  in
  go None 0 trace

let crashes trace =
  List.filter_map
    (function
      | Event.Crash { pid; _ } -> Some pid
      | Event.Step _ | Event.Restart _ | Event.Mem_fault _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        None)
    trace

let restarts trace =
  List.filter_map
    (function
      | Event.Restart { pid; _ } -> Some pid
      | Event.Step _ | Event.Crash _ | Event.Mem_fault _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        None)
    trace

let mem_faults trace =
  List.filter_map
    (function
      | Event.Mem_fault { kind; oid; _ } -> Some (kind, oid)
      | Event.Step _ | Event.Crash _ | Event.Restart _ | Event.Power_loss _
      | Event.Net_fault _ | Event.Reconfig _ ->
        None)
    trace

let net_faults trace =
  List.filter_map
    (function
      | Event.Net_fault { kind; src; dst; _ } -> Some (kind, src, dst)
      | Event.Step _ | Event.Crash _ | Event.Restart _ | Event.Mem_fault _
      | Event.Power_loss _ | Event.Reconfig _ ->
        None)
    trace

let power_losses trace =
  List.fold_left
    (fun n -> function Event.Power_loss _ -> n + 1 | _ -> n)
    0 trace

let reconfigs trace =
  List.fold_left
    (fun n -> function Event.Reconfig _ -> n + 1 | _ -> n)
    0 trace

(* The slice of a recorded execution spanning a race's two program points
   (the step clocks in a [Race.report]), faults included: replaying the
   prefix up to [until_clock] reproduces the race, and this window is where
   the interesting interleaving lives. *)
let race_window ~from_clock ~until_clock trace =
  let clock_of = function
    | Event.Step { clock; _ }
    | Event.Crash { clock; _ }
    | Event.Restart { clock; _ }
    | Event.Mem_fault { clock; _ }
    | Event.Power_loss { clock }
    | Event.Net_fault { clock; _ }
    | Event.Reconfig { clock } ->
      clock
  in
  List.filter
    (fun e ->
      let c = clock_of e in
      c >= from_clock && c <= until_clock)
    trace

let schedule trace =
  List.map
    (function
      | Event.Step { pid; _ } -> Scheduler.Run pid
      | Event.Crash { pid; _ } -> Scheduler.Crash pid
      | Event.Restart { pid; _ } -> Scheduler.Restart pid
      | Event.Mem_fault { kind; oid; _ } -> Scheduler.Mem_fault { kind; oid }
      | Event.Power_loss _ -> Scheduler.Power_loss
      | Event.Net_fault { kind; src; dst; _ } ->
        Scheduler.Net_fault { kind; src; dst }
      | Event.Reconfig _ -> Scheduler.Reconfig)
    trace

let pp ppf trace = List.iter (Fmt.pf ppf "%a@." Event.pp) trace
