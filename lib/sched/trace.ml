(** Post-mortem analysis of recorded executions ([Sim.run ~record_trace]).
    Used by scheduler tests and for debugging: who took which steps, on
    which objects, and how bursty the interleaving was. *)

let steps (trace : Event.t list) =
  List.filter_map
    (function Event.Step _ as e -> Some e | Event.Crash _ -> None)
    trace

(** Executed steps per process id, ascending pid order. *)
let steps_by_pid trace =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Event.Step { pid; _ } ->
        Hashtbl.replace tbl pid (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pid))
      | Event.Crash _ -> ())
    trace;
  Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) tbl []
  |> List.sort compare

(** Accesses per shared object, by (object id, name), descending count. *)
let steps_by_object trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Event.Step { oid; obj_name; _ } ->
        let key = (oid, obj_name) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | Event.Crash _ -> ())
    trace;
  Hashtbl.fold (fun (oid, name) n acc -> (oid, name, n) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

(** Number of points where the running process changes — 0 for a solo run,
    [steps - 1] for perfect alternation.  A scheduler-character metric. *)
let context_switches trace =
  let rec go last n = function
    | [] -> n
    | Event.Step { pid; _ } :: rest ->
      go (Some pid) (match last with Some p when p <> pid -> n + 1 | _ -> n) rest
    | Event.Crash _ :: rest -> go last n rest
  in
  go None 0 trace

let crashes trace =
  List.filter_map
    (function Event.Crash { pid; _ } -> Some pid | Event.Step _ -> None)
    trace

(** One line per event. *)
let pp ppf trace = List.iter (Fmt.pf ppf "%a@." Event.pp) trace
