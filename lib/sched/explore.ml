(** Bounded exhaustive exploration of schedules.

    The paper requires algorithms to "behave correctly for all possible
    interleavings" (Section 2).  For small configurations we can check that
    literally: enumerate {e every} schedule by depth-first search over
    scheduler choices, re-running the program from scratch with a forced
    prefix (one-shot continuations cannot be backtracked, so this is the
    stateless-model-checking approach).

    [run ~make ()] calls [make ()] to obtain a fresh program instance —
    an array of process bodies plus a [check] run after each completed
    execution — and explores all interleavings.  Returns the number of
    complete executions checked. *)

exception Too_many_runs of int

let run ?(max_runs = 2_000_000) ~make () =
  let completed = ref 0 in
  let rec dfs prefix =
    let procs, check = make () in
    let res = Sim.run ~sched:(Scheduler.replay (List.rev prefix)) procs in
    match res.outcome with
    | Sim.Completed ->
      incr completed;
      if !completed > max_runs then raise (Too_many_runs !completed);
      check ()
    | Sim.Stopped runnable ->
      Array.iter (fun pid -> dfs (pid :: prefix)) runnable
  in
  dfs [];
  !completed
