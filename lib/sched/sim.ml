(** The asynchronous shared-memory machine of Section 2 of the paper.

    Each process is an OCaml 5 fiber.  Every access to a shared base object
    (through {!Mem_sim}) performs the {!Step} effect, which suspends the
    fiber; the scheduler then decides which process executes its pending
    access next.  One resumed access = one {e step} — exactly the cost unit
    in which Theorems 1–3 state their bounds.  Local computation is free, as
    in the standard step-complexity measure for shared-memory algorithms.

    Halting failures are modelled by dropping a fiber's continuation: the
    process simply stops taking steps, which is precisely a crash in the
    asynchronous model (and indistinguishable from being very slow).

    Crash–restart failures additionally respawn the crashed process on a
    user-supplied {e recovery function} ([?recover]): the fiber's local
    state is lost with the dropped continuation, but shared memory — which
    belongs to the run, not the fiber — survives.  Each respawn is a new
    {e incarnation} of the same pid. *)

type step_info = { oid : int; obj_name : string; op : Event.mem_op }

type _ Effect.t += Step : step_info -> unit Effect.t

exception Out_of_steps of int
(** Raised when a run exceeds its step budget: some process is not
    wait-free. *)

type pstate =
  | Pending of (unit, unit) Effect.Deep.continuation * step_info
      (** suspended at a shared access not yet executed *)
  | Finished
  | Crashed
  | Failed of exn * Printexc.raw_backtrace

type proc = {
  pid : int;
  mutable state : pstate;
  mutable steps : int;  (** across all incarnations *)
  mutable incarnation : int;  (** 1 = initial body; +1 per restart *)
}

type recover = pid:int -> incarnation:int -> unit -> unit

type t = {
  serial : int;  (** globally unique id of this run, for the sanitizer *)
  procs : proc array;
  recover : recover option;
  mutable clock : int;  (** shared-memory steps executed so far *)
  mutable stamp : int;  (** strictly increasing event counter; bumped by
                            steps and by history marks, so operation
                            intervals order correctly across processes *)
  mutable faults : int;  (** Crash + Restart decisions taken; bounded by
                             [max_steps] so a crash/restart-only loop —
                             which never advances the clock — still
                             terminates *)
  mutable trace : Event.t list;  (** reversed *)
  record_trace : bool;
  max_steps : int;
  mutable oid_counter : int;
  mutable running : int option;
      (** pid whose access/continuation is currently executing; [None] at
          scheduler decision points.  Lets the memory backend attribute an
          access to a process (the happens-before checker needs the
          accessor's identity, which the access code itself doesn't know) *)
}

type outcome =
  | Completed
  | Stopped of int array  (** runnable pids at the moment the scheduler
                              stopped the run (exhaustive exploration) *)

type result = {
  outcome : outcome;
  clock : int;
  steps : int array;  (** per-pid executed steps *)
  crashed : int list;
  incarnations : int array;  (** per-pid incarnation count (1 = never
                                 restarted) *)
  trace : Event.t list;  (** in execution order *)
}

(* The simulator is single-threaded (all fibers run on the calling domain),
   so a global current-instance reference is safe. *)
let current : t option ref = ref None

(* Never reused across runs, so a cell stamped with a run's serial can be
   recognized as stale by any later run (Mem_sim's strict mode).  A restart
   keeps the run's serial: shared memory survives the crash. *)
let serial_counter = ref 0

let current_serial () =
  match !current with Some t -> Some t.serial | None -> None

let get_current fn =
  match !current with
  | Some t -> t
  | None -> failwith (fn ^ ": no simulation running")

let clock () = (get_current "Sim.clock").clock

let mark () =
  let t = get_current "Sim.mark" in
  t.stamp <- t.stamp + 1;
  t.stamp

let steps_of pid = (get_current "Sim.steps_of").procs.(pid).steps

let incarnation_of pid =
  (get_current "Sim.incarnation_of").procs.(pid).incarnation

let current_pid () =
  match !current with Some t -> t.running | None -> None

(* Cells allocated outside any run (test setup, harness [create] calls)
   get negative oids from this counter, so they are distinguishable fault
   targets too.  Per-run cells count 1, 2, ... from the run's own counter;
   a harness that re-executes the same workload calls [reset_prerun_oids]
   before each construction so oids are a deterministic function of the
   workload — which replay and shrinking rely on. *)
let prerun_oid_counter = ref 0

let reset_prerun_oids () = prerun_oid_counter := 0

let fresh_oid () =
  match !current with
  | Some t ->
    t.oid_counter <- t.oid_counter + 1;
    t.oid_counter
  | None ->
    decr prerun_oid_counter;
    !prerun_oid_counter

(* Memory faults are applied by the memory backend, which owns the typed
   cells; [Mem_sim] installs its dispatcher at module initialization.  The
   dispatcher returns [true] when the fault was injected, [false] when it
   was absorbed (unknown cell, or no corrupting value available). *)
let mem_fault_dispatcher : (Event.fault_kind -> int -> bool) option ref =
  ref None

let set_mem_fault_dispatcher f = mem_fault_dispatcher := Some f

(* Power losses are applied by the storage backend, which owns the device
   buffers; [Psnap_persist.Storage] installs its dispatcher at module
   initialization.  Returns the number of devices that dropped un-synced
   bytes. *)
let power_loss_dispatcher : (unit -> int) option ref = ref None

let set_power_loss_dispatcher f = power_loss_dispatcher := Some f

(* Network faults are applied by the message-passing transport, which owns
   the link queues; [Psnap_net.Net] installs its dispatcher at module
   initialization.  The dispatcher returns [true] when the fault was
   injected, [false] when it was absorbed (no such link, no matching
   in-flight message, or redundant cut/heal). *)
let net_fault_dispatcher :
    (Event.net_fault_kind -> src:int -> dst:int -> bool) option ref =
  ref None

let set_net_fault_dispatcher f = net_fault_dispatcher := Some f

(* Reconfiguration requests are applied by the replicated service's
   membership manager, which owns the configuration register;
   [Psnap_net.Net_reconfig] installs its dispatcher per cluster.  The
   dispatcher returns [true] when a reconfiguration was proposed, [false]
   when the request was absorbed (no manager, or one already
   mid-handoff). *)
let reconfig_dispatcher : (unit -> bool) option ref = ref None

let set_reconfig_dispatcher f = reconfig_dispatcher := Some f

let clear_reconfig_dispatcher () = reconfig_dispatcher := None

(* Performed by Mem_sim before executing a shared access.  The access itself
   is the code that runs after [continue]: suspension point first, operation
   on resumption. *)
let step info = Effect.perform (Step info)

let start_fiber p f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> p.state <- Finished);
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          p.state <- Failed (e, bt));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Step info ->
            Some
              (fun (k : (a, _) continuation) -> p.state <- Pending (k, info))
          | _ -> None);
    }

let runnable_pids t =
  let l = ref [] in
  for pid = Array.length t.procs - 1 downto 0 do
    match t.procs.(pid).state with
    | Pending _ -> l := pid :: !l
    | Finished | Crashed | Failed _ -> ()
  done;
  Array.of_list !l

(* Restartable pids: only meaningful (and only exposed to the scheduler)
   when the run has a recovery function. *)
let crashed_pids t =
  match t.recover with
  | None -> [||]
  | Some _ ->
    let l = ref [] in
    for pid = Array.length t.procs - 1 downto 0 do
      match t.procs.(pid).state with
      | Crashed -> l := pid :: !l
      | Pending _ | Finished | Failed _ -> ()
    done;
    Array.of_list !l

let run ?(record_trace = false) ?(max_steps = 50_000_000) ?recover ~sched
    procs =
  (match !current with
  | Some _ -> failwith "Sim.run: nested simulations are not supported"
  | None -> ());
  incr serial_counter;
  let t =
    {
      serial = !serial_counter;
      procs =
        Array.mapi
          (fun pid _ -> { pid; state = Finished; steps = 0; incarnation = 1 })
          procs;
      recover;
      clock = 0;
      stamp = 0;
      faults = 0;
      trace = [];
      record_trace;
      max_steps;
      oid_counter = 0;
      running = None;
    }
  in
  current := Some t;
  let finish () = current := None in
  let crashed = ref [] in
  let result outcome =
    finish ();
    (* Surface the first process failure as the run's failure: tests must
       see assertion errors raised inside fibers. *)
    Array.iter
      (fun p ->
        match p.state with
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      t.procs;
    {
      outcome;
      clock = t.clock;
      steps = Array.map (fun (p : proc) -> p.steps) t.procs;
      crashed = List.rev !crashed;
      incarnations = Array.map (fun (p : proc) -> p.incarnation) t.procs;
      trace = List.rev t.trace;
    }
  in
  let op_of pid =
    match t.procs.(pid).state with
    | Pending (_, info) -> Some info.op
    | Finished | Crashed | Failed _ -> None
  in
  let oid_of pid =
    match t.procs.(pid).state with
    | Pending (_, info) -> Some info.oid
    | Finished | Crashed | Failed _ -> None
  in
  let name_of pid =
    match t.procs.(pid).state with
    | Pending (_, info) -> Some info.obj_name
    | Finished | Crashed | Failed _ -> None
  in
  let steps_of pid = t.procs.(pid).steps in
  try
    (* Start every fiber: each runs its (step-free) local prefix and parks at
       its first shared access, or finishes without taking any step. *)
    Array.iteri (fun pid f -> start_fiber t.procs.(pid) f) procs;
    let rec loop () =
      let runnable = runnable_pids t in
      let restartable = crashed_pids t in
      (* The run is over only when nothing can ever take a step again: no
         fiber is parked at an access AND no crashed pid is restartable.
         With restartable pids left the scheduler is still consulted — it
         may [Restart] one of them (possibly with an empty runnable set: a
         fully-crashed system rebooting) or [Stop], which with no runnable
         pids is a completed run of the crash–restart model. *)
      if Array.length runnable = 0 && Array.length restartable = 0 then
        result Completed
      else if t.clock >= t.max_steps then raise (Out_of_steps t.clock)
      else
        let view =
          {
            Scheduler.runnable;
            crashed = restartable;
            clock = t.clock;
            op_of;
            oid_of;
            name_of;
            steps_of;
          }
        in
        match Scheduler.pick sched view with
        | Scheduler.Stop ->
          result
            (if Array.length runnable = 0 then Completed
             else Stopped runnable)
        | Scheduler.Crash pid ->
          let p = t.procs.(pid) in
          (match p.state with
          | Pending _ -> p.state <- Crashed
          | _ -> failwith "Sim.run: crash of non-runnable process");
          t.faults <- t.faults + 1;
          if t.faults > t.max_steps then raise (Out_of_steps t.clock);
          crashed := pid :: !crashed;
          if t.record_trace then
            t.trace <- Event.Crash { pid; clock = t.clock } :: t.trace;
          loop ()
        | Scheduler.Mem_fault { kind; oid } ->
          (* A memory fault advances the fault counter, not the clock, so a
             fault-only loop still exhausts the budget. *)
          t.faults <- t.faults + 1;
          if t.faults > t.max_steps then raise (Out_of_steps t.clock);
          (match !mem_fault_dispatcher with
          | Some apply -> ignore (apply kind oid)
          | None ->
            failwith
              "Sim.run: memory-fault decision but no dispatcher (is the \
               Mem_sim backend linked?)");
          if t.record_trace then
            t.trace <-
              Event.Mem_fault { kind; oid; clock = t.clock } :: t.trace;
          loop ()
        | Scheduler.Net_fault { kind; src; dst } ->
          (* Like a memory fault: advances the fault counter, not the
             clock.  Absorbed (still recorded) when no transport is linked
             or the link has nothing matching to wound. *)
          t.faults <- t.faults + 1;
          if t.faults > t.max_steps then raise (Out_of_steps t.clock);
          (match !net_fault_dispatcher with
          | Some apply -> ignore (apply kind ~src ~dst)
          | None -> ());
          if t.record_trace then
            t.trace <-
              Event.Net_fault { kind; src; dst; clock = t.clock } :: t.trace;
          loop ()
        | Scheduler.Reconfig ->
          (* Like a net fault: advances the fault counter, not the clock.
             Absorbed (still recorded) when no membership manager is
             listening. *)
          t.faults <- t.faults + 1;
          if t.faults > t.max_steps then raise (Out_of_steps t.clock);
          (match !reconfig_dispatcher with
          | Some apply -> ignore (apply ())
          | None -> ());
          if t.record_trace then
            t.trace <- Event.Reconfig { clock = t.clock } :: t.trace;
          loop ()
        | Scheduler.Power_loss ->
          (* Like a memory fault: advances the fault counter, not the
             clock.  Absorbed (still recorded) when no storage backend is
             linked — a blackout against a purely volatile system.  The
             machine loses power as a whole: every runnable process halts
             as part of the same decision (no separate Crash events — the
             blackout implies them), so no schedule, however shrunk, can
             leave a survivor computing against pre-loss volatile state
             while another process rebuilds from the log. *)
          t.faults <- t.faults + 1;
          if t.faults > t.max_steps then raise (Out_of_steps t.clock);
          (match !power_loss_dispatcher with
          | Some apply -> ignore (apply ())
          | None -> ());
          Array.iteri
            (fun pid p ->
              match p.state with
              | Pending _ ->
                p.state <- Crashed;
                crashed := pid :: !crashed
              | _ -> ())
            t.procs;
          if t.record_trace then
            t.trace <- Event.Power_loss { clock = t.clock } :: t.trace;
          loop ()
        | Scheduler.Restart pid ->
          let p = t.procs.(pid) in
          (match p.state, t.recover with
          | Crashed, Some recover ->
            p.incarnation <- p.incarnation + 1;
            t.faults <- t.faults + 1;
            if t.faults > t.max_steps then raise (Out_of_steps t.clock);
            if t.record_trace then
              t.trace <-
                Event.Restart
                  { pid; incarnation = p.incarnation; clock = t.clock }
                :: t.trace;
            (* The recovery body starts from scratch — all local state died
               with the dropped continuation — and parks at its first shared
               access (or finishes without one). *)
            start_fiber p (recover ~pid ~incarnation:p.incarnation)
          | Crashed, None ->
            failwith "Sim.run: restart without a recovery function"
          | _ -> failwith "Sim.run: restart of a non-crashed process");
          loop ()
        | Scheduler.Run pid ->
          let p = t.procs.(pid) in
          (match p.state with
          | Pending (k, info) ->
            t.clock <- t.clock + 1;
            t.stamp <- t.stamp + 1;
            p.steps <- p.steps + 1;
            if t.record_trace then
              t.trace <-
                Event.Step
                  {
                    pid;
                    oid = info.oid;
                    obj_name = info.obj_name;
                    op = info.op;
                    clock = t.clock;
                  }
                :: t.trace;
            (* Executes the pending access and runs until the next one.
               [running] attributes everything up to the next suspension —
               the access itself included — to [pid]. *)
            t.running <- Some pid;
            Effect.Deep.continue k ();
            t.running <- None
          | _ -> failwith "Sim.run: scheduled a non-runnable process");
          loop ()
    in
    loop ()
  with e ->
    (* Preserve the failure's backtrace across the cleanup. *)
    let bt = Printexc.get_raw_backtrace () in
    finish ();
    Printexc.raise_with_backtrace e bt
