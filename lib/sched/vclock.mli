(** Functional vector clocks over pids [0..n-1], the timestamps of the
    happens-before race checker ({!Race}).

    Values are immutable: {!incr} and {!join} return fresh clocks, so a
    snapshot stored at a write site stays the clock {e of that write} no
    matter what the writing process does afterwards.

    Laws (exercised by [test_vclock]):
    - [join] is associative, commutative, idempotent, with [make n] as unit;
    - [leq] is a partial order and [join a b] is the least upper bound;
    - [incr t pid] is strictly above [t] and concurrent to any clock that
      was concurrent to [t] in every other component. *)

type t

(** All-zeroes clock for [n] pids.
    @raise Invalid_argument if [n < 1]. *)
val make : int -> t

val size : t -> int

val get : t -> int -> int

(** [incr t pid] — [t] with [pid]'s component advanced by one. *)
val incr : t -> int -> t

(** Component-wise maximum — the least upper bound of the happens-before
    order.  @raise Invalid_argument on size mismatch. *)
val join : t -> t -> t

(** [leq a b] — every component of [a] is [<=] the corresponding component
    of [b]; i.e. the events timestamped [a] happen-before (or equal)
    those timestamped [b]. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** The happens-before partial order; [`Concurrent] is the racing case. *)
val compare : t -> t -> [ `Lt | `Gt | `Eq | `Concurrent ]

val copy : t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
