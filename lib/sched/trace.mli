(** Post-mortem analysis of recorded executions ([Sim.run ~record_trace]).
    Used by scheduler tests and for debugging: who took which steps, on
    which objects, and how bursty the interleaving was.

    All summaries are deterministic functions of the trace: each is one
    fold over the event list into an ordered map, with fully specified
    result order, so two identical traces always summarize identically. *)

(** The step events of a trace, in execution order. *)
val steps : Event.t list -> Event.t list

(** Executed steps per process id, ascending pid. *)
val steps_by_pid : Event.t list -> (int * int) list

(** Accesses per shared object as [(oid, name, count)], hottest object
    first; ties broken by ascending [(oid, name)]. *)
val steps_by_object : Event.t list -> (int * string * int) list

(** Number of points where the running process changes — 0 for a solo run,
    [steps - 1] for perfect alternation.  A scheduler-character metric. *)
val context_switches : Event.t list -> int

(** Pids of crash events, in execution order. *)
val crashes : Event.t list -> int list

(** Pids of restart events, in execution order. *)
val restarts : Event.t list -> int list

(** Memory-fault events as [(kind, oid)], in execution order. *)
val mem_faults : Event.t list -> (Event.fault_kind * int) list

(** Number of power-loss events in the trace. *)
val power_losses : Event.t list -> int

(** Number of reconfiguration-request events in the trace. *)
val reconfigs : Event.t list -> int

(** Network-fault events as [(kind, src, dst)], in execution order. *)
val net_faults : Event.t list -> (Event.net_fault_kind * int * int) list

(** [race_window ~from_clock ~until_clock trace] — the events (faults
    included) whose clock lies in [[from_clock, until_clock]]: with the
    clocks of a {!Race.report}'s two accesses, the slice of the execution
    between the two racing program points. *)
val race_window :
  from_clock:int -> until_clock:int -> Event.t list -> Event.t list

(** The scheduler decision sequence that reproduces the trace: one
    [Run]/[Crash]/[Restart]/[Mem_fault]/[Power_loss] per event.  Feeding it to
    [Scheduler.replay_decisions] replays the execution exactly; it is also
    the input format of the {!Shrink} minimizer. *)
val schedule : Event.t list -> Scheduler.decision list

(** One line per event. *)
val pp : Format.formatter -> Event.t list -> unit
