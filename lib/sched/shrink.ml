(** Delta-debugging minimization of failing schedules.

    A failing execution recorded by the harness (random, PCT, chaos … — any
    seeded policy) replays exactly as a decision list ([Trace.schedule]).
    That list is typically hundreds of decisions long; the bug usually needs
    a handful.  [minimize] applies Zeller–Hildebrandt ddmin over the
    decision list: repeatedly try dropping chunks (halves, quarters, …,
    single decisions) and keep any subsequence on which the [oracle] still
    reports a failure, until no single decision can be removed — a
    {e 1-minimal} failing schedule.

    Dropping decisions from the middle of a schedule generally makes later
    decisions inapplicable (a pid finishes earlier, a crash never happens so
    its restart is dangling).  Oracles should therefore replay candidates
    leniently — [Scheduler.replay_decisions ~lenient:true] skips
    inapplicable decisions — and complete the run with a deterministic
    fallback policy so the candidate execution is well defined.  The oracle
    owns that choice; [minimize] only manages the search. *)

type 'a oracle = 'a list -> bool
(** [oracle candidate] must re-execute the schedule and return [true] iff
    the failure still shows.  It must be deterministic: same candidate,
    same verdict. *)

(* Remove the [i]-th of [n] chunks (granularity [n]) from [l]. *)
let without_chunk l ~n ~i =
  let len = List.length l in
  let lo = i * len / n and hi = (i + 1) * len / n in
  List.filteri (fun j _ -> j < lo || j >= hi) l

(** [minimize ~oracle schedule] returns a 1-minimal sub-list of [schedule]
    still failing under [oracle], together with the number of oracle calls
    spent.  [oracle schedule] itself must return [true].

    Complexity: O(k²) oracle calls for a k-decision result in the worst
    case — fine for simulator schedules (k ≲ a few hundred). *)
let minimize ~oracle schedule =
  if not (oracle schedule) then
    invalid_arg "Shrink.minimize: the full schedule does not fail";
  let calls = ref 1 in
  let check c =
    incr calls;
    oracle c
  in
  (* ddmin: try removing each of [n] chunks; on success restart at
     granularity 2 over the smaller list, otherwise refine granularity. *)
  let rec go cur n =
    let len = List.length cur in
    if len <= 1 || n > len then cur
    else begin
      let rec try_chunks i =
        if i >= n then None
        else
          let cand = without_chunk cur ~n ~i in
          if List.length cand < len && check cand then Some cand
          else try_chunks (i + 1)
      in
      match try_chunks 0 with
      | Some cand -> go cand (max 2 (n - 1))
      | None -> if n >= len then cur else go cur (min len (2 * n))
    end
  in
  let minimal = go schedule 2 in
  (minimal, !calls)

(* ---- schedule files: one decision per line, '#' comments ---- *)

let save path decisions =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# psnap schedule v1\n";
      List.iter
        (fun d ->
          output_string oc (Scheduler.decision_to_string d);
          output_char oc '\n')
        decisions)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go acc
          else go (Scheduler.decision_of_string line :: acc)
      in
      go [])
