(** Events recorded by the simulator when tracing is enabled. *)

type mem_op = Read | Write | Cas | Faa

type t =
  | Step of { pid : int; oid : int; obj_name : string; op : mem_op; clock : int }
  | Crash of { pid : int; clock : int }
  | Restart of { pid : int; incarnation : int; clock : int }
      (** the pid respawned on its recovery function; [incarnation] counts
          from 2 (the initial body is incarnation 1) *)

let pp_mem_op ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Cas -> Fmt.string ppf "cas"
  | Faa -> Fmt.string ppf "f&a"

let pp ppf = function
  | Step { pid; oid; obj_name; op; clock } ->
    Fmt.pf ppf "%6d p%d %a %s#%d" clock pid pp_mem_op op obj_name oid
  | Crash { pid; clock } -> Fmt.pf ppf "%6d p%d CRASH" clock pid
  | Restart { pid; incarnation; clock } ->
    Fmt.pf ppf "%6d p%d RESTART (incarnation %d)" clock pid incarnation
