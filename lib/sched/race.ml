(* Happens-before race checking for simulated executions (docs/MODEL.md
   §12).  The simulator serializes every run, so a data race never shows up
   as a wrong value here — what we check is whether the *algorithm* orders
   its accesses: would these two accesses have been allowed to overlap on a
   real multicore?

   Per-pid vector clocks (FastTrack-style):

   - every access first ticks the accessor's own component, so an event
     after a release is strictly above the clock the release published;
   - an access to a default (atomic) cell synchronizes: a read acquires
     (joins the cell's release clock into the reader), a write releases
     (joins the writer's clock into the cell), a *successful* CAS or F&A
     does both.  A failed CAS creates no edge: the OCaml memory model gives
     a failed [compare_and_set] no ordering guarantee, and algorithms that
     rely on one are exactly what this checker exists to catch;
   - an access to a *plain* cell ([Mem_sim.make_plain] — a model of an
     unsynchronized [ref]/field shared across domains) synchronizes
     nothing and is checked: a write must happen-after the cell's last
     write and every read since it; a read must happen-after the last
     write.  Violations are reported with both program points (pid, op and
     the global step clock of each access, which indexes straight into a
     recorded trace).

   Races are only ever reported on plain cells, so a run whose shared
   state is all-atomic — e.g. the fig3 snapshot — reports none by
   construction, and the checker doubles as a proof that a fixture's bug
   really is in its unsynchronized state. *)

type op = [ `Read | `Write ]

type access = {
  pid : int;
  op : op;
  clock : int;  (** global step count at the access — the program point;
                    indexes into a [record_trace] run's [Event.Step]s *)
  vclock : Vclock.t;  (** the accessor's clock at the access *)
}

type kind = Write_write | Write_read | Read_write

type report = {
  oid : int;
  name : string;
  kind : kind;
  first : access;  (** earlier in the serialized execution *)
  second : access;
}

type cell = {
  cname : string;
  mutable w : (Vclock.t * access) option;  (** last write *)
  reads : (int * access) option array;
      (** per-pid last read since the last write: (reader's own component
          at the read, the access) *)
}

type state = {
  n : int;
  clocks : Vclock.t array;  (** per-pid current clock *)
  sync : (int, Vclock.t) Hashtbl.t;  (** oid -> published release clock *)
  cells : (int, cell) Hashtbl.t;  (** plain cells, lazily on first access *)
  mutable reports : report list;  (** reversed *)
  seen : (int * int * int * kind, unit) Hashtbl.t;
      (** (oid, first pid, second pid, kind): one report per racing pair,
          not one per iteration of a racy loop *)
}

let state : state option ref = ref None

let enable ~n () =
  if n < 1 then invalid_arg "Race.enable: need at least one pid";
  state :=
    Some
      {
        n;
        clocks = Array.init n (fun _ -> Vclock.make n);
        sync = Hashtbl.create 64;
        cells = Hashtbl.create 16;
        reports = [];
        seen = Hashtbl.create 16;
      }

let disable () = state := None

let enabled () = Option.is_some !state

let reset () =
  match !state with Some s -> enable ~n:s.n () | None -> ()

let races () =
  match !state with Some s -> List.rev s.reports | None -> []

let race_count () =
  match !state with Some s -> List.length s.reports | None -> 0

let get_state fn =
  match !state with
  | Some s -> s
  | None -> failwith (fn ^ ": race checking is not enabled")

let tick s pid =
  if pid < 0 || pid >= s.n then
    invalid_arg
      (Printf.sprintf "Race: pid %d out of range (enabled for %d pids)" pid
         s.n);
  s.clocks.(pid) <- Vclock.incr s.clocks.(pid) pid

let on_sync ~oid ~pid ~acquire ~release =
  let s = get_state "Race.on_sync" in
  tick s pid;
  let l =
    match Hashtbl.find_opt s.sync oid with
    | Some l -> l
    | None -> Vclock.make s.n
  in
  if acquire then s.clocks.(pid) <- Vclock.join s.clocks.(pid) l;
  if release then Hashtbl.replace s.sync oid (Vclock.join l s.clocks.(pid))

let report s ~oid ~(cell : cell) ~kind ~first ~second =
  let key = (oid, first.pid, second.pid, kind) in
  if not (Hashtbl.mem s.seen key) then begin
    Hashtbl.add s.seen key ();
    s.reports <-
      { oid; name = cell.cname; kind; first; second } :: s.reports
  end

let on_plain ~oid ~name ~pid ~(op : op) =
  let s = get_state "Race.on_plain" in
  tick s pid;
  let c = s.clocks.(pid) in
  let cell =
    match Hashtbl.find_opt s.cells oid with
    | Some cell -> cell
    | None ->
      let cell = { cname = name; w = None; reads = Array.make s.n None } in
      Hashtbl.add s.cells oid cell;
      cell
  in
  let acc = { pid; op; clock = Sim.clock (); vclock = Vclock.copy c } in
  (match cell.w with
  | Some (wv, wacc) when not (Vclock.leq wv c) ->
    report s ~oid ~cell
      ~kind:(if op = `Read then Write_read else Write_write)
      ~first:wacc ~second:acc
  | _ -> ());
  match op with
  | `Read -> cell.reads.(pid) <- Some (Vclock.get c pid, acc)
  | `Write ->
    Array.iteri
      (fun q r ->
        match r with
        | Some (epoch, racc) when q <> pid && Vclock.get c q < epoch ->
          report s ~oid ~cell ~kind:Read_write ~first:racc ~second:acc
        | _ -> ())
      cell.reads;
    cell.w <- Some (Vclock.copy c, acc);
    (* Reads before an ordered write are covered by the write's clock from
       now on; racy ones were just reported. *)
    Array.fill cell.reads 0 s.n None

let kind_to_string = function
  | Write_write -> "write-write"
  | Write_read -> "write-read"
  | Read_write -> "read-write"

let pp_op ppf (op : op) =
  Fmt.string ppf (match op with `Read -> "read" | `Write -> "write")

let pp_access ppf a =
  Fmt.pf ppf "p%d %a at step %d %a" a.pid pp_op a.op a.clock Vclock.pp
    a.vclock

let pp_report ppf r =
  Fmt.pf ppf "@[<v2>%s race on %s#%d:@,%a@,%a@]" (kind_to_string r.kind)
    r.name r.oid pp_access r.first pp_access r.second

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let access_to_json a =
  Printf.sprintf {|{"pid":%d,"op":"%s","step":%d}|} a.pid
    (match a.op with `Read -> "read" | `Write -> "write")
    a.clock

let report_to_json r =
  Printf.sprintf {|{"cell":"%s","oid":%d,"kind":"%s","first":%s,"second":%s}|}
    (json_escape r.name) r.oid (kind_to_string r.kind)
    (access_to_json r.first) (access_to_json r.second)
