(** Bounded exhaustive exploration of schedules (stateless model checking).

    The paper requires algorithms to "behave correctly for all possible
    interleavings" (Section 2); for small configurations this module checks
    that literally, enumerating {e every} interleaving by depth-first
    search over scheduler choices and re-running the program from scratch
    with each forced prefix. *)

exception Too_many_runs of int

(** [run ~make ()] — [make ()] must build a {e fresh} program instance: the
    process array plus a [check] thunk executed after each complete
    execution (raise to fail).  Returns the number of complete executions
    checked.  Raises {!Too_many_runs} beyond [max_runs] completed
    executions (default two million). *)
val run :
  ?max_runs:int ->
  make:(unit -> (unit -> unit) array * (unit -> unit)) ->
  unit ->
  int
