(* Fixed-width functional vector clocks over pids 0..n-1.  The values are
   immutable int arrays: [incr]/[join] allocate, so a snapshot stored by
   the race checker (the clock of the last write to a cell) can never be
   mutated behind its back by later events of the same process. *)

type t = int array

let make n =
  if n < 1 then invalid_arg "Vclock.make: need at least one pid";
  Array.make n 0

let size = Array.length

let get (t : t) pid = t.(pid)

let incr (t : t) pid =
  let c = Array.copy t in
  c.(pid) <- c.(pid) + 1;
  c

let join (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.join: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal (a : t) (b : t) = a = b

(* The partial order of happens-before: two clocks are [`Concurrent] when
   neither dominates — exactly the situation in which two accesses race. *)
let compare (a : t) (b : t) =
  match (leq a b, leq b a) with
  | true, true -> `Eq
  | true, false -> `Lt
  | false, true -> `Gt
  | false, false -> `Concurrent

let copy = Array.copy

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ",") int) t

let to_string t = Fmt.str "%a" pp t
