(** The asynchronous shared-memory machine of Section 2 of the paper.

    Each process is an OCaml 5 fiber.  Every access to a shared base object
    (through {!Mem_sim}) performs the {!Step} effect, which suspends the
    fiber; the scheduler then decides which process executes its pending
    access next.  One resumed access = one {e step} — exactly the cost unit
    in which Theorems 1–3 of the paper state their bounds.  Local
    computation is free, as in the standard step-complexity measure for
    shared-memory algorithms.

    Halting failures are modelled by dropping a fiber's continuation: the
    process simply stops taking steps, which is precisely a crash in the
    asynchronous model (and indistinguishable from being very slow).

    Crash–restart failures ([?recover]) additionally respawn a crashed pid
    on a user-supplied recovery function: local state is lost with the
    dropped continuation, shared memory survives.  Each respawn is a new
    {e incarnation} of the pid (the initial body is incarnation 1).

    The simulator is strictly single-threaded and deterministic given the
    scheduler: the same seed replays the same execution. *)

type step_info = { oid : int; obj_name : string; op : Event.mem_op }

type _ Effect.t += Step : step_info -> unit Effect.t

exception Out_of_steps of int
(** Raised when a run exceeds its step budget: some process is looping on
    shared accesses — a wait-freedom violation (or a budget set too low).
    Also raised when the {e fault} count (crash + restart decisions, which
    do not advance the clock) exceeds the budget, so a crash–restart-only
    loop still terminates. *)

type outcome =
  | Completed
  | Stopped of int array
      (** runnable pids at the moment a {!Scheduler.Stop} decision ended the
          run (used by {!Explore}) *)

type result = {
  outcome : outcome;
  clock : int;  (** total shared-memory steps executed *)
  steps : int array;  (** per-pid executed steps, summed over incarnations *)
  crashed : int list;
      (** pids killed by the scheduler, in kill order; a pid killed in
          several incarnations appears once per kill *)
  incarnations : int array;
      (** per-pid incarnation count; 1 = never restarted *)
  trace : Event.t list;  (** execution-ordered; empty unless
                             [record_trace] *)
}

type recover = pid:int -> incarnation:int -> unit -> unit
(** [recover ~pid ~incarnation] builds the body a restarted process runs.
    It must rebuild every piece of local state from shared memory (or
    discard it): the previous incarnation's continuation is gone. *)

(** [run ~sched procs] starts one fiber per element of [procs] and drives
    them to completion (or crash) under [sched].  With [?recover], crashed
    pids become eligible for {!Scheduler.Restart} decisions and respawn on
    [recover]; without it, crashes are permanent and restart decisions are
    an error.  Exceptions raised inside a fiber are re-raised here.  At
    most one simulation may run at a time (no nesting). *)
val run :
  ?record_trace:bool ->
  ?max_steps:int ->
  ?recover:recover ->
  sched:Scheduler.t ->
  (unit -> unit) array ->
  result

(** {2 Callable from inside process code} *)

(** Current global step count. *)
val clock : unit -> int

(** A fresh, strictly increasing event stamp; also advanced by every
    executed step, so stamps totally order history events against steps
    across processes.  Used by {!Metrics} and history recorders. *)
val mark : unit -> int

(** Steps executed so far by process [pid], across all its incarnations. *)
val steps_of : int -> int

(** Current incarnation of process [pid] (1 = initial body). *)
val incarnation_of : int -> int

(** The pid whose pending access (and post-access code, up to its next
    suspension) is currently executing; [None] outside any run, at
    scheduler decision points, and during the step-free prefix a fiber
    runs before its first shared access.  The memory backend uses this to
    attribute an access to a process for the happens-before race
    checker. *)
val current_pid : unit -> int option

(** {2 Used by the memory backend} *)

(** Suspend at a shared access; the access itself must be performed
    immediately after this returns (i.e. when the scheduler resumes the
    fiber). *)
val step : step_info -> unit

(** Fresh object id for traces and fault targeting: positive and counting
    from 1 inside a run, negative and counting down outside any run (cells
    built in test or harness setup).  Harnesses that re-execute a workload
    call {!reset_prerun_oids} before each construction so oids are a
    deterministic function of the workload — replay and shrinking of
    memory-fault schedules rely on this. *)
val fresh_oid : unit -> int

(** Reset the outside-run oid counter (see {!fresh_oid}). *)
val reset_prerun_oids : unit -> unit

(** {2 Memory-fault dispatch}

    Memory faults are scheduler decisions ({!Scheduler.Mem_fault}), but the
    typed cells live in the memory backend; the backend installs a
    dispatcher here at initialization.  The dispatcher returns [true] when
    the fault was injected, [false] when it was absorbed. *)

val set_mem_fault_dispatcher : (Event.fault_kind -> int -> bool) -> unit

(** {2 Power-loss dispatch}

    Power losses ({!Scheduler.Power_loss}) are applied by the durable
    storage backend, which owns the device buffers;
    [Psnap_persist.Storage] installs its dispatcher here at
    initialization.  The dispatcher drops every device's writes buffered
    since its last [sync] and returns the number of devices affected; the
    simulator then halts every runnable process as part of the same
    decision — the machine loses power as a whole.  A power loss with no
    dispatcher installed still halts the processes but touches no storage:
    a blackout against a purely volatile system. *)

val set_power_loss_dispatcher : (unit -> int) -> unit

(** {2 Network-fault dispatch}

    Network faults ({!Scheduler.Net_fault}) are applied by the simulated
    message-passing transport, which owns the link queues; [Psnap_net.Net]
    installs its dispatcher here at initialization.  The dispatcher
    returns [true] when the fault was injected, [false] when it was
    absorbed (no such link, no matching in-flight message, or a redundant
    cut/heal) — absorption keeps every recorded decision replayable under
    ddmin.  A net fault with no dispatcher installed is recorded but
    touches nothing. *)

val set_net_fault_dispatcher :
  (Event.net_fault_kind -> src:int -> dst:int -> bool) -> unit

(** {2 Reconfiguration dispatch}

    Reconfiguration requests ({!Scheduler.Reconfig}) are applied by the
    replicated service's membership manager, which owns the configuration
    register; [Psnap_net.Net_reconfig] installs its dispatcher per
    cluster (and clears it when the cluster is torn down).  The
    dispatcher returns [true] when a reconfiguration was proposed,
    [false] when the request was absorbed (manager already mid-handoff).
    A reconfig decision with no dispatcher installed is recorded but
    touches nothing — absorption keeps every recorded decision replayable
    under ddmin. *)

val set_reconfig_dispatcher : (unit -> bool) -> unit

val clear_reconfig_dispatcher : unit -> unit

(** Globally unique id of the currently executing run, or [None] outside
    any run.  Serials are never reused, so {!Mem_sim}'s strict mode can
    tell a cell born in an earlier run from one of the current run.
    Restarted incarnations keep the run's serial: shared memory survives
    crashes. *)
val current_serial : unit -> int option
