(** The shared-memory backend that turns every access into one simulator
    step ([Psnap_mem.Mem_intf.S] over the {!Sim} kernel).

    Must be used from code running inside {!Sim.run}: each
    read/write/CAS/F&A performs the {!Sim.Step} effect — the suspension
    happens {e before} the access, and the access itself executes
    atomically when the scheduler resumes the fiber.

    Beyond the plain [Mem_intf.S] surface this module owns the dynamic
    memory-discipline machinery: the strict-mode escape sanitizer, the
    memory-fault injection registry ({!Scheduler.Mem_fault} decisions are
    dispatched here), weak-CAS mode, and plain (unsynchronized) cells for
    the happens-before race checker. *)

type 'a ref_

(** Cells allocated since the last {!reset_allocations} — the space measure
    of the paper's concluding remarks.  Allocation costs no step. *)
val allocations : unit -> int

val reset_allocations : unit -> unit

(** [make ?name v] allocates a fresh atomic cell; [name] labels it in
    traces and is the target key of name-based nemeses. *)
val make : ?name:string -> 'a -> 'a ref_

(** [make_plain ?name v] allocates an {e unsynchronized} cell (a raw [ref]
    or mutable field shared across domains): reads and writes create no
    happens-before edges and are checked for conflicts by {!Race}. *)
val make_plain : ?name:string -> 'a -> 'a ref_

(** The cell's object id — the target key of {!Scheduler.Mem_fault}
    decisions and the id under which its steps appear in traces. *)
val oid : 'a ref_ -> int

(** The label passed to [make ~name]. *)
val name : 'a ref_ -> string

val read : 'a ref_ -> 'a

val write : 'a ref_ -> 'a -> unit

(** [cas r ~expected ~desired] — compare with {e physical} equality, like
    [Atomic.compare_and_set]. *)
val cas : 'a ref_ -> expected:'a -> desired:'a -> bool

(** [fetch_and_add r k] adds [k] and returns the previous value. *)
val fetch_and_add : int ref_ -> int -> int

(** {2 Strict mode: the escape sanitizer}

    The dynamic face of the no-escape discipline (docs/MODEL.md §7): with
    strict mode on, every access must happen at a scheduling point of the
    {e current} run.  An access outside any run, or to a cell born in an
    earlier run, raises {!Escape}.  Cells allocated outside any run are
    legitimate in every run. *)

exception Escape of string

val set_strict : bool -> unit

val strict_mode : unit -> bool

(** [(checked, escaped)] since the last {!reset_sanitizer}. *)
val sanitizer_counts : unit -> int * int

val reset_sanitizer : unit -> unit

(** {2 Memory-fault injection} (docs/MODEL.md §9)

    Fault decisions arrive from the scheduler through {!Sim}'s dispatcher;
    the typed cells live here, so this module owns both the application of
    a fault to a cell and the per-kind accounting.  [Corrupt] and
    [Stuck_cell] take effect at decision time; [Lost_write] and
    [Stale_read] are {e armed} at decision time and {e fire} at the cell's
    next matching access.  Every effect is a deterministic function of the
    cell's state, so a recorded fault schedule replays (and ddmin-shrinks)
    exactly. *)

type fault_counters = {
  injected : int;  (** decisions that armed or applied a fault *)
  absorbed : int;  (** decisions with no possible effect (unknown cell,
                       nothing to corrupt, already stuck, empty history) *)
  fired : int;  (** armed faults consumed by an access ([Lost_write] /
                    [Stale_read]), plus every write dropped by a stuck
                    cell; equals [injected] for [Corrupt] *)
}

val fault_counts : Event.fault_kind -> fault_counters

val reset_fault_counts : unit -> unit

(** Fault tracking is opt-in (the cell registry roots every registered
    cell, and history capture costs on the write path): call
    [set_fault_tracking true] {e before} building the workload.  Toggling
    clears the registry. *)
val set_fault_tracking : bool -> unit

val fault_tracking : unit -> bool

(** {2 Weak-CAS mode}

    Seeded spurious CAS failure, as on LL/SC machines: a spurious failure
    returns [false] while leaving the cell untouched even though it held
    the expected value.  Off by default; tests switch it on to exercise
    the retry loops dynamically. *)

val set_weak_cas : ?seed:int -> rate:float -> unit -> unit
(** @raise Invalid_argument unless [rate] is in [\[0, 1\]]. *)

val clear_weak_cas : unit -> unit

(** Spurious failures delivered since {!set_weak_cas}. *)
val weak_cas_spurious : unit -> int
