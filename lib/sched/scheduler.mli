(** Scheduling policies: the adversary of the asynchronous model.

    At every step the simulator asks the scheduler which runnable process
    executes its pending shared-memory access.  A policy may also crash a
    process (halting failure) or stop the run (used by the exhaustive
    explorer).  All randomized policies are seeded and replayable. *)

type decision =
  | Run of int  (** pid takes its pending step *)
  | Crash of int  (** pid halts; its pending access never executes *)
  | Stop  (** abandon the run *)

type t = { name : string; pick : runnable:int array -> clock:int -> decision }

val name : t -> string

val pick : t -> runnable:int array -> clock:int -> decision

(** Strict rotation over the runnable pids. *)
val round_robin : unit -> t

(** Uniform random choice at every step. *)
val random : seed:int -> unit -> t

(** Mostly runs processes other than [victims]; a victim runs only when
    alone or with probability [boost].  Models a slow scanner among fast
    updaters — the starvation scenario motivating the helping mechanism. *)
val starve : victims:int list -> seed:int -> ?boost:float -> unit -> t

(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    random priorities, highest-priority runnable runs, with [depth - 1]
    random priority-demotion points over [expected_steps].  Finds
    depth-[d] ordering bugs with probability ≥ 1/(n·k^(d-1)) per run. *)
val pct : seed:int -> ?depth:int -> ?expected_steps:int -> unit -> t

(** Replays an explicit pid list; [Stop]s when exhausted.  Forced choices
    must be runnable ([Invalid_argument] otherwise). *)
val replay : int list -> t

(** Replays a prefix, then delegates to the fallback policy. *)
val replay_then : int list -> t -> t

(** Crashes [pid] the first time the clock reaches [at_clock] while [pid]
    is runnable; otherwise delegates. *)
val with_crash : pid:int -> at_clock:int -> t -> t

(** Deterministic burst-rotation adversary: each non-victim in turn gets
    [burst] consecutive steps, then every victim gets [victim_steps].
    Rotating bursts across {e different} processes maximizes the collect
    count of Figure 1's per-process helping rule. *)
val rotation : victims:int list -> burst:int -> victim_steps:int -> unit -> t

(** Random bursts of consecutive steps (geometric, mean [mean_burst]). *)
val bursty : seed:int -> ?mean_burst:int -> unit -> t
