(** Scheduling policies: the adversary of the asynchronous model.

    At every step the simulator asks the scheduler which runnable process
    executes its pending shared-memory access.  A policy may also crash a
    process (the process loses its local state; shared memory survives),
    restart a previously crashed process on its recovery function
    (crash–restart fault model), or stop the run (used by the exhaustive
    explorer).  All randomized policies are seeded and replayable. *)

(** What the adversary sees at a decision point. *)
type view = {
  runnable : int array;
      (** pids with a pending step; empty only when every live process has
          crashed but some remain restartable *)
  crashed : int array;
      (** crashed pids eligible for {!Restart} — empty unless the run was
          given a recovery function *)
  clock : int;
  op_of : int -> Event.mem_op option;
      (** kind of the shared access a runnable pid is suspended at; [None]
          for pids that are not runnable *)
  oid_of : int -> int option;
      (** the cell a runnable pid is suspended at — what a memory-fault
          nemesis needs to corrupt "the cell this process is about to CAS";
          [None] for pids that are not runnable *)
  name_of : int -> string option;
      (** the {e name} of the cell a runnable pid is suspended at (the
          label passed to [make ~name]) — what a latency or fault nemesis
          needs to target a structure by name rather than by oid; [None]
          for pids that are not runnable *)
  steps_of : int -> int;
      (** shared-memory steps executed so far by a pid (across all its
          incarnations) *)
}

type decision =
  | Run of int  (** pid takes its pending step *)
  | Crash of int  (** pid halts losing its local state; its pending access
                      never executes *)
  | Restart of int  (** a crashed pid respawns on its recovery function *)
  | Mem_fault of { kind : Event.fault_kind; oid : int }
      (** inject a memory fault into cell [oid] (docs/MODEL.md §9); charged
          to the fault budget like {!Crash}/{!Restart} *)
  | Power_loss
      (** whole-machine blackout (docs/MODEL.md §13): every
          durable-storage device drops the writes buffered since its last
          [sync] barrier {e and} every runnable process halts, as one
          decision — the machine loses power as a whole, so no schedule,
          however shrunk, can leave a survivor computing against pre-loss
          volatile state.  Reboot is ordinary [Restart] decisions; charged
          to the fault budget like {!Crash} *)
  | Net_fault of { kind : Event.net_fault_kind; src : int; dst : int }
      (** inject a network fault into the directed link [src → dst] of the
          simulated message substrate (docs/MODEL.md §14); charged to the
          fault budget like {!Crash}.  Absorbed (recorded, no effect) when
          the link has no matching in-flight message or link state, so the
          decision is always playable under replay and ddmin *)
  | Reconfig
      (** ask the replicated service's membership manager to propose a
          replacement configuration (docs/MODEL.md §16); charged to the
          fault budget like {!Crash}.  Absorbed (recorded, no effect) when
          no manager is listening or the manager is already mid-handoff,
          so the decision is always playable under replay and ddmin *)
  | Stop  (** abandon the run *)

type t = { name : string; pick : view -> decision }

val name : t -> string

val pick : t -> view -> decision

val is_runnable : view -> int -> bool
(** [is_runnable v pid] — [pid] has a pending step in [v]. *)

val is_restartable : view -> int -> bool
(** [is_restartable v pid] — [pid] is crashed and eligible for {!Restart}
    in [v]. *)

(** {2 Decision serialization} — schedule files and shrink reports use the
    textual form ["run 3"], ["crash 0"], ["restart 0"], ["stop"], plus the
    memory-fault verbs ["lose 5"], ["stale 5"], ["corrupt 5"], ["stick 5"]
    (verb + cell oid), the network-fault verbs ["netdrop 0 3"],
    ["netdup 0 3"], ["netdelay 0 3"], ["netcut 0 3"], ["netheal 0 3"]
    (verb + src node + dst node), ["powerloss"] and ["reconfig"], one
    decision per line. *)

val decision_to_string : decision -> string

val decision_of_string : string -> decision
(** @raise Invalid_argument on malformed input *)

val pp_decision : Format.formatter -> decision -> unit

(** {2 Basic policies} *)

(** Strict rotation over the runnable pids. *)
val round_robin : unit -> t

(** Uniform random choice at every step. *)
val random : seed:int -> unit -> t

(** Mostly runs processes other than [victims]; a victim runs only when
    alone or with probability [boost].  Models a slow scanner among fast
    updaters — the starvation scenario motivating the helping mechanism. *)
val starve : victims:int list -> seed:int -> ?boost:float -> unit -> t

(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    random priorities, highest-priority runnable runs, with [depth - 1]
    random priority-demotion points over [expected_steps].  Finds
    depth-[d] ordering bugs with probability ≥ 1/(n·k^(d-1)) per run. *)
val pct : seed:int -> ?depth:int -> ?expected_steps:int -> unit -> t

(** Replays an explicit pid list; [Stop]s when exhausted.  Forced choices
    must be runnable ([Invalid_argument] otherwise). *)
val replay : int list -> t

(** Replays a prefix, then delegates to the fallback policy. *)
val replay_then : int list -> t -> t

(** Replays an explicit decision list (the shape produced by
    [Trace.schedule]); [Stop]s — or delegates to [fallback] — once
    exhausted.  In [lenient] mode (default false) a decision that is not
    currently applicable is skipped instead of raising; the delta-debugging
    shrinker relies on this to evaluate subsequences of a recorded
    schedule. *)
val replay_decisions : ?lenient:bool -> ?fallback:t -> decision list -> t

(** Deterministic burst-rotation adversary: each non-victim in turn gets
    [burst] consecutive steps, then every victim gets [victim_steps].
    Rotating bursts across {e different} processes maximizes the collect
    count of Figure 1's per-process helping rule. *)
val rotation : victims:int list -> burst:int -> victim_steps:int -> unit -> t

(** Random bursts of consecutive steps (geometric, mean [mean_burst]). *)
val bursty : seed:int -> ?mean_burst:int -> unit -> t

(** {2 Nemesis combinators} — fault injection layered over an inner policy.
    A nemesis only issues {!Restart} for pids listed in [view.crashed], so
    composing one with a run that has no recovery function degrades to
    permanent crashes. *)

(** Crashes [pid] the first time the clock reaches [at_clock] while [pid]
    is runnable; the pid stays down forever (halting failure). *)
val with_crash : pid:int -> at_clock:int -> t -> t

(** One deterministic crash–restart cycle: crash [pid] at [crash_at], then
    restart it [restart_after] clock ticks later (a delayed restart — the
    pid stays down while others make progress). *)
val with_crash_restart : pid:int -> crash_at:int -> restart_after:int -> t -> t

(** Seeded crash storm: at every decision point, with probability [rate]
    (default 0.02), crash a uniformly chosen runnable process — at most
    [max_crashes] (default 4) kills per run — restarting each victim
    [restart_after] (default 25) clock ticks later.  Never crashes the
    last runnable process. *)
val crash_storm :
  seed:int -> ?rate:float -> ?max_crashes:int -> ?restart_after:int -> t -> t

(** Targeted fault: crashes [pid] the [nth] (default 1st) time it is
    suspended at a shared access of kind [op] — e.g. [~op:Event.Cas] kills
    an updater between its read and its CAS, the classic lost-update
    window.  With [restart_after] the victim respawns that many clock
    ticks later; without it the crash is permanent. *)
val crash_on_op :
  pid:int -> op:Event.mem_op -> ?nth:int -> ?restart_after:int -> t -> t

(** The seeded chaos nemesis: random kills ([rate], default 0.04; at most
    [max_crashes], default 6) with randomized delayed restarts (up to
    [max_restart_delay], default 30 ticks), preferring victims suspended
    at a CAS with probability 1/2.  All randomness derives from [seed];
    [inner] (default: a seeded {!random} walk) schedules between faults. *)
val chaos :
  seed:int ->
  ?rate:float ->
  ?max_crashes:int ->
  ?max_restart_delay:int ->
  ?inner:t ->
  unit ->
  t

(** {2 Memory-fault nemeses} — fault injection into the {e cells} rather
    than the processes (docs/MODEL.md §9).  Fault decisions are charged to
    the fault budget, recorded in traces, and replay/shrink exactly like
    crashes. *)

(** Seeded memory-fault storm: at every decision point, with probability
    [rate] (default 0.02), inject a fault of a uniformly chosen kind from
    [kinds] (default: all four) into the cell some runnable process is
    suspended at — at most [max_faults] (default 8) per run.
    @raise Invalid_argument if [kinds] is empty. *)
val mem_storm :
  seed:int ->
  ?kinds:Event.fault_kind list ->
  ?rate:float ->
  ?max_faults:int ->
  t ->
  t

(** Targeted memory fault: corrupt the cell [pid] is about to access the
    [nth] (default 1st) time it is suspended at an access of kind [op] —
    e.g. [~op:Event.Cas] garbles the cell inside the process's read-to-CAS
    window.  One shot. *)
val corrupt_on_op : pid:int -> op:Event.mem_op -> ?nth:int -> t -> t

(** {2 Power-loss nemeses} — whole-machine blackouts against durable
    storage (docs/MODEL.md §13).  A power cycle is {!Power_loss} (one
    atomic decision: storage drops all writes buffered since the last
    [sync] and every runnable process halts) followed by an ordinary
    {!Restart} per crashed process — so the whole cycle replays and
    ddmin-shrinks with the existing machinery.  Over a run without a
    recovery function the blackout degrades to a permanent whole-system
    halt. *)

(** One deterministic power loss once the clock reaches [at_clock]:
    un-synced storage writes are dropped and every runnable process halts,
    then every crashed process reboots on its recovery function. *)
val power_loss_at : at_clock:int -> t -> t

(** Seeded power-loss storm: a full power cycle with probability [rate]
    (default 0.005) at every decision point, at most [max_losses] (default
    2) per run. *)
val power_storm : seed:int -> ?rate:float -> ?max_losses:int -> t -> t

(** Targeted memory fault by cell {e name}: once the clock reaches
    [at_clock] (default 0), inject [kind] into the first cell some
    runnable process is suspended at whose name starts with [name_prefix].
    One shot.  E.g. [~kind:Event.Stuck_cell ~name_prefix:"rshard1.epoch"]
    sticks shard 1's epoch source in the resilient serving layer — the
    deterministic trigger for its self-healing path — without depending on
    cell oids. *)
val mem_fault_on_cell :
  kind:Event.fault_kind -> name_prefix:string -> ?at_clock:int -> t -> t

(** {2 Latency-fault nemeses} — slow things down without crashing them
    (docs/MODEL.md §11).  A stalled or slowed process keeps its local
    state; its pending access simply waits.  These nemeses never issue
    fault decisions, so they compose freely with replay and shrinking. *)

(** Inside [\[from_clock, until_clock)], never schedules a process whose
    pending access targets a cell whose name satisfies [matches].  If
    {e every} runnable process is stalled, one runs anyway (no livelock).
    The detour choice is a deterministic function of the clock. *)
val stall_cells :
  matches:(string -> bool) -> from_clock:int -> until_clock:int -> t -> t

(** {!stall_cells} over the spine cells of serving-layer shard [shard]
    (name prefixes ["shard<k>."] and ["rshard<k>."]): the whole shard
    stalls — updates and sub-scans targeting it stay pending — while other
    shards keep running. *)
val stall_shard : shard:int -> from_clock:int -> until_clock:int -> t -> t

(** Rate-limits [pid] to (at most) every [period]-th (default 8) decision:
    a deterministically, uniformly slow client, as opposed to {!starve}'s
    probabilistic victim.  [pid] still runs when alone. *)
val slow_domain : pid:int -> ?period:int -> t -> t

(** {2 Network-fault nemeses} — fault injection into the {e links} of the
    simulated message-passing substrate (docs/MODEL.md §14).  Net-fault
    decisions are charged to the fault budget, recorded in traces, and
    replay/shrink exactly like crashes; a decision with nothing to wound
    is absorbed, so every recorded schedule stays playable.  Multi-link
    faults (a symmetric partition, a reordering burst) are emitted one
    decision per consultation through an internal queue, so each component
    decision shrinks individually. *)

(** Seeded partition storm: with probability [rate] (default 0.01) at each
    decision point — at most [max_partitions] (default 3) per run, one
    open at a time — isolate a uniformly chosen node of [victims]
    (default: [nodes]) from every node of [nodes] by cutting both
    directions of every link, healing them all [heal_after] (default 80)
    clock ticks later.
    @raise Invalid_argument if [nodes] or [victims] is empty. *)
val partition_storm :
  seed:int ->
  nodes:int list ->
  ?victims:int list ->
  ?rate:float ->
  ?heal_after:int ->
  ?max_partitions:int ->
  t ->
  t

(** One deterministic partition window: cut [victim] off from every node
    of [peers] (both directions) once the clock reaches [at_clock], then
    heal all those links [after] clock ticks later — "replica 2 is
    unreachable from clock 40 to 120". *)
val heal_after : victim:int -> peers:int list -> at_clock:int -> after:int -> t -> t

(** Seeded duplicate-delivery flood: with probability [rate] (default
    0.05) at each decision point — at most [max_dups] (default 16) per run
    — duplicate the oldest in-flight message on a uniformly chosen loaded
    link.  [inflight] lists the directed links currently carrying at least
    one message ([Psnap_net.Net.inflight_links]). *)
val dup_flood :
  seed:int ->
  inflight:(unit -> (int * int) array) ->
  ?rate:float ->
  ?max_dups:int ->
  t ->
  t

(** Seeded lag spikes: with probability [rate] (default 0.02) at each
    decision point — at most [max_spikes] (default 6) per run — emit a
    burst of [burst] (default 4) delay faults against a uniformly chosen
    loaded link, scrambling the delivery order of a whole protocol
    round. *)
val lag_spike :
  seed:int ->
  inflight:(unit -> (int * int) array) ->
  ?rate:float ->
  ?burst:int ->
  ?max_spikes:int ->
  t ->
  t

(** {2 Permanent-failure nemeses} — machines that never come back, and the
    membership churn that repairs the {e service} around them
    (docs/MODEL.md §16). *)

(** Seeded permanent replica deaths: with probability [rate] (default
    0.01) at each decision point — at most [max_deaths] (default 1) per
    run — crash a uniformly chosen runnable pid of [victims], never to be
    restarted.  Never crashes the last runnable process.  Do not compose
    with a nemesis that restarts from [view.crashed] (it would undo the
    permanence).
    @raise Invalid_argument if [victims] is empty. *)
val replica_death :
  seed:int -> victims:int list -> ?rate:float -> ?max_deaths:int -> t -> t

(** Deterministic rolling restart over [victims], one at a time: crash the
    first once the clock reaches [start_at] (default 40), keep each victim
    down [down_for] (default 40) ticks, and crash the next [gap] (default
    40) ticks after the previous one came back — a maintenance-window
    roll.  Requires a recovery function; without one the first crash is
    permanent and the roll stops. *)
val rolling_restart :
  victims:int list -> ?start_at:int -> ?gap:int -> ?down_for:int -> t -> t

(** Seeded configuration churn: with probability [rate] (default 0.004) at
    each decision point — at most [max_reconfigs] (default 3) per run —
    emit a {!Reconfig} decision asking the membership manager to propose a
    replacement configuration even though nothing failed.  Layer it over
    {!partition_storm} to reconfigure mid-partition. *)
val config_churn : seed:int -> ?rate:float -> ?max_reconfigs:int -> t -> t
