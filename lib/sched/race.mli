(** Happens-before race checking for simulated executions.

    When enabled, every executed shared access reports here with the
    accessor's pid ({!Sim.current_pid}) and the detector maintains one
    {!Vclock.t} per pid:

    - accesses to default {!Mem_sim} cells {e synchronize}: reads acquire,
      writes release, successful CAS / fetch-and-add do both.  A {e failed}
      CAS creates no happens-before edge — relying on one is a bug this
      checker exists to catch;
    - accesses to {e plain} cells ({!Mem_sim.make_plain} — models of an
      unsynchronized [ref] or mutable field shared across domains) are
      checked: two accesses to the same plain cell, at least one a write,
      with neither happening-before the other, are a race.

    Races are reported once per (cell, pid pair, kind) with both program
    points: pid, op, and the global step clock of each access, which
    indexes directly into a [Sim.run ~record_trace] trace — so a reported
    race can be turned into a replayable (and ddmin-shrinkable) witness
    schedule.  Runs whose shared state is all-atomic report no races by
    construction.

    The detector is global (the simulator is single-threaded) and spans
    runs until {!reset}/{!enable}: harnesses re-running a workload under
    many seeds reset it between seeds. *)

type op = [ `Read | `Write ]

type access = {
  pid : int;
  op : op;
  clock : int;
      (** global step count at the access — the program point; indexes
          into a recorded trace's [Event.Step]s *)
  vclock : Vclock.t;  (** the accessor's clock at the access *)
}

type kind = Write_write | Write_read | Read_write

type report = {
  oid : int;
  name : string;
  kind : kind;
  first : access;  (** earlier in the serialized execution *)
  second : access;
}

(** Switch the detector on for pids [0..n-1], clearing all state.
    @raise Invalid_argument if [n < 1]. *)
val enable : n:int -> unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

(** Clear clocks, cell metadata and reports, keeping the detector enabled
    with the same pid count.  No-op when disabled. *)
val reset : unit -> unit

(** Reports, in detection order. *)
val races : unit -> report list

val race_count : unit -> int

(** {2 Hooks — called by the memory backend} *)

(** A synchronizing access to cell [oid]: [acquire] joins the cell's
    published clock into [pid]'s, [release] publishes [pid]'s clock into
    the cell's.  @raise Failure when the detector is disabled. *)
val on_sync : oid:int -> pid:int -> acquire:bool -> release:bool -> unit

(** An unsynchronized access to plain cell [oid]; checks it against the
    cell's last write and the reads since, then records it. *)
val on_plain : oid:int -> name:string -> pid:int -> op:op -> unit

(** {2 Rendering} *)

val kind_to_string : kind -> string

val pp_access : Format.formatter -> access -> unit

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
