(** Events recorded by the simulator when tracing is enabled, and the
    fault-kind vocabularies shared by the scheduler's decision grammar. *)

type mem_op = Read | Write | Cas | Faa

(** Memory-fault kinds (docs/MODEL.md §9).  Faults are scheduler decisions:
    they target a base cell by oid, are charged to the run's fault budget,
    appear in traces, and replay/shrink exactly like crashes. *)
type fault_kind =
  | Lost_write  (** the cell's next write/CAS/F&A silently no-ops (the CAS
                    still reports success: an acknowledged-but-lost update) *)
  | Stale_read  (** the cell's next read returns the most recently
                    superseded value from its history *)
  | Corrupt  (** the cell's value is replaced, immediately, by a garbled
                 variant (deterministic bit-flip of an immediate, or an
                 older value from the cell's history) *)
  | Stuck_cell  (** the cell permanently stops accepting writes: writes and
                    F&A adds are dropped, CAS always fails *)

(** Network-fault kinds (docs/MODEL.md §14).  Like memory faults, network
    faults are scheduler decisions: they target a directed link [src → dst]
    of the simulated message-passing substrate ([Psnap_net.Net]), are
    charged to the fault budget, appear in traces, and replay/shrink
    exactly like crashes.  A decision against a link with no matching
    in-flight message (or an already cut / already healed link) is
    {e absorbed}: recorded but without effect, which keeps every decision
    playable under ddmin. *)
type net_fault_kind =
  | Drop_msg  (** the oldest in-flight message on the link is discarded *)
  | Dup_msg  (** the oldest in-flight message is duplicated (delivered
                 twice) *)
  | Delay_msg  (** the oldest in-flight message moves behind the newest:
                   a reordering delay *)
  | Cut_link  (** the directed link stops delivering; in-flight and newly
                  sent messages are held, not dropped (a one-way
                  partition; cut both directions for a symmetric one) *)
  | Heal_link  (** the directed link resumes delivering, held messages
                   first *)

type t =
  | Step of { pid : int; oid : int; obj_name : string; op : mem_op; clock : int }
  | Crash of { pid : int; clock : int }
  | Restart of { pid : int; incarnation : int; clock : int }
      (** the pid respawned on its recovery function; [incarnation] counts
          from 2 (the initial body is incarnation 1) *)
  | Mem_fault of { kind : fault_kind; oid : int; clock : int }
      (** a memory fault was injected into cell [oid] *)
  | Power_loss of { clock : int }
      (** every durable-storage device lost the writes buffered since its
          last [sync] (docs/MODEL.md §13); processes are unaffected — a
          nemesis composes the power {e cycle} out of this decision plus
          ordinary crashes and restarts *)
  | Net_fault of { kind : net_fault_kind; src : int; dst : int; clock : int }
      (** a network fault was injected into the directed link [src → dst] *)
  | Reconfig of { clock : int }
      (** a reconfiguration was requested of the replicated service's
          membership manager (docs/MODEL.md §16); absorbed — recorded
          without effect — when no manager is listening *)

val pp_mem_op : Format.formatter -> mem_op -> unit

(** All memory-fault kinds, in a fixed order (per-kind counter reports
    iterate it). *)
val all_fault_kinds : fault_kind list

(** The verbs double as the schedule-file syntax (["corrupt 5"]). *)
val fault_kind_to_string : fault_kind -> string

val fault_kind_of_string : string -> fault_kind option

val pp_fault_kind : Format.formatter -> fault_kind -> unit

(** All network-fault kinds, in a fixed order. *)
val all_net_fault_kinds : net_fault_kind list

(** The verbs double as the schedule-file syntax (["netdrop 0 3"]);
    prefixed so they can never collide with the memory-fault verbs, which
    share the decision grammar. *)
val net_fault_kind_to_string : net_fault_kind -> string

val net_fault_kind_of_string : string -> net_fault_kind option

val pp_net_fault_kind : Format.formatter -> net_fault_kind -> unit

val pp : Format.formatter -> t -> unit
