(* The MEM backend that turns every shared access into one simulator step.
   Must be used from code running inside Sim.run; the Step effect is handled
   by the simulation kernel.

   The suspension happens *before* the access: [Sim.step] performs the
   effect, and the code after it — the actual read/write/CAS — executes
   atomically when the scheduler resumes the fiber.  Since the simulator is
   cooperative, nothing can interleave between resumption and the access. *)

type 'a ref_ = {
  mutable v : 'a;
  oid : int;
  name : string;
  born : int;  (** serial of the run that allocated the cell; -1 outside *)
}

(* Base objects allocated since the last reset — the space measure of the
   paper's concluding remarks ("the number of registers used ... is bounded
   only by the number of operations performed").  Allocation costs no step;
   this counter only supports the space experiments. *)
let allocated = ref 0

let allocations () = !allocated

let reset_allocations () = allocated := 0

(* Strict mode: the dynamic face of the no-escape discipline (docs/MODEL.md,
   "Memory discipline").  Every access must happen at a scheduling point of
   the *current* run: an access outside any run, or to a cell born in an
   earlier run, is a simulator escape — state flowing around the
   step-counting machinery — and raises [Escape].  Cells allocated outside
   any run ([born = -1], e.g. built in test setup before [Sim.run]) are
   legitimate in every run. *)

exception Escape of string

let strict = ref false

let strict_checks = ref 0

let strict_escapes = ref 0

let set_strict b = strict := b

let strict_mode () = !strict

let sanitizer_counts () = (!strict_checks, !strict_escapes)

let reset_sanitizer () =
  strict_checks := 0;
  strict_escapes := 0

let guard r op =
  if !strict then begin
    incr strict_checks;
    let fail fmt =
      incr strict_escapes;
      Printf.ksprintf (fun s -> raise (Escape s)) fmt
    in
    match Sim.current_serial () with
    | None ->
      fail
        "%s of cell %s (oid %d) outside any Sim.run: the access takes no \
         simulator step, so it is invisible to the step counts"
        op r.name r.oid
    | Some serial ->
      if r.born >= 0 && r.born <> serial then
        fail
          "%s of cell %s (oid %d) born in run #%d from run #%d: cells \
           created inside a run must not leak into another"
          op r.name r.oid r.born serial
  end

let make ?(name = "r") v =
  incr allocated;
  {
    v;
    oid = Sim.fresh_oid ();
    name;
    born = (match Sim.current_serial () with Some s -> s | None -> -1);
  }

let read r =
  guard r "read";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Read };
  r.v

let write r v =
  guard r "write";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Write };
  r.v <- v

(* Weak-CAS mode: seeded spurious failure, as on LL/SC machines (and the
   memory model of "weak compare-and-swap" in the C++/LLVM sense).  A
   spurious failure returns false while leaving the cell untouched even
   though it held the expected value — code that treats a failed CAS as
   proof of a conflicting write is wrong on such machines.  Off by
   default; tests switch it on to exercise the [@psnap.helping] retry
   loops dynamically. *)

let weak : (Random.State.t * float) option ref = ref None

let weak_spurious = ref 0

let set_weak_cas ?(seed = 0) ~rate () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Mem_sim.set_weak_cas: rate must be in [0, 1]";
  weak := Some (Random.State.make [| seed; 0xCA5 |], rate);
  weak_spurious := 0

let clear_weak_cas () = weak := None

let weak_cas_spurious () = !weak_spurious

let cas r ~expected ~desired =
  guard r "cas";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Cas };
  let spurious =
    match !weak with
    | Some (st, rate) when Random.State.float st 1.0 < rate ->
      incr weak_spurious;
      true
    | _ -> false
  in
  if (not spurious) && r.v == expected then (
    r.v <- desired;
    true)
  else false

let fetch_and_add r k =
  guard r "fetch_and_add";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Faa };
  let old = r.v in
  r.v <- old + k;
  old
