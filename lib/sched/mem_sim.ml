(* The MEM backend that turns every shared access into one simulator step.
   Must be used from code running inside Sim.run; the Step effect is handled
   by the simulation kernel.

   The suspension happens *before* the access: [Sim.step] performs the
   effect, and the code after it — the actual read/write/CAS — executes
   atomically when the scheduler resumes the fiber.  Since the simulator is
   cooperative, nothing can interleave between resumption and the access. *)

type 'a ref_ = {
  mutable v : 'a;
  oid : int;
  name : string;
  born : int;  (** serial of the run that allocated the cell; -1 outside *)
  mutable hist : 'a list;
      (** superseded values, newest first, capped at {!history_depth}; the
          material [Stale_read] and history-swap [Corrupt] faults draw on *)
  mutable lose_next : int;  (** pending [Lost_write] faults on this cell *)
  mutable stale_next : int;  (** pending [Stale_read] faults on this cell *)
  mutable stuck : bool;  (** [Stuck_cell]: permanently refuses writes *)
  plain : bool;
      (** [make_plain] cell: models an {e unsynchronized} location (a raw
          [ref] or mutable field shared across domains).  Reads and writes
          create no happens-before edges and are checked by {!Race};
          default cells are atomic and synchronize.  *)
}

(* Base objects allocated since the last reset — the space measure of the
   paper's concluding remarks ("the number of registers used ... is bounded
   only by the number of operations performed").  Allocation costs no step;
   this counter only supports the space experiments. *)
let allocated = ref 0

let allocations () = !allocated

let reset_allocations () = allocated := 0

(* Strict mode: the dynamic face of the no-escape discipline (docs/MODEL.md,
   "Memory discipline").  Every access must happen at a scheduling point of
   the *current* run: an access outside any run, or to a cell born in an
   earlier run, is a simulator escape — state flowing around the
   step-counting machinery — and raises [Escape].  Cells allocated outside
   any run ([born = -1], e.g. built in test setup before [Sim.run]) are
   legitimate in every run. *)

exception Escape of string

let strict = ref false

let strict_checks = ref 0

let strict_escapes = ref 0

let set_strict b = strict := b

let strict_mode () = !strict

let sanitizer_counts () = (!strict_checks, !strict_escapes)

let reset_sanitizer () =
  strict_checks := 0;
  strict_escapes := 0

let guard r op =
  if !strict then begin
    incr strict_checks;
    let fail fmt =
      incr strict_escapes;
      Printf.ksprintf (fun s -> raise (Escape s)) fmt
    in
    match Sim.current_serial () with
    | None ->
      fail
        "%s of cell %s (oid %d) outside any Sim.run: the access takes no \
         simulator step, so it is invisible to the step counts"
        op r.name r.oid
    | Some serial ->
      if r.born >= 0 && r.born <> serial then
        fail
          "%s of cell %s (oid %d) born in run #%d from run #%d: cells \
           created inside a run must not leak into another"
          op r.name r.oid r.born serial
  end

(* ---- memory faults (docs/MODEL.md §9) ----

   Fault decisions arrive from the scheduler through [Sim]'s dispatcher;
   the typed cells live here, so this module owns both the application of a
   fault to a cell and the per-kind accounting.  [Corrupt] and [Stuck_cell]
   take effect at decision time; [Lost_write] and [Stale_read] are {e
   armed} at decision time and {e fire} at the cell's next matching access.
   Every effect is a deterministic function of the cell's state, so a
   recorded fault schedule replays (and ddmin-shrinks) exactly. *)

let history_depth = 8

(* Forward declaration of the tracking flag so the hot write path can skip
   history capture entirely when fault injection is off. *)
let tracking = ref false

let push_hist r ~next =
  if !tracking && next != r.v then
    r.hist <-
      r.v :: List.filteri (fun i _ -> i < history_depth - 1) r.hist

(* A garbled-but-typed variant of [v]: immediates get their lowest bit
   flipped (stays in constructor range for small variants, changes any int
   payload); regular boxed blocks are duplicated with the first immediate
   field bit-flipped (breaking any checksum over the contents); values we
   cannot safely garble (closures, custom blocks, flat float records,
   field-free blocks) fall back to an older value from the cell's history.
   Returns [None] when no corrupting value exists at all. *)
let corrupted_variant (type a) (v : a) (hist : a list) : a option =
  let from_history () = List.find_opt (fun o -> o != v) hist in
  let r = Obj.repr v in
  if Obj.is_int r then Some (Obj.obj (Obj.repr ((Obj.obj r : int) lxor 1)))
  else
    let tag = Obj.tag r in
    if
      tag < Obj.no_scan_tag && tag <> Obj.closure_tag
      && tag <> Obj.object_tag && tag <> Obj.lazy_tag
      && tag <> Obj.forward_tag && tag <> Obj.infix_tag
    then begin
      let d = Obj.dup r in
      let n = Obj.size d in
      let rec flip i =
        if i >= n then None
        else
          let f = Obj.field d i in
          if Obj.is_int f then begin
            Obj.set_field d i (Obj.repr ((Obj.obj f : int) lxor 1));
            Some (Obj.obj d : a)
          end
          else flip (i + 1)
      in
      match flip 0 with Some _ as res -> res | None -> from_history ()
    end
    else from_history ()

type fault_counters = {
  injected : int;  (** decisions that armed or applied a fault *)
  absorbed : int;  (** decisions with no possible effect (unknown cell,
                       nothing to corrupt, already stuck, empty history) *)
  fired : int;  (** armed faults consumed by an access ([Lost_write] /
                    [Stale_read]), plus every write dropped by a stuck
                    cell; equals [injected] for [Corrupt] *)
}

let zero_counters = { injected = 0; absorbed = 0; fired = 0 }

let counters : (Event.fault_kind, fault_counters) Hashtbl.t = Hashtbl.create 4

let counters_for kind =
  Option.value (Hashtbl.find_opt counters kind) ~default:zero_counters

let bump kind f = Hashtbl.replace counters kind (f (counters_for kind))

let note_injected kind = bump kind (fun c -> { c with injected = c.injected + 1 })

let note_absorbed kind = bump kind (fun c -> { c with absorbed = c.absorbed + 1 })

let note_fired kind = bump kind (fun c -> { c with fired = c.fired + 1 })

let fault_counts = counters_for

let reset_fault_counts () = Hashtbl.reset counters

(* Cell oid -> fault applier.  Registration is opt-in: the registry roots
   every registered cell, so harnesses that construct millions of
   workloads (exhaustive exploration) must not pay for fault injection
   they never use.  With tracking on, oids restart per run (and per
   workload via [Sim.reset_prerun_oids]), so [replace] keeps exactly one
   applier per live oid; an entry left over from a dead run targets a
   dead cell, whose mutation is unobservable. *)
let registry : (int, Event.fault_kind -> bool) Hashtbl.t = Hashtbl.create 256

let set_fault_tracking b =
  tracking := b;
  Hashtbl.reset registry

let fault_tracking () = !tracking

let apply_fault_to r kind =
  match (kind : Event.fault_kind) with
  | Corrupt -> (
    match corrupted_variant r.v r.hist with
    | Some v' ->
      push_hist r ~next:v';
      r.v <- v';
      note_fired kind;
      true
    | None -> false)
  | Stale_read ->
    (* Armed only when the cell has a superseded value to serve; history
       never shrinks, so the fault is guaranteed to be able to fire. *)
    if r.hist <> [] then begin
      r.stale_next <- r.stale_next + 1;
      true
    end
    else false
  | Lost_write ->
    r.lose_next <- r.lose_next + 1;
    true
  | Stuck_cell ->
    if r.stuck then false
    else begin
      r.stuck <- true;
      true
    end

let dispatch kind oid =
  if not !tracking then
    failwith
      "Mem_sim: memory-fault decision but fault tracking is off (call \
       Mem_sim.set_fault_tracking true before building the workload)";
  match Hashtbl.find_opt registry oid with
  | None ->
    note_absorbed kind;
    false
  | Some apply ->
    if apply kind then begin
      note_injected kind;
      true
    end
    else begin
      note_absorbed kind;
      false
    end

let () = Sim.set_mem_fault_dispatcher dispatch

let alloc ~plain name v =
  incr allocated;
  let r =
    {
      v;
      oid = Sim.fresh_oid ();
      name;
      born = (match Sim.current_serial () with Some s -> s | None -> -1);
      hist = [];
      lose_next = 0;
      stale_next = 0;
      stuck = false;
      plain;
    }
  in
  if !tracking then Hashtbl.replace registry r.oid (apply_fault_to r);
  r

let make ?(name = "r") v = alloc ~plain:false name v

let make_plain ?(name = "r") v = alloc ~plain:true name v

let oid r = r.oid

let name r = r.name

(* ---- happens-before hooks (docs/MODEL.md §12) ----

   Called when an access *executes* (after [Sim.step] resumes), with the
   accessor's identity from [Sim.current_pid].  Default cells are atomic
   registers: a read acquires, a write releases, a successful CAS or
   fetch-and-add does both; a *failed* CAS creates no edge.  Plain cells
   synchronize nothing — every read/write is checked for conflicts.  The
   hooks cost nothing unless the [Race] detector is enabled, and an access
   outside any fiber (pre-run setup) is ordered before the whole run, so
   it is not tracked. *)

let notify_race r ~(op : Event.mem_op) ~sync =
  if Race.enabled () then
    match Sim.current_pid () with
    | None -> ()
    | Some pid -> (
      match op with
      | (Event.Read | Event.Write) when r.plain ->
        Race.on_plain ~oid:r.oid ~name:r.name ~pid
          ~op:(if op = Event.Read then `Read else `Write)
      | Event.Read -> Race.on_sync ~oid:r.oid ~pid ~acquire:true ~release:false
      | Event.Write ->
        Race.on_sync ~oid:r.oid ~pid ~acquire:false ~release:true
      | Event.Cas | Event.Faa ->
        if sync then Race.on_sync ~oid:r.oid ~pid ~acquire:true ~release:true)

let read r =
  guard r "read";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Read };
  notify_race r ~op:Event.Read ~sync:true;
  if r.stale_next > 0 then begin
    r.stale_next <- r.stale_next - 1;
    match r.hist with
    | old :: _ ->
      note_fired Event.Stale_read;
      old
    | [] -> r.v (* unreachable: armed only with non-empty history *)
  end
  else r.v

let write r v =
  guard r "write";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Write };
  notify_race r ~op:Event.Write ~sync:true;
  if r.stuck then note_fired Event.Stuck_cell
  else if r.lose_next > 0 then begin
    r.lose_next <- r.lose_next - 1;
    note_fired Event.Lost_write
  end
  else begin
    push_hist r ~next:v;
    r.v <- v
  end

(* Weak-CAS mode: seeded spurious failure, as on LL/SC machines (and the
   memory model of "weak compare-and-swap" in the C++/LLVM sense).  A
   spurious failure returns false while leaving the cell untouched even
   though it held the expected value — code that treats a failed CAS as
   proof of a conflicting write is wrong on such machines.  Off by
   default; tests switch it on to exercise the [@psnap.helping] retry
   loops dynamically. *)

let weak : (Random.State.t * float) option ref = ref None

let weak_spurious = ref 0

let set_weak_cas ?(seed = 0) ~rate () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Mem_sim.set_weak_cas: rate must be in [0, 1]";
  weak := Some (Random.State.make [| seed; 0xCA5 |], rate);
  weak_spurious := 0

let clear_weak_cas () = weak := None

let weak_cas_spurious () = !weak_spurious

let cas r ~expected ~desired =
  guard r "cas";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Cas };
  let spurious =
    match !weak with
    | Some (st, rate) when Random.State.float st 1.0 < rate ->
      incr weak_spurious;
      true
    | _ -> false
  in
  let ok =
    if (not spurious) && r.v == expected then
      if r.stuck then begin
        (* A stuck cell never changes, so refusal is indistinguishable from
           a lost race — the honest failure mode for CAS. *)
        note_fired Event.Stuck_cell;
        false
      end
      else if r.lose_next > 0 then begin
        (* Acknowledged-but-lost: reports success without installing — the
           nastiest form of a lost write. *)
        r.lose_next <- r.lose_next - 1;
        note_fired Event.Lost_write;
        true
      end
      else begin
        push_hist r ~next:desired;
        r.v <- desired;
        true
      end
    else false
  in
  (* The happens-before edge follows the *reported* outcome: code that saw
     success behaves as if it synchronized. *)
  notify_race r ~op:Event.Cas ~sync:ok;
  ok

let fetch_and_add r k =
  guard r "fetch_and_add";
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Faa };
  notify_race r ~op:Event.Faa ~sync:true;
  let old = r.v in
  if r.stuck then note_fired Event.Stuck_cell
  else if r.lose_next > 0 then begin
    r.lose_next <- r.lose_next - 1;
    note_fired Event.Lost_write
  end
  else begin
    push_hist r ~next:(old + k);
    r.v <- old + k
  end;
  old
