(* The MEM backend that turns every shared access into one simulator step.
   Must be used from code running inside Sim.run; the Step effect is handled
   by the simulation kernel.

   The suspension happens *before* the access: [Sim.step] performs the
   effect, and the code after it — the actual read/write/CAS — executes
   atomically when the scheduler resumes the fiber.  Since the simulator is
   cooperative, nothing can interleave between resumption and the access. *)

type 'a ref_ = { mutable v : 'a; oid : int; name : string }

(* Base objects allocated since the last reset — the space measure of the
   paper's concluding remarks ("the number of registers used ... is bounded
   only by the number of operations performed").  Allocation costs no step;
   this counter only supports the space experiments. *)
let allocated = ref 0

let allocations () = !allocated

let reset_allocations () = allocated := 0

let make ?(name = "r") v =
  incr allocated;
  { v; oid = Sim.fresh_oid (); name }

let read r =
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Read };
  r.v

let write r v =
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Write };
  r.v <- v

let cas r ~expected ~desired =
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Cas };
  if r.v == expected then (
    r.v <- desired;
    true)
  else false

let fetch_and_add r k =
  Sim.step { oid = r.oid; obj_name = r.name; op = Event.Faa };
  let old = r.v in
  r.v <- old + k;
  old
