(** Compile-time check that {!Mem_sim} satisfies [Psnap_mem.Mem_intf.S],
    the shared-memory signature the algorithms are functorized over.  The
    check lives entirely in the implementation (an anonymous module
    constraint); nothing is exported. *)
