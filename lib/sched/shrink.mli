(** Delta-debugging minimization of failing schedules (ddmin).

    Takes the decision list of a recorded failing execution
    ([Trace.schedule]) and an oracle that replays a candidate and reports
    whether the failure persists, and produces a {e 1-minimal} failing
    sub-list: removing any single remaining decision makes the failure
    vanish.

    Oracles should replay candidates with
    [Scheduler.replay_decisions ~lenient:true ~fallback:(round_robin ())]:
    dropping decisions makes later ones inapplicable, and the run must be
    completed deterministically for the verdict to be well defined. *)

type 'a oracle = 'a list -> bool
(** [oracle candidate] re-executes the candidate schedule and returns
    [true] iff the failure still shows.  Must be deterministic. *)

(** [minimize ~oracle schedule] returns [(minimal, oracle_calls)].
    @raise Invalid_argument if [oracle schedule] is [false]. *)
val minimize : oracle:'a oracle -> 'a list -> 'a list * int

(** {2 Schedule files} — one decision per line ("run 3", "crash 0",
    "restart 0", "stop"); blank lines and [#] comments ignored. *)

val save : string -> Scheduler.decision list -> unit

val load : string -> Scheduler.decision list
(** @raise Invalid_argument on malformed lines, [Sys_error] on I/O. *)
