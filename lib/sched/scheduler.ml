(** Scheduling policies for the simulator.

    The paper's model lets an adversary interleave the atomic steps of the
    processes arbitrarily (Section 2).  A scheduler is asked, at every step,
    which of the runnable processes takes the next shared-memory step; it may
    instead crash a process (halting failure) or stop the run early (used by
    the exhaustive explorer). *)

type decision =
  | Run of int  (** pid takes its pending step *)
  | Crash of int  (** pid halts; its pending step is never executed *)
  | Stop  (** abandon the run (explorer ran out of forced choices) *)

type t = { name : string; pick : runnable:int array -> clock:int -> decision }

let name t = t.name

let pick t = t.pick

let round_robin () =
  let last = ref (-1) in
  let pick ~runnable ~clock:_ =
    (* smallest runnable pid strictly greater than [!last], cyclically *)
    let n = Array.length runnable in
    let best = ref runnable.(0) in
    let found = ref false in
    for i = 0 to n - 1 do
      let p = runnable.(i) in
      if (not !found) && p > !last then (
        best := p;
        found := true)
    done;
    last := !best;
    Run !best
  in
  { name = "round-robin"; pick }

let random ~seed () =
  let st = Random.State.make [| seed |] in
  let pick ~runnable ~clock:_ =
    Run runnable.(Random.State.int st (Array.length runnable))
  in
  { name = Printf.sprintf "random(%d)" seed; pick }

(** Mostly runs processes other than [victims]; a victim runs only when it is
    alone or with probability [boost].  Models a slow scanner among fast
    updaters (the starvation scenario motivating the helping mechanism). *)
let starve ~victims ~seed ?(boost = 0.02) () =
  let st = Random.State.make [| seed |] in
  let is_victim p = List.mem p victims in
  let pick ~runnable ~clock:_ =
    let others = Array.to_list runnable |> List.filter (fun p -> not (is_victim p)) in
    match others with
    | [] -> Run runnable.(Random.State.int st (Array.length runnable))
    | _ ->
      if Random.State.float st 1.0 < boost then
        Run runnable.(Random.State.int st (Array.length runnable))
      else Run (List.nth others (Random.State.int st (List.length others)))
  in
  { name = "starve"; pick }

(** Replays an explicit list of pids; issues [Stop] when the list is
    exhausted and the program has not finished.  Used by {!Explore}. *)
let replay choices =
  let rest = ref choices in
  let pick ~runnable ~clock:_ =
    match !rest with
    | [] -> Stop
    | c :: tl ->
      rest := tl;
      if Array.exists (fun p -> p = c) runnable then Run c
      else
        (* A forced choice must be runnable: the explorer only extends
           prefixes with pids it observed runnable. *)
        invalid_arg "Scheduler.replay: choice not runnable"
  in
  { name = "replay"; pick }

(** [replay_then choices fallback] replays a prefix then delegates. *)
let replay_then choices fallback =
  let rest = ref choices in
  let pick ~runnable ~clock =
    match !rest with
    | c :: tl when Array.exists (fun p -> p = c) runnable ->
      rest := tl;
      Run c
    | c :: _ ->
      invalid_arg
        (Printf.sprintf "Scheduler.replay_then: choice p%d not runnable" c)
    | [] -> fallback.pick ~runnable ~clock
  in
  { name = "replay+" ^ fallback.name; pick }

(** [with_crash ~pid ~at_clock inner] crashes [pid] the first time the clock
    reaches [at_clock] while [pid] is runnable. *)
let with_crash ~pid ~at_clock inner =
  let done_ = ref false in
  let pick ~runnable ~clock =
    if
      (not !done_) && clock >= at_clock
      && Array.exists (fun p -> p = pid) runnable
    then (
      done_ := true;
      Crash pid)
    else inner.pick ~runnable ~clock
  in
  { name = inner.name ^ "+crash"; pick }

(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    assign each process a random priority, always run the highest-priority
    runnable process, and demote the running process to a fresh lowest
    priority at [depth - 1] random change points.  For a program with [n]
    processes and [k] steps, each run detects any bug of depth [d] with
    probability at least [1/(n·k^(d-1))] — far better at surfacing rare
    orderings than uniform random walks, while staying reproducible via the
    seed. *)
let pct ~seed ?(depth = 3) ?(expected_steps = 2000) () =
  let st = Random.State.make [| seed |] in
  let priorities : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_low = ref 0 in
  let change_points =
    List.init (max 0 (depth - 1)) (fun _ ->
        1 + Random.State.int st (max 1 expected_steps))
    |> List.sort compare
  in
  let remaining = ref change_points in
  let priority p =
    match Hashtbl.find_opt priorities p with
    | Some x -> x
    | None ->
      (* initial priorities: random distinct positives *)
      let x = 1000 + Random.State.int st 1_000_000 in
      Hashtbl.replace priorities p x;
      x
  in
  let pick ~runnable ~clock =
    (match !remaining with
    | cp :: rest when clock >= cp ->
      remaining := rest;
      (* demote the currently highest-priority runnable process *)
      let top =
        Array.fold_left
          (fun best p ->
            match best with
            | None -> Some p
            | Some b -> if priority p > priority b then Some p else best)
          None runnable
      in
      Option.iter
        (fun p ->
          decr next_low;
          Hashtbl.replace priorities p !next_low)
        top
    | _ -> ());
    let best = ref runnable.(0) in
    Array.iter (fun p -> if priority p > priority !best then best := p) runnable;
    Run !best
  in
  { name = Printf.sprintf "pct(d=%d)" depth; pick }

(** Deterministic burst-rotation adversary: repeatedly gives the next
    non-victim process [burst] consecutive steps (enough to complete a whole
    operation), then each victim [victim_steps] steps (about one collect).
    Rotating the bursts over {e different} processes is the schedule that
    maximizes the number of collects under Figure 1's per-process helping
    rule: each of the victim's collects observes a change by a fresh
    process, postponing the "two observed changes by the same process"
    borrow for as long as possible. *)
let rotation ~victims ~burst ~victim_steps () =
  let phases = ref [] in
  let next = ref 0 in
  let pick ~runnable ~clock:_ =
    let mem p = Array.exists (fun q -> q = p) runnable in
    let rec take () =
      match !phases with
      | (p, k) :: rest when k > 0 && mem p ->
        phases := (p, k - 1) :: rest;
        Run p
      | _ :: rest ->
        phases := rest;
        take ()
      | [] -> (
        let non_victims =
          Array.to_list runnable |> List.filter (fun p -> not (List.mem p victims))
        in
        match non_victims with
        | [] -> Run runnable.(0)
        | _ ->
          let u = List.nth non_victims (!next mod List.length non_victims) in
          incr next;
          phases :=
            (u, burst) :: List.map (fun v -> (v, victim_steps)) victims;
          take ())
    in
    take ()
  in
  { name = "rotation"; pick }

(** Runs each process a random burst of consecutive steps (geometric with
    mean [mean_burst]).  Bursty schedules are what trigger the
    "three values from the same process" helping path. *)
let bursty ~seed ?(mean_burst = 8) () =
  let st = Random.State.make [| seed |] in
  let cur = ref (-1) in
  let left = ref 0 in
  let pick ~runnable ~clock:_ =
    let cur_runnable = Array.exists (fun p -> p = !cur) runnable in
    if !left <= 0 || not cur_runnable then (
      cur := runnable.(Random.State.int st (Array.length runnable));
      left := 1 + Random.State.int st (2 * mean_burst));
    decr left;
    Run !cur
  in
  { name = "bursty"; pick }
