(** Scheduling policies for the simulator.

    The paper's model lets an adversary interleave the atomic steps of the
    processes arbitrarily (Section 2).  A scheduler is asked, at every step,
    which of the runnable processes takes the next shared-memory step; it may
    instead crash a process (crash–restart fault model: the process loses its
    local state but shared memory survives), restart a previously crashed
    process on its recovery function, or stop the run early (used by the
    exhaustive explorer).

    Policies receive a {!view} of the machine: the runnable pids, the crashed
    pids eligible for restart, the clock, and the kind of shared access each
    runnable process is suspended at — enough for targeted fault injection
    ("crash this process while its CAS is pending") without giving the
    adversary anything the model's adversary does not have. *)

type view = {
  runnable : int array;
      (** pids with a pending step; empty only when every live process has
          crashed but some remain restartable *)
  crashed : int array;
      (** crashed pids eligible for {!Restart} — empty unless the run was
          given a recovery function *)
  clock : int;
  op_of : int -> Event.mem_op option;
      (** kind of the shared access a runnable pid is suspended at; [None]
          for pids that are not runnable *)
  oid_of : int -> int option;
      (** the cell a runnable pid is suspended at — what a memory-fault
          nemesis needs to corrupt "the cell this process is about to CAS";
          [None] for pids that are not runnable *)
  name_of : int -> string option;
      (** the {e name} of the cell a runnable pid is suspended at (the
          label passed to [make ~name]) — what a latency or fault nemesis
          needs to target a structure ("stall every access to shard 2")
          without knowing cell oids; [None] for pids that are not
          runnable *)
  steps_of : int -> int;
      (** shared-memory steps executed so far by a pid (across all its
          incarnations) *)
}

type decision =
  | Run of int  (** pid takes its pending step *)
  | Crash of int  (** pid halts losing its local state; its pending step is
                      never executed *)
  | Restart of int  (** a crashed pid respawns on its recovery function *)
  | Mem_fault of { kind : Event.fault_kind; oid : int }
      (** inject a memory fault into cell [oid] (docs/MODEL.md §9); charged
          to the fault budget like {!Crash}/{!Restart} *)
  | Power_loss
      (** whole-machine blackout (docs/MODEL.md §13): every
          durable-storage device drops the writes buffered since its last
          [sync] barrier {e and} every runnable process halts, as one
          decision — so no shrunk schedule can leave a survivor computing
          against pre-loss volatile state.  Reboot is ordinary [Restart]
          decisions; charged to the fault budget like {!Crash} *)
  | Net_fault of { kind : Event.net_fault_kind; src : int; dst : int }
      (** inject a network fault into the directed link [src → dst] of the
          simulated message substrate (docs/MODEL.md §14); charged to the
          fault budget like {!Crash}.  Absorbed (recorded, no effect) when
          the link has no matching in-flight message or link state, so the
          decision is always playable under replay and ddmin *)
  | Reconfig
      (** ask the replicated service's membership manager to propose a
          replacement configuration (docs/MODEL.md §16); charged to the
          fault budget like {!Crash}.  Absorbed (recorded, no effect) when
          no manager is listening or the manager is already mid-handoff,
          so the decision is always playable under replay and ddmin *)
  | Stop  (** abandon the run (explorer ran out of forced choices) *)

type t = { name : string; pick : view -> decision }

let name t = t.name

let pick t view = t.pick view

let is_runnable v pid = Array.exists (fun p -> p = pid) v.runnable

let is_restartable v pid = Array.exists (fun p -> p = pid) v.crashed

(* ---- decision serialization (schedule files, shrink reports) ---- *)

let decision_to_string = function
  | Run pid -> Printf.sprintf "run %d" pid
  | Crash pid -> Printf.sprintf "crash %d" pid
  | Restart pid -> Printf.sprintf "restart %d" pid
  | Mem_fault { kind; oid } ->
    Printf.sprintf "%s %d" (Event.fault_kind_to_string kind) oid
  | Power_loss -> "powerloss"
  | Net_fault { kind; src; dst } ->
    Printf.sprintf "%s %d %d" (Event.net_fault_kind_to_string kind) src dst
  | Reconfig -> "reconfig"
  | Stop -> "stop"

let decision_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "run"; p ] -> Run (int_of_string p)
  | [ "crash"; p ] -> Crash (int_of_string p)
  | [ "restart"; p ] -> Restart (int_of_string p)
  | [ "powerloss" ] -> Power_loss
  | [ "reconfig" ] -> Reconfig
  | [ "stop" ] -> Stop
  | [ verb; oid ] when Event.fault_kind_of_string verb <> None ->
    Mem_fault
      {
        kind = Option.get (Event.fault_kind_of_string verb);
        oid = int_of_string oid;
      }
  | [ verb; src; dst ] when Event.net_fault_kind_of_string verb <> None ->
    Net_fault
      {
        kind = Option.get (Event.net_fault_kind_of_string verb);
        src = int_of_string src;
        dst = int_of_string dst;
      }
  | _ -> invalid_arg (Printf.sprintf "Scheduler.decision_of_string: %S" s)

let pp_decision ppf d = Fmt.string ppf (decision_to_string d)

(* ---- basic policies ---- *)

(* Fault-oblivious policies only ever [Run]; when the view has no runnable
   pid (everything left alive has crashed, restartable), they end the run.
   [Sim.run] reports [Stop] with no runnable pids as [Completed]: the
   crashed processes simply never came back, which the crash–restart model
   allows. *)
let or_stop pick v = if Array.length v.runnable = 0 then Stop else pick v

let round_robin () =
  let last = ref (-1) in
  let pick v =
    let runnable = v.runnable in
    (* smallest runnable pid strictly greater than [!last], cyclically *)
    let n = Array.length runnable in
    let best = ref runnable.(0) in
    let found = ref false in
    for i = 0 to n - 1 do
      let p = runnable.(i) in
      if (not !found) && p > !last then (
        best := p;
        found := true)
    done;
    last := !best;
    Run !best
  in
  { name = "round-robin"; pick = or_stop pick }

let random ~seed () =
  let st = Random.State.make [| seed |] in
  let pick v = Run v.runnable.(Random.State.int st (Array.length v.runnable)) in
  { name = Printf.sprintf "random(%d)" seed; pick = or_stop pick }

(** Mostly runs processes other than [victims]; a victim runs only when it is
    alone or with probability [boost].  Models a slow scanner among fast
    updaters (the starvation scenario motivating the helping mechanism). *)
let starve ~victims ~seed ?(boost = 0.02) () =
  let st = Random.State.make [| seed |] in
  let is_victim p = List.mem p victims in
  let pick v =
    let runnable = v.runnable in
    let others = Array.to_list runnable |> List.filter (fun p -> not (is_victim p)) in
    match others with
    | [] -> Run runnable.(Random.State.int st (Array.length runnable))
    | _ ->
      if Random.State.float st 1.0 < boost then
        Run runnable.(Random.State.int st (Array.length runnable))
      else Run (List.nth others (Random.State.int st (List.length others)))
  in
  { name = "starve"; pick = or_stop pick }

(** Replays an explicit list of pids; issues [Stop] when the list is
    exhausted and the program has not finished.  Used by {!Explore}. *)
let replay choices =
  let rest = ref choices in
  let pick v =
    match !rest with
    | [] -> Stop
    | c :: tl ->
      rest := tl;
      if is_runnable v c then Run c
      else
        (* A forced choice must be runnable: the explorer only extends
           prefixes with pids it observed runnable. *)
        invalid_arg "Scheduler.replay: choice not runnable"
  in
  { name = "replay"; pick }

(** [replay_then choices fallback] replays a prefix then delegates. *)
let replay_then choices fallback =
  let rest = ref choices in
  let pick v =
    match !rest with
    | c :: tl when is_runnable v c ->
      rest := tl;
      Run c
    | c :: _ ->
      invalid_arg
        (Printf.sprintf "Scheduler.replay_then: choice p%d not runnable" c)
    | [] -> fallback.pick v
  in
  { name = "replay+" ^ fallback.name; pick }

(** Replays an explicit decision list (the shape recorded by
    [Trace.schedule]); issues [Stop] — or delegates to [fallback] — once
    exhausted.  In [lenient] mode a decision that is not currently applicable
    (pid not runnable for [Run]/[Crash], not crashed for [Restart]) is
    silently skipped instead of raising; the delta-debugging shrinker relies
    on this to evaluate subsequences of a recorded schedule. *)
let replay_decisions ?(lenient = false) ?fallback decisions =
  let rest = ref decisions in
  let rec pick v =
    match !rest with
    | [] -> (match fallback with Some f -> f.pick v | None -> Stop)
    | d :: tl ->
      let applicable =
        match d with
        | Run p | Crash p -> is_runnable v p
        | Restart p -> is_restartable v p
        (* A fault targeting a cell the current execution never allocates is
           absorbed by the simulator, so the decision is always playable. *)
        | Mem_fault _ -> true
        (* Power loss hits whatever storage devices exist; always playable. *)
        | Power_loss -> true
        (* A net fault against a link with no matching in-flight message is
           absorbed by the transport, so the decision is always playable. *)
        | Net_fault _ -> true
        (* A reconfiguration request with no manager listening (or one
           already mid-handoff) is absorbed; always playable. *)
        | Reconfig -> true
        | Stop -> true
      in
      if applicable then (
        rest := tl;
        d)
      else if lenient then (
        rest := tl;
        pick v)
      else
        invalid_arg
          (Printf.sprintf "Scheduler.replay_decisions: %s not applicable"
             (decision_to_string d))
  in
  { name = "replay-decisions"; pick }

(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    assign each process a random priority, always run the highest-priority
    runnable process, and demote the running process to a fresh lowest
    priority at [depth - 1] random change points.  For a program with [n]
    processes and [k] steps, each run detects any bug of depth [d] with
    probability at least [1/(n·k^(d-1))] — far better at surfacing rare
    orderings than uniform random walks, while staying reproducible via the
    seed. *)
let pct ~seed ?(depth = 3) ?(expected_steps = 2000) () =
  let st = Random.State.make [| seed |] in
  let priorities : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_low = ref 0 in
  let change_points =
    List.init (max 0 (depth - 1)) (fun _ ->
        1 + Random.State.int st (max 1 expected_steps))
    |> List.sort compare
  in
  let remaining = ref change_points in
  let priority p =
    match Hashtbl.find_opt priorities p with
    | Some x -> x
    | None ->
      (* initial priorities: random distinct positives *)
      let x = 1000 + Random.State.int st 1_000_000 in
      Hashtbl.replace priorities p x;
      x
  in
  let pick v =
    let runnable = v.runnable in
    (match !remaining with
    | cp :: rest when v.clock >= cp ->
      remaining := rest;
      (* demote the currently highest-priority runnable process *)
      let top =
        Array.fold_left
          (fun best p ->
            match best with
            | None -> Some p
            | Some b -> if priority p > priority b then Some p else best)
          None runnable
      in
      Option.iter
        (fun p ->
          decr next_low;
          Hashtbl.replace priorities p !next_low)
        top
    | _ -> ());
    let best = ref runnable.(0) in
    Array.iter (fun p -> if priority p > priority !best then best := p) runnable;
    Run !best
  in
  { name = Printf.sprintf "pct(d=%d)" depth; pick = or_stop pick }

(** Deterministic burst-rotation adversary: repeatedly gives the next
    non-victim process [burst] consecutive steps (enough to complete a whole
    operation), then each victim [victim_steps] steps (about one collect).
    Rotating the bursts over {e different} processes is the schedule that
    maximizes the number of collects under Figure 1's per-process helping
    rule: each of the victim's collects observes a change by a fresh
    process, postponing the "two observed changes by the same process"
    borrow for as long as possible. *)
let rotation ~victims ~burst ~victim_steps () =
  let phases = ref [] in
  let next = ref 0 in
  let pick v =
    let runnable = v.runnable in
    let mem p = Array.exists (fun q -> q = p) runnable in
    let rec take () =
      match !phases with
      | (p, k) :: rest when k > 0 && mem p ->
        phases := (p, k - 1) :: rest;
        Run p
      | _ :: rest ->
        phases := rest;
        take ()
      | [] -> (
        let non_victims =
          Array.to_list runnable |> List.filter (fun p -> not (List.mem p victims))
        in
        match non_victims with
        | [] -> Run runnable.(0)
        | _ ->
          let u = List.nth non_victims (!next mod List.length non_victims) in
          incr next;
          phases :=
            (u, burst) :: List.map (fun v -> (v, victim_steps)) victims;
          take ())
    in
    take ()
  in
  { name = "rotation"; pick = or_stop pick }

(** Runs each process a random burst of consecutive steps (geometric with
    mean [mean_burst]).  Bursty schedules are what trigger the
    "three values from the same process" helping path. *)
let bursty ~seed ?(mean_burst = 8) () =
  let st = Random.State.make [| seed |] in
  let cur = ref (-1) in
  let left = ref 0 in
  let pick v =
    let runnable = v.runnable in
    let cur_runnable = Array.exists (fun p -> p = !cur) runnable in
    if !left <= 0 || not cur_runnable then (
      cur := runnable.(Random.State.int st (Array.length runnable));
      left := 1 + Random.State.int st (2 * mean_burst));
    decr left;
    Run !cur
  in
  { name = "bursty"; pick = or_stop pick }

(* ---- nemesis combinators: fault injection over an inner policy ---- *)

(** [with_crash ~pid ~at_clock inner] crashes [pid] the first time the clock
    reaches [at_clock] while [pid] is runnable.  The pid stays down for the
    rest of the run (halting failure). *)
let with_crash ~pid ~at_clock inner =
  let done_ = ref false in
  let pick v =
    if (not !done_) && v.clock >= at_clock && is_runnable v pid then (
      done_ := true;
      Crash pid)
    else inner.pick v
  in
  { name = inner.name ^ "+crash"; pick }

(** One deterministic crash–restart cycle: crash [pid] once the clock
    reaches [crash_at], then restart it [restart_after] clock ticks after
    the crash (a {e delayed} restart — the pid stays down while others make
    progress, as a rebooting server would). *)
let with_crash_restart ~pid ~crash_at ~restart_after inner =
  let state = ref `Armed in
  let pick v =
    match !state with
    | `Armed when v.clock >= crash_at && is_runnable v pid ->
      state := `Down v.clock;
      Crash pid
    | `Down c when v.clock >= c + restart_after && is_restartable v pid ->
      state := `Done;
      Restart pid
    | `Down _
      when Array.length v.runnable = 0 && is_restartable v pid ->
      (* Everything is down, so the clock can never reach the scheduled
         restart time: reboot now rather than livelock. *)
      state := `Done;
      Restart pid
    | _ -> inner.pick v
  in
  { name = inner.name ^ "+crash-restart"; pick }

(** Seeded crash storm: at every decision point, with probability [rate],
    crash a uniformly chosen runnable process (at most [max_crashes] kills
    per run), restarting each victim [restart_after] clock ticks later.
    Restarts are issued deterministically in [view.crashed] order.  The
    last runnable process is never crashed, so the run keeps making
    progress. *)
let crash_storm ~seed ?(rate = 0.02) ?(max_crashes = 4) ?(restart_after = 25)
    inner =
  let st = Random.State.make [| seed; 0x5702 |] in
  let kills = ref 0 in
  (* pid -> clock of its crash; a crashed pid absent from the table (crashed
     by someone else, e.g. a composed nemesis) is due immediately. *)
  let down : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let pick v =
    (* When nothing is runnable the clock is frozen, so every pending
       restart is due now. *)
    let stalled = Array.length v.runnable = 0 in
    let due =
      Array.to_list v.crashed
      |> List.filter (fun p ->
             stalled
             ||
             match Hashtbl.find_opt down p with
             | Some c -> v.clock >= c + restart_after
             | None -> true)
    in
    match due with
    | p :: _ ->
      Hashtbl.remove down p;
      Restart p
    | [] ->
      if
        !kills < max_crashes
        && Array.length v.runnable > 1
        && Random.State.float st 1.0 < rate
      then begin
        let p = v.runnable.(Random.State.int st (Array.length v.runnable)) in
        incr kills;
        Hashtbl.replace down p v.clock;
        Crash p
      end
      else inner.pick v
  in
  { name = Printf.sprintf "storm(%d)+%s" seed inner.name; pick }

(** Targeted fault: crash [pid] the [nth] time it is suspended at a shared
    access of kind [op] — e.g. [~op:Event.Cas] kills an updater {e between
    its read and its CAS}, the classic lost-update window.  With
    [?restart_after] the victim is respawned that many clock ticks later;
    without it the crash is permanent. *)
let crash_on_op ~pid ~op ?(nth = 1) ?restart_after inner =
  let seen = ref 0 in
  let last_counted = ref (-1) in
  let state = ref `Armed in
  let pick v =
    match !state with
    | `Done -> inner.pick v
    | `Down c -> (
      match restart_after with
      | Some d
        when is_restartable v pid
             && (v.clock >= c + d || Array.length v.runnable = 0) ->
        state := `Done;
        Restart pid
      | _ -> inner.pick v)
    | `Armed ->
      if is_runnable v pid && v.op_of pid = Some op then begin
        (* Count each distinct suspension once, not each consultation: the
           victim's executed-step count changes exactly when it moves to a
           new pending access. *)
        let steps = v.steps_of pid in
        if steps <> !last_counted then begin
          last_counted := steps;
          incr seen
        end;
        if !seen >= nth then begin
          state := `Down v.clock;
          Crash pid
        end
        else inner.pick v
      end
      else inner.pick v
  in
  { name = inner.name ^ "+crash-on-op"; pick }

(** The seeded chaos nemesis: composes the storm (random kills, delayed
    randomized restarts) with targeted kills — when a victim is chosen and
    some runnable process has a CAS pending, that process is preferred with
    probability 1/2, maximizing pressure on the read-to-CAS windows.  All
    randomness derives from [seed]; the whole schedule replays exactly.
    Defaults to a seeded {!random} walk between faults. *)
let chaos ~seed ?(rate = 0.04) ?(max_crashes = 6) ?(max_restart_delay = 30)
    ?inner () =
  let inner =
    match inner with Some s -> s | None -> random ~seed:(seed lxor 0x9e3779) ()
  in
  let st = Random.State.make [| seed; 0xC4A05 |] in
  let kills = ref 0 in
  let due : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let pick v =
    let stalled = Array.length v.runnable = 0 in
    let ready =
      Array.to_list v.crashed
      |> List.filter (fun p ->
             stalled
             ||
             match Hashtbl.find_opt due p with
             | Some c -> v.clock >= c
             | None -> true)
    in
    match ready with
    | p :: _ ->
      Hashtbl.remove due p;
      Restart p
    | [] ->
      if
        !kills < max_crashes
        && Array.length v.runnable > 1
        && Random.State.float st 1.0 < rate
      then begin
        let cas_pending =
          Array.to_list v.runnable
          |> List.filter (fun p -> v.op_of p = Some Event.Cas)
        in
        let victim =
          match cas_pending with
          | p :: _ when Random.State.bool st -> p
          | _ -> v.runnable.(Random.State.int st (Array.length v.runnable))
        in
        incr kills;
        Hashtbl.replace due victim
          (v.clock + 1 + Random.State.int st (max 1 max_restart_delay));
        Crash victim
      end
      else inner.pick v
  in
  { name = Printf.sprintf "chaos(%d)" seed; pick }

(* ---- memory-fault nemeses (docs/MODEL.md §9) ---- *)

(** Seeded memory-fault storm: at every decision point, with probability
    [rate], inject a fault of a uniformly chosen kind from [kinds] into the
    cell some runnable process is suspended at (at most [max_faults] per
    run).  Targeting pending-access cells rather than random oids puts
    every fault on a cell the algorithms are actively contending on.  All
    randomness derives from [seed]; the schedule replays exactly. *)
let mem_storm ~seed ?(kinds = Event.all_fault_kinds) ?(rate = 0.02)
    ?(max_faults = 8) inner =
  if kinds = [] then invalid_arg "Scheduler.mem_storm: empty kind list";
  let st = Random.State.make [| seed; 0xFA17 |] in
  let injected = ref 0 in
  let pick v =
    if
      !injected < max_faults
      && Array.length v.runnable > 0
      && Random.State.float st 1.0 < rate
    then begin
      let p = v.runnable.(Random.State.int st (Array.length v.runnable)) in
      match v.oid_of p with
      | Some oid ->
        let kind = List.nth kinds (Random.State.int st (List.length kinds)) in
        incr injected;
        Mem_fault { kind; oid }
      | None -> inner.pick v
    end
    else inner.pick v
  in
  { name = Printf.sprintf "mem-storm(%d)+%s" seed inner.name; pick }

(** Targeted memory fault by cell {e name}: once the clock reaches
    [at_clock], inject a fault of [kind] into the first cell some runnable
    process is suspended at whose name starts with [name_prefix].  One
    shot.  This is how a campaign deterministically wounds a named
    structure — e.g. [~kind:Event.Stuck_cell ~name_prefix:"rshard1.epoch"]
    sticks shard 1's epoch source, the trigger for the resilient layer's
    self-healing path — without knowing cell oids (which depend on
    allocation order). *)
let mem_fault_on_cell ~kind ~name_prefix ?(at_clock = 0) inner =
  let done_ = ref false in
  let pick v =
    if !done_ || v.clock < at_clock then inner.pick v
    else begin
      let target =
        Array.fold_left
          (fun acc p ->
            match acc with
            | Some _ -> acc
            | None -> (
              match (v.name_of p, v.oid_of p) with
              | Some n, Some oid
                when String.starts_with ~prefix:name_prefix n ->
                Some oid
              | _ -> None))
          None v.runnable
      in
      match target with
      | Some oid ->
        done_ := true;
        Mem_fault { kind; oid }
      | None -> inner.pick v
    end
  in
  { name = inner.name ^ "+fault-on-cell"; pick }

(* ---- latency-fault nemeses ---- *)

(** [stall_cells ~matches ~from_clock ~until_clock inner] refuses, inside
    the clock window, to schedule any process whose pending access targets
    a cell whose name satisfies [matches]: the access stays pending, the
    process is {e stalled} without being crashed (its local state
    survives).  When every runnable process is stalled the window is
    punched through — one stalled process runs — so the run never
    livelocks; outside the window, and for non-matching processes, [inner]
    decides.  The deterministic detour choice derives from the clock. *)
let stall_cells ~matches ~from_clock ~until_clock inner =
  let stalled v p =
    match v.name_of p with Some n -> matches n | None -> false
  in
  let pick v =
    if v.clock < from_clock || v.clock >= until_clock then inner.pick v
    else
      let free =
        Array.to_list v.runnable |> List.filter (fun p -> not (stalled v p))
      in
      match free with
      | [] -> inner.pick v
      | _ -> (
        match inner.pick v with
        | Run p when stalled v p ->
          Run (List.nth free (v.clock mod List.length free))
        | d -> d)
  in
  { name = inner.name ^ "+stall-cells"; pick }

(** [stall_shard ~shard] — {!stall_cells} matching the spine cells of
    shard [shard] in both serving-layer constructions: ["shard<k>."]
    ([Psnap_runtime.Sharded]'s epoch source) and ["rshard<k>."]
    ([Psnap_runtime.Resilient]'s pointer / epoch / inflight cells).  Every
    update routed to the shard and every sub-scan of it must cross one of
    these cells, so the whole shard stalls; scans of other shards keep
    running — exactly the partial-outage a circuit breaker must contain. *)
let stall_shard ~shard ~from_clock ~until_clock inner =
  let p1 = Printf.sprintf "shard%d." shard in
  let p2 = Printf.sprintf "rshard%d." shard in
  stall_cells
    ~matches:(fun n ->
      String.starts_with ~prefix:p1 n || String.starts_with ~prefix:p2 n)
    ~from_clock ~until_clock inner

(** [slow_domain ~pid ~period inner] rate-limits [pid]: whenever [inner]
    elects it outside its every-[period]-th decision slot, a different
    runnable process is run instead (chosen deterministically from the
    decision counter).  Models a uniformly slow client — a thermally
    throttled core, a VM on an oversubscribed host — as opposed to
    {!starve}'s probabilistic victim.  [pid] still runs when it is the
    only runnable process. *)
let slow_domain ~pid ?(period = 8) inner =
  if period < 1 then invalid_arg "Scheduler.slow_domain: period < 1";
  let tick = ref 0 in
  let pick v =
    incr tick;
    match inner.pick v with
    | Run p when p = pid && !tick mod period <> 0 -> (
      let others =
        Array.to_list v.runnable |> List.filter (fun q -> q <> pid)
      in
      match others with
      | [] -> Run p
      | _ -> Run (List.nth others (!tick mod List.length others)))
    | d -> d
  in
  { name = inner.name ^ "+slow-domain"; pick }

(** Targeted memory fault: corrupt the cell [pid] is about to access the
    [nth] time it is suspended at an access of kind [op] — with
    [~op:Event.Cas] this garbles the very cell a process is about to CAS,
    inside its read-to-CAS window, the sharpest corruption an adversary can
    aim.  One shot; delegates to [inner] otherwise. *)
let corrupt_on_op ~pid ~op ?(nth = 1) inner =
  let seen = ref 0 in
  let last_counted = ref (-1) in
  let done_ = ref false in
  let pick v =
    if (not !done_) && is_runnable v pid && v.op_of pid = Some op then begin
      (* Count each distinct suspension once, not each consultation (same
         accounting as [crash_on_op]). *)
      let steps = v.steps_of pid in
      if steps <> !last_counted then begin
        last_counted := steps;
        incr seen
      end;
      if !seen >= nth then begin
        match v.oid_of pid with
        | Some oid ->
          done_ := true;
          Mem_fault { kind = Event.Corrupt; oid }
        | None -> inner.pick v
      end
      else inner.pick v
    end
    else inner.pick v
  in
  { name = inner.name ^ "+corrupt-on-op"; pick }

(* ---- power-loss nemeses (docs/MODEL.md §13) ---- *)

(* A power cycle is [Power_loss] (storage devices drop their un-synced
   writes, every runnable process halts — one atomic blackout decision),
   then a [Restart] per crashed process (reboot on the recovery function).
   While everything is down the clock is frozen, so the reboot is issued
   immediately — a blackout has no survivors to wait on.  Composed over a
   run without a recovery function, [view.crashed] stays empty and the
   blackout degrades to a permanent whole-system halt, per the nemesis
   convention. *)

(** One deterministic power loss: once the clock reaches [at_clock], cut
    power (drop all un-synced storage writes, halt every runnable
    process), then reboot every crashed process on its recovery
    function. *)
let power_loss_at ~at_clock inner =
  let state = ref `Armed in
  let pick v =
    match !state with
    | `Armed when v.clock >= at_clock ->
      state := `Reboot;
      Power_loss
    | `Reboot when Array.length v.crashed > 0 -> Restart v.crashed.(0)
    | `Reboot ->
      state := `Done;
      inner.pick v
    | `Armed | `Done -> inner.pick v
  in
  { name = Printf.sprintf "%s+power-loss@%d" inner.name at_clock; pick }

(** Seeded power-loss storm: at every decision point, with probability
    [rate], run a full power cycle (at most [max_losses] per run).  All
    randomness derives from [seed]; the schedule replays exactly. *)
let power_storm ~seed ?(rate = 0.005) ?(max_losses = 2) inner =
  let st = Random.State.make [| seed; 0x90EB |] in
  let losses = ref 0 in
  let state = ref `Idle in
  let pick v =
    match !state with
    | `Reboot when Array.length v.crashed > 0 -> Restart v.crashed.(0)
    | `Reboot ->
      state := `Idle;
      inner.pick v
    | `Idle ->
      if
        !losses < max_losses
        && Array.length v.runnable > 0
        && Random.State.float st 1.0 < rate
      then begin
        incr losses;
        state := `Reboot;
        Power_loss
      end
      else inner.pick v
  in
  { name = Printf.sprintf "power-storm(%d)+%s" seed inner.name; pick }

(* ---- network-fault nemeses (docs/MODEL.md §14) ---- *)

(* A partition or a lag spike is several [Net_fault] decisions (one per
   directed link, or per delayed message); a nemesis emits them one
   scheduler consultation at a time through a pending queue, so each ends
   up an individually shrinkable decision in the recorded schedule. *)
let drain queue inner v =
  match !queue with
  | d :: tl ->
    queue := tl;
    d
  | [] -> inner.pick v

(** Seeded partition storm: with probability [rate] at each decision point
    (at most [max_partitions] per run), isolate a uniformly chosen node of
    [victims] from every node of [nodes] — a symmetric partition, one
    [Cut_link] decision per direction per peer — and heal all those links
    [heal_after] clock ticks later.  At most one partition is open at a
    time.  All randomness derives from [seed]; the schedule replays
    exactly. *)
let partition_storm ~seed ~nodes ?victims ?(rate = 0.01) ?(heal_after = 80)
    ?(max_partitions = 3) inner =
  if nodes = [] then invalid_arg "Scheduler.partition_storm: no nodes";
  let victims = match victims with Some vs -> vs | None -> nodes in
  if victims = [] then invalid_arg "Scheduler.partition_storm: no victims";
  let st = Random.State.make [| seed; 0x9A27 |] in
  let queue = ref [] in
  let open_partition = ref None in
  let count = ref 0 in
  let links_of victim =
    List.concat_map
      (fun peer ->
        if peer = victim then []
        else
          [
            Net_fault { kind = Event.Cut_link; src = victim; dst = peer };
            Net_fault { kind = Event.Cut_link; src = peer; dst = victim };
          ])
      nodes
  in
  let heals_of victim =
    List.concat_map
      (fun peer ->
        if peer = victim then []
        else
          [
            Net_fault { kind = Event.Heal_link; src = victim; dst = peer };
            Net_fault { kind = Event.Heal_link; src = peer; dst = victim };
          ])
      nodes
  in
  let pick v =
    (match !open_partition with
    | Some (victim, cut_at) when v.clock >= cut_at + heal_after ->
      open_partition := None;
      queue := !queue @ heals_of victim
    | _ -> ());
    if
      !queue = []
      && !open_partition = None
      && !count < max_partitions
      && Random.State.float st 1.0 < rate
    then begin
      let victim =
        List.nth victims (Random.State.int st (List.length victims))
      in
      incr count;
      open_partition := Some (victim, v.clock);
      queue := links_of victim
    end;
    drain queue inner v
  in
  { name = Printf.sprintf "partition-storm(%d)+%s" seed inner.name; pick }

(** One deterministic partition window: once the clock reaches [at_clock],
    cut [victim] off from every node of [peers] (both directions), then
    heal all those links [after] clock ticks later — the targeted
    quorum-loss scenario ("replica 2 is unreachable from clock 40 to
    120"). *)
let heal_after ~victim ~peers ~at_clock ~after inner =
  let queue = ref [] in
  let state = ref `Armed in
  let links kind =
    List.concat_map
      (fun peer ->
        if peer = victim then []
        else
          [
            Net_fault { kind; src = victim; dst = peer };
            Net_fault { kind; src = peer; dst = victim };
          ])
      peers
  in
  let pick v =
    (match !state with
    | `Armed when v.clock >= at_clock ->
      state := `Cut v.clock;
      queue := !queue @ links Event.Cut_link
    | `Cut c when v.clock >= c + after ->
      state := `Done;
      queue := !queue @ links Event.Heal_link
    | _ -> ());
    drain queue inner v
  in
  { name = Printf.sprintf "%s+heal-after@%d" inner.name at_clock; pick }

(** Seeded duplicate-delivery flood: with probability [rate] at each
    decision point (at most [max_dups] per run), duplicate the oldest
    in-flight message on a uniformly chosen loaded link.  [inflight] lists
    the directed links currently carrying at least one message (the
    transport exposes it; absorbed-if-empty keeps replay safe). *)
let dup_flood ~seed ~inflight ?(rate = 0.05) ?(max_dups = 16) inner =
  let st = Random.State.make [| seed; 0xD0B1 |] in
  let dups = ref 0 in
  let pick v =
    if !dups < max_dups && Random.State.float st 1.0 < rate then begin
      let links = inflight () in
      if Array.length links = 0 then inner.pick v
      else begin
        let src, dst = links.(Random.State.int st (Array.length links)) in
        incr dups;
        Net_fault { kind = Event.Dup_msg; src; dst }
      end
    end
    else inner.pick v
  in
  { name = Printf.sprintf "dup-flood(%d)+%s" seed inner.name; pick }

(** Seeded lag spikes: with probability [rate] at each decision point (at
    most [max_spikes] per run), reorder a burst of [burst] messages on a
    uniformly chosen loaded link — each delay pushes the link's oldest
    message behind its newest, so a spike scrambles the delivery order of
    a whole protocol round. *)
let lag_spike ~seed ~inflight ?(rate = 0.02) ?(burst = 4) ?(max_spikes = 6)
    inner =
  let st = Random.State.make [| seed; 0x1A95 |] in
  let spikes = ref 0 in
  let queue = ref [] in
  let pick v =
    if !queue = [] && !spikes < max_spikes && Random.State.float st 1.0 < rate
    then begin
      let links = inflight () in
      if Array.length links > 0 then begin
        let src, dst = links.(Random.State.int st (Array.length links)) in
        incr spikes;
        queue :=
          List.init burst (fun _ ->
              Net_fault { kind = Event.Delay_msg; src; dst })
      end
    end;
    drain queue inner v
  in
  { name = Printf.sprintf "lag-spike(%d)+%s" seed inner.name; pick }

(* ---- permanent-failure nemeses (docs/MODEL.md §16) ---- *)

(** Seeded permanent replica deaths: with probability [rate] at each
    decision point (at most [max_deaths] per run), crash a uniformly
    chosen runnable pid of [victims] — and never restart it.  The machine
    is gone for good; recovering the {e service} is the membership
    layer's job, not the scheduler's.  Composing this nemesis with one
    that restarts from [view.crashed] (e.g. {!crash_storm}) would undo
    the permanence; compose with {!partition_storm}/{!config_churn}
    instead. *)
let replica_death ~seed ~victims ?(rate = 0.01) ?(max_deaths = 1) inner =
  if victims = [] then invalid_arg "Scheduler.replica_death: no victims";
  let st = Random.State.make [| seed; 0xDEAD |] in
  let killed = ref 0 in
  let pick v =
    if
      !killed < max_deaths
      && Array.length v.runnable > 1
      && Random.State.float st 1.0 < rate
    then begin
      let alive = List.filter (fun p -> is_runnable v p) victims in
      match alive with
      | [] -> inner.pick v
      | _ ->
        let p = List.nth alive (Random.State.int st (List.length alive)) in
        incr killed;
        Crash p
    end
    else inner.pick v
  in
  { name = Printf.sprintf "replica-death(%d)+%s" seed inner.name; pick }

(** Deterministic rolling restart: crash each pid of [victims] in turn —
    the first once the clock reaches [start_at], each subsequent one [gap]
    ticks after the previous victim came back — keeping each down for
    [down_for] ticks before restarting it.  At most one victim is down at
    a time, the maintenance-window discipline of a rolling upgrade.
    Composed over a run without a recovery function the first crash is
    permanent and the roll stops (nemesis convention). *)
let rolling_restart ~victims ?(start_at = 40) ?(gap = 40) ?(down_for = 40)
    inner =
  let rest = ref victims in
  let state = ref (`Armed start_at) in
  let pick v =
    match (!state, !rest) with
    | `Armed at, p :: _ when v.clock >= at && is_runnable v p ->
      state := `Down v.clock;
      Crash p
    | `Down c, p :: tl
      when is_restartable v p
           && (v.clock >= c + down_for || Array.length v.runnable = 0) ->
      (* When nothing is runnable the clock is frozen: restart now rather
         than livelock. *)
      rest := tl;
      state := `Armed (v.clock + gap);
      Restart p
    | _ -> inner.pick v
  in
  { name = inner.name ^ "+rolling-restart"; pick }

(** Seeded configuration churn: with probability [rate] at each decision
    point (at most [max_reconfigs] per run), emit a {!Reconfig} decision —
    asking the membership manager to propose a replacement configuration
    even though nothing failed.  Layer it over {!partition_storm} to
    reconfigure mid-partition, the handoff-under-split-brain-pressure
    scenario epoch fencing exists for. *)
let config_churn ~seed ?(rate = 0.004) ?(max_reconfigs = 3) inner =
  let st = Random.State.make [| seed; 0xC0F6 |] in
  let count = ref 0 in
  let pick v =
    if
      !count < max_reconfigs
      && Array.length v.runnable > 0
      && Random.State.float st 1.0 < rate
    then begin
      incr count;
      Reconfig
    end
    else inner.pick v
  in
  { name = Printf.sprintf "config-churn(%d)+%s" seed inner.name; pick }
