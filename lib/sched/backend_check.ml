(* Compile-time check that the simulator backend satisfies the shared-memory
   signature the algorithms are functorized over. *)
module _ : Psnap_mem.Mem_intf.S = Mem_sim
