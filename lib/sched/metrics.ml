(** Per-operation step accounting and contention measures.

    A {!sample} records, for one high-level operation instance (a [scan], an
    [update], a [join], ...), how many shared-memory steps its process
    executed on its behalf and the stamp interval during which it was
    active.  From the intervals we compute the paper's contention measures
    (Section 2): interval contention [C] (number of operations whose active
    intervals overlap) and point contention [Ċ] (maximum number
    simultaneously active). *)

type sample = {
  pid : int;
  kind : string;
  steps : int;
  inv : int;  (** stamp at invocation *)
  resp : int;  (** stamp at response *)
}

type recorder = { mutable samples : sample list; mutable count : int }

let create () = { samples = []; count = 0 }

let samples r = List.rev r.samples

(** [measure r ~pid ~kind f] runs [f] as one operation of [pid], recording
    its own-step count and active interval.  Must run inside [Sim.run]. *)
let measure r ~pid ~kind f =
  let s0 = Sim.steps_of pid in
  let inv = Sim.mark () in
  let y = f () in
  let resp = Sim.mark () in
  let s1 = Sim.steps_of pid in
  r.samples <- { pid; kind; steps = s1 - s0; inv; resp } :: r.samples;
  r.count <- r.count + 1;
  y

let by_kind r kind = List.filter (fun s -> s.kind = kind) (samples r)

let total_steps ss = List.fold_left (fun a s -> a + s.steps) 0 ss

let max_steps ss = List.fold_left (fun a s -> max a s.steps) 0 ss

let mean_steps ss =
  match ss with
  | [] -> 0.
  | _ -> float_of_int (total_steps ss) /. float_of_int (List.length ss)

let overlaps a b = a.inv < b.resp && b.inv < a.resp

(** Interval contention of operation [s] among [all] (including [s]
    itself, as in the paper's definition of [C(op)]). *)
let interval_contention all s =
  List.length (List.filter (fun o -> overlaps s o) all)

(** Maximum interval contention over a set of operations. *)
let max_interval_contention ?(over = fun (_ : sample) -> true) all =
  List.fold_left
    (fun acc s -> if over s then max acc (interval_contention all s) else acc)
    0 all

(** Point contention of [s]: the maximum number of operations of [all]
    simultaneously active at some stamp within [s]'s interval.  Computed by
    sweeping invocation/response endpoints. *)
let point_contention all s =
  let events =
    List.concat_map
      (fun o -> if overlaps s o then [ (o.inv, 1); (o.resp, -1) ] else [])
      all
    |> List.sort compare
  in
  let cur = ref 0 and best = ref 0 in
  List.iter
    (fun (t, d) ->
      cur := !cur + d;
      if t >= s.inv && t <= s.resp then best := max !best !cur)
    events;
  !best

let max_point_contention ?(over = fun (_ : sample) -> true) all =
  List.fold_left
    (fun acc s -> if over s then max acc (point_contention all s) else acc)
    0 all

(** {2 Escape sanitizer} *)

type sanitizer = {
  strict : bool;  (** strict mode currently enabled *)
  checked : int;  (** accesses guarded since the last reset *)
  escaped : int;  (** accesses that raised {!Mem_sim.Escape} *)
}

let sanitizer () =
  let checked, escaped = Mem_sim.sanitizer_counts () in
  { strict = Mem_sim.strict_mode (); checked; escaped }

let reset_sanitizer = Mem_sim.reset_sanitizer

let pp_sanitizer ppf s =
  Format.fprintf ppf "sanitizer: strict=%b checked=%d escaped=%d" s.strict
    s.checked s.escaped

(** {2 Memory faults} *)

type fault_line = {
  kind : Event.fault_kind;
  injected : int;
  absorbed : int;
  fired : int;
}

type mem_faults = {
  per_kind : fault_line list;
  hardened : Psnap_mem.Hardened.stats;
}

let mem_faults () =
  {
    per_kind =
      List.map
        (fun kind ->
          let c = Mem_sim.fault_counts kind in
          {
            kind;
            injected = c.Mem_sim.injected;
            absorbed = c.Mem_sim.absorbed;
            fired = c.Mem_sim.fired;
          })
        Event.all_fault_kinds;
    hardened = Psnap_mem.Hardened.stats ();
  }

let reset_mem_faults () =
  Mem_sim.reset_fault_counts ();
  Psnap_mem.Hardened.reset_stats ()

let total_injected m =
  List.fold_left (fun a l -> a + l.injected) 0 m.per_kind

let total_detected m =
  let h = m.hardened in
  h.Psnap_mem.Hardened.corrupt_detected + h.stale_detected + h.lost_detected

let pp_mem_faults ppf m =
  List.iter
    (fun l ->
      if l.injected + l.absorbed + l.fired > 0 then
        Format.fprintf ppf "fault %-7s injected=%d absorbed=%d fired=%d@."
          (Event.fault_kind_to_string l.kind)
          l.injected l.absorbed l.fired)
    m.per_kind;
  let h = m.hardened in
  Format.fprintf ppf
    "hardened: corrupt=%d stale=%d lost=%d repairs=%d retries=%d"
    h.Psnap_mem.Hardened.corrupt_detected h.stale_detected h.lost_detected
    h.repairs h.retries
