(** Per-operation step accounting and contention measures.

    A {!sample} records, for one high-level operation instance (a [scan], an
    [update], a [join], ...), how many shared-memory steps its process
    executed on its behalf and the stamp interval during which it was
    active.  From the intervals we compute the paper's contention measures
    (Section 2): interval contention [C] (number of operations whose active
    intervals overlap) and point contention [Ċ] (maximum number
    simultaneously active). *)

type sample = {
  pid : int;
  kind : string;
  steps : int;
  inv : int;  (** stamp at invocation *)
  resp : int;  (** stamp at response *)
}

type recorder = { mutable samples : sample list; mutable count : int }

let create () = { samples = []; count = 0 }

let samples r = List.rev r.samples

(** [measure r ~pid ~kind f] runs [f] as one operation of [pid], recording
    its own-step count and active interval.  Must run inside [Sim.run]. *)
let measure r ~pid ~kind f =
  let s0 = Sim.steps_of pid in
  let inv = Sim.mark () in
  let y = f () in
  let resp = Sim.mark () in
  let s1 = Sim.steps_of pid in
  r.samples <- { pid; kind; steps = s1 - s0; inv; resp } :: r.samples;
  r.count <- r.count + 1;
  y

let by_kind r kind = List.filter (fun s -> s.kind = kind) (samples r)

let total_steps ss = List.fold_left (fun a s -> a + s.steps) 0 ss

let max_steps ss = List.fold_left (fun a s -> max a s.steps) 0 ss

let mean_steps ss =
  match ss with
  | [] -> 0.
  | _ -> float_of_int (total_steps ss) /. float_of_int (List.length ss)

let overlaps a b = a.inv < b.resp && b.inv < a.resp

(** Interval contention of operation [s] among [all] (including [s]
    itself, as in the paper's definition of [C(op)]). *)
let interval_contention all s =
  List.length (List.filter (fun o -> overlaps s o) all)

(** Maximum interval contention over a set of operations. *)
let max_interval_contention ?(over = fun (_ : sample) -> true) all =
  List.fold_left
    (fun acc s -> if over s then max acc (interval_contention all s) else acc)
    0 all

(** Point contention of [s]: the maximum number of operations of [all]
    simultaneously active at some stamp within [s]'s interval.  Computed by
    sweeping invocation/response endpoints. *)
let point_contention all s =
  let events =
    List.concat_map
      (fun o -> if overlaps s o then [ (o.inv, 1); (o.resp, -1) ] else [])
      all
    |> List.sort compare
  in
  let cur = ref 0 and best = ref 0 in
  List.iter
    (fun (t, d) ->
      cur := !cur + d;
      if t >= s.inv && t <= s.resp then best := max !best !cur)
    events;
  !best

let max_point_contention ?(over = fun (_ : sample) -> true) all =
  List.fold_left
    (fun acc s -> if over s then max acc (point_contention all s) else acc)
    0 all

(** {2 Escape sanitizer} *)

type sanitizer = {
  strict : bool;  (** strict mode currently enabled *)
  checked : int;  (** accesses guarded since the last reset *)
  escaped : int;  (** accesses that raised {!Mem_sim.Escape} *)
}

let sanitizer () =
  let checked, escaped = Mem_sim.sanitizer_counts () in
  { strict = Mem_sim.strict_mode (); checked; escaped }

let reset_sanitizer = Mem_sim.reset_sanitizer

let pp_sanitizer ppf s =
  Format.fprintf ppf "sanitizer: strict=%b checked=%d escaped=%d" s.strict
    s.checked s.escaped

(** {2 Serving-layer counters} *)

(* Global counters bumped by the Psnap_runtime serving layer (Sharded scan
   validation, the Resilient supervision layer).  Plain references, like
   [Hardened]'s stats: exact under the cooperative simulator, approximate
   (unsynchronized increments) under the multi-domain loadgen — they are
   observability signals, not linearizable state. *)

let s_scan_rounds = ref 0

let s_scan_retries = ref 0

let s_degraded_scans = ref 0

let s_backoff_steps = ref 0

let s_breaker_opens = ref 0

let s_breaker_half_opens = ref 0

let s_breaker_closes = ref 0

let s_heals_started = ref 0

let s_heals_completed = ref 0

let s_heals_aborted = ref 0

let s_stuck_epochs = ref 0

type serving = {
  scan_rounds : int;
  scan_retries : int;
  degraded_scans : int;
  backoff_steps : int;
  breaker_opens : int;
  breaker_half_opens : int;
  breaker_closes : int;
  heals_started : int;
  heals_completed : int;
  heals_aborted : int;
  stuck_epochs : int;
}

let serving () =
  {
    scan_rounds = !s_scan_rounds;
    scan_retries = !s_scan_retries;
    degraded_scans = !s_degraded_scans;
    backoff_steps = !s_backoff_steps;
    breaker_opens = !s_breaker_opens;
    breaker_half_opens = !s_breaker_half_opens;
    breaker_closes = !s_breaker_closes;
    heals_started = !s_heals_started;
    heals_completed = !s_heals_completed;
    heals_aborted = !s_heals_aborted;
    stuck_epochs = !s_stuck_epochs;
  }

let reset_serving () =
  s_scan_rounds := 0;
  s_scan_retries := 0;
  s_degraded_scans := 0;
  s_backoff_steps := 0;
  s_breaker_opens := 0;
  s_breaker_half_opens := 0;
  s_breaker_closes := 0;
  s_heals_started := 0;
  s_heals_completed := 0;
  s_heals_aborted := 0;
  s_stuck_epochs := 0

let note_scan_rounds rounds =
  s_scan_rounds := !s_scan_rounds + rounds;
  if rounds > 2 then s_scan_retries := !s_scan_retries + (rounds - 2)

let note_degraded_scan () = incr s_degraded_scans

let note_backoff steps = s_backoff_steps := !s_backoff_steps + steps

let note_breaker = function
  | `Open -> incr s_breaker_opens
  | `Half_open -> incr s_breaker_half_opens
  | `Close -> incr s_breaker_closes

let note_heal = function
  | `Started -> incr s_heals_started
  | `Completed -> incr s_heals_completed
  | `Aborted -> incr s_heals_aborted

let note_stuck_epoch () = incr s_stuck_epochs

let pp_serving ppf s =
  Format.fprintf ppf
    "serving: rounds=%d retries=%d degraded=%d backoff=%d breaker \
     o/h/c=%d/%d/%d heals s/c/a=%d/%d/%d stuck-epochs=%d"
    s.scan_rounds s.scan_retries s.degraded_scans s.backoff_steps
    s.breaker_opens s.breaker_half_opens s.breaker_closes s.heals_started
    s.heals_completed s.heals_aborted s.stuck_epochs

(** {2 Durability counters} *)

(* Global counters bumped by the Psnap_persist layer (WAL appends,
   checkpoints, recoveries).  Same discipline as the serving counters:
   plain references — exact under the cooperative simulator, approximate
   under the multi-domain loadgen, observability only. *)

let d_wal_appends = ref 0

let d_wal_syncs = ref 0

let d_wal_bytes = ref 0

let d_commits = ref 0

let d_checkpoints = ref 0

let d_recoveries = ref 0

let d_replayed_updates = ref 0

let d_truncated_bytes = ref 0

let d_torn_records = ref 0

let d_corrupt_records = ref 0

let d_power_losses = ref 0

type durable = {
  wal_appends : int;
  wal_syncs : int;
  wal_bytes : int;
  commits : int;
  checkpoints : int;
  recoveries : int;
  replayed_updates : int;
  truncated_bytes : int;
  torn_records : int;
  corrupt_records : int;
  power_losses : int;
}

let durable () =
  {
    wal_appends = !d_wal_appends;
    wal_syncs = !d_wal_syncs;
    wal_bytes = !d_wal_bytes;
    commits = !d_commits;
    checkpoints = !d_checkpoints;
    recoveries = !d_recoveries;
    replayed_updates = !d_replayed_updates;
    truncated_bytes = !d_truncated_bytes;
    torn_records = !d_torn_records;
    corrupt_records = !d_corrupt_records;
    power_losses = !d_power_losses;
  }

let reset_durable () =
  d_wal_appends := 0;
  d_wal_syncs := 0;
  d_wal_bytes := 0;
  d_commits := 0;
  d_checkpoints := 0;
  d_recoveries := 0;
  d_replayed_updates := 0;
  d_truncated_bytes := 0;
  d_torn_records := 0;
  d_corrupt_records := 0;
  d_power_losses := 0

let note_wal_append bytes =
  incr d_wal_appends;
  d_wal_bytes := !d_wal_bytes + bytes

let note_wal_sync () = incr d_wal_syncs

let note_commit () = incr d_commits

let note_checkpoint () = incr d_checkpoints

let note_recovery ~replayed =
  incr d_recoveries;
  d_replayed_updates := !d_replayed_updates + replayed

let note_truncation ~bytes ~torn ~corrupt =
  d_truncated_bytes := !d_truncated_bytes + bytes;
  if torn then incr d_torn_records;
  if corrupt then incr d_corrupt_records

let note_power_loss () = incr d_power_losses

let pp_durable ppf d =
  Format.fprintf ppf
    "durable: appends=%d syncs=%d bytes=%d commits=%d checkpoints=%d \
     recoveries=%d replayed=%d truncated=%dB torn=%d corrupt=%d \
     power-losses=%d"
    d.wal_appends d.wal_syncs d.wal_bytes d.commits d.checkpoints
    d.recoveries d.replayed_updates d.truncated_bytes d.torn_records
    d.corrupt_records d.power_losses

(** {2 Network counters} *)

(* Global counters bumped by the Psnap_net transport and the ABD quorum
   registers (docs/MODEL.md §14).  Same discipline as the serving and
   durable counters: plain references — exact under the cooperative
   simulator, approximate (unsynchronized increments) under the
   multi-domain loadgen, observability only. *)

let n_sends = ref 0

let n_delivers = ref 0

let n_drops = ref 0

let n_dups = ref 0

let n_delays = ref 0

let n_cuts = ref 0

let n_heals = ref 0

let n_rounds = ref 0

let n_resends = ref 0

let n_writebacks = ref 0

let n_writeback_skips = ref 0

let n_unavailable = ref 0

let n_quorum_ops = ref 0

let n_quorum_wait = ref 0

type net = {
  sends : int;
  delivers : int;
  drops : int;
  dups : int;
  delays : int;
  cuts : int;
  heals : int;
  rounds : int;
  resends : int;
  writebacks : int;
  writeback_skips : int;
  unavailable : int;
  quorum_ops : int;
  quorum_wait : int;
}

let net () =
  {
    sends = !n_sends;
    delivers = !n_delivers;
    drops = !n_drops;
    dups = !n_dups;
    delays = !n_delays;
    cuts = !n_cuts;
    heals = !n_heals;
    rounds = !n_rounds;
    resends = !n_resends;
    writebacks = !n_writebacks;
    writeback_skips = !n_writeback_skips;
    unavailable = !n_unavailable;
    quorum_ops = !n_quorum_ops;
    quorum_wait = !n_quorum_wait;
  }

let reset_net () =
  n_sends := 0;
  n_delivers := 0;
  n_drops := 0;
  n_dups := 0;
  n_delays := 0;
  n_cuts := 0;
  n_heals := 0;
  n_rounds := 0;
  n_resends := 0;
  n_writebacks := 0;
  n_writeback_skips := 0;
  n_unavailable := 0;
  n_quorum_ops := 0;
  n_quorum_wait := 0

let note_send () = incr n_sends

let note_deliver () = incr n_delivers

let note_net_fault (kind : Event.net_fault_kind) =
  match kind with
  | Event.Drop_msg -> incr n_drops
  | Event.Dup_msg -> incr n_dups
  | Event.Delay_msg -> incr n_delays
  | Event.Cut_link -> incr n_cuts
  | Event.Heal_link -> incr n_heals

let note_quorum_round () = incr n_rounds

let note_resend () = incr n_resends

let note_writeback ~skipped =
  if skipped then incr n_writeback_skips else incr n_writebacks

let note_unavailable () = incr n_unavailable

let note_quorum_op ~wait =
  incr n_quorum_ops;
  n_quorum_wait := !n_quorum_wait + wait

let mean_quorum_wait n =
  if n.quorum_ops = 0 then 0.0
  else float_of_int n.quorum_wait /. float_of_int n.quorum_ops

let pp_net ppf n =
  Format.fprintf ppf
    "net: sends=%d delivers=%d drops=%d dups=%d delays=%d cuts=%d heals=%d \
     rounds=%d resends=%d writebacks=%d/%d-skipped unavailable=%d \
     quorum-wait=%.1f"
    n.sends n.delivers n.drops n.dups n.delays n.cuts n.heals n.rounds
    n.resends n.writebacks n.writeback_skips n.unavailable
    (mean_quorum_wait n)

(** {2 Reconfiguration counters} *)

(* Global counters bumped by the Psnap_net membership layer
   (docs/MODEL.md §16).  Same discipline as the other counter groups:
   plain references — exact under the cooperative simulator, approximate
   (unsynchronized increments) under the multi-domain loadgen,
   observability only. *)

let r_reconfigs = ref 0

let r_seals = ref 0

let r_transfers = ref 0

let r_activations = ref 0

let r_stale_rejects = ref 0

let r_epoch_chases = ref 0

let r_suspicions = ref 0

let r_replacements = ref 0

let r_churn_requests = ref 0

let r_naive_swaps = ref 0

type reconfig = {
  reconfigs : int;
  seals : int;
  transfers : int;
  activations : int;
  stale_rejects : int;
  epoch_chases : int;
  suspicions : int;
  replacements : int;
  churn_requests : int;
  naive_swaps : int;
}

let reconfig () =
  {
    reconfigs = !r_reconfigs;
    seals = !r_seals;
    transfers = !r_transfers;
    activations = !r_activations;
    stale_rejects = !r_stale_rejects;
    epoch_chases = !r_epoch_chases;
    suspicions = !r_suspicions;
    replacements = !r_replacements;
    churn_requests = !r_churn_requests;
    naive_swaps = !r_naive_swaps;
  }

let reset_reconfig () =
  r_reconfigs := 0;
  r_seals := 0;
  r_transfers := 0;
  r_activations := 0;
  r_stale_rejects := 0;
  r_epoch_chases := 0;
  r_suspicions := 0;
  r_replacements := 0;
  r_churn_requests := 0;
  r_naive_swaps := 0

let note_reconfig () = incr r_reconfigs

let note_seal () = incr r_seals

let note_transfer ~registers = r_transfers := !r_transfers + registers

let note_activation () = incr r_activations

let note_stale_reject () = incr r_stale_rejects

let note_epoch_chase () = incr r_epoch_chases

let note_suspicion () = incr r_suspicions

let note_replacement () = incr r_replacements

let note_churn_request () = incr r_churn_requests

let note_naive_swap () = incr r_naive_swaps

let pp_reconfig ppf r =
  Format.fprintf ppf
    "reconfig: reconfigs=%d seals=%d transfers=%d activations=%d \
     stale-rejects=%d epoch-chases=%d suspicions=%d replacements=%d \
     churn-requests=%d naive-swaps=%d"
    r.reconfigs r.seals r.transfers r.activations r.stale_rejects
    r.epoch_chases r.suspicions r.replacements r.churn_requests r.naive_swaps

(** {2 Transaction counters} *)

(* Global counters bumped by the Psnap_txn MVCC layer (docs/MODEL.md §15).
   Same discipline as the serving, durable and net counters: plain
   references — exact under the cooperative simulator, approximate
   (unsynchronized increments) under the multi-domain loadgen,
   observability only. *)

let t_begins = ref 0

let t_ro_commits = ref 0

let t_rw_commits = ref 0

let t_conflicts = ref 0

let t_busy_aborts = ref 0

let t_voluntary_aborts = ref 0

let t_lww_overwrites = ref 0

let t_resumes = ref 0

let t_pruned_versions = ref 0

type txn = {
  begins : int;
  ro_commits : int;
  rw_commits : int;
  conflicts : int;
  busy_aborts : int;
  voluntary_aborts : int;
  lww_overwrites : int;
  resumes : int;
  pruned_versions : int;
}

let txn () =
  {
    begins = !t_begins;
    ro_commits = !t_ro_commits;
    rw_commits = !t_rw_commits;
    conflicts = !t_conflicts;
    busy_aborts = !t_busy_aborts;
    voluntary_aborts = !t_voluntary_aborts;
    lww_overwrites = !t_lww_overwrites;
    resumes = !t_resumes;
    pruned_versions = !t_pruned_versions;
  }

let reset_txn () =
  t_begins := 0;
  t_ro_commits := 0;
  t_rw_commits := 0;
  t_conflicts := 0;
  t_busy_aborts := 0;
  t_voluntary_aborts := 0;
  t_lww_overwrites := 0;
  t_resumes := 0;
  t_pruned_versions := 0

let note_txn_begin () = incr t_begins

let note_txn_ro_commit () = incr t_ro_commits

let note_txn_rw_commit () = incr t_rw_commits

let note_txn_conflict () = incr t_conflicts

let note_txn_busy () = incr t_busy_aborts

let note_txn_voluntary_abort () = incr t_voluntary_aborts

let note_txn_lww_overwrite () = incr t_lww_overwrites

let note_txn_resume () = incr t_resumes

let note_txn_pruned k = t_pruned_versions := !t_pruned_versions + k

let txn_aborts t = t.conflicts + t.busy_aborts + t.voluntary_aborts

let txn_abort_rate t =
  let attempts = t.rw_commits + t.conflicts + t.busy_aborts in
  if attempts = 0 then 0.0
  else float_of_int (t.conflicts + t.busy_aborts) /. float_of_int attempts

let pp_txn ppf t =
  Format.fprintf ppf
    "txn: begins=%d commits ro/rw=%d/%d aborts c/b/v=%d/%d/%d \
     abort-rate=%.3f lww-overwrites=%d resumes=%d pruned=%d"
    t.begins t.ro_commits t.rw_commits t.conflicts t.busy_aborts
    t.voluntary_aborts (txn_abort_rate t) t.lww_overwrites t.resumes
    t.pruned_versions

(** {2 Memory faults} *)

type fault_line = {
  kind : Event.fault_kind;
  injected : int;
  absorbed : int;
  fired : int;
}

type mem_faults = {
  per_kind : fault_line list;
  hardened : Psnap_mem.Hardened.stats;
}

let mem_faults () =
  {
    per_kind =
      List.map
        (fun kind ->
          let c = Mem_sim.fault_counts kind in
          {
            kind;
            injected = c.Mem_sim.injected;
            absorbed = c.Mem_sim.absorbed;
            fired = c.Mem_sim.fired;
          })
        Event.all_fault_kinds;
    hardened = Psnap_mem.Hardened.stats ();
  }

let reset_mem_faults () =
  Mem_sim.reset_fault_counts ();
  Psnap_mem.Hardened.reset_stats ()

let total_injected m =
  List.fold_left (fun a l -> a + l.injected) 0 m.per_kind

let total_detected m =
  let h = m.hardened in
  h.Psnap_mem.Hardened.corrupt_detected + h.stale_detected + h.lost_detected

let pp_mem_faults ppf m =
  List.iter
    (fun l ->
      if l.injected + l.absorbed + l.fired > 0 then
        Format.fprintf ppf "fault %-7s injected=%d absorbed=%d fired=%d@."
          (Event.fault_kind_to_string l.kind)
          l.injected l.absorbed l.fired)
    m.per_kind;
  let h = m.hardened in
  Format.fprintf ppf
    "hardened: corrupt=%d stale=%d lost=%d repairs=%d retries=%d"
    h.Psnap_mem.Hardened.corrupt_detected h.stale_detected h.lost_detected
    h.repairs h.retries
