(** Per-operation step accounting and the paper's contention measures.

    A {!sample} records, for one high-level operation instance (a scan, an
    update, a join, ...), how many shared-memory steps its process executed
    on its behalf and the stamp interval during which it was active.  From
    the intervals the contention measures of Section 2 are computed:
    interval contention [C] (operations whose active intervals overlap) and
    point contention [Ċ] (maximum simultaneously active). *)

type sample = {
  pid : int;
  kind : string;
  steps : int;  (** own steps of this operation instance *)
  inv : int;  (** stamp at invocation *)
  resp : int;  (** stamp at response *)
}

type recorder

val create : unit -> recorder

(** [measure r ~pid ~kind f] runs [f] as one operation of [pid], recording
    its own-step count and active interval.  Must run inside {!Sim.run}. *)
val measure : recorder -> pid:int -> kind:string -> (unit -> 'a) -> 'a

(** All samples, in recording order. *)
val samples : recorder -> sample list

val by_kind : recorder -> string -> sample list

val total_steps : sample list -> int

val max_steps : sample list -> int

val mean_steps : sample list -> float

(** [overlaps a b] — the active intervals intersect. *)
val overlaps : sample -> sample -> bool

(** Interval contention [C(op)] of [s] among [all] ([s] included, as in the
    paper's definition). *)
val interval_contention : sample list -> sample -> int

(** Point contention [Ċ(op)] of [s]: maximum number of operations of [all]
    simultaneously active at some stamp inside [s]'s interval. *)
val point_contention : sample list -> sample -> int

(** Maxima over all operations satisfying [over] (default: all). *)
val max_interval_contention : ?over:(sample -> bool) -> sample list -> int

val max_point_contention : ?over:(sample -> bool) -> sample list -> int

(** {2 Escape sanitizer}

    The dynamic face of the no-escape discipline (docs/MODEL.md, "Memory
    discipline"): with {!Mem_sim.set_strict}[ true], every simulated access
    is checked to happen at a scheduling point of the current run. *)

type sanitizer = {
  strict : bool;  (** strict mode currently enabled *)
  checked : int;  (** accesses guarded since the last reset *)
  escaped : int;  (** accesses that raised {!Mem_sim.Escape} *)
}

val sanitizer : unit -> sanitizer

val reset_sanitizer : unit -> unit

val pp_sanitizer : Format.formatter -> sanitizer -> unit

(** {2 Serving-layer counters}

    Global counters bumped by the [Psnap_runtime] serving layer: validation
    rounds and retries of sharded scans, degraded-scan and backoff totals,
    circuit-breaker transitions, and shard-heal outcomes of the resilient
    supervision layer (docs/MODEL.md §11).  Plain references, like the
    hardened-register stats: exact under the cooperative simulator,
    approximate (unsynchronized increments) under the multi-domain
    loadgen. *)

type serving = {
  scan_rounds : int;  (** per-shard sub-scan rounds executed by scans *)
  scan_retries : int;  (** rounds beyond the minimal validating pair *)
  degraded_scans : int;  (** scans that returned a [Degraded] result *)
  backoff_steps : int;  (** base-memory reads spent backing off *)
  breaker_opens : int;  (** circuit transitions into [Open] *)
  breaker_half_opens : int;  (** transitions into [Half_open] *)
  breaker_closes : int;  (** transitions back into [Closed] *)
  heals_started : int;  (** shard rebuilds initiated (shard sealed) *)
  heals_completed : int;  (** rebuilds swapped in atomically *)
  heals_aborted : int;  (** rebuilds abandoned (quiescence timeout) *)
  stuck_epochs : int;  (** non-monotone epoch draws detected by updates *)
}

val serving : unit -> serving

val reset_serving : unit -> unit

(** Bump API used by [Psnap_runtime.Sharded] / [Psnap_runtime.Resilient]. *)

val note_scan_rounds : int -> unit

val note_degraded_scan : unit -> unit

val note_backoff : int -> unit

val note_breaker : [ `Open | `Half_open | `Close ] -> unit

val note_heal : [ `Started | `Completed | `Aborted ] -> unit

val note_stuck_epoch : unit -> unit

val pp_serving : Format.formatter -> serving -> unit

(** {2 Durability counters}

    Global counters bumped by the [Psnap_persist] layer (docs/MODEL.md
    §13): WAL traffic, commits and checkpoints, recoveries with their
    replay volume, the bytes and records discarded while repairing a log
    tail, and power losses observed by the storage backend.  Same
    discipline as the serving counters: plain references — exact under the
    cooperative simulator, approximate under the multi-domain loadgen. *)

type durable = {
  wal_appends : int;  (** records appended to a WAL *)
  wal_syncs : int;  (** storage [sync] barriers issued *)
  wal_bytes : int;  (** total bytes appended *)
  commits : int;  (** durable updates acknowledged *)
  checkpoints : int;  (** sealed checkpoint triples written *)
  recoveries : int;  (** recovery passes executed *)
  replayed_updates : int;  (** update records re-applied by recoveries *)
  truncated_bytes : int;  (** log-tail bytes discarded by recoveries *)
  torn_records : int;  (** recoveries that discarded a torn tail record *)
  corrupt_records : int;  (** recoveries that hit a checksum mismatch *)
  power_losses : int;  (** power losses observed by storage devices *)
}

val durable : unit -> durable

val reset_durable : unit -> unit

(** Bump API used by [Psnap_persist]. *)

val note_wal_append : int -> unit
(** [note_wal_append bytes] — one record of [bytes] bytes appended. *)

val note_wal_sync : unit -> unit

val note_commit : unit -> unit

val note_checkpoint : unit -> unit

val note_recovery : replayed:int -> unit

val note_truncation : bytes:int -> torn:bool -> corrupt:bool -> unit

val note_power_loss : unit -> unit

val pp_durable : Format.formatter -> durable -> unit

(** {2 Network counters}

    Global counters bumped by the [Psnap_net] transport and the ABD quorum
    registers (docs/MODEL.md §14): message traffic, injected network-fault
    effects, quorum protocol rounds and resends, read write-backs (and the
    sound skip when every quorum replier already holds the maximal tag),
    operations that gave up with [Unavailable], and the poll-steps clients
    spent waiting for quorums (the step-denominated quorum latency).  Same
    discipline as the serving counters: plain references — exact under the
    cooperative simulator, approximate under the multi-domain loadgen. *)

type net = {
  sends : int;  (** messages enqueued on a link *)
  delivers : int;  (** messages received by a node *)
  drops : int;  (** injected [Drop_msg] effects *)
  dups : int;  (** injected [Dup_msg] effects *)
  delays : int;  (** injected [Delay_msg] effects *)
  cuts : int;  (** injected [Cut_link] effects *)
  heals : int;  (** injected [Heal_link] effects *)
  rounds : int;  (** completed quorum phases (Get or Put rounds) *)
  resends : int;  (** request rebroadcasts beyond each phase's first *)
  writebacks : int;  (** read-repair write-back rounds executed *)
  writeback_skips : int;
      (** write-backs soundly skipped (every replier already maximal) *)
  unavailable : int;  (** operations that raised [Unavailable] *)
  quorum_ops : int;  (** completed quorum operations *)
  quorum_wait : int;  (** total poll-steps spent awaiting quorums *)
}

val net : unit -> net

val reset_net : unit -> unit

(** Bump API used by [Psnap_net]. *)

val note_send : unit -> unit

val note_deliver : unit -> unit

val note_net_fault : Event.net_fault_kind -> unit
(** One fault effect actually injected (absorbed decisions are not
    counted here; the transport's own counters track absorption). *)

val note_quorum_round : unit -> unit

val note_resend : unit -> unit

val note_writeback : skipped:bool -> unit

val note_unavailable : unit -> unit

val note_quorum_op : wait:int -> unit
(** One quorum operation completed after [wait] poll-steps. *)

(** Mean poll-steps per completed quorum operation. *)
val mean_quorum_wait : net -> float

val pp_net : Format.formatter -> net -> unit

(** {2 Reconfiguration counters}

    Global counters bumped by the [Psnap_net] membership layer
    (docs/MODEL.md §16): reconfigurations completed end-to-end, the seal /
    state-transfer / activation phases executed, stale requests fenced off
    by epoch tags, clients chasing a newer configuration after a fence
    rejection, health-layer suspicions and the replacement configurations
    they proposed, scheduler-driven churn requests, and the unfenced swaps
    of the deliberately-unsound [naive] mode.  Same discipline as the
    other groups: plain references — exact under the cooperative
    simulator, approximate under the multi-domain loadgen. *)

type reconfig = {
  reconfigs : int;  (** reconfigurations completed end-to-end *)
  seals : int;  (** old configurations sealed (phase 1) *)
  transfers : int;  (** registers state-transferred to a new epoch *)
  activations : int;  (** new configurations activated (phase 2) *)
  stale_rejects : int;  (** requests a replica fenced off by epoch *)
  epoch_chases : int;  (** client retries after adopting a newer config *)
  suspicions : int;  (** replicas suspected by the health layer *)
  replacements : int;  (** replacement configurations auto-proposed *)
  churn_requests : int;  (** {!Scheduler.Reconfig} decisions accepted *)
  naive_swaps : int;  (** unfenced membership swaps ([naive] mode) *)
}

val reconfig : unit -> reconfig

val reset_reconfig : unit -> unit

(** Bump API used by [Psnap_net.Net_reconfig]. *)

val note_reconfig : unit -> unit

val note_seal : unit -> unit

val note_transfer : registers:int -> unit

val note_activation : unit -> unit

val note_stale_reject : unit -> unit

val note_epoch_chase : unit -> unit

val note_suspicion : unit -> unit

val note_replacement : unit -> unit

val note_churn_request : unit -> unit

val note_naive_swap : unit -> unit

val pp_reconfig : Format.formatter -> reconfig -> unit

(** {2 Transaction counters}

    Global counters bumped by the [Psnap_txn] MVCC layer (docs/MODEL.md
    §15): begins, read-only and read-write commits, the three abort
    classes (first-committer-wins conflicts, bounded commit-descriptor
    acquisition giving up, voluntary aborts), the overwrites the unsound
    last-writer-wins mode performed where validation would have refused,
    crash-restart descriptor resumes, and versions discarded by watermark
    pruning.  Same discipline as the serving counters: plain references —
    exact under the cooperative simulator, approximate under the
    multi-domain loadgen. *)

type txn = {
  begins : int;  (** transactions begun *)
  ro_commits : int;  (** read-only commits (never validated, never abort) *)
  rw_commits : int;  (** read-write commits published *)
  conflicts : int;  (** first-committer-wins validation aborts *)
  busy_aborts : int;  (** commit-descriptor acquisition exhausted *)
  voluntary_aborts : int;  (** explicit [abort] calls *)
  lww_overwrites : int;
      (** unsound-mode commits that overwrote a version invisible to their
          snapshot (each is a lost-update risk) *)
  resumes : int;  (** dead incarnations' descriptors completed/released *)
  pruned_versions : int;  (** versions discarded below the watermark *)
}

val txn : unit -> txn

val reset_txn : unit -> unit

(** Bump API used by [Psnap_txn]. *)

val note_txn_begin : unit -> unit

val note_txn_ro_commit : unit -> unit

val note_txn_rw_commit : unit -> unit

val note_txn_conflict : unit -> unit

val note_txn_busy : unit -> unit

val note_txn_voluntary_abort : unit -> unit

val note_txn_lww_overwrite : unit -> unit

val note_txn_resume : unit -> unit

val note_txn_pruned : int -> unit

(** Total aborts (conflict + busy + voluntary). *)
val txn_aborts : txn -> int

(** Aborted fraction of read-write commit attempts. *)
val txn_abort_rate : txn -> float

val pp_txn : Format.formatter -> txn -> unit

(** {2 Memory faults}

    Per-kind injection counters from the simulated memory
    ({!Mem_sim.fault_counts}) together with the detection/repair counters
    of the hardened registers ([Psnap_mem.Hardened.stats]) — the two sides
    of a chaos campaign: what the nemesis did, and what the hardening
    caught. *)

type fault_line = {
  kind : Event.fault_kind;
  injected : int;  (** decisions that armed or applied a fault *)
  absorbed : int;  (** decisions with no possible effect *)
  fired : int;  (** armed faults consumed by an access *)
}

type mem_faults = {
  per_kind : fault_line list;  (** one line per kind, in
                                   {!Event.all_fault_kinds} order *)
  hardened : Psnap_mem.Hardened.stats;
}

val mem_faults : unit -> mem_faults

val reset_mem_faults : unit -> unit

(** Total fault decisions that took effect (sum of [injected]). *)
val total_injected : mem_faults -> int

(** Total faults the hardened registers detected (corrupt + stale +
    lost). *)
val total_detected : mem_faults -> int

val pp_mem_faults : Format.formatter -> mem_faults -> unit
