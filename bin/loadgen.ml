(* Multicore serving benchmark: drive a snapshot implementation with the
   Psnap_runtime load generator and report throughput plus latency
   percentiles.

     dune exec bin/loadgen.exe -- --impl sharded --shards 8 --domains 4 \
         --dist zipf --mix 90:10 --duration 2s --json out.json

   --impl sharded builds the sharded Figure 3 construction with the
   requested shard count at runtime; the flat implementations (fig1,
   fig3, afek, farray) take the same workload for comparison.  JSON
   summaries land wherever --json points (CI uses _artifacts/) and feed
   the BENCH_runtime.json trajectory. *)

open Psnap
module Table = Psnap_harness.Table
module Loadgen = Psnap_runtime.Loadgen
module Histogram = Psnap_runtime.Histogram

let flat_impls : (string * (module Snapshot.S)) list =
  [
    ("fig1", (module Mc_fig1));
    ("fig3", (module Mc_fig3));
    ("afek", (module Mc_afek));
    ("farray", (module Mc_farray));
  ]

let impl_names =
  List.map fst flat_impls
  @ [ "sharded"; "sharded-relaxed"; "resilient"; "durable"; "txn" ]

(* The MVCC transaction layer behind the Snapshot.S face: every update is
   a read-modify-write transaction retried until it commits (conflict and
   busy aborts land in the txn metrics, and each retry pays a fresh begin
   and validation), every scan a read-only transaction — one partial scan
   over the declared read set, never a validation, never a retry.  Feeding
   this to the unchanged load generator prices snapshot-isolation commits
   against plain fig3 operations (EXPERIMENTS.md E20). *)
module Mc_txn_snap : Snapshot.S = struct
  module T = Mc_txn_fig3

  type 'a t = 'a T.t

  type 'a handle = 'a T.handle

  let name = T.name

  let create ~n init = T.create ~n init

  let handle t ~pid = T.handle t ~pid

  let update h i v =
    let rec go () =
      let x = T.begin_ h in
      ignore (T.read x i);
      T.write x i v;
      match T.commit x with Ok _ -> () | Error _ -> go ()
    in
    go ()

  let scan h idxs =
    let x = T.begin_ h in
    let vs = T.read_many x idxs in
    ignore (T.commit x);
    vs

  let last_scan_collects _ = 1
end

let impl_of ~shards ~partition ~open_shard name : (module Snapshot.S) =
  match name with
  | "sharded" | "sharded-relaxed" ->
    (module Psnap_runtime.Sharded.Make (Mem.Atomic) (Mc_fig3)
              (struct
                let shards = shards
                let partition = partition
                let mode =
                  if name = "sharded" then `Validated else `Relaxed
              end))
  | "resilient" ->
    (* the supervised serving layer on real atomics; --open-shard pins one
       circuit open for the whole run, so its scans are single-round
       degraded fragments — the experiment behind the "a stalled shard
       does not drag down the others" latency claim *)
    let module RS =
      Psnap_runtime.Resilient.Make (Mem.Atomic) (Mc_fig3) (Mc_fig3)
        (struct
          let shards = shards
          let partition = partition
          let max_rounds = 6
          let backoff_base = 2
          let backoff_max = 16
          let breaker_threshold = 3
          let breaker_cooldown = 4
          let probe_successes = 2
          let heal_quiesce = 64
        end)
    in
    (module struct
      include RS.Snap

      let create ~n init =
        let t = RS.Snap.create ~n init in
        (match open_shard with
        | Some s when s >= 0 && s < RS.nshards t -> RS.force_open t s
        | Some s ->
          Printf.eprintf "--open-shard %d out of range (0..%d)\n" s
            (RS.nshards t - 1);
          exit 2
        | None -> ());
        t
    end)
  | "durable" ->
    (* Figure 3 behind the write-ahead log on the mutex-guarded multicore
       device: every update pays append + sync + commit-lock serialization
       before it acknowledges.  Measured against plain fig3, this prices
       durability in the latency histograms (EXPERIMENTS.md E18). *)
    (module Mc_durable_fig3)
  | "txn" -> (module Mc_txn_snap)
  | _ -> (
    match List.assoc_opt name flat_impls with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown implementation %S (choose from: %s)\n" name
        (String.concat ", " impl_names);
      exit 2)

(* "90:10" -> update probability 0.9; "1u+3s" -> dedicated roles *)
let mix_of s =
  match String.index_opt s ':' with
  | Some i ->
    let u = float_of_string (String.sub s 0 i)
    and sc = float_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    if u < 0.0 || sc < 0.0 || u +. sc <= 0.0 then
      failwith "bad --mix ratio";
    Loadgen.Ratio (u /. (u +. sc))
  | None -> (
    match String.split_on_char '+' s with
    | [ u; sc ]
      when String.length u > 1
           && u.[String.length u - 1] = 'u'
           && String.length sc > 1
           && sc.[String.length sc - 1] = 's' ->
      Loadgen.Dedicated
        {
          updaters = int_of_string (String.sub u 0 (String.length u - 1));
          scanners = int_of_string (String.sub sc 0 (String.length sc - 1));
        }
    | _ -> failwith "bad --mix (use U:S, e.g. 90:10, or NuMs, e.g. 1u+3s)")

(* "2s" | "2" | "250ms" -> seconds *)
let seconds_of s =
  let num t = float_of_string t in
  let n = String.length s in
  if n > 2 && String.sub s (n - 2) 2 = "ms" then
    num (String.sub s 0 (n - 2)) /. 1000.0
  else if n > 1 && s.[n - 1] = 's' then num (String.sub s 0 (n - 1))
  else num s

let write_json path fields =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      List.iteri
        (fun i (k, v) ->
          Printf.fprintf oc "  %S: %s%s\n" k v
            (if i < List.length fields - 1 then "," else ""))
        fields;
      output_string oc "}\n")

(* ---- reconfigure-under-load (EXPERIMENTS.md E21, wall-clock side) ----

   [domains] writer domains hammer one ABD register each while the
   control thread permanently kills members of the current configuration
   one at a time, driving a fenced replacement reconfiguration after each
   kill — so the state transfer always finds a read quorum of the
   configuration it seals, even once a majority of the ORIGINAL members
   is dead.  Reported: the longest wall-clock stretch any domain went
   without a successful operation (the availability gap), the epoch
   chase count, whether every domain completed operations after the last
   replacement (the service returned to Atomic), and a final read-back
   per register (no acked write may be lost across the replacements). *)
let run_reconfig_scenario replicas spares kill_n domains duration json_file =
  let module A = Psnap.Net.Abd in
  let module R = Psnap.Net.Reconfig in
  let duration_s = seconds_of duration in
  let majority = (replicas / 2) + 1 in
  let kill_n = match kill_n with Some k -> k | None -> majority in
  if replicas < 3 then begin
    Printf.eprintf "--reconfig-under-load needs --replicas >= 3\n";
    exit 2
  end;
  if kill_n > spares then begin
    Printf.eprintf
      "--kill %d needs at least that many --spares (have %d): every dead \
       member is replaced by a fresh spare\n"
      kill_n spares;
    exit 2
  end;
  Metrics.reset_net ();
  Metrics.reset_serving ();
  Metrics.reset_reconfig ();
  let dbg0 =
    if Sys.getenv_opt "PSNAP_RECONFIG_DEBUG" <> None then
      fun s -> Printf.eprintf "[ul] %s\n%!" s
    else fun _ -> ()
  in
  dbg0 "building cluster";
  (* Bounded attempt budgets: with members dying permanently, an
     operation must give up as [Unavailable] and chase the new
     configuration instead of waiting forever for a dead quorum's acks. *)
  let cluster =
    A.mc_cluster ~poll_budget:32 ~max_attempts:4 ~clients:(domains + 1)
      ~replicas ~spares ~with_manager:true ()
  in
  (* Clients park at most one condition-wait per poll; this ticker
     guarantees they wake and burn budget even when no replica traffic
     reaches them (i.e. while a dead quorum is being replaced). *)
  let waker_stop = Atomic.make false in
  let waker =
    Domain.spawn (fun () ->
        while not (Atomic.get waker_stop) do
          ignore (Unix.select [] [] [] 0.001);
          A.mc_wake cluster
        done)
  in
  dbg0 "spawning replica domains";
  let pool = replicas + spares in
  let rdomains =
    List.init pool (fun i -> Domain.spawn (A.mc_replica_body cluster ~index:i))
  in
  let rc = R.mc_attach ~mode:R.Fenced cluster in
  dbg0 "creating registers";
  let regs =
    Array.init domains (fun d ->
        A.Mc_mem.make ~name:(Printf.sprintf "ul.reg.%d" d) 0)
  in
  let stop = Atomic.make false in
  let done_at = Atomic.make infinity in
  let last_acked = Array.make domains 0 in
  let ops_ok = Array.make domains 0 in
  let ops_unavail = Array.make domains 0 in
  let post_ok = Array.make domains false in
  let max_gap = Array.make domains 0.0 in
  let lost = Array.make domains false in
  let worker d () =
    let k = ref 0 in
    let last_success = ref (Unix.gettimeofday ()) in
    while not (Atomic.get stop) do
      incr k;
      try
        A.Mc_mem.write regs.(d) !k;
        last_acked.(d) <- !k;
        ops_ok.(d) <- ops_ok.(d) + 1;
        let now = Unix.gettimeofday () in
        let gap = now -. !last_success in
        if gap > max_gap.(d) then max_gap.(d) <- gap;
        last_success := now;
        if now > Atomic.get done_at then post_ok.(d) <- true
      with Psnap.Net.Unavailable _ ->
        ops_unavail.(d) <- ops_unavail.(d) + 1
    done;
    (try
       let v = A.Mc_mem.read regs.(d) in
       if v < last_acked.(d) then lost.(d) <- true
     with Psnap.Net.Unavailable _ -> ())
  in
  let dbg =
    if Sys.getenv_opt "PSNAP_RECONFIG_DEBUG" <> None then
      fun fmt -> Printf.eprintf fmt
    else fun fmt -> Printf.ifprintf stderr fmt
  in
  dbg "[ul] registers created\n%!";
  let workers = List.init domains (fun d -> Domain.spawn (worker d)) in
  let t0 = Unix.gettimeofday () in
  let sleep s = ignore (Unix.select [] [] [] s) in
  let replace_retries = ref 0 in
  sleep (duration_s /. 8.);
  for i = 0 to kill_n - 1 do
    dbg "[ul] killing pool replica %d\n%!" i;
    A.mc_kill cluster ~index:i;
    let cfg = R.mc_current_config rc in
    let dead = List.nth (A.mc_pool_nodes cluster) i in
    let spare = List.nth (A.mc_pool_nodes cluster) (replicas + i) in
    let members =
      List.map (fun n -> if n = dead then spare else n) cfg.A.members
    in
    let rec attempt n =
      match R.mc_reconfigure rc ~members with
      | _ -> ()
      | exception Psnap.Net.Unavailable _ ->
        incr replace_retries;
        if n < 100 then begin
          sleep 0.02;
          attempt (n + 1)
        end
        else
          Printf.eprintf
            "replacement %d never reached quorum; leaving the configuration\n"
            i
    in
    attempt 0;
    dbg "[ul] replacement %d installed (epoch %d)\n%!" i
      (R.mc_current_config rc).A.epoch;
    sleep (duration_s /. 8.)
  done;
  Atomic.set done_at (Unix.gettimeofday ());
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed < duration_s then sleep (duration_s -. elapsed);
  Atomic.set stop true;
  dbg "[ul] joining workers\n%!";
  List.iter Domain.join workers;
  dbg "[ul] stopping replicas\n%!";
  A.mc_stop cluster;
  List.iter Domain.join rdomains;
  Atomic.set waker_stop true;
  Domain.join waker;
  dbg "[ul] replicas joined\n%!";
  let rm = Metrics.reconfig () in
  let nv = Metrics.net () in
  let recovered = Array.for_all (fun b -> b) post_ok in
  let lost_any = Array.exists (fun b -> b) lost in
  let max_gap_all = Array.fold_left max 0.0 max_gap in
  let final : A.config = R.mc_current_config rc in
  let total a = Array.fold_left ( + ) 0 a in
  Printf.printf
    "reconfigure-under-load: %d domains over %d replicas + %d spares; \
     killed %d members permanently, %d reconfigurations (%d transfer \
     retries), final epoch %d over members %s\n"
    domains replicas spares kill_n rm.Metrics.reconfigs !replace_retries
    final.A.epoch
    (String.concat "," (List.map string_of_int final.A.members));
  Printf.printf
    "ops: %d acked, %d unavailable; max availability gap %.0f ms; %d stale \
     rejects, %d epoch chases; recovered=%b, lost_writes=%b\n"
    (total ops_ok) (total ops_unavail)
    (max_gap_all *. 1000.0)
    rm.Metrics.stale_rejects rm.Metrics.epoch_chases recovered lost_any;
  Option.iter
    (fun path ->
      write_json path
        [
          ("scenario", "\"reconfigure-under-load\"");
          ("domains", string_of_int domains);
          ("replicas", string_of_int replicas);
          ("spares", string_of_int spares);
          ("killed", string_of_int kill_n);
          ("duration_s", Printf.sprintf "%.3f" duration_s);
          ("ops_ok", string_of_int (total ops_ok));
          ("ops_unavailable", string_of_int (total ops_unavail));
          ("max_availability_gap_ms", Printf.sprintf "%.1f" (max_gap_all *. 1000.0));
          ("reconfigs", string_of_int rm.Metrics.reconfigs);
          ("transfer_retries", string_of_int !replace_retries);
          ("final_epoch", string_of_int final.A.epoch);
          ("stale_rejects", string_of_int rm.Metrics.stale_rejects);
          ("epoch_chases", string_of_int rm.Metrics.epoch_chases);
          ("seals", string_of_int rm.Metrics.seals);
          ("transfers", string_of_int rm.Metrics.transfers);
          ("activations", string_of_int rm.Metrics.activations);
          ("quorum_rounds", string_of_int nv.Metrics.rounds);
          ("unavailable_ops", string_of_int nv.Metrics.unavailable);
          ("recovered", string_of_bool recovered);
          ("lost_writes", string_of_bool lost_any);
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  if lost_any then begin
    Printf.printf "FAIL: an acked write was lost across reconfiguration\n";
    1
  end
  else if not recovered then begin
    Printf.printf
      "FAIL: a domain never completed an operation after the last \
       replacement\n";
    1
  end
  else begin
    Printf.printf
      "service returned to Atomic after replacing %d of %d original members\n"
      kill_n replicas;
    0
  end

let run impl_name mem_backend replicas shards partition_name m r domains
    dist_name theta mix_s rate scan_name duration warmup seed open_shard
    json_file reconfig_under_load spares kill_n =
  if reconfig_under_load then
    run_reconfig_scenario replicas spares kill_n domains duration json_file
  else
  let partition =
    match partition_name with
    | "rr" | "round-robin" -> `Round_robin
    | "range" -> `Range
    | s ->
      Printf.eprintf "unknown partition %S (choose from: rr, range)\n" s;
      exit 2
  in
  let dist =
    match dist_name with
    | "uniform" -> Loadgen.Uniform
    | "zipf" -> Loadgen.Zipfian theta
    | s ->
      Printf.eprintf "unknown distribution %S (choose from: uniform, zipf)\n" s;
      exit 2
  in
  let mix = try mix_of mix_s with Failure e -> Printf.eprintf "%s\n" e; exit 2 in
  let loop =
    match rate with Some r -> Loadgen.Open_rate r | None -> Loadgen.Closed
  in
  let scan_pattern =
    match scan_name with
    | "random" -> Loadgen.Random_set
    | "window" -> Loadgen.Window
    | s ->
      Printf.eprintf "unknown scan pattern %S (choose from: random, window)\n"
        s;
      exit 2
  in
  let cfg =
    {
      Loadgen.m;
      r;
      domains;
      dist;
      mix;
      loop;
      scan_pattern;
      warmup_s = seconds_of warmup;
      duration_s = seconds_of duration;
      seed;
    }
  in
  let (module S : Snapshot.S), teardown =
    match mem_backend with
    | "raw" -> (impl_of ~shards ~partition ~open_shard impl_name, fun () -> ())
    | "net" ->
      (* replicated backend: the same Figure 3 code, but every register is
         an ABD quorum register served by [replicas] replica domains over
         the mutex-guarded message transport.  Throughput against
         --mem raw prices the quorum rounds (BENCH_runtime.json). *)
      if impl_name <> "fig3" then begin
        Printf.eprintf
          "--mem net supports --impl fig3 only (the replicated service)\n";
        exit 2
      end;
      let cluster =
        (* + 1 head-room: the spawning domain never operates, but must not
           steal a client node id if an implementation ever reads during
           create *)
        Psnap.Net.Abd.mc_cluster ~clients:(domains + 1) ~replicas ()
      in
      let rdomains =
        List.init replicas (fun i ->
            Domain.spawn (Psnap.Net.Abd.mc_replica_body cluster ~index:i))
      in
      ( (module Mc_net_fig3 : Snapshot.S),
        fun () ->
          Psnap.Net.Abd.mc_stop cluster;
          List.iter Domain.join rdomains )
    | s ->
      Printf.eprintf "unknown backend %S (choose from: raw, net)\n" s;
      exit 2
  in
  Metrics.reset_serving ();
  Metrics.reset_net ();
  Metrics.reset_txn ();
  let rep = Loadgen.run (module S) cfg in
  teardown ();
  (* serving-layer counters (sharded validation rounds, resilient breaker
     activity and degraded scans); plain refs bumped from many domains, so
     totals are approximate under contention — like the hardened stats *)
  let sv = Metrics.serving () in
  let lat_row kind h =
    [
      kind;
      string_of_int (Histogram.count h);
      (if rep.Loadgen.elapsed_s > 0.0 then
         Printf.sprintf "%.0f"
           (float_of_int (Histogram.count h) /. rep.Loadgen.elapsed_s)
       else "0");
      string_of_int (Histogram.percentile h 50.0);
      string_of_int (Histogram.percentile h 90.0);
      string_of_int (Histogram.percentile h 99.0);
      string_of_int (Histogram.percentile h 99.9);
      string_of_int (Histogram.max_value h);
    ]
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf
            "%s: m=%d r=%d, %d domains, %s, mix %s, %s, %s scans, %.2fs measured -> %.0f ops/s"
            S.name m r domains
            (Loadgen.dist_to_string dist)
            (Loadgen.mix_to_string mix)
            (Loadgen.loop_to_string loop)
            (Loadgen.scan_pattern_to_string scan_pattern)
            rep.Loadgen.elapsed_s (Loadgen.throughput rep))
       ~header:
         [ "op"; "count"; "ops/s"; "p50 ns"; "p90 ns"; "p99 ns"; "p99.9 ns"; "max ns" ]
       [
         lat_row "update" rep.Loadgen.update_lat;
         lat_row "scan" rep.Loadgen.scan_lat;
       ]);
  let nv = Metrics.net () in
  if nv.Metrics.quorum_ops > 0 then
    Printf.printf
      "net: %d replicas, %d sends / %d delivers, %d quorum rounds (%.2f \
       rounds/op, %d resends), writebacks %d (+%d skipped), mean quorum \
       wait %.1f polls, %d unavailable\n"
      replicas nv.Metrics.sends nv.Metrics.delivers nv.Metrics.rounds
      (float_of_int nv.Metrics.rounds /. float_of_int nv.Metrics.quorum_ops)
      nv.Metrics.resends nv.Metrics.writebacks nv.Metrics.writeback_skips
      (Metrics.mean_quorum_wait nv)
      nv.Metrics.unavailable;
  if sv.Metrics.scan_rounds > 0 then
    Printf.printf
      "serving: %d scan rounds (%d retries), %d degraded scans, breaker \
       o/h/c=%d/%d/%d\n"
      sv.Metrics.scan_rounds sv.Metrics.scan_retries sv.Metrics.degraded_scans
      sv.Metrics.breaker_opens sv.Metrics.breaker_half_opens
      sv.Metrics.breaker_closes;
  (* plain refs bumped from many domains: approximate under contention *)
  let tm = Metrics.txn () in
  if tm.Metrics.begins > 0 then Fmt.pr "%a@." Metrics.pp_txn tm;
  Option.iter
    (fun path ->
      write_json path
        (Loadgen.json_fields ~impl:S.name cfg rep
        @ [
            ("shards", string_of_int shards);
            ("seed", string_of_int seed);
            ( "open_shard",
              match open_shard with
              | Some s -> string_of_int s
              | None -> "null" );
            ("scan_rounds", string_of_int sv.Metrics.scan_rounds);
            ("scan_retries", string_of_int sv.Metrics.scan_retries);
            ("degraded_scans", string_of_int sv.Metrics.degraded_scans);
            ("backoff_steps", string_of_int sv.Metrics.backoff_steps);
            ("breaker_opens", string_of_int sv.Metrics.breaker_opens);
            ( "breaker_half_opens",
              string_of_int sv.Metrics.breaker_half_opens );
            ("breaker_closes", string_of_int sv.Metrics.breaker_closes);
            ("heals_completed", string_of_int sv.Metrics.heals_completed);
            ("mem", Printf.sprintf "%S" mem_backend);
            ("replicas", string_of_int replicas);
            ("net_sends", string_of_int nv.Metrics.sends);
            ("net_delivers", string_of_int nv.Metrics.delivers);
            ("quorum_rounds", string_of_int nv.Metrics.rounds);
            ("quorum_resends", string_of_int nv.Metrics.resends);
            ("quorum_ops", string_of_int nv.Metrics.quorum_ops);
            ( "rounds_per_op",
              if nv.Metrics.quorum_ops = 0 then "0"
              else
                Printf.sprintf "%.3f"
                  (float_of_int nv.Metrics.rounds
                  /. float_of_int nv.Metrics.quorum_ops) );
            ("writebacks", string_of_int nv.Metrics.writebacks);
            ("writeback_skips", string_of_int nv.Metrics.writeback_skips);
            ( "mean_quorum_wait",
              Printf.sprintf "%.2f" (Metrics.mean_quorum_wait nv) );
            ("unavailable_ops", string_of_int nv.Metrics.unavailable);
            ("txn_begins", string_of_int tm.Metrics.begins);
            ("txn_ro_commits", string_of_int tm.Metrics.ro_commits);
            ("txn_rw_commits", string_of_int tm.Metrics.rw_commits);
            ( "txn_retries",
              string_of_int (tm.Metrics.conflicts + tm.Metrics.busy_aborts)
            );
            ( "txn_abort_rate",
              Printf.sprintf "%.4f" (Metrics.txn_abort_rate tm) );
          ]);
      Printf.printf "json summary written to %s\n" path)
    json_file;
  0

open Cmdliner

let impl =
  Arg.(
    value & opt string "fig3"
    & info [ "impl" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Implementation: %s."
             (String.concat ", " impl_names)))

let mem_backend =
  Arg.(
    value & opt string "raw"
    & info [ "mem" ] ~docv:"BACKEND"
        ~doc:
          "Memory backend: raw (in-process atomics, the default) or net \
           (ABD quorum registers served by $(b,--replicas) replica \
           domains over the message transport; docs/MODEL.md section 14).")

let replicas =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Replica count for $(b,--mem net).")

let shards =
  Arg.(
    value & opt int 8
    & info [ "shards" ] ~docv:"S"
        ~doc:"Shard count for the sharded implementations.")

let partition =
  Arg.(
    value & opt string "rr"
    & info [ "partition" ] ~docv:"P"
        ~doc:"Component placement for sharded: rr (round-robin) or range.")

let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"Vector size.")

let r = Arg.(value & opt int 8 & info [ "r" ] ~doc:"Components per scan.")

let domains =
  Arg.(value & opt int 2 & info [ "domains" ] ~docv:"D" ~doc:"Client domains.")

let dist =
  Arg.(
    value & opt string "uniform"
    & info [ "dist" ] ~docv:"NAME" ~doc:"Key popularity: uniform, zipf.")

let theta =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~doc:"Zipf exponent for --dist zipf.")

let mix =
  Arg.(
    value & opt string "50:50"
    & info [ "mix" ] ~docv:"U:S"
        ~doc:
          "Update:scan ratio (e.g. 90:10), or dedicated roles as NuMs \
           (e.g. 1u+1s: one updater domain, one scanner domain).")

let rate =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ] ~docv:"OPS"
        ~doc:
          "Open-loop target arrival rate (total ops/s); omit for a \
           closed loop.")

let scan_pattern =
  Arg.(
    value & opt string "random"
    & info [ "scan" ] ~docv:"PAT"
        ~doc:
          "Scan index pattern: random (r independent draws) or window (a \
           contiguous range of r components starting at a drawn base).")

let duration =
  Arg.(
    value & opt string "2s"
    & info [ "duration" ] ~docv:"T"
        ~doc:"Measured run length (e.g. 2s, 500ms).")

let warmup =
  Arg.(
    value & opt string "0.2s"
    & info [ "warmup" ] ~docv:"T"
        ~doc:"Warmup excluded from measurement (e.g. 0.2s).")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Workload seed.")

let open_shard =
  Arg.(
    value
    & opt (some int) None
    & info [ "open-shard" ] ~docv:"S"
        ~doc:
          "($(b,--impl resilient) only) Pin shard S's circuit breaker open \
           for the whole run: its scans are served as single-round \
           degraded fragments, demonstrating that an unavailable shard \
           does not inflate the latency of scans on healthy shards.")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a machine-readable summary to FILE.")

let reconfig_under_load =
  Arg.(
    value & flag
    & info [ "reconfig-under-load" ]
        ~doc:
          "Run the E21 wall-clock scenario instead of the benchmark: \
           writer domains hammer ABD registers while a majority of the \
           members is permanently killed and replaced one at a time by \
           fenced reconfigurations; reports the availability gap, the \
           epoch chases, and whether the service returned to Atomic \
           (exit 1 on a lost write or an unrecovered domain).")

let spares =
  Arg.(
    value & opt int 2
    & info [ "spares" ] ~docv:"N"
        ~doc:
          "($(b,--reconfig-under-load) only) Spare replicas available for \
           promotion; must cover $(b,--kill).")

let kill_n =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill" ] ~docv:"N"
        ~doc:
          "($(b,--reconfig-under-load) only) Members killed permanently, \
           one replacement each (default: a majority of --replicas).")

let cmd =
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"multicore load generator for partial snapshot objects")
    Term.(
      const run $ impl $ mem_backend $ replicas $ shards $ partition $ m $ r
      $ domains $ dist $ theta $ mix $ rate $ scan_pattern $ duration
      $ warmup $ seed $ open_shard $ json_file $ reconfig_under_load
      $ spares $ kill_n)

let () = exit (Cmd.eval' cmd)
