(* Command-line runner for the step-count experiments (E1..E7).

     dune exec bin/experiments.exe -- --list
     dune exec bin/experiments.exe -- -e e3a -e e6 --seeds 20
     dune exec bin/experiments.exe -- --csv > results.csv

   The wall-clock benchmarks (E8) live in bench/main.exe. *)

module Experiments = Psnap_harness.Experiments
module Table = Psnap_harness.Table

let run only seeds csv list_only =
  if list_only then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.by_name;
    0
  end
  else
    let selected =
      match only with
      | [] -> Experiments.by_name
      | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n Experiments.by_name with
            | Some e -> Some (n, e)
            | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" n;
              exit 2)
          names
    in
    List.iter
      (fun (_, e) ->
        let table = e ?seeds ()
        in
        if csv then print_endline (Table.to_csv table) else Table.print table)
      selected;
    0

open Cmdliner

let only =
  Arg.(
    value & opt_all string []
    & info [ "e"; "experiment" ] ~docv:"NAME"
        ~doc:"Run only experiment $(docv) (repeatable). Default: all.")

let seeds =
  Arg.(
    value
    & opt (some int) None
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of seeded executions per configuration.")

let csv =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment names and exit.")

let cmd =
  let doc = "step-count experiments for the partial snapshot reproduction" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run $ only $ seeds $ csv $ list_only)

let () = exit (Cmd.eval' cmd)
