(* psnap-lint: static memory-discipline checks over the algorithm
   libraries.  Exits nonzero iff violations are found.

     psnap-lint [--json] [--list] [PATH ...]     (default PATH: lib)

   See docs/MODEL.md, "Memory discipline" for the rules (R1 no-escape,
   R2 cas-discipline, R3 loop-bound) and the waiver attributes. *)

module Lint = Psnap_analysis.Lint
module Diagnostic = Psnap_analysis.Diagnostic

let () =
  let json = ref false in
  let list_files = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as a JSON object on stdout");
      ("--list", Arg.Set list_files, " also list the files checked");
    ]
  in
  let usage = "psnap-lint [--json] [--list] [PATH ...]   (default PATH: lib)" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Printf.eprintf "psnap-lint: no such path: %s\n" p;
    exit 2
  | None -> ());
  let files, diags = Lint.lint_paths paths in
  if !json then print_endline (Diagnostic.report_json ~files:(List.length files) diags)
  else begin
    if !list_files then
      List.iter (fun f -> Printf.printf "checking %s\n" f) files;
    List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
    Printf.printf "psnap-lint: %d file(s) checked, %d violation(s)\n"
      (List.length files) (List.length diags)
  end;
  exit (if diags = [] then 0 else 1)
