(* psnap-lint: static memory-discipline and domain-sharing checks over the
   algorithm and runtime libraries.  Exits nonzero iff violations are
   found.

     psnap-lint [--json] [--list] [--ruleset RS] [PATH ...]
                                                  (default PATH: lib)

   See docs/MODEL.md, "Memory discipline" for the per-path rulesets
   (R1 no-escape, R2 cas-discipline, R3 loop-bound on the algorithm
   libraries; R4 domain-escape, R5 atomic-publication, R6 frozen-view also
   on the runtime libraries) and the waiver attributes.  --ruleset forces
   one ruleset on every file regardless of path — how the intentionally
   racy fixtures under test/fixtures/ are linted in CI. *)

module Lint = Psnap_analysis.Lint
module Diagnostic = Psnap_analysis.Diagnostic

let () =
  let json = ref false in
  let list_files = ref false in
  let ruleset = ref None in
  let paths = ref [] in
  let set_ruleset = function
    | "algorithm" -> ruleset := Some Lint.Algorithm
    | "runtime" -> ruleset := Some Lint.Runtime
    | s ->
      Printf.eprintf
        "psnap-lint: unknown ruleset %S (choose algorithm or runtime)\n" s;
      exit 2
  in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as a JSON object on stdout");
      ("--list", Arg.Set list_files, " also list the files checked");
      ( "--ruleset",
        Arg.String set_ruleset,
        "RS force a ruleset (algorithm | runtime) on every file" );
    ]
  in
  let usage =
    "psnap-lint [--json] [--list] [--ruleset RS] [PATH ...]   (default \
     PATH: lib)"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Printf.eprintf "psnap-lint: no such path: %s\n" p;
    exit 2
  | None -> ());
  let files, diags = Lint.lint_paths ?ruleset:!ruleset paths in
  if !json then print_endline (Diagnostic.report_json ~files:(List.length files) diags)
  else begin
    if !list_files then
      List.iter (fun f -> Printf.printf "checking %s\n" f) files;
    List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
    Printf.printf "psnap-lint: %d file(s) checked, %d violation(s)\n"
      (List.length files) (List.length diags)
  end;
  exit (if diags = [] then 0 else 1)
