(* Interactive workload driver: run any implementation under any scheduler
   with exact step accounting and optional history validation, straight
   from the command line.

     dune exec bin/simulate.exe -- --impl fig3 -m 64 -r 8 \
         --updaters 4 --scanners 2 --sched starve --seeds 20 --check

   Prints per-operation step statistics, contention measures, and (with
   --check) runs the observation-based linearizability checker on every
   execution. *)

open Psnap
module Table = Psnap_harness.Table

let impls : (string * (module Snapshot.S)) list =
  [
    ("afek", (module Sim_afek));
    ("fig1", (module Sim_fig1));
    ("fig1-adaptive", (module Sim_fig1_adaptive));
    ("fig1-small", (module Sim_fig1_small));
    ("fig3", (module Sim_fig3));
    ("fig3-small", (module Sim_fig3_small));
    ("fig3-bounded-aset", (module Sim_fig3_bounded_aset));
    ("farray", (module Sim_farray));
    ("nonblocking", (module Sim_nonblocking));
  ]

let scheds = [ "random"; "bursty"; "starve"; "pct"; "round-robin" ]

let sched_of name ~scanner_pids ~seed =
  match name with
  | "random" -> Scheduler.random ~seed ()
  | "bursty" -> Scheduler.bursty ~seed ()
  | "starve" -> Scheduler.starve ~victims:scanner_pids ~seed ()
  | "pct" -> Scheduler.pct ~seed ~expected_steps:2000 ()
  | "round-robin" -> Scheduler.round_robin ()
  | s ->
    Printf.eprintf "unknown scheduler %S (choose from: %s)\n" s
      (String.concat ", " scheds);
    exit 2

let run impl_name m r updaters updates scanners scans sched_name seeds check
    crash_at =
  let (module S : Snapshot.S) =
    match List.assoc_opt impl_name impls with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown implementation %S (choose from: %s)\n" impl_name
        (String.concat ", " (List.map fst impls));
      exit 2
  in
  if r > m then (
    Printf.eprintf "r (%d) must be <= m (%d)\n" r m;
    exit 2);
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let init = Array.init m (fun i -> -(i + 1)) in
  let violations = ref 0 in
  let samples = ref [] in
  let worst_collects = ref 0 in
  for seed = 0 to seeds - 1 do
    let rec_ = Metrics.create () in
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n (Array.copy init) in
    let handles = Array.init n (fun pid -> S.handle t ~pid) in
    let updater pid () =
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + k in
        Metrics.measure rec_ ~pid ~kind:"update" (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Update (i, v))
                   (fun () ->
                     S.update handles.(pid) i v;
                     Snapshot_spec.Ack))
            else S.update handles.(pid) i v)
      done
    in
    let scanner pid () =
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        Metrics.measure rec_ ~pid ~kind:"scan" (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
                     Snapshot_spec.Vals (S.scan handles.(pid) idxs)))
            else ignore (S.scan handles.(pid) idxs));
        worst_collects :=
          max !worst_collects (S.last_scan_collects handles.(pid))
      done
    in
    let procs =
      Array.init n (fun pid -> if pid < updaters then updater pid else scanner pid)
    in
    let sched =
      let base = sched_of sched_name ~scanner_pids ~seed in
      match crash_at with
      | Some at_clock -> Scheduler.with_crash ~pid:0 ~at_clock base
      | None -> base
    in
    ignore (Sim.run ~sched procs);
    samples := Metrics.samples rec_ :: !samples;
    if check then
      violations :=
        !violations
        + List.length
            (Snapshot_spec.check_observations ~init (History.entries hist))
  done;
  let all = List.concat !samples in
  let of_kind k = List.filter (fun (s : Metrics.sample) -> s.kind = k) all in
  let row kind =
    let ss = of_kind kind in
    [
      kind;
      string_of_int (List.length ss);
      Printf.sprintf "%.1f" (Metrics.mean_steps ss);
      string_of_int (Metrics.max_steps ss);
    ]
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "%s: m=%d r=%d %d updaters x %d, %d scanners x %d, %s, %d seeds%s"
            S.name m r updaters updates scanners scans sched_name seeds
            (match crash_at with
            | Some c -> Printf.sprintf ", crash p0@%d" c
            | None -> ""))
       ~header:[ "operation"; "count"; "mean steps"; "worst steps" ]
       [ row "update"; row "scan" ]);
  Printf.printf "worst collects per scan: %d\n" !worst_collects;
  let cu =
    List.fold_left
      (fun acc per_run ->
        max acc
          (Metrics.max_interval_contention
             ~over:(fun s -> s.Metrics.kind = "scan")
             per_run))
      0 !samples
  in
  Printf.printf "max interval contention seen by a scan: %d\n" cu;
  if check then
    if !violations = 0 then
      Printf.printf "checker: all %d executions linearizable (observation check)\n" seeds
    else begin
      Printf.printf "checker: %d VIOLATIONS\n" !violations;
      exit 1
    end;
  0

open Cmdliner

let impl =
  Arg.(
    value & opt string "fig3"
    & info [ "impl" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Implementation: %s."
             (String.concat ", " (List.map fst impls))))

let m = Arg.(value & opt int 64 & info [ "m" ] ~doc:"Vector size.")

let r = Arg.(value & opt int 8 & info [ "r" ] ~doc:"Components per scan.")

let updaters = Arg.(value & opt int 3 & info [ "updaters" ] ~doc:"Updater processes.")

let updates = Arg.(value & opt int 30 & info [ "updates" ] ~doc:"Updates per updater.")

let scanners = Arg.(value & opt int 2 & info [ "scanners" ] ~doc:"Scanner processes.")

let scans = Arg.(value & opt int 8 & info [ "scans" ] ~doc:"Scans per scanner.")

let sched =
  Arg.(
    value & opt string "random"
    & info [ "sched" ]
        ~doc:(Printf.sprintf "Scheduler: %s." (String.concat ", " scheds)))

let seeds = Arg.(value & opt int 10 & info [ "seeds" ] ~doc:"Seeded executions.")

let check =
  Arg.(value & flag & info [ "check" ] ~doc:"Validate histories (observation checker).")

let crash_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-at" ] ~docv:"CLOCK" ~doc:"Crash process 0 at this step.")

let cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"drive partial snapshot workloads in the simulator")
    Term.(
      const run $ impl $ m $ r $ updaters $ updates $ scanners $ scans $ sched
      $ seeds $ check $ crash_at)

let () = exit (Cmd.eval' cmd)
