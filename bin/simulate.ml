(* Interactive workload driver: run any implementation under any scheduler
   with exact step accounting, crash–restart fault injection, history
   validation, and counterexample shrinking, straight from the command line.

     dune exec bin/simulate.exe -- --impl fig3 -m 64 -r 8 \
         --updaters 4 --scanners 2 --sched starve --seeds 20 --check

     # fault-injection campaign with minimization of any failure found:
     dune exec bin/simulate.exe -- --nemesis chaos --seeds 50 --check \
         --shrink --replay-file failing.sched

     # replay a saved (possibly shrunk) schedule:
     dune exec bin/simulate.exe -- --replay-file failing.sched --check

   Prints per-operation step statistics, contention measures, fault counts,
   and (with --check) runs the observation-based linearizability checker on
   every execution.  --json writes a machine-readable campaign summary. *)

open Psnap
module Table = Psnap_harness.Table

let impls : (string * (module Snapshot.S)) list =
  [
    ("afek", (module Sim_afek));
    ("fig1", (module Sim_fig1));
    ("fig1-adaptive", (module Sim_fig1_adaptive));
    ("fig1-small", (module Sim_fig1_small));
    ("fig3", (module Sim_fig3));
    ("fig3-small", (module Sim_fig3_small));
    ("fig3-bounded-aset", (module Sim_fig3_bounded_aset));
    ("farray", (module Sim_farray));
    ("nonblocking", (module Sim_nonblocking));
    ("fig1-hardened", (module Sim_fig1_hardened));
    ("fig3-hardened", (module Sim_fig3_hardened));
    ("fig3-selfcheck", (module Sim_fig3_selfcheck));
  ]

let impl_names =
  List.map fst impls
  @ [ "sharded"; "sharded-relaxed"; "resilient"; "durable"; "txn" ]

(* sharded implementations take their geometry from --shards, so they are
   built at runtime rather than listed statically *)
let impl_of ~shards name : (module Snapshot.S) =
  match name with
  | "sharded" | "sharded-relaxed" ->
    (module Psnap_runtime.Sharded.Make (Mem.Sim) (Sim_fig3)
              (struct
                let shards = shards
                let partition = `Round_robin
                let mode = if name = "sharded" then `Validated else `Relaxed
              end))
  | _ -> (
    match List.assoc_opt name impls with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown implementation %S (choose from: %s)\n" name
        (String.concat ", " impl_names);
      exit 2)

(* ---- the distributed backend: snapshot algorithms over ABD quorum
   registers (docs/MODEL.md §14, EXPERIMENTS.md E19) ---- *)

module Net_mem = Psnap.Net.Abd.Sim_mem
module Net_aset_bounded = Active_set.Bounded (Net_mem)
module Net_fig1 = Snapshot.Fig1 (Net_mem) (Net_aset_bounded)
module Net_afek = Snapshot.Afek (Net_mem)
module Net_nonblocking = Snapshot.Nonblocking (Net_mem)

let net_impls : (string * (module Snapshot.S)) list =
  [
    ("fig3", (module Sim_net_fig3));
    ("fig1", (module Net_fig1));
    ("afek", (module Net_afek));
    ("nonblocking", (module Net_nonblocking));
  ]

let net_impl_of name : (module Snapshot.S) =
  match List.assoc_opt name net_impls with
  | Some m -> m
  | None ->
    Printf.eprintf "--mem net supports implementations: %s\n"
      (String.concat ", " (List.map fst net_impls));
    exit 2

let scheds =
  [ "random"; "bursty"; "starve"; "starve-updaters"; "pct"; "round-robin" ]

let sched_of name ~scanner_pids ~updater_pids ~seed =
  match name with
  | "random" -> Scheduler.random ~seed ()
  | "bursty" -> Scheduler.bursty ~seed ()
  | "starve" -> Scheduler.starve ~victims:scanner_pids ~seed ()
  | "starve-updaters" ->
    (* suspends a writer for long stretches — against the quorum backend
       this parks it mid-Put-broadcast, the half-replicated-write window
       the weak read mode turns into a new/old inversion (E19) *)
    Scheduler.starve ~victims:updater_pids ~seed ()
  | "pct" -> Scheduler.pct ~seed ~expected_steps:2000 ()
  | "round-robin" -> Scheduler.round_robin ()
  | s ->
    Printf.eprintf "unknown scheduler %S (choose from: %s)\n" s
      (String.concat ", " scheds);
    exit 2

let nemeses = [ "none"; "chaos"; "storm"; "crash-restart" ]

(* A nemesis wraps the base policy with fault injection; every random
   choice derives from [seed], so the whole run replays. *)
let nemesis_of name ~seed base =
  match name with
  | "none" -> base
  | "chaos" -> Scheduler.chaos ~seed ~inner:base ()
  | "storm" -> Scheduler.crash_storm ~seed base
  | "crash-restart" ->
    Scheduler.with_crash_restart ~pid:0 ~crash_at:40 ~restart_after:30 base
  | s ->
    Printf.eprintf "unknown nemesis %S (choose from: %s)\n" s
      (String.concat ", " nemeses);
    exit 2

(* "corrupt", "lose,stale", "all" -> fault kinds for the mem_storm nemesis;
   "none"/"" -> no memory faults. *)
let mem_kinds_of s =
  match s with
  | "" | "none" -> None
  | "all" -> Some Event.all_fault_kinds
  | s ->
    Some
      (String.split_on_char ',' s
      |> List.map (fun tok ->
             let tok = String.trim tok in
             match Event.fault_kind_of_string tok with
             | Some k -> k
             | None ->
               Printf.eprintf
                 "unknown fault kind %S (choose from: lose, stale, corrupt, \
                  stick, all)\n"
                 tok;
               exit 2))

let write_json path fields =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      List.iteri
        (fun i (k, v) ->
          Printf.fprintf oc "  %S: %s%s\n" k v
            (if i < List.length fields - 1 then "," else ""))
        fields;
      output_string oc "}\n")

(* The resilient serving layer gets a dedicated campaign: its scans return
   an explicit [Atomic | Degraded] outcome, and the acceptance criteria are
   different — every Atomic scan must linearize, every scan must respect
   the round budget, Degraded scans are counted (never checked: their
   cross-shard view is allowed to skew, that is what the flag means), and
   with --stick-epoch the campaign must witness a completed shard rebuild
   followed by fully-validated scans of the rebuilt shard. *)
let run_resilient shards m r updaters updates scanners scans sched_name
    seed_base seeds nemesis_name mem_kinds mem_rate mem_max stick_epoch
    stall_shard slow_pid max_rounds json_file =
  let module RS =
    Psnap_runtime.Resilient.Make (Mem.Sim) (Sim_fig3_selfcheck)
      (Sim_fig3_hardened)
      (struct
        let shards = shards
        let partition = `Round_robin
        let max_rounds = max_rounds
        let backoff_base = 2
        let backoff_max = 16
        let breaker_threshold = 3
        let breaker_cooldown = 4
        let probe_successes = 2
        let heal_quiesce = 64
      end)
  in
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  let init = Array.init m (fun i -> -(i + 1)) in
  Mem.Sim.set_fault_tracking true;
  Metrics.reset_mem_faults ();
  Metrics.reset_serving ();
  let violations = ref 0 in
  let atomic_total = ref 0 in
  let degraded_total = ref 0 in
  let budget_overruns = ref 0 in
  let post_heal_atomic = ref 0 in
  let worst_rounds = ref 0 in
  let worst_collects = ref 0 in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let run_once ~sched =
    let hist = History.create ~now:Sim.mark () in
    (* Atomic scans are appended as hand-built entries: Degraded scans must
       not reach the checker (their cross-shard skew is declared, not a
       bug), and History.record cannot un-record an operation after its
       outcome is known. *)
    let atomic_entries = ref [] in
    Sim.reset_prerun_oids ();
    Mem.Hardened.reset_stats ();
    let t = RS.create ~n (Array.copy init) in
    let updater ~incarnation pid () =
      let h = RS.handle t ~pid in
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               RS.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = RS.handle t ~pid in
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        let inv = Sim.mark () in
        let out = RS.scan_outcome h idxs in
        let resp = Sim.mark () in
        let rounds = RS.last_scan_rounds h in
        worst_rounds := max !worst_rounds rounds;
        worst_collects := max !worst_collects (RS.last_scan_collects h);
        if rounds > max_rounds then incr budget_overruns;
        match out with
        | RS.Atomic vs ->
          incr atomic_total;
          atomic_entries :=
            {
              History.pid;
              op = Snapshot_spec.Scan idxs;
              res = Some (Snapshot_spec.Vals vs);
              inv;
              resp = Some resp;
            }
            :: !atomic_entries;
          (match stick_epoch with
          | Some s
            when s < RS.nshards t
                 && Array.exists (fun i -> i mod RS.nshards t = s) idxs
                 && RS.shard_gen t ~pid s > 1 ->
            incr post_heal_atomic
          | _ -> ())
        | RS.Degraded _ -> incr degraded_total
      done
    in
    let body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid else scanner pid
    in
    let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
    let recover = Some (fun ~pid ~incarnation -> body ~incarnation pid) in
    let res = Sim.run ?recover ~sched procs in
    let viols =
      Snapshot_spec.check_observations ~init
        (History.entries hist @ !atomic_entries)
    in
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    if viols <> [] then begin
      violations := !violations + List.length viols;
      List.iter (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v) viols
    end
  in
  for s = 0 to seeds - 1 do
    let seed = seed_base + s in
    let sched =
      let w = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
      let w = nemesis_of nemesis_name ~seed w in
      let w =
        match mem_kinds with
        | Some kinds ->
          Scheduler.mem_storm ~seed ~kinds ~rate:mem_rate ~max_faults:mem_max
            w
        | None -> w
      in
      let w =
        match stick_epoch with
        | Some sh ->
          Scheduler.mem_fault_on_cell ~kind:Event.Stuck_cell
            ~name_prefix:(Printf.sprintf "rshard%d.epoch" sh)
            w
        | None -> w
      in
      let w =
        match stall_shard with
        | Some sh ->
          Scheduler.stall_shard ~shard:sh ~from_clock:50 ~until_clock:450 w
        | None -> w
      in
      match slow_pid with
      | Some p -> Scheduler.slow_domain ~pid:p w
      | None -> w
    in
    run_once ~sched
  done;
  let sv = Metrics.serving () in
  Printf.printf
    "%s: m=%d r=%d %d updaters x %d, %d scanners x %d, %s, %d runs%s%s%s\n"
    RS.name m r updaters updates scanners scans sched_name seeds
    (if nemesis_name <> "none" then ", nemesis " ^ nemesis_name else "")
    (match stick_epoch with
    | Some s -> Printf.sprintf ", stick-epoch shard %d" s
    | None -> "")
    (match stall_shard with
    | Some s -> Printf.sprintf ", stall shard %d" s
    | None -> "");
  Printf.printf
    "scans: %d atomic, %d degraded; worst rounds %d (budget %d), worst \
     collects %d\n"
    !atomic_total !degraded_total !worst_rounds max_rounds !worst_collects;
  Printf.printf "faults: %d crashes, %d restarts\n" !total_crashes
    !total_restarts;
  Fmt.pr "%a@." Metrics.pp_serving sv;
  let mf = Metrics.mem_faults () in
  if Metrics.total_injected mf > 0 then Fmt.pr "%a@." Metrics.pp_mem_faults mf;
  Option.iter
    (fun path ->
      write_json path
        [
          ("impl", Printf.sprintf "%S" RS.name);
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int seeds);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("atomic_scans", string_of_int !atomic_total);
          ("degraded_scans", string_of_int !degraded_total);
          ("budget_overruns", string_of_int !budget_overruns);
          ("post_heal_atomic_scans", string_of_int !post_heal_atomic);
          ("worst_rounds", string_of_int !worst_rounds);
          ("scan_rounds", string_of_int sv.Metrics.scan_rounds);
          ("scan_retries", string_of_int sv.Metrics.scan_retries);
          ("backoff_steps", string_of_int sv.Metrics.backoff_steps);
          ("breaker_opens", string_of_int sv.Metrics.breaker_opens);
          ("breaker_half_opens", string_of_int sv.Metrics.breaker_half_opens);
          ("breaker_closes", string_of_int sv.Metrics.breaker_closes);
          ("heals_started", string_of_int sv.Metrics.heals_started);
          ("heals_completed", string_of_int sv.Metrics.heals_completed);
          ("heals_aborted", string_of_int sv.Metrics.heals_aborted);
          ("stuck_epochs", string_of_int sv.Metrics.stuck_epochs);
          ("mem_faults_injected", string_of_int (Metrics.total_injected mf));
          ("mem_faults_detected", string_of_int (Metrics.total_detected mf));
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  let fail = ref false in
  if !violations > 0 then begin
    Printf.printf "checker: %d VIOLATIONS among atomic scans\n" !violations;
    fail := true
  end
  else
    Printf.printf
      "checker: all %d atomic scans linearizable (observation check)\n"
      !atomic_total;
  if !budget_overruns > 0 then begin
    Printf.printf "budget: %d scans exceeded %d rounds without degrading\n"
      !budget_overruns max_rounds;
    fail := true
  end;
  (match stick_epoch with
  | Some _ ->
    if sv.Metrics.heals_completed = 0 then begin
      Printf.printf
        "heal: stuck epoch injected but no shard rebuild completed\n";
      fail := true
    end
    else if !post_heal_atomic = 0 then begin
      Printf.printf
        "heal: shard rebuilt but no fully-validated scan touched it \
         afterwards\n";
      fail := true
    end
    else
      Printf.printf
        "heal: %d rebuild(s) completed, %d validated post-rebuild scans\n"
        sv.Metrics.heals_completed !post_heal_atomic
  | None -> ());
  if !fail then 1 else 0

(* The durable implementation gets a dedicated campaign too: its object
   pairs volatile memory with a storage device that survives power losses,
   so the workload needs power-loss-aware recovery bodies.  A restarted
   fiber first asks the device whether a blackout condemned the in-memory
   state (the loss counter moved): if so, the first such fiber rebuilds
   the object from the log — step-free, hence atomic under the simulator —
   and later fibers adopt it; if not (a plain crash–restart), the object
   survives and the fiber merely completes any commit intent its dead
   incarnation left published in the lock.  History recording continues
   across the blackout inside one run, so the observation checker sees
   pre-loss acknowledgements next to post-recovery scans and flags any
   committed-then-lost or resurrected-uncommitted value. *)
let run_durable m r updaters updates scanners scans sched_name seed_base
    seeds nemesis_name mem_kinds mem_rate mem_max power_loss_arg
    checkpoint_every wal_mode expect_violations shrink replay_file json_file
    =
  let module D = Sim_durable_fig3 in
  let module St = Persist.Storage.Sim in
  let config =
    {
      D.checkpoint_every;
      write_ahead =
        (match wal_mode with
        | "write-ahead" -> true
        | "late-log" -> false
        | s ->
          Printf.eprintf
            "unknown --wal-mode %S (choose from: write-ahead, late-log)\n" s;
          exit 2);
    }
  in
  let power_mode =
    match power_loss_arg with
    | "none" -> `None
    | "storm" -> `Storm
    | "sweep" -> `Sweep
    | s -> (
      match int_of_string_opt s with
      | Some c when c >= 0 -> `At c
      | _ ->
        Printf.eprintf
          "unknown --power-loss %S (choose from: none, storm, sweep, or a \
           clock value)\n"
          s;
        exit 2)
  in
  if r > m then (
    Printf.eprintf "r (%d) must be <= m (%d)\n" r m;
    exit 2);
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  let init = Array.init m (fun i -> -(i + 1)) in
  Mem.Sim.set_fault_tracking true;
  Metrics.reset_mem_faults ();
  Metrics.reset_durable ();
  let violations = ref 0 in
  let samples = ref [] in
  let worst_collects = ref 0 in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let failing_schedule = ref None in
  let run_once ~record_trace ~sched =
    let rec_ = Metrics.create () in
    let hist = History.create ~now:Sim.mark () in
    Sim.reset_prerun_oids ();
    St.reset ();
    let cur = ref (D.create_with ~config ~n (Array.copy init)) in
    let seen_losses = ref 0 in
    (* Called in a restarted fiber's step-free prefix, so the check and the
       (step-free) rebuild complete atomically: no peer can observe a
       half-recovered object. *)
    let rebuild_if_power_lost () =
      let dev = D.storage !cur in
      let l = St.losses dev in
      if l > !seen_losses then begin
        seen_losses := l;
        cur := D.recover ~config dev ~n init
      end
    in
    let updater ~incarnation pid () =
      if incarnation > 1 then rebuild_if_power_lost ();
      let h = D.handle !cur ~pid in
      (* After a plain crash–restart the commit lock may still hold this
         pid's published intent; after a power loss the lock is fresh and
         this is a no-op. *)
      if incarnation > 1 then D.resume h;
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        Metrics.measure rec_ ~pid ~kind:"update" (fun () ->
            ignore
              (History.record hist ~pid (Snapshot_spec.Update (i, v))
                 (fun () ->
                   D.update h i v;
                   Snapshot_spec.Ack)))
      done
    in
    let scanner ~incarnation pid () =
      if incarnation > 1 then rebuild_if_power_lost ();
      let h = D.handle !cur ~pid in
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        Metrics.measure rec_ ~pid ~kind:"scan" (fun () ->
            ignore
              (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
                   Snapshot_spec.Vals (D.scan h idxs))));
        worst_collects := max !worst_collects (D.last_scan_collects h)
      done
    in
    let body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid
      else scanner ~incarnation pid
    in
    let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
    let recover = Some (fun ~pid ~incarnation -> body ~incarnation pid) in
    let res = Sim.run ~record_trace ?recover ~sched procs in
    let viols =
      Snapshot_spec.check_observations ~init (History.entries hist)
    in
    (res, viols, Metrics.samples rec_)
  in
  let sched_for ~seed ~power =
    let w = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
    let w = nemesis_of nemesis_name ~seed w in
    let w =
      match mem_kinds with
      | Some kinds ->
        Scheduler.mem_storm ~seed ~kinds ~rate:mem_rate ~max_faults:mem_max w
      | None -> w
    in
    match power with
    | `None -> w
    | `At c -> Scheduler.power_loss_at ~at_clock:c w
    | `Storm -> Scheduler.power_storm ~seed w
  in
  let fallback = Scheduler.round_robin () in
  let replay_sched decisions =
    Scheduler.replay_decisions ~lenient:true ~fallback decisions
  in
  let fails decisions =
    match run_once ~record_trace:false ~sched:(replay_sched decisions) with
    | _, viols, _ -> viols <> []
    | exception _ -> true
  in
  let account (res : Sim.result) viols smpls =
    samples := smpls :: !samples;
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    violations := !violations + List.length viols
  in
  let note_failure ~label res viols =
    if viols <> [] then begin
      Printf.printf "%s: %d violations\n" label (List.length viols);
      List.iter (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v) viols;
      if shrink && !failing_schedule = None then
        failing_schedule := Some (Trace.schedule res.Sim.trace)
    end
  in
  let replaying = replay_file <> None && not shrink in
  let runs =
    match replay_file with
    | Some path when replaying ->
      let decisions = Shrink.load path in
      Printf.printf "replaying %d decisions from %s\n"
        (List.length decisions) path;
      let res, viols, smpls =
        run_once ~record_trace:false ~sched:(replay_sched decisions)
      in
      account res viols smpls;
      List.iter (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v) viols;
      1
    | _ -> (
      match power_mode with
      | `Sweep ->
        (* A blackout at every schedule point: one clean baseline per seed
           to learn the schedule length, then one run per clock value. *)
        let total = ref 0 in
        for s = 0 to seeds - 1 do
          let seed = seed_base + s in
          let res0, viols0, smpls0 =
            run_once ~record_trace:false ~sched:(sched_for ~seed ~power:`None)
          in
          account res0 viols0 smpls0;
          incr total;
          note_failure ~label:(Printf.sprintf "seed %d baseline" seed) res0
            viols0;
          for c = 1 to res0.Sim.clock - 1 do
            match
              run_once ~record_trace:shrink
                ~sched:(sched_for ~seed ~power:(`At c))
            with
            | res, viols, smpls ->
              account res viols smpls;
              incr total;
              note_failure
                ~label:(Printf.sprintf "seed %d power-loss@%d" seed c)
                res viols
            | exception e ->
              incr violations;
              incr total;
              Printf.printf "seed %d power-loss@%d: harness crash: %s\n" seed
                c (Printexc.to_string e)
          done
        done;
        !total
      | (`None | `At _ | `Storm) as power ->
        for s = 0 to seeds - 1 do
          let seed = seed_base + s in
          match
            run_once ~record_trace:shrink ~sched:(sched_for ~seed ~power)
          with
          | res, viols, smpls ->
            account res viols smpls;
            note_failure ~label:(Printf.sprintf "seed %d" seed) res viols
          | exception e ->
            incr violations;
            Printf.printf "seed %d: harness crash: %s\n" seed
              (Printexc.to_string e)
        done;
        seeds)
  in
  (* Campaign counters, snapshotted before the shrinker's oracle runs pile
     more on top. *)
  let dm = Metrics.durable () in
  let shrunk_len =
    match !failing_schedule with
    | None -> None
    | Some schedule ->
      if not (fails schedule) then begin
        Printf.printf
          "shrink: recorded schedule does not reproduce deterministically; \
           skipping\n";
        None
      end
      else begin
        let minimal, calls = Shrink.minimize ~oracle:fails schedule in
        Printf.printf "shrink: %d decisions -> %d minimal (%d oracle runs)\n"
          (List.length schedule) (List.length minimal) calls;
        List.iter
          (fun d -> print_endline (Scheduler.decision_to_string d))
          minimal;
        Option.iter
          (fun path ->
            Shrink.save path minimal;
            Printf.printf "shrink: minimal schedule saved to %s\n" path)
          replay_file;
        Some (List.length minimal)
      end
  in
  let all = List.concat !samples in
  let of_kind k = List.filter (fun (s : Metrics.sample) -> s.kind = k) all in
  let row kind =
    let ss = of_kind kind in
    [
      kind;
      string_of_int (List.length ss);
      Printf.sprintf "%.1f" (Metrics.mean_steps ss);
      string_of_int (Metrics.max_steps ss);
    ]
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf
            "%s: m=%d r=%d %d updaters x %d, %d scanners x %d, %s, %d \
             runs%s%s%s"
            D.name m r updaters updates scanners scans sched_name runs
            (if nemesis_name <> "none" then ", nemesis " ^ nemesis_name
             else "")
            (if power_loss_arg <> "none" then
               ", power-loss " ^ power_loss_arg
             else "")
            (if wal_mode <> "write-ahead" then ", wal-mode " ^ wal_mode
             else ""))
       ~header:[ "operation"; "count"; "mean steps"; "worst steps" ]
       [ row "update"; row "scan" ]);
  Printf.printf "worst collects per scan: %d\n" !worst_collects;
  Printf.printf "faults: %d crashes, %d restarts, %d power losses\n"
    !total_crashes !total_restarts dm.Metrics.power_losses;
  Fmt.pr "%a@." Metrics.pp_durable dm;
  let mf = Metrics.mem_faults () in
  if Metrics.total_injected mf > 0 then Fmt.pr "%a@." Metrics.pp_mem_faults mf;
  Option.iter
    (fun path ->
      write_json path
        [
          ("impl", Printf.sprintf "%S" D.name);
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("power_loss", Printf.sprintf "%S" power_loss_arg);
          ("wal_mode", Printf.sprintf "%S" wal_mode);
          ("checkpoint_every", string_of_int checkpoint_every);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int runs);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("power_losses", string_of_int dm.Metrics.power_losses);
          ("recoveries", string_of_int dm.Metrics.recoveries);
          ("replayed_updates", string_of_int dm.Metrics.replayed_updates);
          ("wal_appends", string_of_int dm.Metrics.wal_appends);
          ("wal_syncs", string_of_int dm.Metrics.wal_syncs);
          ("wal_bytes", string_of_int dm.Metrics.wal_bytes);
          ("commits", string_of_int dm.Metrics.commits);
          ("checkpoints", string_of_int dm.Metrics.checkpoints);
          ("torn_records", string_of_int dm.Metrics.torn_records);
          ("corrupt_records", string_of_int dm.Metrics.corrupt_records);
          ("truncated_bytes", string_of_int dm.Metrics.truncated_bytes);
          ( "shrunk_schedule_len",
            match shrunk_len with Some l -> string_of_int l | None -> "null"
          );
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  let fail = ref false in
  (match power_mode with
  | `Sweep when dm.Metrics.recoveries = 0 ->
    Printf.printf
      "recovery: power-loss sweep completed without a single rebuild\n";
    fail := true
  | `Storm when dm.Metrics.power_losses = 0 && not replaying ->
    Printf.printf
      "power-loss: storm requested but no blackout fired (run too short?)\n"
  | _ -> ());
  if expect_violations then
    if !violations > 0 then
      Printf.printf
        "checker: %d violations (expected: late-log mode acknowledges \
         before the barrier)\n"
        !violations
    else begin
      Printf.printf "checker: NO violations, but --expect-violations was given\n";
      fail := true
    end
  else if !violations = 0 then
    Printf.printf
      "checker: all %d executions durably linearizable (observation check)\n"
      runs
  else begin
    Printf.printf "checker: %d VIOLATIONS\n" !violations;
    fail := true
  end;
  if !fail then 1 else 0

(* The MVCC transaction layer gets a dedicated campaign with its own
   oracle: updaters run read-modify-write transactions, scanners run
   read-only transactions over a declared read set, every transaction
   begun is harvested after the run (outcome is a mutable field, so even a
   transaction whose fiber crashed reports its final state), and the
   collected observations go through the snapshot-isolation checker
   [Si_check.check] — visibility per begin snapshot plus no lost updates.
   --txn-mode lww (skip first-committer-wins validation) exists to show
   the oracle catches lost updates; pair with --expect-violations, and
   with --shrink to distill the committed e20 witness. *)
let run_txn m r updaters updates scanners scans sched_name seed_base seeds
    nemesis_name mem_kinds mem_rate mem_max txn_mode expect_violations
    shrink replay_file json_file =
  let module T = Sim_txn_fig3 in
  let mode =
    match Txn.mode_of_string txn_mode with
    | Some mode -> mode
    | None ->
      Printf.eprintf "unknown --txn-mode %S (choose from: fcw, lww)\n"
        txn_mode;
      exit 2
  in
  if r > m then (
    Printf.eprintf "r (%d) must be <= m (%d)\n" r m;
    exit 2);
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  let init = Array.init m (fun i -> -(i + 1)) in
  Mem.Sim.set_fault_tracking true;
  Metrics.reset_mem_faults ();
  Metrics.reset_txn ();
  let violations = ref 0 in
  let samples = ref [] in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let failing_schedule = ref None in
  let run_once ~record_trace ~sched =
    let rec_ = Metrics.create () in
    Sim.reset_prerun_oids ();
    let t = T.create ~mode ~n (Array.copy init) in
    (* Every transaction ever begun, plus observations synthesized by
       [resume] for commits rolled forward past a crash; harvested into
       the oracle's input after the run ends. *)
    let txns = ref [] in
    let resumed = ref [] in
    let recover_pid h =
      match T.resume h with
      | Some obs -> resumed := obs :: !resumed
      | None -> ()
    in
    let updater ~incarnation pid () =
      let h = T.handle t ~pid in
      if incarnation > 1 then recover_pid h;
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        Metrics.measure rec_ ~pid ~kind:"rw-txn" (fun () ->
            let x = T.begin_ h in
            txns := x :: !txns;
            (* read-modify-write: the canonical lost-update shape *)
            ignore (T.read x i);
            T.write x i v;
            ignore (T.commit x))
      done
    in
    let scanner ~incarnation pid () =
      let h = T.handle t ~pid in
      (* a dead scanner's announce slot pins the pruning watermark; clear
         it like a committer would *)
      if incarnation > 1 then recover_pid h;
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        Metrics.measure rec_ ~pid ~kind:"ro-txn" (fun () ->
            let x = T.begin_ h in
            txns := x :: !txns;
            ignore (T.read_many x idxs);
            ignore (T.commit x))
      done
    in
    let body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid
      else scanner ~incarnation pid
    in
    let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
    let recover = Some (fun ~pid ~incarnation -> body ~incarnation pid) in
    let res = Sim.run ~record_trace ?recover ~sched procs in
    let obs =
      (* the txn record is richer (it has the reads); a resume observation
         of the same txid only fills in a crashed fiber's silence *)
      let seen = Hashtbl.create 64 in
      List.filter
        (fun (o : int Si_check.obs) ->
          if Hashtbl.mem seen o.Si_check.txid then false
          else begin
            Hashtbl.add seen o.Si_check.txid ();
            true
          end)
        (List.filter_map T.observation !txns @ !resumed)
    in
    let viols = Si_check.check ~init obs in
    (res, viols, Metrics.samples rec_)
  in
  let sched_for ~seed =
    let w = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
    let w = nemesis_of nemesis_name ~seed w in
    match mem_kinds with
    | Some kinds ->
      Scheduler.mem_storm ~seed ~kinds ~rate:mem_rate ~max_faults:mem_max w
    | None -> w
  in
  let fallback = Scheduler.round_robin () in
  let replay_sched decisions =
    Scheduler.replay_decisions ~lenient:true ~fallback decisions
  in
  let fails decisions =
    match run_once ~record_trace:false ~sched:(replay_sched decisions) with
    | _, viols, _ -> viols <> []
    | exception _ -> true
  in
  let account (res : Sim.result) viols smpls =
    samples := smpls :: !samples;
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    violations := !violations + List.length viols
  in
  let pp_viol = Si_check.pp_violation Format.pp_print_int in
  let note_failure ~label res viols =
    if viols <> [] then begin
      Printf.printf "%s: %d violations\n" label (List.length viols);
      List.iter (fun v -> Fmt.pr "  %a@." pp_viol v) viols;
      if shrink && !failing_schedule = None then
        failing_schedule := Some (Trace.schedule res.Sim.trace)
    end
  in
  let replaying = replay_file <> None && not shrink in
  let runs =
    if replaying then begin
      let path = Option.get replay_file in
      let decisions = Shrink.load path in
      Printf.printf "replaying %d decisions from %s\n"
        (List.length decisions) path;
      let res, viols, smpls =
        run_once ~record_trace:false ~sched:(replay_sched decisions)
      in
      account res viols smpls;
      List.iter (fun v -> Fmt.pr "  %a@." pp_viol v) viols;
      1
    end
    else begin
      for s = 0 to seeds - 1 do
        let seed = seed_base + s in
        match run_once ~record_trace:shrink ~sched:(sched_for ~seed) with
        | res, viols, smpls ->
          account res viols smpls;
          note_failure ~label:(Printf.sprintf "seed %d" seed) res viols
        | exception e ->
          incr violations;
          Printf.printf "seed %d: harness crash: %s\n" seed
            (Printexc.to_string e)
      done;
      seeds
    end
  in
  (* Campaign counters, snapshotted before the shrinker's oracle runs pile
     more on top. *)
  let tm = Metrics.txn () in
  let shrunk_len =
    match !failing_schedule with
    | None -> None
    | Some schedule ->
      if not (fails schedule) then begin
        Printf.printf
          "shrink: recorded schedule does not reproduce deterministically; \
           skipping\n";
        None
      end
      else begin
        let minimal, calls = Shrink.minimize ~oracle:fails schedule in
        Printf.printf "shrink: %d decisions -> %d minimal (%d oracle runs)\n"
          (List.length schedule) (List.length minimal) calls;
        List.iter
          (fun d -> print_endline (Scheduler.decision_to_string d))
          minimal;
        Option.iter
          (fun path ->
            Shrink.save path minimal;
            Printf.printf "shrink: minimal schedule saved to %s\n" path)
          replay_file;
        Some (List.length minimal)
      end
  in
  let all = List.concat !samples in
  let of_kind k = List.filter (fun (s : Metrics.sample) -> s.kind = k) all in
  let row kind =
    let ss = of_kind kind in
    [
      kind;
      string_of_int (List.length ss);
      Printf.sprintf "%.1f" (Metrics.mean_steps ss);
      string_of_int (Metrics.max_steps ss);
    ]
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf
            "%s: m=%d r=%d %d updaters x %d, %d scanners x %d, %s, %d \
             runs, mode %s%s"
            T.name m r updaters updates scanners scans sched_name runs
            (Txn.mode_to_string mode)
            (if nemesis_name <> "none" then ", nemesis " ^ nemesis_name
             else ""))
       ~header:[ "operation"; "count"; "mean steps"; "worst steps" ]
       [ row "rw-txn"; row "ro-txn" ]);
  Printf.printf "faults: %d crashes, %d restarts\n" !total_crashes
    !total_restarts;
  Fmt.pr "%a@." Metrics.pp_txn tm;
  let mf = Metrics.mem_faults () in
  if Metrics.total_injected mf > 0 then Fmt.pr "%a@." Metrics.pp_mem_faults mf;
  Option.iter
    (fun path ->
      write_json path
        [
          ("impl", Printf.sprintf "%S" T.name);
          ("txn_mode", Printf.sprintf "%S" (Txn.mode_to_string mode));
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int runs);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("begins", string_of_int tm.Metrics.begins);
          ("ro_commits", string_of_int tm.Metrics.ro_commits);
          ("rw_commits", string_of_int tm.Metrics.rw_commits);
          ("conflicts", string_of_int tm.Metrics.conflicts);
          ("busy_aborts", string_of_int tm.Metrics.busy_aborts);
          ("voluntary_aborts", string_of_int tm.Metrics.voluntary_aborts);
          ("abort_rate", Printf.sprintf "%.4f" (Metrics.txn_abort_rate tm));
          ("lww_overwrites", string_of_int tm.Metrics.lww_overwrites);
          ("resumes", string_of_int tm.Metrics.resumes);
          ("pruned_versions", string_of_int tm.Metrics.pruned_versions);
          ( "shrunk_schedule_len",
            match shrunk_len with Some l -> string_of_int l | None -> "null"
          );
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  if expect_violations then
    if !violations > 0 then begin
      Printf.printf
        "checker: %d violations (expected: last-writer-wins skips \
         first-committer-wins validation)\n"
        !violations;
      0
    end
    else begin
      Printf.printf "checker: NO violations, but --expect-violations was given\n";
      1
    end
  else if !violations = 0 then begin
    Printf.printf
      "checker: all %d executions snapshot-isolated (SI observation check)\n"
      runs;
    0
  end
  else begin
    Printf.printf "checker: %d VIOLATIONS\n" !violations;
    1
  end

(* The distributed backend gets a dedicated campaign: the workload's
   shared cells are ABD quorum registers served by [replicas] replica
   fibers over the simulated message transport, so each run schedules
   [updaters + scanners] client fibers plus the replica fibers, network
   nemeses inject link faults as ordinary decisions, crash nemeses may hit
   clients (their restart closes the session) and replicas (their restart
   resumes serving from the durable store), and an unreachable majority
   surfaces as [Unavailable] through a per-client circuit breaker — the
   operation is counted, the client carries on, nothing spins. *)
let run_net impl_name m r updaters updates scanners scans sched_name
    seed_base seeds check nemesis_name net_nemesis_name net_mode_name
    net_rate replicas power_loss_arg expect_violations shrink replay_file
    json_file =
  let module A = Psnap.Net.Abd in
  let (module S : Snapshot.S) = net_impl_of impl_name in
  if r > m then (
    Printf.eprintf "r (%d) must be <= m (%d)\n" r m;
    exit 2);
  if replicas < 1 then (
    Printf.eprintf "--replicas must be >= 1\n";
    exit 2);
  let mode =
    match net_mode_name with
    | "abd" -> A.Abd
    | "weak" -> A.Weak
    | s ->
      Printf.eprintf "unknown --net-mode %S (choose from: abd, weak)\n" s;
      exit 2
  in
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  let all_nodes = List.init (n + replicas) Fun.id in
  let init = Array.init m (fun i -> -(i + 1)) in
  Metrics.reset_net ();
  Metrics.reset_serving ();
  let violations = ref 0 in
  let unavailable_ops = ref 0 in
  let worst_collects = ref 0 in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let total_injected = ref 0 in
  let total_absorbed = ref 0 in
  let failing_schedule = ref None in
  let run_once ~record_trace ~sched =
    let hist = History.create ~now:Sim.mark () in
    (* Prerun oids must be a pure function of the workload (the cluster's
       transport and store cells included) so fault schedules replay. *)
    Sim.reset_prerun_oids ();
    let cl = A.cluster ~mode ~clients:n ~replicas () in
    let t = S.create ~n (Array.copy init) in
    (* An [Unavailable] op is recorded as pending (it may or may not have
       taken effect — exactly what the observation checker admits); the
       client moves on to its next operation. *)
    let attempt f = try f () with Psnap.Net.Unavailable _ -> incr unavailable_ops in
    let updater ~incarnation pid () =
      let h = S.handle t ~pid in
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        attempt (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Update (i, v))
                   (fun () ->
                     S.update h i v;
                     Snapshot_spec.Ack))
            else S.update h i v)
      done
    in
    let scanner pid () =
      let h = S.handle t ~pid in
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        attempt (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
                     Snapshot_spec.Vals (S.scan h idxs)))
            else ignore (S.scan h idxs));
        worst_collects := max !worst_collects (S.last_scan_collects h)
      done
    in
    let client_body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid else scanner pid
    in
    let procs =
      Array.init (n + replicas) (fun pid ->
          if pid < n then A.wrap_client cl ~pid (client_body ~incarnation:1 pid)
          else A.replica_body cl ~index:(pid - n))
    in
    (* Crashed clients restart only to close their session (their pending
       operation stays pending); crashed replicas resume serving from the
       durable store cell. *)
    let recover =
      Some
        (fun ~pid ~incarnation:_ ->
          if pid < n then A.close_client cl ~pid
          else A.replica_body cl ~index:(pid - n))
    in
    let res = Sim.run ~record_trace ?recover ~sched procs in
    (* [A.cluster] resets the transport registry (and its counters) at the
       start of each run, so sample this run's injected/absorbed totals
       before the next run clears them. *)
    let inj, abs_ = Psnap.Net.Transport.Sim.fault_counts () in
    total_injected := !total_injected + inj;
    total_absorbed := !total_absorbed + abs_;
    let viols =
      if check then
        Snapshot_spec.check_observations ~init (History.entries hist)
      else []
    in
    (res, viols)
  in
  let net_nemesis_of ~seed base =
    let inflight = Psnap.Net.Transport.Sim.inflight_links in
    match net_nemesis_name with
    | "none" -> base
    | "partition_storm" ->
      (* The heal window must dwarf a quorum operation (tens of polls per
         phase times the attempt budget), or partitions heal before anyone
         notices: long windows are what starve a cut client into
         [Unavailable] — and what give weak mode's missing write-back time
         to surface as a new/old inversion. *)
      Scheduler.partition_storm ~seed ~nodes:all_nodes ~rate:net_rate
        ~heal_after:4000 base
    | "heal_after" ->
      (* the targeted quorum-loss window: the first replica is gone *)
      Scheduler.heal_after ~victim:n ~peers:all_nodes ~at_clock:60 ~after:150
        base
    | "dup_flood" -> Scheduler.dup_flood ~seed ~inflight ~rate:net_rate base
    | "lag_spike" -> Scheduler.lag_spike ~seed ~inflight ~rate:net_rate base
    | s ->
      Printf.eprintf
        "unknown --net-nemesis %S (choose from: none, partition_storm, \
         heal_after, dup_flood, lag_spike)\n"
        s;
      exit 2
  in
  (* Power loss against the net backend: the blackout halts clients and
     replicas alike — a replica's durable store cell survives (each write
     to it is a completed synchronous step, there is no un-synced tail),
     clients come back only to close their sessions.  Composed last so
     replayed schedules carry the [powerloss] decision like any fault. *)
  let power_nemesis_of ~seed base =
    match power_loss_arg with
    | "none" -> base
    | "storm" -> Scheduler.power_storm ~seed base
    | s -> (
      match int_of_string_opt s with
      | Some c when c >= 0 -> Scheduler.power_loss_at ~at_clock:c base
      | _ ->
        Printf.eprintf
          "unknown --power-loss %S under --mem net (choose from: none, \
           storm, or a clock value)\n"
          s;
        exit 2)
  in
  let sched_for ~seed =
    let w = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
    let w = nemesis_of nemesis_name ~seed w in
    let w = net_nemesis_of ~seed w in
    power_nemesis_of ~seed w
  in
  let fallback = Scheduler.round_robin () in
  let replay_sched decisions =
    Scheduler.replay_decisions ~lenient:true ~fallback decisions
  in
  let fails decisions =
    match run_once ~record_trace:false ~sched:(replay_sched decisions) with
    | _, viols -> viols <> []
    | exception _ -> true
  in
  let account (res : Sim.result) viols =
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    violations := !violations + List.length viols
  in
  let replaying = replay_file <> None && not shrink in
  let runs =
    match replay_file with
    | Some path when replaying ->
      let decisions = Shrink.load path in
      Printf.printf "replaying %d decisions from %s\n"
        (List.length decisions) path;
      let res, viols = run_once ~record_trace:false ~sched:(replay_sched decisions) in
      account res viols;
      List.iter (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v) viols;
      1
    | _ ->
      for s = 0 to seeds - 1 do
        let seed = seed_base + s in
        match run_once ~record_trace:shrink ~sched:(sched_for ~seed) with
        | res, viols ->
          account res viols;
          if viols <> [] then begin
            Printf.printf "seed %d: %d violations\n" seed (List.length viols);
            List.iter
              (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v)
              viols;
            if shrink && !failing_schedule = None then
              failing_schedule := Some (Trace.schedule res.trace)
          end
        | exception e ->
          incr violations;
          Printf.printf "seed %d: harness crash: %s\n" seed
            (Printexc.to_string e)
      done;
      seeds
  in
  let nm = Metrics.net () in
  let shrunk_len =
    match !failing_schedule with
    | None -> None
    | Some schedule ->
      if not (fails schedule) then begin
        Printf.printf
          "shrink: recorded schedule does not reproduce deterministically; \
           skipping\n";
        None
      end
      else begin
        let minimal, calls = Shrink.minimize ~oracle:fails schedule in
        Printf.printf "shrink: %d decisions -> %d minimal (%d oracle runs)\n"
          (List.length schedule) (List.length minimal) calls;
        List.iter
          (fun d -> print_endline (Scheduler.decision_to_string d))
          minimal;
        Option.iter
          (fun path ->
            Shrink.save path minimal;
            Printf.printf "shrink: minimal schedule saved to %s\n" path)
          replay_file;
        Some (List.length minimal)
      end
  in
  let injected, absorbed = (!total_injected, !total_absorbed) in
  Printf.printf
    "%s over %s quorum registers: %d clients + %d replicas, m=%d r=%d, %s, \
     %d runs%s%s\n"
    S.name
    (if mode = A.Weak then "WEAK (no write-back)" else "ABD")
    n replicas m r sched_name runs
    (if nemesis_name <> "none" then ", nemesis " ^ nemesis_name else "")
    (if net_nemesis_name <> "none" then ", net-nemesis " ^ net_nemesis_name
     else "");
  Printf.printf "worst collects per scan: %d\n" !worst_collects;
  Printf.printf "faults: %d crashes, %d restarts; net effects: %d injected, \
                 %d absorbed\n"
    !total_crashes !total_restarts injected absorbed;
  Fmt.pr "%a@." Metrics.pp_net nm;
  let sv = Metrics.serving () in
  Printf.printf
    "unavailability: %d ops gave up; breaker: %d opens, %d half-opens, %d \
     closes\n"
    !unavailable_ops sv.Metrics.breaker_opens sv.Metrics.breaker_half_opens
    sv.Metrics.breaker_closes;
  Option.iter
    (fun path ->
      write_json path
        [
          ("impl", Printf.sprintf "%S" S.name);
          ("mem", "\"net\"");
          ("net_mode", Printf.sprintf "%S" net_mode_name);
          ("replicas", string_of_int replicas);
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("net_nemesis", Printf.sprintf "%S" net_nemesis_name);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int runs);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("sends", string_of_int nm.Metrics.sends);
          ("delivers", string_of_int nm.Metrics.delivers);
          ("net_drops", string_of_int nm.Metrics.drops);
          ("net_dups", string_of_int nm.Metrics.dups);
          ("net_delays", string_of_int nm.Metrics.delays);
          ("net_cuts", string_of_int nm.Metrics.cuts);
          ("net_heals", string_of_int nm.Metrics.heals);
          ("net_faults_injected", string_of_int injected);
          ("net_faults_absorbed", string_of_int absorbed);
          ("quorum_rounds", string_of_int nm.Metrics.rounds);
          ("resends", string_of_int nm.Metrics.resends);
          ("writebacks", string_of_int nm.Metrics.writebacks);
          ("writeback_skips", string_of_int nm.Metrics.writeback_skips);
          ("quorum_ops", string_of_int nm.Metrics.quorum_ops);
          ( "mean_quorum_wait",
            Printf.sprintf "%.2f" (Metrics.mean_quorum_wait nm) );
          ("unavailable_ops", string_of_int !unavailable_ops);
          ("breaker_opens", string_of_int sv.Metrics.breaker_opens);
          ("breaker_half_opens", string_of_int sv.Metrics.breaker_half_opens);
          ("breaker_closes", string_of_int sv.Metrics.breaker_closes);
          ( "shrunk_schedule_len",
            match shrunk_len with Some l -> string_of_int l | None -> "null" );
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  if check then
    if expect_violations then
      if !violations > 0 then begin
        Printf.printf
          "checker: %d violations (expected: weak reads skip the \
           write-back)\n"
          !violations;
        0
      end
      else begin
        Printf.printf
          "checker: NO violations, but --expect-violations was given\n";
        1
      end
    else if !violations = 0 then begin
      Printf.printf
        "checker: all %d executions linearizable (observation check)\n" runs;
      0
    end
    else begin
      Printf.printf "checker: %d VIOLATIONS\n" !violations;
      1
    end
  else 0

(* ---- E21: online reconfiguration campaigns (docs/MODEL.md §16) ----

   Workload chosen for oracle soundness: [updaters] writer clients each
   own one register and write 1..[updates] monotonically, HALTING on the
   first [Unavailable] (a writer that pushed past one could burn the same
   timestamp twice — equal tags carrying different values — which makes
   any monotonicity oracle unsound); [scanners] reader clients poll the
   writers' registers.  Three oracles:

   - lost write: a writer's final read-back must never run below its last
     acked write (the E21 naive-mode conviction);
   - monotonicity: per (reader, register) observed values never step
     backwards across reconfigurations;
   - exact linearizability (--check): per register, a Wing–Gong check
     over the recorded history with [Unavailable] operations left
     pending.

   RMW is excluded on purpose: at-most-once across a membership change
   would need the home replica's dedup entry to reach the collect
   quorum, which a reply lost before the transfer can defeat (documented
   in Net_abd); the reconfiguration campaigns stick to reads/writes. *)

module Reg_spec = struct
  type state = int
  type op = Rwrite of int | Rread
  type res = Rack | Rval of int

  let apply s = function Rwrite v -> (v, Rack) | Rread -> (s, Rval s)
  let equal_res (a : res) (b : res) = a = b
end

module Reg_lin = Lin_check.Make (Reg_spec)

let run_reconfig reconfig_mode_name spares updaters updates scanners scans
    sched_name seed_base seeds check nemesis_name net_nemesis_name net_rate
    replicas reconfig_nemesis_name replica_death_max expect_violations shrink
    replay_file json_file =
  let module A = Psnap.Net.Abd in
  let module R = Psnap.Net.Reconfig in
  if replicas < 1 then (
    Printf.eprintf "--replicas must be >= 1\n";
    exit 2);
  if spares < 0 then (
    Printf.eprintf "--spares must be >= 0\n";
    exit 2);
  if updaters < 1 then (
    Printf.eprintf "--reconfig needs at least one updater (writer)\n";
    exit 2);
  let rmode =
    match reconfig_mode_name with
    | "fenced" -> R.Fenced
    | "naive" -> R.Naive
    | s ->
      Printf.eprintf "unknown --reconfig %S (choose from: off, fenced, naive)\n"
        s;
      exit 2
  in
  let clients = updaters + scanners in
  let pool = replicas + spares in
  let nprocs = clients + pool + 1 (* + membership manager *) in
  let member_pids = List.init replicas (fun i -> clients + i) in
  let all_nodes = List.init nprocs Fun.id in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  Metrics.reset_net ();
  Metrics.reset_serving ();
  Metrics.reset_reconfig ();
  let violations = ref 0 in
  let lost_writes = ref 0 in
  let inversions = ref 0 in
  let lin_fails = ref 0 in
  let lin_skipped = ref 0 in
  let unavailable_ops = ref 0 in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let total_injected = ref 0 in
  let total_absorbed = ref 0 in
  let total_reconfigs = ref 0 in
  let max_epoch = ref 0 in
  let failing_schedule = ref None in
  let run_once ~record_trace ~sched =
    Sim.reset_prerun_oids ();
    let cl = A.cluster ~clients ~replicas ~spares ~with_manager:true () in
    let rc = R.attach ~mode:rmode cl in
    let regs =
      Array.init updaters (fun w ->
          A.Sim_mem.make ~name:(Printf.sprintf "reconfig.reg.%d" w) 0)
    in
    let hists =
      Array.init updaters (fun _ -> History.create ~now:Sim.mark ())
    in
    let last_acked = Array.make updaters 0 in
    let viols = ref [] in
    let dbg = Sys.getenv_opt "PSNAP_RECONFIG_DEBUG" <> None in
    let writer pid () =
      let halted = ref false in
      for k = 1 to updates do
        if not !halted then
          try
            ignore
              (History.record hists.(pid) ~pid (Reg_spec.Rwrite k) (fun () ->
                   A.Sim_mem.write regs.(pid) k;
                   Reg_spec.Rack));
            last_acked.(pid) <- k;
            if dbg then
              Printf.printf "[%d] writer %d acked %d (epoch %d)\n" (Sim.mark ())
                pid k (A.client_epoch cl ~pid)
          with Psnap.Net.Unavailable _ ->
            incr unavailable_ops;
            halted := true;
            if dbg then
              Printf.printf "[%d] writer %d UNAVAILABLE at %d (epoch %d)\n"
                (Sim.mark ()) pid k (A.client_epoch cl ~pid)
      done;
      try
        match
          History.record hists.(pid) ~pid Reg_spec.Rread (fun () ->
              Reg_spec.Rval (A.Sim_mem.read regs.(pid)))
        with
        | Reg_spec.Rval v when v < last_acked.(pid) ->
          if dbg then
            Printf.printf "[%d] writer %d read-back %d (acked %d)\n"
              (Sim.mark ()) pid v last_acked.(pid);
          incr lost_writes;
          viols :=
            Printf.sprintf
              "writer %d: read-back %d below last acked write %d (LOST WRITE)"
              pid v last_acked.(pid)
            :: !viols
        | _ -> ()
      with Psnap.Net.Unavailable _ -> incr unavailable_ops
    in
    let reader pid () =
      let lastseen = Array.make updaters 0 in
      for j = 1 to scans do
        let w = (pid + j) mod updaters in
        try
          match
            History.record hists.(w) ~pid Reg_spec.Rread (fun () ->
                Reg_spec.Rval (A.Sim_mem.read regs.(w)))
          with
          | Reg_spec.Rval v ->
            if dbg then
              Printf.printf "[%d] reader %d read reg%d = %d (epoch %d)\n"
                (Sim.mark ()) pid w v (A.client_epoch cl ~pid);
            if v < lastseen.(w) then begin
              incr inversions;
              viols :=
                Printf.sprintf
                  "reader %d: register %d went backwards %d -> %d (stale \
                   quorum)"
                  pid w lastseen.(w) v
                :: !viols
            end
            else lastseen.(w) <- v
          | _ -> ()
        with Psnap.Net.Unavailable _ -> incr unavailable_ops
      done
    in
    let procs =
      Array.init nprocs (fun pid ->
          if pid < updaters then A.wrap_client cl ~pid (writer pid)
          else if pid < clients then A.wrap_client cl ~pid (reader pid)
          else if pid < clients + pool then
            A.replica_body cl ~index:(pid - clients)
          else R.manager_body rc)
    in
    (* Crashed clients restart only to close their session; crashed
       replicas resume from their durable store cell; a crashed manager
       re-drives any interrupted reconfiguration from its durable state. *)
    let recover =
      Some
        (fun ~pid ~incarnation:_ ->
          if pid < clients then A.close_client cl ~pid
          else if pid < clients + pool then
            A.replica_body cl ~index:(pid - clients)
          else R.manager_body rc)
    in
    let res = Sim.run ~record_trace ?recover ~sched procs in
    R.detach rc;
    let inj, abs_ = Psnap.Net.Transport.Sim.fault_counts () in
    total_injected := !total_injected + inj;
    total_absorbed := !total_absorbed + abs_;
    total_reconfigs := !total_reconfigs + R.reconfig_count rc;
    for pid = 0 to clients - 1 do
      max_epoch := max !max_epoch (A.client_epoch cl ~pid)
    done;
    if check then
      Array.iteri
        (fun w h ->
          match Reg_lin.check ~init:0 (History.entries h) with
          | true -> ()
          | false ->
            incr lin_fails;
            viols :=
              Printf.sprintf "register %d: history not linearizable" w
              :: !viols
          | exception Reg_lin.Too_long n ->
            incr lin_skipped;
            Printf.printf "lin check skipped for register %d (%d entries)\n" w
              n)
        hists;
    (res, List.rev !viols)
  in
  let reconfig_nemesis_of ~seed base =
    match reconfig_nemesis_name with
    | "none" -> base
    | "replica_death" ->
      Scheduler.replica_death ~seed ~victims:member_pids ~rate:0.01
        ~max_deaths:replica_death_max base
    | "rolling_restart" ->
      Scheduler.rolling_restart ~victims:member_pids ~start_at:60 ~gap:120
        ~down_for:80 base
    | "config_churn" ->
      Scheduler.config_churn ~seed ~rate:0.004 ~max_reconfigs:2 base
    | "split_brain" ->
      (* The E21 recipe.  Writer 0's link to the last initial member is
         cut for the whole run (that member's copy of each of writer 0's
         writes hangs in flight), one churned rotation swaps the first
         member for a spare, and the other initial members — a majority —
         die permanently.  Unfenced, the old quorum keeps committing
         writer 0's writes after the rotation's state transfer; readers
         chased onto the new configuration by the deaths meet the
         transfer snapshot (the swapped-in spare) plus the cut member's
         pre-cut state, both predating those commits — the lost write.
         Fenced, the same schedule seals the old epoch first, so writer 0
         either commits under the new epoch or goes Unavailable. *)
      let majority = (replicas / 2) + 1 in
      let death_victims = List.filteri (fun i _ -> i < majority) member_pids in
      let survivor = clients + replicas - 1 in
      Scheduler.config_churn ~seed ~rate:0.01 ~max_reconfigs:1
        (Scheduler.replica_death ~seed:(seed + 1) ~victims:death_victims
           ~rate:0.0005 ~max_deaths:majority
           (Scheduler.heal_after ~victim:0 ~peers:[ survivor ] ~at_clock:40
              ~after:1_000_000 base))
    | s ->
      Printf.eprintf
        "unknown --reconfig-nemesis %S (choose from: none, replica_death, \
         rolling_restart, config_churn, split_brain)\n"
        s;
      exit 2
  in
  let net_nemesis_of ~seed base =
    let inflight = Psnap.Net.Transport.Sim.inflight_links in
    match net_nemesis_name with
    | "none" -> base
    | "partition_storm" ->
      Scheduler.partition_storm ~seed ~nodes:all_nodes ~rate:net_rate
        ~heal_after:4000 base
    | "dup_flood" -> Scheduler.dup_flood ~seed ~inflight ~rate:net_rate base
    | "lag_spike" -> Scheduler.lag_spike ~seed ~inflight ~rate:net_rate base
    | s ->
      Printf.eprintf
        "unknown --net-nemesis %S under --reconfig (choose from: none, \
         partition_storm, dup_flood, lag_spike)\n"
        s;
      exit 2
  in
  let sched_for ~seed =
    let w = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
    let w = nemesis_of nemesis_name ~seed w in
    let w = net_nemesis_of ~seed w in
    reconfig_nemesis_of ~seed w
  in
  let fallback = Scheduler.round_robin () in
  let replay_sched decisions =
    Scheduler.replay_decisions ~lenient:true ~fallback decisions
  in
  let fails decisions =
    match run_once ~record_trace:false ~sched:(replay_sched decisions) with
    | _, viols -> viols <> []
    | exception _ -> true
  in
  let account (res : Sim.result) viols =
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    violations := !violations + List.length viols
  in
  let replaying = replay_file <> None && not shrink in
  let runs =
    match replay_file with
    | Some path when replaying ->
      let decisions = Shrink.load path in
      Printf.printf "replaying %d decisions from %s\n"
        (List.length decisions) path;
      let res, viols =
        run_once ~record_trace:false ~sched:(replay_sched decisions)
      in
      account res viols;
      List.iter (fun v -> Printf.printf "  %s\n" v) viols;
      1
    | _ ->
      for s = 0 to seeds - 1 do
        let seed = seed_base + s in
        match run_once ~record_trace:shrink ~sched:(sched_for ~seed) with
        | res, viols ->
          account res viols;
          if viols <> [] then begin
            Printf.printf "seed %d: %d violations\n" seed (List.length viols);
            List.iter (fun v -> Printf.printf "  %s\n" v) viols;
            if shrink && !failing_schedule = None then
              failing_schedule := Some (Trace.schedule res.trace)
          end
        | exception e ->
          incr violations;
          Printf.printf "seed %d: harness crash: %s\n" seed
            (Printexc.to_string e)
      done;
      seeds
  in
  let rm = Metrics.reconfig () in
  let nm = Metrics.net () in
  let shrunk_len =
    match !failing_schedule with
    | None -> None
    | Some schedule ->
      if not (fails schedule) then begin
        Printf.printf
          "shrink: recorded schedule does not reproduce deterministically; \
           skipping\n";
        None
      end
      else begin
        let minimal, calls = Shrink.minimize ~oracle:fails schedule in
        Printf.printf "shrink: %d decisions -> %d minimal (%d oracle runs)\n"
          (List.length schedule) (List.length minimal) calls;
        List.iter
          (fun d -> print_endline (Scheduler.decision_to_string d))
          minimal;
        Option.iter
          (fun path ->
            Shrink.save path minimal;
            Printf.printf "shrink: minimal schedule saved to %s\n" path)
          replay_file;
        Some (List.length minimal)
      end
  in
  Printf.printf
    "reconfiguration (%s) over ABD quorum registers: %d writers + %d \
     readers, %d replicas + %d spares, %s, %d runs%s%s%s\n"
    (if rmode = R.Naive then "NAIVE (no epoch fence)" else "epoch-fenced")
    updaters scanners replicas spares sched_name runs
    (if nemesis_name <> "none" then ", nemesis " ^ nemesis_name else "")
    (if net_nemesis_name <> "none" then ", net-nemesis " ^ net_nemesis_name
     else "")
    (if reconfig_nemesis_name <> "none" then
       ", reconfig-nemesis " ^ reconfig_nemesis_name
     else "");
  Printf.printf
    "faults: %d crashes, %d restarts; net effects: %d injected, %d absorbed\n"
    !total_crashes !total_restarts !total_injected !total_absorbed;
  Printf.printf "reconfigurations: %d completed; highest epoch adopted by a \
                 client: %d\n"
    !total_reconfigs !max_epoch;
  Fmt.pr "%a@." Metrics.pp_reconfig rm;
  Fmt.pr "%a@." Metrics.pp_net nm;
  let sv = Metrics.serving () in
  Printf.printf
    "unavailability: %d ops gave up; breaker: %d opens, %d half-opens, %d \
     closes\n"
    !unavailable_ops sv.Metrics.breaker_opens sv.Metrics.breaker_half_opens
    sv.Metrics.breaker_closes;
  Option.iter
    (fun path ->
      write_json path
        [
          ("mem", "\"net\"");
          ("reconfig", Printf.sprintf "%S" reconfig_mode_name);
          ("replicas", string_of_int replicas);
          ("spares", string_of_int spares);
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("net_nemesis", Printf.sprintf "%S" net_nemesis_name);
          ("reconfig_nemesis", Printf.sprintf "%S" reconfig_nemesis_name);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int runs);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("lost_writes", string_of_int !lost_writes);
          ("inversions", string_of_int !inversions);
          ("lin_violations", string_of_int !lin_fails);
          ("lin_skipped", string_of_int !lin_skipped);
          ("reconfigs", string_of_int rm.Metrics.reconfigs);
          ("seals", string_of_int rm.Metrics.seals);
          ("transfers", string_of_int rm.Metrics.transfers);
          ("activations", string_of_int rm.Metrics.activations);
          ("stale_rejects", string_of_int rm.Metrics.stale_rejects);
          ("epoch_chases", string_of_int rm.Metrics.epoch_chases);
          ("suspicions", string_of_int rm.Metrics.suspicions);
          ("replacements", string_of_int rm.Metrics.replacements);
          ("churn_requests", string_of_int rm.Metrics.churn_requests);
          ("naive_swaps", string_of_int rm.Metrics.naive_swaps);
          ("max_epoch", string_of_int !max_epoch);
          ("net_faults_injected", string_of_int !total_injected);
          ("net_faults_absorbed", string_of_int !total_absorbed);
          ("unavailable_ops", string_of_int !unavailable_ops);
          ( "shrunk_schedule_len",
            match shrunk_len with Some l -> string_of_int l | None -> "null" );
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  (* The lost-write and monotonicity oracles are always on (they are the
     campaign's reason to exist); --check additionally runs the exact
     per-register linearizability check. *)
  if expect_violations then
    if !violations > 0 then begin
      Printf.printf
        "checker: %d violations (expected: the naive mode swaps membership \
         without the epoch fence)\n"
        !violations;
      0
    end
    else begin
      Printf.printf "checker: NO violations, but --expect-violations was \
                     given\n";
      1
    end
  else if !violations = 0 then begin
    Printf.printf
      "checker: all %d executions safe across reconfiguration (lost-write + \
       monotonicity%s)\n"
      runs
      (if check then " + per-register linearizability" else "");
    0
  end
  else begin
    Printf.printf "checker: %d VIOLATIONS\n" !violations;
    1
  end

let rec run impl_name shards m r updaters updates scanners scans sched_name
    seed_base seeds check crash_at nemesis_name mem_faults_arg mem_rate
    mem_max expect_violations shrink replay_file json_file stick_epoch
    stall_shard slow_pid max_rounds power_loss_arg checkpoint_every wal_mode
    mem_backend replicas net_nemesis_name net_mode_name net_rate txn_mode
    reconfig_mode_name spares reconfig_nemesis_name replica_death_max =
  if reconfig_mode_name <> "off" then
    (* the reconfiguration campaign is its own harness over the net
       backend; --impl and --mem are ignored *)
    run_reconfig reconfig_mode_name spares updaters updates scanners scans
      sched_name seed_base seeds check nemesis_name net_nemesis_name net_rate
      replicas reconfig_nemesis_name replica_death_max expect_violations
      shrink replay_file json_file
  else
  if mem_backend = "net" then begin
    if
      List.mem impl_name
        [ "resilient"; "durable"; "sharded"; "sharded-relaxed"; "txn" ]
    then begin
      Printf.eprintf "--mem net does not support --impl %s\n" impl_name;
      exit 2
    end;
    run_net impl_name m r updaters updates scanners scans sched_name
      seed_base seeds check nemesis_name net_nemesis_name net_mode_name
      net_rate replicas power_loss_arg expect_violations shrink replay_file
      json_file
  end
  else if mem_backend <> "sim" then begin
    Printf.eprintf "unknown --mem %S (choose from: sim, net)\n" mem_backend;
    exit 2
  end
  else if impl_name = "resilient" then
    run_resilient shards m r updaters updates scanners scans sched_name
      seed_base seeds nemesis_name
      (mem_kinds_of mem_faults_arg)
      mem_rate mem_max stick_epoch stall_shard slow_pid max_rounds json_file
  else if impl_name = "durable" then
    run_durable m r updaters updates scanners scans sched_name seed_base
      seeds nemesis_name
      (mem_kinds_of mem_faults_arg)
      mem_rate mem_max power_loss_arg checkpoint_every wal_mode
      expect_violations shrink replay_file json_file
  else if impl_name = "txn" then
    run_txn m r updaters updates scanners scans sched_name seed_base seeds
      nemesis_name
      (mem_kinds_of mem_faults_arg)
      mem_rate mem_max txn_mode expect_violations shrink replay_file
      json_file
  else run_flat impl_name shards m r updaters updates scanners scans
    sched_name seed_base seeds check crash_at nemesis_name mem_faults_arg
    mem_rate mem_max expect_violations shrink replay_file json_file

and run_flat impl_name shards m r updaters updates scanners scans sched_name
    seed_base seeds check crash_at nemesis_name mem_faults_arg mem_rate
    mem_max expect_violations shrink replay_file json_file =
  let mem_kinds = mem_kinds_of mem_faults_arg in
  (* Cells must be registered as fault targets before the workload is
     built; tracking also enables the per-cell history Stale_read draws
     on.  Unconditional: replayed schedule files may contain fault
     decisions even when --mem-faults is off. *)
  Mem.Sim.set_fault_tracking true;
  Metrics.reset_mem_faults ();
  Metrics.reset_serving ();
  let (module S : Snapshot.S) = impl_of ~shards impl_name in
  if r > m then (
    Printf.eprintf "r (%d) must be <= m (%d)\n" r m;
    exit 2);
  let n = updaters + scanners in
  let scanner_pids = List.init scanners (fun j -> updaters + j) in
  let updater_pids = List.init updaters (fun i -> i) in
  let init = Array.init m (fun i -> -(i + 1)) in
  let faults = nemesis_name <> "none" in
  let replaying = replay_file <> None && not shrink in
  let violations = ref 0 in
  let samples = ref [] in
  let worst_collects = ref 0 in
  let total_crashes = ref 0 in
  let total_restarts = ref 0 in
  let total_steps = ref 0 in
  let failing_schedule = ref None in
  (* One complete execution of the workload under [sched].  Fresh object,
     fresh history; recovery (when [faults]) respawns a crashed pid on the
     same body with a fresh handle — all local state is rebuilt — writing
     incarnation-tagged values so every written value stays unique. *)
  let run_once ~record_trace ~sched =
    let rec_ = Metrics.create () in
    let hist = History.create ~now:Sim.mark () in
    (* Cells allocated by [create] (outside the run) get prerun oids; reset
       the counter so they are the same on every execution of the workload —
       memory-fault schedules target cells by oid, so replay and shrinking
       need oids to be a pure function of the workload. *)
    Sim.reset_prerun_oids ();
    let t = S.create ~n (Array.copy init) in
    let updater ~incarnation pid () =
      let h = S.handle t ~pid in
      for k = 1 to updates do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        Metrics.measure rec_ ~pid ~kind:"update" (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Update (i, v))
                   (fun () ->
                     S.update h i v;
                     Snapshot_spec.Ack))
            else S.update h i v)
      done
    in
    let scanner pid () =
      let h = S.handle t ~pid in
      let idxs =
        Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      for _ = 1 to scans do
        Metrics.measure rec_ ~pid ~kind:"scan" (fun () ->
            if check then
              ignore
                (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
                     Snapshot_spec.Vals (S.scan h idxs)))
            else ignore (S.scan h idxs));
        worst_collects := max !worst_collects (S.last_scan_collects h)
      done
    in
    let body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid else scanner pid
    in
    let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
    let recover =
      if faults || replaying then
        Some (fun ~pid ~incarnation -> body ~incarnation pid)
      else None
    in
    let res = Sim.run ~record_trace ?recover ~sched procs in
    let viols =
      if check then
        Snapshot_spec.check_observations ~init (History.entries hist)
      else []
    in
    (res, viols, Metrics.samples rec_)
  in
  let fallback = Scheduler.round_robin () in
  let replay_sched decisions =
    Scheduler.replay_decisions ~lenient:true ~fallback decisions
  in
  (* Oracle for the shrinker: does this decision sequence still produce a
     checker violation (or crash the harness)? *)
  let fails decisions =
    match run_once ~record_trace:false ~sched:(replay_sched decisions) with
    | _, viols, _ -> viols <> []
    | exception _ -> true
  in
  let account (res : Sim.result) viols smpls =
    samples := smpls :: !samples;
    total_crashes := !total_crashes + List.length res.crashed;
    total_restarts :=
      !total_restarts
      + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    total_steps := !total_steps + res.clock;
    violations := !violations + List.length viols
  in
  let runs =
    match replay_file with
    | Some path when replaying ->
      let decisions = Shrink.load path in
      Printf.printf "replaying %d decisions from %s\n" (List.length decisions)
        path;
      let res, viols, smpls = run_once ~record_trace:false ~sched:(replay_sched decisions) in
      account res viols smpls;
      List.iter
        (fun v -> Fmt.pr "  %a@." Snapshot_spec.pp_violation v)
        viols;
      1
    | _ ->
      for s = 0 to seeds - 1 do
        let seed = seed_base + s in
        let base = sched_of sched_name ~scanner_pids ~updater_pids ~seed in
        let sched =
          let w = nemesis_of nemesis_name ~seed base in
          let w =
            match mem_kinds with
            | Some kinds ->
              Scheduler.mem_storm ~seed ~kinds ~rate:mem_rate
                ~max_faults:mem_max w
            | None -> w
          in
          match crash_at with
          | Some at_clock -> Scheduler.with_crash ~pid:0 ~at_clock w
          | None -> w
        in
        let record_trace = shrink in
        (* A corrupted value can crash the harness outright (out-of-range
           index, never-written payload): under --mem-faults that is a
           failure of the implementation, not of the driver — count it and
           keep scanning seeds (the trace died with the run, so only
           exception-free failing seeds feed the shrinker). *)
        (match run_once ~record_trace ~sched with
        | res, viols, smpls ->
          account res viols smpls;
          if viols <> [] && !failing_schedule = None then begin
            Printf.printf "seed %d: %d violations\n" seed (List.length viols);
            if shrink then
              failing_schedule := Some (Trace.schedule res.trace)
          end
        | exception e when mem_kinds <> None ->
          incr violations;
          Printf.printf "seed %d: harness crash: %s\n" seed
            (Printexc.to_string e))
      done;
      seeds
  in
  (* Minimize the first failing schedule and print/save it so CI logs are
     actionable and the failure replays exactly. *)
  let shrunk_len =
    match !failing_schedule with
    | None -> None
    | Some schedule ->
      if not (fails schedule) then begin
        Printf.printf
          "shrink: recorded schedule does not reproduce deterministically; \
           skipping\n";
        None
      end
      else begin
        let minimal, calls = Shrink.minimize ~oracle:fails schedule in
        Printf.printf
          "shrink: %d decisions -> %d minimal (%d oracle runs)\n"
          (List.length schedule) (List.length minimal) calls;
        List.iter
          (fun d -> print_endline (Scheduler.decision_to_string d))
          minimal;
        Option.iter
          (fun path ->
            Shrink.save path minimal;
            Printf.printf "shrink: minimal schedule saved to %s\n" path)
          replay_file;
        Some (List.length minimal)
      end
  in
  let all = List.concat !samples in
  let of_kind k = List.filter (fun (s : Metrics.sample) -> s.kind = k) all in
  let row kind =
    let ss = of_kind kind in
    [
      kind;
      string_of_int (List.length ss);
      Printf.sprintf "%.1f" (Metrics.mean_steps ss);
      string_of_int (Metrics.max_steps ss);
    ]
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "%s: m=%d r=%d %d updaters x %d, %d scanners x %d, %s, %d runs%s%s"
            S.name m r updaters updates scanners scans sched_name runs
            ((if faults then ", nemesis " ^ nemesis_name else "")
            ^
            match mem_kinds with
            | Some _ -> ", mem-faults " ^ mem_faults_arg
            | None -> "")
            (match crash_at with
            | Some c -> Printf.sprintf ", crash p0@%d" c
            | None -> ""))
       ~header:[ "operation"; "count"; "mean steps"; "worst steps" ]
       [ row "update"; row "scan" ]);
  Printf.printf "worst collects per scan: %d\n" !worst_collects;
  if faults || replaying then
    Printf.printf "faults: %d crashes, %d restarts\n" !total_crashes
      !total_restarts;
  let mf = Metrics.mem_faults () in
  let hardened_stats = mf.Metrics.hardened in
  if
    mem_kinds <> None
    || Metrics.total_injected mf > 0
    || Metrics.total_detected mf > 0
    || hardened_stats.Mem.Hardened.repairs > 0
  then Fmt.pr "%a@." Metrics.pp_mem_faults mf;
  let cu =
    List.fold_left
      (fun acc per_run ->
        max acc
          (Metrics.max_interval_contention
             ~over:(fun s -> s.Metrics.kind = "scan")
             per_run))
      0 !samples
  in
  Printf.printf "max interval contention seen by a scan: %d\n" cu;
  let sv = Metrics.serving () in
  if sv.Metrics.scan_rounds > 0 then
    Printf.printf "scan validation: %d rounds total, %d retry rounds\n"
      sv.Metrics.scan_rounds sv.Metrics.scan_retries;
  Option.iter
    (fun path ->
      write_json path
        [
          ("impl", Printf.sprintf "%S" S.name);
          ("sched", Printf.sprintf "%S" sched_name);
          ("nemesis", Printf.sprintf "%S" nemesis_name);
          ("seed_base", string_of_int seed_base);
          ("runs", string_of_int runs);
          ("steps", string_of_int !total_steps);
          ("crashes", string_of_int !total_crashes);
          ("restarts", string_of_int !total_restarts);
          ("violations", string_of_int !violations);
          ("scan_rounds", string_of_int sv.Metrics.scan_rounds);
          ("scan_retries", string_of_int sv.Metrics.scan_retries);
          ("mem_faults_injected", string_of_int (Metrics.total_injected mf));
          ("mem_faults_detected", string_of_int (Metrics.total_detected mf));
          ( "hardened_repairs",
            string_of_int hardened_stats.Mem.Hardened.repairs );
          ( "shrunk_schedule_len",
            match shrunk_len with Some l -> string_of_int l | None -> "null" );
        ];
      Printf.printf "json summary written to %s\n" path)
    json_file;
  if check then
    if expect_violations then
      if !violations > 0 then
        Printf.printf
          "checker: %d violations (expected: raw registers under memory \
           faults)\n"
          !violations
      else begin
        Printf.printf
          "checker: NO violations, but --expect-violations was given\n";
        exit 1
      end
    else if !violations = 0 then
      Printf.printf "checker: all %d executions linearizable (observation check)\n" runs
    else begin
      Printf.printf "checker: %d VIOLATIONS\n" !violations;
      exit 1
    end;
  0

open Cmdliner

let impl =
  Arg.(
    value & opt string "fig3"
    & info [ "impl" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Implementation: %s."
             (String.concat ", " impl_names)))

let shards =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Shard count for the sharded implementations (fig3 instances \
           behind round-robin placement).")

let m = Arg.(value & opt int 64 & info [ "m" ] ~doc:"Vector size.")

let r = Arg.(value & opt int 8 & info [ "r" ] ~doc:"Components per scan.")

let updaters = Arg.(value & opt int 3 & info [ "updaters" ] ~doc:"Updater processes.")

let updates = Arg.(value & opt int 30 & info [ "updates" ] ~doc:"Updates per updater.")

let scanners = Arg.(value & opt int 2 & info [ "scanners" ] ~doc:"Scanner processes.")

let scans = Arg.(value & opt int 8 & info [ "scans" ] ~doc:"Scans per scanner.")

let sched =
  Arg.(
    value & opt string "random"
    & info [ "sched" ]
        ~doc:(Printf.sprintf "Scheduler: %s." (String.concat ", " scheds)))

let seed_base =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Base seed; execution $(i,k) uses seed N+k.")

let seeds = Arg.(value & opt int 10 & info [ "seeds" ] ~doc:"Seeded executions.")

let check =
  Arg.(value & flag & info [ "check" ] ~doc:"Validate histories (observation checker).")

let crash_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-at" ] ~docv:"CLOCK"
        ~doc:"Crash process 0 at this step (permanent halting failure).")

let nemesis =
  Arg.(
    value & opt string "none"
    & info [ "nemesis" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Fault injector layered over the scheduler: %s.  Crashed \
              processes restart on a recovery body that rebuilds local \
              state from scratch."
             (String.concat ", " nemeses)))

let mem_faults_arg =
  Arg.(
    value & opt string "none"
    & info [ "mem-faults" ] ~docv:"KINDS"
        ~doc:
          "Memory-fault storm over the base scheduler: comma-separated \
           fault kinds from lose (silently dropped writes), stale \
           (superseded values served once), corrupt (stored value garbled), \
           stick (cell stops accepting writes); or $(b,all).  Composable \
           with $(b,--nemesis) and $(b,--shrink).")

let mem_rate =
  Arg.(
    value & opt float 0.02
    & info [ "mem-rate" ] ~docv:"P"
        ~doc:"Per-decision-point injection probability for --mem-faults.")

let mem_max =
  Arg.(
    value & opt int 8
    & info [ "mem-max" ] ~docv:"N"
        ~doc:"Maximum memory faults injected per run.")

let expect_violations =
  Arg.(
    value & flag
    & info [ "expect-violations" ]
        ~doc:
          "Invert the $(b,--check) exit status: succeed only if at least \
           one checker violation occurred (used to demonstrate that raw \
           registers break under memory faults).")

let shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:
          "On a checker violation, delta-debug the recorded schedule to a \
           minimal failing decision list and print it (saved to \
           $(b,--replay-file) if given).")

let replay_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay-file" ] ~docv:"FILE"
        ~doc:
          "Without $(b,--shrink): replay the schedule stored in FILE \
           instead of running seeded executions.  With $(b,--shrink): \
           write the minimal failing schedule to FILE.")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a machine-readable campaign summary to FILE.")

let stick_epoch =
  Arg.(
    value
    & opt (some int) None
    & info [ "stick-epoch" ] ~docv:"SHARD"
        ~doc:
          "($(b,--impl resilient) only) Stick shard SHARD's epoch cell at \
           its first access: updates keep drawing duplicate epochs until \
           the stuck-epoch detector triggers a shard rebuild.  The \
           campaign then requires at least one completed rebuild and a \
           fully-validated scan of the rebuilt shard.")

let stall_shard =
  Arg.(
    value
    & opt (some int) None
    & info [ "stall-shard" ] ~docv:"SHARD"
        ~doc:
          "($(b,--impl resilient) only) Latency nemesis: withhold every \
           access to shard SHARD's cells during clock window [50, 450], \
           running other processes instead.")

let slow_pid =
  Arg.(
    value
    & opt (some int) None
    & info [ "slow-pid" ] ~docv:"PID"
        ~doc:
          "($(b,--impl resilient) only) Latency nemesis: let PID take only \
           every 8th of its scheduled steps (a slow domain).")

let max_rounds =
  Arg.(
    value & opt int 6
    & info [ "max-rounds" ] ~docv:"N"
        ~doc:
          "($(b,--impl resilient) only) Scan round budget: a validated \
           cross-shard scan degrades explicitly after N rounds.")

let power_loss_arg =
  Arg.(
    value & opt string "none"
    & info [ "power-loss" ] ~docv:"MODE"
        ~doc:
          "($(b,--impl durable) only) Power-loss fault injection: \
           $(b,none); a clock value (one blackout at that step: every \
           device drops its un-synced write cache except a torn fragment, \
           every process crashes and restarts on a recovery body); \
           $(b,storm) (seeded random blackouts); $(b,sweep) (per seed, one \
           baseline run plus one run with a blackout at every schedule \
           point — the exhaustive recovery campaign).")

let checkpoint_every =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "($(b,--impl durable) only) Seal a checkpoint every N commits \
           (0 = log-only, never checkpoint).")

let wal_mode =
  Arg.(
    value & opt string "write-ahead"
    & info [ "wal-mode" ] ~docv:"MODE"
        ~doc:
          "($(b,--impl durable) only) $(b,write-ahead) (sound: append + \
           sync before the update is applied or acknowledged) or \
           $(b,late-log) (deliberately unsound: apply first, log after — \
           exists to show the power-loss campaign catches \
           committed-then-lost bugs; pair with $(b,--expect-violations)).")

let mem_backend =
  Arg.(
    value & opt string "sim"
    & info [ "mem" ] ~docv:"BACKEND"
        ~doc:
          "Memory backend: $(b,sim) (the step-counting shared memory) or \
           $(b,net) (ABD quorum registers replicated across \
           $(b,--replicas) crash-prone replica processes over the \
           simulated message transport — docs/MODEL.md section 14).")

let replicas =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"N"
        ~doc:"($(b,--mem net) only) Replica processes backing each register.")

let net_nemesis =
  Arg.(
    value & opt string "none"
    & info [ "net-nemesis" ] ~docv:"NAME"
        ~doc:
          "($(b,--mem net) only) Network fault injector layered over the \
           scheduler: $(b,none), $(b,partition_storm) (seeded symmetric \
           partitions that heal), $(b,heal_after) (one deterministic \
           quorum-loss window against replica 0), $(b,dup_flood) \
           (duplicate deliveries), $(b,lag_spike) (reordering bursts).  \
           Composable with $(b,--nemesis) and $(b,--shrink).")

let net_mode =
  Arg.(
    value & opt string "abd"
    & info [ "net-mode" ] ~docv:"MODE"
        ~doc:
          "($(b,--mem net) only) $(b,abd) (sound: reads write back the \
           maximal value before returning) or $(b,weak) (deliberately \
           unsound fast reads without write-back — exhibits new/old \
           inversion under partitions; pair with \
           $(b,--expect-violations)).")

let net_rate =
  Arg.(
    value & opt float 0.02
    & info [ "net-rate" ] ~docv:"P"
        ~doc:"Per-decision-point injection probability for --net-nemesis.")

let reconfig_mode =
  Arg.(
    value & opt string "off"
    & info [ "reconfig" ] ~docv:"MODE"
        ~doc:
          "Online-reconfiguration campaign over the net backend \
           (docs/MODEL.md section 16): $(b,off), $(b,fenced) (sound: seal \
           the old configuration, state-transfer under the new epoch, \
           epoch-fence stale requests) or $(b,naive) (deliberately \
           unsound: membership swaps without the fence — a write \
           concurrent with the transfer can be lost; pair with \
           $(b,--expect-violations)).  Writers are $(b,--updaters) x \
           $(b,--updates), readers $(b,--scanners) x $(b,--scans).")

let spares =
  Arg.(
    value & opt int 2
    & info [ "spares" ] ~docv:"N"
        ~doc:
          "($(b,--reconfig) only) Spare pool replicas available for \
           promotion by replacement and rotation configurations.")

let reconfig_nemesis =
  Arg.(
    value & opt string "none"
    & info [ "reconfig-nemesis" ] ~docv:"NAME"
        ~doc:
          "($(b,--reconfig) only) Membership fault injector: $(b,none), \
           $(b,replica_death) (seeded permanent crashes of initial \
           members, capped by $(b,--replica-death)), \
           $(b,rolling_restart) (deterministic maintenance roll), \
           $(b,config_churn) (seeded Reconfig decisions — rotations \
           under load), $(b,split_brain) (one churned rotation plus \
           permanent death of a majority of the initial members — the \
           E21 recipe).  Composable with $(b,--nemesis), \
           $(b,--net-nemesis) and $(b,--shrink).")

let replica_death_max =
  Arg.(
    value & opt int 1
    & info [ "replica-death" ] ~docv:"N"
        ~doc:
          "Maximum permanent replica deaths injected by \
           $(b,--reconfig-nemesis replica_death).")

let txn_mode =
  Arg.(
    value & opt string "fcw"
    & info [ "txn-mode" ] ~docv:"MODE"
        ~doc:
          "($(b,--impl txn) only) $(b,fcw) (sound: first-committer-wins \
           write-write validation at commit) or $(b,lww) (deliberately \
           unsound last-writer-wins: commit skips validation — exists to \
           show the snapshot-isolation oracle catches lost updates; pair \
           with $(b,--expect-violations)).")

let cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"drive partial snapshot workloads in the simulator")
    Term.(
      const run $ impl $ shards $ m $ r $ updaters $ updates $ scanners
      $ scans $ sched $ seed_base $ seeds $ check $ crash_at $ nemesis
      $ mem_faults_arg $ mem_rate $ mem_max $ expect_violations $ shrink
      $ replay_file $ json_file $ stick_epoch $ stall_shard $ slow_pid
      $ max_rounds $ power_loss_arg $ checkpoint_every $ wal_mode
      $ mem_backend $ replicas $ net_nemesis $ net_mode $ net_rate
      $ txn_mode $ reconfig_mode $ spares $ reconfig_nemesis
      $ replica_death_max)

let () = exit (Cmd.eval' cmd)
