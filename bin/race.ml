(* Happens-before race campaign over the seeded fixtures.

     # all fixtures, verdicts checked against expectations (CI mode):
     dune exec bin/race.exe -- --seeds 3 --json _artifacts/race.json

     # one fixture, with a ddmin-shrunk witness schedule:
     dune exec bin/race.exe -- --fixture racy-counter --shrink \
         --witness-file witness.sched

     # replay a saved (possibly shrunk) schedule against a fixture:
     dune exec bin/race.exe -- --fixture racy-counter \
         --replay-file witness.sched

   Exit status 0 iff every fixture matched its expected verdict (racy
   fixtures raced under every schedule tried, clean fixtures never did) —
   and, with --replay-file, iff the replay shows a race. *)

open Psnap
module RF = Psnap_harness.Race_fixtures

let scheds_for ~seeds =
  ("round-robin", Scheduler.round_robin ())
  :: List.init seeds (fun s ->
         (Printf.sprintf "random:%d" s, Scheduler.random ~seed:s ()))

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let run_campaign fixture_name seeds shrink witness_file replay_file json_file =
  let fixtures =
    match fixture_name with
    | "all" -> RF.all
    | name -> (
      match RF.find name with
      | Some f -> [ f ]
      | None ->
        Printf.eprintf "unknown fixture %S (choose from: %s, all)\n" name
          (String.concat ", " (List.map (fun f -> f.RF.name) RF.all));
        exit 2)
  in
  match replay_file with
  | Some path ->
    (* Replay mode: a single fixture + a saved schedule. *)
    let f =
      match fixtures with
      | [ f ] -> f
      | _ ->
        Printf.eprintf "--replay-file needs a single --fixture\n";
        exit 2
    in
    let decisions = Shrink.load path in
    let racy = RF.races_under f decisions in
    Printf.printf "%s: replayed %d decisions -> %s\n" f.RF.name
      (List.length decisions)
      (if racy then "race reproduced" else "no race");
    if racy then 0 else 1
  | None ->
    let mismatches = ref 0 in
    let json_fixtures = ref [] in
    List.iter
      (fun f ->
        let verdicts =
          List.map
            (fun (sname, sched) ->
              let _, races = RF.run ~record_trace:false ~sched f in
              (sname, races))
            (scheds_for ~seeds)
        in
        let raced = List.filter (fun (_, rs) -> rs <> []) verdicts in
        (* A racy fixture must race under *every* schedule tried (the bug
           is unconditional); a clean one must race under none. *)
        let ok =
          if f.RF.racy then List.length raced = List.length verdicts
          else raced = []
        in
        if not ok then incr mismatches;
        Printf.printf "%-16s %-7s expected %-5s got races under %d/%d \
                       schedules%s\n"
          f.RF.name
          (if ok then "ok" else "MISMATCH")
          (if f.RF.racy then "racy" else "clean")
          (List.length raced) (List.length verdicts)
          (match raced with
          | (sname, r :: _) :: _ ->
            Printf.sprintf " (first: %s under %s)"
              (Race.kind_to_string r.Race.kind)
              sname
          | _ -> "");
        let witness_json = ref "null" in
        if shrink && f.RF.racy then begin
          match RF.witness ~sched:(Scheduler.round_robin ()) f with
          | None -> ()
          | Some (r, minimal, oracle_calls) ->
            Printf.printf
              "  witness: %s race on %s#%d (p%d step %d / p%d step %d), \
               shrunk to %d decisions in %d oracle calls\n"
              (Race.kind_to_string r.Race.kind)
              r.Race.name r.Race.oid r.Race.first.Race.pid
              r.Race.first.Race.clock r.Race.second.Race.pid
              r.Race.second.Race.clock (List.length minimal) oracle_calls;
            witness_json :=
              Printf.sprintf {|{"report":%s,"decisions":[%s]}|}
                (Race.report_to_json r)
                (String.concat ","
                   (List.map
                      (fun d ->
                        Printf.sprintf "%S"
                          (Scheduler.decision_to_string d))
                      minimal));
            match witness_file with
            | Some path when List.length fixtures = 1 ->
              Shrink.save path minimal;
              Printf.printf "  witness schedule saved to %s\n" path
            | _ -> ()
        end;
        json_fixtures :=
          Printf.sprintf
            {|{"fixture":"%s","expected":"%s","ok":%b,"raced_under":%d,"schedules":%d,"witness":%s}|}
            (json_escape f.RF.name)
            (if f.RF.racy then "racy" else "clean")
            ok (List.length raced) (List.length verdicts) !witness_json
          :: !json_fixtures)
      fixtures;
    (match json_file with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Printf.fprintf oc {|{"mismatches":%d,"fixtures":[%s]}|}
            !mismatches
            (String.concat "," (List.rev !json_fixtures));
          output_char oc '\n')
    | None -> ());
    if !mismatches = 0 then 0 else 1

open Cmdliner

let fixture =
  Arg.(
    value & opt string "all"
    & info [ "fixture" ]
        ~doc:"Fixture to run (racy-counter, cas-counter, unpublished-view, \
              clean-fig3, all).")

let seeds =
  Arg.(
    value & opt int 3
    & info [ "seeds" ] ~doc:"Seeded random schedules per fixture (plus \
                             round-robin).")

let shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"ddmin-shrink a witness schedule for each racy fixture.")

let witness_file =
  Arg.(
    value & opt (some string) None
    & info [ "witness-file" ]
        ~doc:"Save the shrunk witness schedule (single fixture + --shrink).")

let replay_file =
  Arg.(
    value & opt (some string) None
    & info [ "replay-file" ]
        ~doc:"Replay a saved schedule against --fixture; exit 0 iff the \
              race reproduces.")

let json_file =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~doc:"Write a machine-readable campaign summary.")

let cmd =
  Cmd.v
    (Cmd.info "race"
       ~doc:"happens-before race checking over the seeded fixtures")
    Term.(
      const run_campaign $ fixture $ seeds $ shrink $ witness_file
      $ replay_file $ json_file)

let () = exit (Cmd.eval' cmd)
