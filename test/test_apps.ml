(* Tests of the application layer built on the public snapshot API:
   commit-adopt's three guarantees under many schedules, and the
   f-array-backed active set. *)

open Psnap
module CA = Psnap_apps.Commit_adopt.Make (Sim_fig3)
module CA_afek = Psnap_apps.Commit_adopt.Make (Sim_afek)

let check_bool = Alcotest.(check bool)

(* the same suite runs against commit-adopt over two snapshot backends *)
module Suite (C : sig
  type 'v t

  type 'v handle

  type 'v outcome = Commit of 'v | Adopt of 'v | Free of 'v

  val create : n:int -> unit -> 'v t

  val handle : 'v t -> pid:int -> 'v handle

  val propose : 'v handle -> pid:int -> 'v -> 'v outcome
end) =
struct
  let run ~sched proposals =
    let n = Array.length proposals in
    let t = C.create ~n () in
    let outcomes = Array.make n None in
    let procs =
      Array.init n (fun pid () ->
          let h = C.handle t ~pid in
          outcomes.(pid) <- Some (C.propose h ~pid proposals.(pid)))
    in
    ignore (Sim.run ~sched procs);
    Array.map Option.get outcomes

  let value = function C.Commit v | C.Adopt v | C.Free v -> v

  let test_solo () =
    let out = run ~sched:(Scheduler.round_robin ()) [| 42 |] in
    check_bool "solo commits own value" true (out.(0) = C.Commit 42)

  let test_convergence () =
    (* unanimous proposals commit, under every scheduler family *)
    for seed = 0 to 19 do
      List.iter
        (fun sched ->
          let out = run ~sched [| 7; 7; 7; 7 |] in
          Array.iter
            (fun o ->
              check_bool "unanimous proposals all commit" true (o = C.Commit 7))
            out)
        [
          Scheduler.random ~seed ();
          Scheduler.bursty ~seed ();
          Scheduler.pct ~seed ~expected_steps:300 ();
        ]
    done

  let test_agreement_and_validity () =
    for seed = 0 to 59 do
      let proposals = [| 0; 1; 0; 1 |] in
      let out = run ~sched:(Scheduler.random ~seed ()) proposals in
      (* validity *)
      Array.iter
        (fun o ->
          check_bool "outcome value was proposed" true
            (Array.exists (fun p -> p = value o) proposals))
        out;
      (* agreement: a commit forces everyone onto its value, and no Free *)
      Array.iter
        (function
          | C.Commit w ->
            Array.iter
              (fun o ->
                check_bool "all carry the committed value" true (value o = w);
                check_bool "no Free next to a commit" true
                  (match o with C.Free _ -> false | _ -> true))
              out
          | C.Adopt _ | C.Free _ -> ())
        out;
      (* all commits agree *)
      let commits =
        Array.to_list out
        |> List.filter_map (function C.Commit w -> Some w | _ -> None)
      in
      match commits with
      | [] -> ()
      | w :: rest ->
        check_bool "commits agree" true (List.for_all (fun x -> x = w) rest)
    done

  let test_repeated_rounds_safe () =
    (* chaining instances: once a round commits, later rounds are unanimous *)
    for seed = 0 to 9 do
      let n = 3 in
      let rounds = 6 in
      let instances = Array.init rounds (fun _ -> C.create ~n ()) in
      let final = Array.make n None in
      let procs =
        Array.init n (fun pid () ->
            let v = ref pid in
            (* distinct proposals *)
            let decided = ref None in
            for r = 0 to rounds - 1 do
              let h = C.handle instances.(r) ~pid in
              match C.propose h ~pid !v with
              | C.Commit w ->
                if !decided = None then decided := Some w;
                v := w
              | C.Adopt w -> v := w
              | C.Free w -> v := w
            done;
            final.(pid) <- Some (!decided, !v))
      in
      ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
      (* any two decisions agree; deciders' values stick *)
      let decisions =
        Array.to_list final |> List.filter_map (fun x -> fst (Option.get x))
      in
      match decisions with
      | [] -> ()
      | w :: rest ->
        check_bool "chained decisions agree" true
          (List.for_all (fun x -> x = w) rest);
        Array.iter
          (fun x ->
            check_bool "everyone converged to the decision" true
              (snd (Option.get x) = w))
          final
    done

  let cases prefix =
    [
      Alcotest.test_case (prefix ^ ": solo") `Quick test_solo;
      Alcotest.test_case (prefix ^ ": convergence") `Quick test_convergence;
      Alcotest.test_case (prefix ^ ": agreement+validity") `Quick
        test_agreement_and_validity;
      Alcotest.test_case (prefix ^ ": chained rounds") `Quick
        test_repeated_rounds_safe;
    ]
end

module Suite_fig3 = Suite (CA)
module Suite_afek = Suite (CA_afek)

(* ---- the f-array active set joins the generic validity matrix ---- *)

module FA = Psnap_snapshot.Farray_activeset.Make (Psnap.Mem.Sim)

let test_farray_aset_validity () =
  for seed = 0 to 29 do
    let hist = History.create ~now:Sim.mark () in
    let t = FA.create ~n:4 () in
    let member pid () =
      let h = FA.handle t ~pid in
      for _ = 1 to 5 do
        ignore
          (History.record hist ~pid Activeset_check.Join (fun () ->
               FA.join h;
               Activeset_check.Ack));
        ignore
          (History.record hist ~pid Activeset_check.Leave (fun () ->
               FA.leave h;
               Activeset_check.Ack))
      done
    in
    let observer pid () =
      for _ = 1 to 8 do
        ignore
          (History.record hist ~pid Activeset_check.Get_set (fun () ->
               Activeset_check.Set (FA.get_set t)))
      done
    in
    ignore
      (Sim.run ~sched:(Scheduler.random ~seed ())
         [| member 0; member 1; observer 2; observer 3 |]);
    match Activeset_check.check (History.entries hist) with
    | [] -> ()
    | v :: _ -> Alcotest.failf "violation: %a" Activeset_check.pp_violation v
  done

let test_farray_aset_costs () =
  let getset_steps = ref 0 and join_steps = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t = FA.create ~n:64 () in
           let h = FA.handle t ~pid:0 in
           let s0 = Sim.steps_of 0 in
           FA.join h;
           join_steps := Sim.steps_of 0 - s0;
           let s1 = Sim.steps_of 0 in
           ignore (FA.get_set t);
           getset_steps := Sim.steps_of 0 - s1);
       |]);
  Alcotest.(check int) "getSet = 1 step" 1 !getset_steps;
  (* leaf write + 2 refreshes x 4 steps x log2 64 levels *)
  Alcotest.(check bool)
    (Printf.sprintf "join O(log n): %d" !join_steps)
    true
    (!join_steps <= 1 + (6 * 8))

(* ---- timestamps ---- *)

module TS = Psnap_apps.Timestamps.Make (Sim_fig3)

let test_timestamps_sequential () =
  let out = ref [] in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t = TS.create ~n:1 () in
           let h = TS.handle t ~pid:0 in
           let a = TS.next h in
           let b = TS.next h in
           let c = TS.next h in
           out := [ a; b; c ];
           Alcotest.(check int) "current" 3 (TS.current h));
       |]);
  match !out with
  | [ a; b; c ] ->
    check_bool "strictly increasing" true
      (TS.compare_label a b < 0 && TS.compare_label b c < 0)
  | _ -> Alcotest.fail "three labels expected"

let test_timestamps_monotone_concurrent () =
  for seed = 0 to 29 do
    let t = TS.create ~n:4 () in
    let labels = ref [] in
    (* (label, inv, resp) triples, appended from each fiber *)
    let proc pid () =
      let h = TS.handle t ~pid in
      for _ = 1 to 6 do
        let inv = Sim.mark () in
        let l = TS.next h in
        let resp = Sim.mark () in
        labels := (l, inv, resp) :: !labels
      done
    in
    ignore
      (Sim.run ~sched:(Scheduler.random ~seed ())
         (Array.init 4 (fun pid -> proc pid)));
    let all = !labels in
    (* distinct *)
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> TS.compare_label a b) all in
    let rec distinct = function
      | (a, _, _) :: ((b, _, _) :: _ as rest) ->
        TS.compare_label a b < 0 && distinct rest
      | _ -> true
    in
    check_bool "labels distinct" true (distinct sorted);
    (* real-time order respected *)
    List.iter
      (fun (la, _, ra) ->
        List.iter
          (fun (lb, ib, _) ->
            if ra < ib then
              check_bool "completed-before implies smaller label" true
                (TS.compare_label la lb < 0))
          all)
      all
  done

(* ---- combining counter ---- *)

module Counter = Psnap_apps.Combining_counter.Make (Sim_fig3)

let test_counter_sequential () =
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t = Counter.create ~n:1 ~counters:2 () in
           let h = Counter.handle t ~pid:0 in
           Alcotest.(check int) "zero" 0 (Counter.read h ~counter:0);
           Counter.incr h ~counter:0;
           Counter.incr h ~counter:0;
           Counter.add h ~counter:1 5;
           Alcotest.(check int) "c0" 2 (Counter.read h ~counter:0);
           Alcotest.(check int) "c1" 5 (Counter.read h ~counter:1);
           Alcotest.(check (list (pair int int)))
             "read_many"
             [ (1, 5); (0, 2) ]
             (Counter.read_many h [ 1; 0 ]));
       |])

let test_counter_concurrent_exact () =
  for seed = 0 to 19 do
    let n = 4 in
    let t = Counter.create ~n ~counters:1 () in
    let per_proc = 25 in
    let procs =
      Array.init n (fun pid () ->
          let h = Counter.handle t ~pid in
          for _ = 1 to per_proc do
            Counter.incr h ~counter:0
          done)
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    ignore
      (Sim.run ~sched:(Scheduler.round_robin ())
         [|
           (fun () ->
             let h = Counter.handle t ~pid:0 in
             Alcotest.(check int) "all increments counted" (n * per_proc)
               (Counter.read h ~counter:0));
         |])
  done

let test_counter_cross_consistency () =
  (* each worker bumps counter 0 then counter 1 each round, so at every
     instant 0 <= sum0 - sum1 <= workers; an atomic read_many must see
     that, always *)
  for seed = 0 to 19 do
    let workers = 3 in
    let t = Counter.create ~n:(workers + 1) ~counters:2 () in
    let worker pid () =
      let h = Counter.handle t ~pid in
      for _ = 1 to 20 do
        Counter.incr h ~counter:0;
        Counter.incr h ~counter:1
      done
    in
    let ok = ref true in
    let reader () =
      let h = Counter.handle t ~pid:workers in
      for _ = 1 to 15 do
        match Counter.read_many h [ 0; 1 ] with
        | [ (0, s0); (1, s1) ] ->
          if not (s0 >= s1 && s0 - s1 <= workers) then ok := false
        | _ -> ok := false
      done
    in
    ignore
      (Sim.run
         ~sched:(Scheduler.starve ~victims:[ workers ] ~seed ())
         (Array.init (workers + 1) (fun pid ->
              if pid < workers then worker pid else reader)));
    check_bool "cross-counter reads consistent" true !ok
  done

(* ---- kv ---- *)

module Kv = Psnap_apps.Kv.Make (Sim_fig3)

let test_kv_basics () =
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t =
             Kv.create ~n:1 [ ("aapl", 100); ("goog", 200); ("msft", 300) ]
           in
           let h = Kv.handle t ~pid:0 in
           Alcotest.(check int) "get" 200 (Kv.get h "goog");
           Kv.set h "goog" 250;
           Alcotest.(check (list (pair string int)))
             "get_many (duplicates ok)"
             [ ("goog", 250); ("aapl", 100); ("goog", 250) ]
             (Kv.get_many h [ "goog"; "aapl"; "goog" ]);
           Alcotest.(check (list (pair string int)))
             "get_all"
             [ ("aapl", 100); ("goog", 250); ("msft", 300) ]
             (Kv.get_all h);
           check_bool "mem" true (Kv.mem t "aapl");
           check_bool "unknown key raises" true
             (match Kv.get h "tsla" with
             | _ -> false
             | exception Invalid_argument _ -> true));
       |]);
  check_bool "duplicate key rejected" true
    (match Kv.create ~n:1 [ ("a", 1); ("a", 2) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_kv_atomic_multiget () =
  (* writer keeps "x" = "y" (one generation apart); atomic get_many never
     observes a gap larger than one update *)
  for seed = 0 to 19 do
    let t = Kv.create ~n:2 [ ("x", 0); ("y", 0); ("pad", -1) ] in
    let writer () =
      let h = Kv.handle t ~pid:0 in
      for g = 1 to 50 do
        Kv.set h "x" g;
        Kv.set h "y" g
      done
    in
    let ok = ref true in
    let reader () =
      let h = Kv.handle t ~pid:1 in
      for _ = 1 to 20 do
        match Kv.get_many h [ "x"; "y" ] with
        | [ (_, x); (_, y) ] -> if not (x = y || x = y + 1) then ok := false
        | _ -> ok := false
      done
    in
    ignore
      (Sim.run ~sched:(Scheduler.starve ~victims:[ 1 ] ~seed ())
         [| writer; reader |]);
    check_bool "multiget consistent" true !ok
  done

(* ---- lattice agreement ---- *)

module LA = Psnap_apps.Lattice_agreement.Make (Sim_fig3)
module IntSet = Set.Make (Int)

let test_lattice_agreement () =
  (* sets under union; proposals {pid}; decisions must be comparable chains
     containing one's own proposal — under many schedules *)
  for seed = 0 to 39 do
    let n = 5 in
    let t = LA.create ~n ~bottom:IntSet.empty ~join:IntSet.union () in
    let decisions = Array.make n IntSet.empty in
    let procs =
      Array.init n (fun pid () ->
          let h = LA.handle t ~pid in
          decisions.(pid) <- LA.propose h (IntSet.singleton pid))
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    let all = Array.init n (fun q -> q) |> Array.to_list in
    (* validity *)
    Array.iteri
      (fun pid d ->
        check_bool "own proposal included" true (IntSet.mem pid d);
        check_bool "only proposals included" true
          (IntSet.for_all (fun x -> List.mem x all) d))
      decisions;
    (* comparability: decisions form a chain under inclusion *)
    Array.iteri
      (fun i di ->
        Array.iteri
          (fun j dj ->
            if i < j then
              check_bool "decisions comparable" true
                (IntSet.subset di dj || IntSet.subset dj di))
          decisions)
      decisions
  done

let test_lattice_agreement_vectors () =
  (* pointwise-max vectors: same properties, different lattice *)
  let join a b = Array.map2 max a b in
  let leq a b = Array.for_all2 ( <= ) a b in
  for seed = 0 to 19 do
    let n = 4 in
    let t = LA.create ~n ~bottom:[| 0; 0; 0 |] ~join () in
    let proposals =
      [| [| 3; 0; 0 |]; [| 0; 5; 0 |]; [| 0; 0; 7 |]; [| 1; 1; 1 |] |]
    in
    let decisions = Array.make n [||] in
    let procs =
      Array.init n (fun pid () ->
          let h = LA.handle t ~pid in
          decisions.(pid) <- LA.propose h proposals.(pid))
    in
    ignore (Sim.run ~sched:(Scheduler.bursty ~seed ()) procs);
    let top = Array.fold_left join [| 0; 0; 0 |] proposals in
    Array.iteri
      (fun pid d ->
        check_bool "above own proposal" true (leq proposals.(pid) d);
        check_bool "below the join of all" true (leq d top))
      decisions;
    Array.iter
      (fun di ->
        Array.iter
          (fun dj -> check_bool "chain" true (leq di dj || leq dj di))
          decisions)
      decisions
  done

let () =
  Alcotest.run "apps"
    [
      ("commit-adopt/fig3", Suite_fig3.cases "fig3");
      ("commit-adopt/afek", Suite_afek.cases "afek");
      ( "farray-activeset",
        [
          Alcotest.test_case "validity" `Quick test_farray_aset_validity;
          Alcotest.test_case "costs" `Quick test_farray_aset_costs;
        ] );
      ( "timestamps",
        [
          Alcotest.test_case "sequential" `Quick test_timestamps_sequential;
          Alcotest.test_case "monotone under concurrency" `Quick
            test_timestamps_monotone_concurrent;
        ] );
      ( "counter",
        [
          Alcotest.test_case "sequential" `Quick test_counter_sequential;
          Alcotest.test_case "concurrent exact" `Quick
            test_counter_concurrent_exact;
          Alcotest.test_case "cross-counter consistency" `Quick
            test_counter_cross_consistency;
        ] );
      ( "kv",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "atomic multiget" `Quick test_kv_atomic_multiget;
        ] );
      ( "lattice-agreement",
        [
          Alcotest.test_case "sets under union" `Quick test_lattice_agreement;
          Alcotest.test_case "vectors under max" `Quick
            test_lattice_agreement_vectors;
        ] );
    ]
