(* Tests of psnap-lint, the memory-discipline static analyzer
   (lib/analysis): rule firings on known-bad fixtures, waiver handling, and
   a self-check that the shipped algorithm libraries lint clean. *)

module Lint = Psnap_analysis.Lint
module Diagnostic = Psnap_analysis.Diagnostic

let lint source =
  Lint.lint_source ~ruleset:Lint.Algorithm ~file:"fixture.ml" source

let ids diags = List.map Diagnostic.rule_id (List.map (fun d -> d.Diagnostic.rule) diags)

let check_ids = Alcotest.(check (list string))

let check_int = Alcotest.(check int)

(* ---- R1: no-escape ---- *)

let test_ref_escape () =
  let diags =
    lint {|
let counter = ref 0

let bump () = counter := !counter + 1
|}
  in
  check_ids "ref, :=, ! all fire" [ "R1"; "R1"; "R1" ] (ids diags);
  (* file:line diagnostics point at the offending expressions *)
  match diags with
  | first :: _ ->
    Alcotest.(check string) "file recorded" "fixture.ml" first.Diagnostic.file;
    check_int "ref allocation on line 2" 2 first.Diagnostic.line
  | [] -> Alcotest.fail "expected diagnostics"

let test_mutable_field_escape () =
  let diags = lint {|
type t = { mutable count : int }

let touch t = t.count <- t.count + 1
|} in
  check_ids "field decl and assignment fire" [ "R1"; "R1" ] (ids diags)

let test_array_and_hashtbl_escape () =
  let diags =
    lint
      {|
let tbl = Hashtbl.create 8

let f a = a.(0) <- 1

let g k = Hashtbl.add tbl k ()
|}
  in
  check_int "three escapes" 3 (List.length diags);
  check_ids "all R1" [ "R1"; "R1"; "R1" ] (ids diags)

let test_atomic_escape () =
  let diags = lint {|
let f c = Atomic.incr c
|} in
  check_ids "direct Atomic flagged" [ "R1" ] (ids diags)

let test_waived_local_state_clean () =
  let diags =
    lint
      {|
let scan () =
  let[@psnap.local_state "scan-private accumulator"] acc = ref [] in
  acc := 1 :: !acc;
  !acc
|}
  in
  check_ids "waived binding and its uses are clean" [] (ids diags)

let test_waived_field_clean () =
  let diags =
    lint
      {|
type h = {
  mutable seq : int; [@psnap.local_state "single-writer counter"]
}

let bump h = h.seq <- h.seq + 1
|}
  in
  check_ids "waived field and assignment are clean" [] (ids diags)

let test_waiver_needs_reason () =
  let diags = lint {|
let f () =
  let[@psnap.local_state] acc = ref [] in
  ignore acc
|} in
  check_ids "reason-less waiver is W0" [ "W0" ] (ids diags)

(* ---- R2: cas-discipline ---- *)

let test_cas_without_read () =
  let diags =
    lint
      {|
let sneak (m : int M.ref_) = M.cas m ~expected:0 ~desired:1
|}
  in
  check_ids "expected not derived from a read" [ "R2" ] (ids diags)

let test_cas_with_prior_read_clean () =
  let diags =
    lint
      {|
let install m v =
  let old = M.read m in
  M.cas m ~expected:old ~desired:v
|}
  in
  check_ids "read-derived expected is clean" [] (ids diags)

(* ---- R3: loop-bound ---- *)

let test_unbounded_retry_loop () =
  let diags =
    lint
      {|
let spin r =
  let rec go () = if M.read r = 0 then go () else () in
  go ()
|}
  in
  check_ids "unannotated retry loop" [ "R3" ] (ids diags)

let test_while_true () =
  let diags = lint {|
let spin r =
  while true do
    ignore (M.read r)
  done
|} in
  check_ids "while true flagged" [ "R3" ] (ids diags)

let test_annotated_loop_clean () =
  let diags =
    lint
      {|
let scan r =
  let[@psnap.bounded "terminates within 2r+1 collects"] rec go prev =
    let cur = M.read r in
    if cur = prev then cur else go cur
  in
  go (M.read r)
|}
  in
  check_ids "bounded annotation accepted" [] (ids diags)

let test_pure_recursion_not_flagged () =
  let diags =
    lint
      {|
let rec merge a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys -> if x < y then x :: merge xs b else y :: merge a ys
|}
  in
  check_ids "structural recursion is clean" [] (ids diags)

(* ---- injection: a planted escape in a real source must be caught ---- *)

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "lib/snapshot") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "repo root not found"
    else find_repo_root parent

(* Run from _build/default/test, where dune mirrors the source tree. *)
let repo_root = lazy (find_repo_root (Sys.getcwd ()))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_injected_escape_caught () =
  let path =
    Filename.concat (Lazy.force repo_root) "lib/snapshot/partial_cas.ml"
  in
  let clean = read_file path in
  Alcotest.(check (list string))
    "shipped source is clean" []
    (ids (Lint.lint_source ~ruleset:Lint.Algorithm ~file:path clean));
  let planted = clean ^ "\nlet leak = ref 0\n\nlet () = leak := 1\n" in
  let diags = Lint.lint_source ~ruleset:Lint.Algorithm ~file:path planted in
  check_ids "planted ref escape fires" [ "R1"; "R1" ] (ids diags);
  match diags with
  | d :: _ ->
    Alcotest.(check string) "diagnostic names the file" path d.Diagnostic.file;
    Alcotest.(check bool) "diagnostic has a line" true (d.Diagnostic.line > 0)
  | [] -> Alcotest.fail "expected diagnostics"

let test_injected_casless_read_caught () =
  let path =
    Filename.concat (Lazy.force repo_root) "lib/snapshot/partial_cas.ml"
  in
  let clean = read_file path in
  let planted =
    clean
    ^ {|
module Sneak (M : Psnap_mem.Mem_intf.S) = struct
  let blind_install (r : int M.ref_) = M.cas r ~expected:0 ~desired:1
end
|}
  in
  let diags = Lint.lint_source ~ruleset:Lint.Algorithm ~file:path planted in
  check_ids "read-less CAS fires" [ "R2" ] (ids diags)

(* ---- self-check: the shipped tree lints clean ---- *)

let test_shipped_tree_clean () =
  let root = Lazy.force repo_root in
  let files, diags = Lint.lint_paths [ Filename.concat root "lib" ] in
  Alcotest.(check bool)
    "algorithm files were checked" true
    (List.length files >= 20);
  Alcotest.(check (list string))
    "no violations in the shipped tree" []
    (List.map (Format.asprintf "%a" Diagnostic.pp) diags)

(* ---- infrastructure code is exempt ---- *)

let test_exempt_paths () =
  Alcotest.(check bool)
    "lib/mem is exempt" true
    (Lint.ruleset_for_path "lib/mem/mem_sim.ml" = Lint.Exempt);
  Alcotest.(check bool)
    "lib/snapshot is checked" true
    (Lint.ruleset_for_path "lib/snapshot/collect.ml" = Lint.Algorithm);
  check_ids "exempt file produces nothing" []
    (ids
       (Lint.lint_source ~file:"lib/mem/whatever.ml" "let evil = ref 0"))

let () =
  Alcotest.run "lint"
    [
      ( "no-escape",
        [
          Alcotest.test_case "ref escape" `Quick test_ref_escape;
          Alcotest.test_case "mutable field" `Quick test_mutable_field_escape;
          Alcotest.test_case "array and hashtbl" `Quick
            test_array_and_hashtbl_escape;
          Alcotest.test_case "atomic" `Quick test_atomic_escape;
          Alcotest.test_case "waived binding" `Quick
            test_waived_local_state_clean;
          Alcotest.test_case "waived field" `Quick test_waived_field_clean;
          Alcotest.test_case "waiver needs reason" `Quick
            test_waiver_needs_reason;
        ] );
      ( "cas-discipline",
        [
          Alcotest.test_case "cas without read" `Quick test_cas_without_read;
          Alcotest.test_case "cas after read" `Quick
            test_cas_with_prior_read_clean;
        ] );
      ( "loop-bound",
        [
          Alcotest.test_case "unbounded retry" `Quick test_unbounded_retry_loop;
          Alcotest.test_case "while true" `Quick test_while_true;
          Alcotest.test_case "annotated loop" `Quick test_annotated_loop_clean;
          Alcotest.test_case "pure recursion" `Quick
            test_pure_recursion_not_flagged;
        ] );
      ( "injection",
        [
          Alcotest.test_case "planted ref escape" `Quick
            test_injected_escape_caught;
          Alcotest.test_case "planted read-less cas" `Quick
            test_injected_casless_read_caught;
        ] );
      ( "self-check",
        [
          Alcotest.test_case "shipped tree clean" `Quick
            test_shipped_tree_clean;
          Alcotest.test_case "exempt paths" `Quick test_exempt_paths;
        ] );
    ]
