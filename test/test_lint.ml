(* Tests of psnap-lint, the memory-discipline static analyzer
   (lib/analysis): rule firings on known-bad fixtures, waiver handling, and
   a self-check that the shipped algorithm libraries lint clean. *)

module Lint = Psnap_analysis.Lint
module Diagnostic = Psnap_analysis.Diagnostic

let lint source =
  Lint.lint_source ~ruleset:Lint.Algorithm ~file:"fixture.ml" source

(* Runtime ruleset: R4–R6 only — what lib/runtime and lib/mem get. *)
let lint_rt source =
  Lint.lint_source ~ruleset:Lint.Runtime ~file:"fixture.ml" source

let ids diags = List.map Diagnostic.rule_id (List.map (fun d -> d.Diagnostic.rule) diags)

let check_ids = Alcotest.(check (list string))

let check_int = Alcotest.(check int)

(* ---- R1: no-escape ---- *)

let test_ref_escape () =
  let diags =
    lint {|
let counter = ref 0

let bump () = counter := !counter + 1
|}
  in
  check_ids "ref, :=, ! all fire" [ "R1"; "R1"; "R1" ] (ids diags);
  (* file:line diagnostics point at the offending expressions *)
  match diags with
  | first :: _ ->
    Alcotest.(check string) "file recorded" "fixture.ml" first.Diagnostic.file;
    check_int "ref allocation on line 2" 2 first.Diagnostic.line
  | [] -> Alcotest.fail "expected diagnostics"

let test_mutable_field_escape () =
  let diags = lint {|
type t = { mutable count : int }

let touch t = t.count <- t.count + 1
|} in
  check_ids "field decl and assignment fire" [ "R1"; "R1" ] (ids diags)

let test_array_and_hashtbl_escape () =
  let diags =
    lint
      {|
let tbl = Hashtbl.create 8

let f a = a.(0) <- 1

let g k = Hashtbl.add tbl k ()
|}
  in
  check_int "three escapes" 3 (List.length diags);
  check_ids "all R1" [ "R1"; "R1"; "R1" ] (ids diags)

let test_atomic_escape () =
  let diags = lint {|
let f c = Atomic.incr c
|} in
  check_ids "direct Atomic flagged" [ "R1" ] (ids diags)

let test_waived_local_state_clean () =
  let diags =
    lint
      {|
let scan () =
  let[@psnap.local_state "scan-private accumulator"] acc = ref [] in
  acc := 1 :: !acc;
  !acc
|}
  in
  check_ids "waived binding and its uses are clean" [] (ids diags)

let test_waived_field_clean () =
  let diags =
    lint
      {|
type h = {
  mutable seq : int; [@psnap.local_state "single-writer counter"]
}

let bump h = h.seq <- h.seq + 1
|}
  in
  check_ids "waived field and assignment are clean" [] (ids diags)

let test_waiver_needs_reason () =
  let diags = lint {|
let f () =
  let[@psnap.local_state] acc = ref [] in
  ignore acc
|} in
  check_ids "reason-less waiver is W0" [ "W0" ] (ids diags)

(* ---- R2: cas-discipline ---- *)

let test_cas_without_read () =
  let diags =
    lint
      {|
let sneak (m : int M.ref_) = M.cas m ~expected:0 ~desired:1
|}
  in
  check_ids "expected not derived from a read" [ "R2" ] (ids diags)

let test_cas_with_prior_read_clean () =
  let diags =
    lint
      {|
let install m v =
  let old = M.read m in
  M.cas m ~expected:old ~desired:v
|}
  in
  check_ids "read-derived expected is clean" [] (ids diags)

(* ---- R3: loop-bound ---- *)

let test_unbounded_retry_loop () =
  let diags =
    lint
      {|
let spin r =
  let rec go () = if M.read r = 0 then go () else () in
  go ()
|}
  in
  check_ids "unannotated retry loop" [ "R3" ] (ids diags)

let test_while_true () =
  let diags = lint {|
let spin r =
  while true do
    ignore (M.read r)
  done
|} in
  check_ids "while true flagged" [ "R3" ] (ids diags)

let test_annotated_loop_clean () =
  let diags =
    lint
      {|
let scan r =
  let[@psnap.bounded "terminates within 2r+1 collects"] rec go prev =
    let cur = M.read r in
    if cur = prev then cur else go cur
  in
  go (M.read r)
|}
  in
  check_ids "bounded annotation accepted" [] (ids diags)

let test_pure_recursion_not_flagged () =
  let diags =
    lint
      {|
let rec merge a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys -> if x < y then x :: merge xs b else y :: merge a ys
|}
  in
  check_ids "structural recursion is clean" [] (ids diags)

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "lib/snapshot") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "repo root not found"
    else find_repo_root parent

(* Run from _build/default/test, where dune mirrors the source tree. *)
let repo_root = lazy (find_repo_root (Sys.getcwd ()))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- waiver regressions ---- *)

(* A [let rec .. and ..] group is one loop: the waiver argues about the
   cycle, so annotating any binding of the group covers the rest.  This
   used to flag the un-annotated mutual partner. *)
let test_rec_group_waiver_covers_group () =
  let diags =
    lint
      {|
let[@psnap.helping] rec poll r = if M.read r = 0 then wait r else ()
and wait r = poll r
|}
  in
  check_ids "waiver on one binding covers the rec group" [] (ids diags)

let test_rec_group_unwaived_flags_all () =
  let diags = lint {|
let rec poll r = if M.read r = 0 then wait r else ()
and wait r = poll r
|} in
  check_ids "unwaived group flags both bindings" [ "R3"; "R3" ] (ids diags)

let test_module_level_trailing_waiver () =
  let diags =
    lint
      {|
let rec poll r = if M.read r = 0 then poll r else ()
  [@@psnap.bounded "flag is set within 2 steps"]
|}
  in
  check_ids "trailing [@@] waiver on module-level let rec" [] (ids diags)

(* One [@lint] attribute can waive several rules at once. *)
let test_multi_rule_waiver () =
  let bad =
    {|
let counter = ref 0

let go () = Domain.spawn (fun () -> ignore !counter)
|}
  in
  (* Unwaived under the algorithm ruleset: R1 (ref, !) and R4 both fire. *)
  check_ids "unwaived: R1 twice and R4" [ "R1"; "R4"; "R1" ]
    (ids (lint bad));
  let waived =
    {|
let[@lint "R1,R4: joined before any read of the total"] counter = ref 0

let go () = Domain.spawn (fun () -> ignore !counter)
|}
  in
  check_ids "[@lint \"R1,R4\"] silences both rules" [] (ids (lint waived));
  let partial =
    {|
let[@lint "R1: scratch"] counter = ref 0

let go () = Domain.spawn (fun () -> ignore !counter)
|}
  in
  check_ids "[@lint \"R1\"] alone leaves R4 firing" [ "R4" ]
    (ids (lint partial))

let test_generic_waiver_malformed () =
  check_ids "[@lint] without payload is W0" [ "W0" ]
    (ids (lint_rt {|
let go c = (Domain.spawn (fun () -> ignore !c)) [@lint]
|}));
  check_ids "[@lint] with a non-rule id is W0" [ "W0" ]
    (ids
       (lint_rt
          {|
let go c = (Domain.spawn (fun () -> ignore !c)) [@lint "R4,bogus: x"]
|}))

(* ---- R4: domain-escape (runtime ruleset) ---- *)

let test_domain_escape_direct () =
  let diags =
    lint_rt
      {|
let counter = ref 0

let go () = Domain.spawn (fun () -> counter := !counter + 1)
|}
  in
  check_ids "ref across Domain.spawn" [ "R4" ] (ids diags)

let test_domain_escape_interprocedural () =
  let diags =
    lint_rt
      {|
let table = Hashtbl.create 8

let work () = Hashtbl.add table 1 "x"

let go () = Domain.spawn (fun () -> work ())
|}
  in
  check_ids "root reached through a helper" [ "R4" ] (ids diags)

let test_domain_escape_local_root_clean () =
  let diags =
    lint_rt
      {|
let go () =
  Domain.spawn (fun () ->
      let acc = ref 0 in
      for i = 1 to 10 do acc := !acc + i done;
      !acc)
|}
  in
  check_ids "root allocated inside the closure is domain-local" []
    (ids diags)

let test_domain_escape_atomic_clean () =
  let diags =
    lint_rt
      {|
let counter = Atomic.make 0

let go () = Domain.spawn (fun () -> Atomic.incr counter)
|}
  in
  check_ids "Atomic.t capture is fine" [] (ids diags)

let test_domain_escape_waived () =
  let diags =
    lint_rt
      {|
let log = ref []

let go () =
  (Domain.spawn (fun () -> log := "x" :: !log))
  [@lint "R4: single writer, joined before any read"]
|}
  in
  check_ids "waiver on the spawn site" [] (ids diags)

(* ---- R5: atomic-publication (runtime ruleset) ---- *)

let test_publish_then_patch () =
  let diags =
    lint_rt
      {|
let slot = Atomic.make [||]

let rebuild () =
  let buf = Array.make 4 0 in
  Atomic.set slot buf;
  buf.(0) <- 42
|}
  in
  check_ids "mutate-after-publish" [ "R5" ] (ids diags)

let test_patch_acquired () =
  let diags =
    lint_rt
      {|
let patch slot =
  let cur = Atomic.get slot in
  cur.(1) <- 7
|}
  in
  check_ids "mutate a value loaded from an atomic" [ "R5" ] (ids diags)

let test_publish_after_build_clean () =
  let diags =
    lint_rt
      {|
let rebuild slot =
  let buf = Array.make 4 0 in
  buf.(0) <- 42;
  Atomic.set slot buf
|}
  in
  check_ids "build fully then publish is the protocol" [] (ids diags)

(* ---- R6: frozen-view (runtime ruleset) ---- *)

let test_scan_result_patched () =
  let diags =
    lint_rt
      {|
let snap scan h idxs =
  let view = scan h idxs in
  view.(0) <- 0;
  view
|}
  in
  check_ids "scan result mutated" [ "R6" ] (ids diags)

let test_scan_result_copied_clean () =
  let diags =
    lint_rt
      {|
let snap scan h idxs =
  let view = scan h idxs in
  let out = Array.copy view in
  out.(0) <- 0;
  out
|}
  in
  check_ids "copy before patching" [] (ids diags)

(* ---- the intentionally racy fixture files ---- *)

let fixture_path name =
  Filename.concat (Lazy.force repo_root) (Filename.concat "test/fixtures" name)

let test_fixture_racy_counter () =
  let diags =
    Lint.lint_file ~ruleset:Lint.Runtime (fixture_path "racy_counter.ml")
  in
  check_ids "both spawn sites flagged, atomic control clean" [ "R4"; "R4" ]
    (ids diags)

let test_fixture_unpublished_view () =
  let diags =
    Lint.lint_file ~ruleset:Lint.Runtime (fixture_path "unpublished_view.ml")
  in
  check_ids "producer and consumer R5, scan patch R6" [ "R5"; "R5"; "R6" ]
    (ids diags)

(* ---- injection: a planted escape in a real source must be caught ---- *)

let test_injected_escape_caught () =
  let path =
    Filename.concat (Lazy.force repo_root) "lib/snapshot/partial_cas.ml"
  in
  let clean = read_file path in
  Alcotest.(check (list string))
    "shipped source is clean" []
    (ids (Lint.lint_source ~ruleset:Lint.Algorithm ~file:path clean));
  let planted = clean ^ "\nlet leak = ref 0\n\nlet () = leak := 1\n" in
  let diags = Lint.lint_source ~ruleset:Lint.Algorithm ~file:path planted in
  check_ids "planted ref escape fires" [ "R1"; "R1" ] (ids diags);
  match diags with
  | d :: _ ->
    Alcotest.(check string) "diagnostic names the file" path d.Diagnostic.file;
    Alcotest.(check bool) "diagnostic has a line" true (d.Diagnostic.line > 0)
  | [] -> Alcotest.fail "expected diagnostics"

let test_injected_casless_read_caught () =
  let path =
    Filename.concat (Lazy.force repo_root) "lib/snapshot/partial_cas.ml"
  in
  let clean = read_file path in
  let planted =
    clean
    ^ {|
module Sneak (M : Psnap_mem.Mem_intf.S) = struct
  let blind_install (r : int M.ref_) = M.cas r ~expected:0 ~desired:1
end
|}
  in
  let diags = Lint.lint_source ~ruleset:Lint.Algorithm ~file:path planted in
  check_ids "read-less CAS fires" [ "R2" ] (ids diags)

(* ---- self-check: the shipped tree lints clean ---- *)

let test_shipped_tree_clean () =
  let root = Lazy.force repo_root in
  let files, diags = Lint.lint_paths [ Filename.concat root "lib" ] in
  Alcotest.(check bool)
    "algorithm files were checked" true
    (List.length files >= 20);
  Alcotest.(check (list string))
    "no violations in the shipped tree" []
    (List.map (Format.asprintf "%a" Diagnostic.pp) diags)

(* ---- rulesets by path ---- *)

let test_rulesets_by_path () =
  Alcotest.(check bool)
    "lib/mem gets the runtime ruleset" true
    (Lint.ruleset_for_path "lib/mem/hardened.ml" = Lint.Runtime);
  Alcotest.(check bool)
    "lib/runtime gets the runtime ruleset" true
    (Lint.ruleset_for_path "lib/runtime/sharded.ml" = Lint.Runtime);
  Alcotest.(check bool)
    "lib/snapshot gets the algorithm ruleset" true
    (Lint.ruleset_for_path "lib/snapshot/collect.ml" = Lint.Algorithm);
  Alcotest.(check bool)
    "lib/sched (the single-threaded simulator) is exempt" true
    (Lint.ruleset_for_path "lib/sched/sim.ml" = Lint.Exempt);
  (* Raw mutability is the runtime layer's job: no R1 there, only R4–R6. *)
  check_ids "a raw ref alone is fine under the runtime ruleset" []
    (ids
       (Lint.lint_source ~file:"lib/mem/whatever.ml" "let evil = ref 0"));
  check_ids "exempt file produces nothing" []
    (ids
       (Lint.lint_source ~file:"lib/sched/whatever.ml"
          "let evil = ref 0\n\nlet go () = Domain.spawn (fun () -> incr \
           evil)"))

let () =
  Alcotest.run "lint"
    [
      ( "no-escape",
        [
          Alcotest.test_case "ref escape" `Quick test_ref_escape;
          Alcotest.test_case "mutable field" `Quick test_mutable_field_escape;
          Alcotest.test_case "array and hashtbl" `Quick
            test_array_and_hashtbl_escape;
          Alcotest.test_case "atomic" `Quick test_atomic_escape;
          Alcotest.test_case "waived binding" `Quick
            test_waived_local_state_clean;
          Alcotest.test_case "waived field" `Quick test_waived_field_clean;
          Alcotest.test_case "waiver needs reason" `Quick
            test_waiver_needs_reason;
        ] );
      ( "cas-discipline",
        [
          Alcotest.test_case "cas without read" `Quick test_cas_without_read;
          Alcotest.test_case "cas after read" `Quick
            test_cas_with_prior_read_clean;
        ] );
      ( "loop-bound",
        [
          Alcotest.test_case "unbounded retry" `Quick test_unbounded_retry_loop;
          Alcotest.test_case "while true" `Quick test_while_true;
          Alcotest.test_case "annotated loop" `Quick test_annotated_loop_clean;
          Alcotest.test_case "pure recursion" `Quick
            test_pure_recursion_not_flagged;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "rec group covered by one waiver" `Quick
            test_rec_group_waiver_covers_group;
          Alcotest.test_case "unwaived rec group" `Quick
            test_rec_group_unwaived_flags_all;
          Alcotest.test_case "module-level trailing waiver" `Quick
            test_module_level_trailing_waiver;
          Alcotest.test_case "multi-rule [@lint]" `Quick
            test_multi_rule_waiver;
          Alcotest.test_case "malformed [@lint]" `Quick
            test_generic_waiver_malformed;
        ] );
      ( "domain-escape",
        [
          Alcotest.test_case "direct capture" `Quick
            test_domain_escape_direct;
          Alcotest.test_case "via helper" `Quick
            test_domain_escape_interprocedural;
          Alcotest.test_case "closure-local root" `Quick
            test_domain_escape_local_root_clean;
          Alcotest.test_case "atomic capture" `Quick
            test_domain_escape_atomic_clean;
          Alcotest.test_case "waived spawn" `Quick test_domain_escape_waived;
        ] );
      ( "atomic-publication",
        [
          Alcotest.test_case "publish then patch" `Quick
            test_publish_then_patch;
          Alcotest.test_case "patch acquired" `Quick test_patch_acquired;
          Alcotest.test_case "build then publish" `Quick
            test_publish_after_build_clean;
        ] );
      ( "frozen-view",
        [
          Alcotest.test_case "scan result patched" `Quick
            test_scan_result_patched;
          Alcotest.test_case "copy before patch" `Quick
            test_scan_result_copied_clean;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "racy_counter.ml" `Quick
            test_fixture_racy_counter;
          Alcotest.test_case "unpublished_view.ml" `Quick
            test_fixture_unpublished_view;
        ] );
      ( "injection",
        [
          Alcotest.test_case "planted ref escape" `Quick
            test_injected_escape_caught;
          Alcotest.test_case "planted read-less cas" `Quick
            test_injected_casless_read_caught;
        ] );
      ( "self-check",
        [
          Alcotest.test_case "shipped tree clean" `Quick
            test_shipped_tree_clean;
          Alcotest.test_case "rulesets by path" `Quick test_rulesets_by_path;
        ] );
    ]
