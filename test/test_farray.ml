(* Tests of the LL/SC primitive and the generic f-array (Jayanti [20]),
   the related-work baseline of Section 5.  The snapshot specialisation is
   additionally covered by the generic suites in test_snapshot.ml and
   test_exhaustive.ml. *)

open Psnap
module M = Mem.Sim
module L = Psnap.Llsc.Make (Psnap.Mem.Sim)
module F = Psnap.Farray.Make (Psnap.Mem.Sim)

let check_int = Alcotest.(check int)

let in_sim ?sched f =
  let sched = Option.value sched ~default:(Scheduler.round_robin ()) in
  let out = ref None in
  ignore (Sim.run ~sched [| (fun () -> out := Some (f ())) |]);
  Option.get !out

(* ---- LL/SC ---- *)

let test_llsc_basic () =
  let v =
    in_sim (fun () ->
        let c = L.make 10 in
        let v0, tag = L.ll c in
        let ok1 = L.sc c tag 20 in
        let ok2 = L.sc c tag 30 in
        (v0, ok1, ok2, L.read c))
  in
  let v0, ok1, ok2, final = v in
  check_int "ll value" 10 v0;
  Alcotest.(check bool) "first sc succeeds" true ok1;
  Alcotest.(check bool) "second sc with stale tag fails" false ok2;
  check_int "final" 20 final

let test_llsc_interference () =
  (* an SC between LL and SC makes the SC fail, even restoring the same
     value (no ABA) *)
  let v =
    in_sim (fun () ->
        let c = L.make 1 in
        let _, tag = L.ll c in
        let _, tag2 = L.ll c in
        assert (L.sc c tag2 1) (* writes the same value, new box *);
        L.sc c tag 99)
  in
  Alcotest.(check bool) "sc fails after interference" false v

let test_llsc_steps () =
  let steps = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let c = L.make 0 in
           let s0 = Sim.steps_of 0 in
           let _, tag = L.ll c in
           ignore (L.sc c tag 1);
           ignore (L.read c);
           steps := Sim.steps_of 0 - s0);
       |]);
  check_int "ll + sc + read = 3 steps" 3 !steps

(* ---- generic f-array ---- *)

let sum_farray init = F.create ~pad:0 ~of_leaf:Fun.id ~combine:( + ) init

let test_farray_sum_sequential () =
  in_sim (fun () ->
      let t = sum_farray [| 1; 2; 3; 4; 5 |] in
      check_int "initial sum" 15 (F.read_root t);
      F.update t 2 30;
      check_int "after update" 42 (F.read_root t);
      F.update t 0 0;
      F.update t 4 0;
      check_int "after more updates" 36 (F.read_root t))

let test_farray_max () =
  in_sim (fun () ->
      let t = F.create ~pad:min_int ~of_leaf:Fun.id ~combine:max [| 3; 9; 4 |] in
      check_int "initial max" 9 (F.read_root t);
      F.update t 1 1;
      check_int "max after lowering the peak" 4 (F.read_root t))

let test_farray_various_sizes () =
  in_sim (fun () ->
      List.iter
        (fun m ->
          let t = sum_farray (Array.init m (fun i -> i + 1)) in
          check_int
            (Printf.sprintf "sum of 1..%d" m)
            (m * (m + 1) / 2)
            (F.read_root t);
          F.update t (m - 1) 0;
          check_int
            (Printf.sprintf "sum after zeroing last (m=%d)" m)
            ((m * (m + 1) / 2) - m)
            (F.read_root t))
        [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ])

let test_farray_read_is_one_step () =
  let steps = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t = sum_farray (Array.init 64 (fun i -> i)) in
           let s0 = Sim.steps_of 0 in
           ignore (F.read_root t);
           steps := Sim.steps_of 0 - s0);
       |]);
  check_int "read = 1 step" 1 !steps

let test_farray_update_cost_logarithmic () =
  let cost m =
    let steps = ref 0 in
    ignore
      (Sim.run ~sched:(Scheduler.round_robin ())
         [|
           (fun () ->
             let t = sum_farray (Array.init m (fun i -> i)) in
             let s0 = Sim.steps_of 0 in
             F.update t (m / 2) 7;
             steps := Sim.steps_of 0 - s0);
         |]);
    !steps
  in
  (* leaf write + 2 refreshes x (ll + 2 child reads + sc) per level *)
  let expected m =
    let levels = int_of_float (ceil (log (float_of_int (max m 2)) /. log 2.)) in
    1 + (levels * 2 * 4)
  in
  List.iter
    (fun m ->
      let c = cost m in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d: %d <= %d" m c (expected m))
        true
        (c <= expected m))
    [ 2; 16; 256; 4096 ];
  Alcotest.(check bool) "cost grows with m" true (cost 4096 > cost 2)

(* concurrent sum: with updates that preserve a global invariant (every
   update keeps the total sum constant is impossible with single-component
   updates, so instead: all sums seen must be between the initial sum and
   the final sum when updates only increase components) *)
let test_farray_monotone_sums () =
  for seed = 0 to 19 do
    let observed = ref [] in
    let t = ref None in
    let procs =
      [|
        (fun () ->
          let f = sum_farray (Array.make 8 0) in
          t := Some f;
          for k = 1 to 20 do
            F.update f (k mod 8) k
          done);
        (fun () ->
          match !t with
          | Some f ->
            for _ = 1 to 15 do
              observed := F.read_root f :: !observed
            done
          | None -> ());
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    (* components only ever grow (k mod 8 < k), so sums must be
       non-negative and no larger than the final sum *)
    let final = in_sim (fun () -> F.read_root (Option.get !t)) in
    List.iter
      (fun s ->
        if s < 0 || s > final then
          Alcotest.failf "seed %d: implausible sum %d (final %d)" seed s final)
      !observed
  done

let () =
  Alcotest.run "farray"
    [
      ( "llsc",
        [
          Alcotest.test_case "basic" `Quick test_llsc_basic;
          Alcotest.test_case "interference" `Quick test_llsc_interference;
          Alcotest.test_case "step costs" `Quick test_llsc_steps;
        ] );
      ( "farray",
        [
          Alcotest.test_case "sum sequential" `Quick test_farray_sum_sequential;
          Alcotest.test_case "max" `Quick test_farray_max;
          Alcotest.test_case "various sizes" `Quick test_farray_various_sizes;
          Alcotest.test_case "read O(1)" `Quick test_farray_read_is_one_step;
          Alcotest.test_case "update O(log m)" `Quick
            test_farray_update_cost_logarithmic;
          Alcotest.test_case "concurrent sums plausible" `Quick
            test_farray_monotone_sums;
        ] );
    ]
