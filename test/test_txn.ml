(* Tests of the MVCC snapshot-isolation layer (lib/txn) and its oracle
   (lib/history/si_check.ml).  Covers the sequential transaction semantics
   (snapshot reads, own-write shadowing, read-only commits that never
   abort), first-committer-wins conflict detection vs the deliberately
   unsound last-writer-wins mode, the SI oracle on hand-crafted
   observation lists, crash–restart chaos campaigns with descriptor
   roll-forward, the typed transactional Kv facade's edge cases, and the
   committed E20 witness schedule, which must drive last-writer-wins to a
   lost update while first-committer-wins survives the very same
   schedule. *)

open Psnap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- sequential semantics (atomic memory, no simulator) ---- *)

module T = Mc_txn_fig3

let test_sequential_basics () =
  let t = T.create ~n:2 [| 10; 20; 30; 40 |] in
  let h0 = T.handle t ~pid:0 in
  let x = T.begin_ h0 in
  check_int "initial read" 20 (T.read x 1);
  T.write x 1 21;
  check_int "own write shadows" 21 (T.read x 1);
  check_int "other components untouched" 30 (T.read x 2);
  (match T.commit x with
  | Ok cts -> check_bool "rw commit has positive cts" true (cts > 0)
  | Error _ -> Alcotest.fail "uncontended commit aborted");
  let y = T.begin_ h0 in
  check_int "later txn sees the commit" 21 (T.read y 1);
  T.abort y;
  let z = T.begin_ h0 in
  check_bool "abort published nothing" true (T.read z 1 = 21);
  ignore (T.commit z)

let test_read_only_never_validates () =
  let t = T.create ~n:2 [| 1; 2; 3; 4 |] in
  let h0 = T.handle t ~pid:0 and h1 = T.handle t ~pid:1 in
  let ro = T.begin_ h1 in
  (* a concurrent writer commits mid-transaction *)
  let w = T.begin_ h0 in
  T.write w 0 100;
  T.write w 3 400;
  check_bool "writer committed" true (Result.is_ok (T.commit w));
  (* the read-only txn keeps its begin snapshot and commits unconditionally *)
  check_bool "ro read ignores later commit" true
    (T.read_many ro [| 0; 3 |] = [| 1; 4 |]);
  (match T.commit ro with
  | Ok bts -> check_int "ro commit returns begin_ts" (T.begin_ts ro) bts
  | Error _ -> Alcotest.fail "read-only commit aborted")

let test_fcw_conflict_vs_lww () =
  (* the canonical lost-update race, replayed sequentially: both read
     component 0, both write it; under fcw the second committer aborts,
     under lww it silently overwrites and the oracle objects *)
  let race mode =
    let t = T.create ~mode ~n:2 [| 5; 6 |] in
    let x0 = T.begin_ (T.handle t ~pid:0) in
    let x1 = T.begin_ (T.handle t ~pid:1) in
    ignore (T.read x0 0);
    ignore (T.read x1 0);
    T.write x0 0 50;
    T.write x1 0 51;
    let r0 = T.commit x0 in
    let r1 = T.commit x1 in
    let obs = List.filter_map T.observation [ x0; x1 ] in
    (r0, r1, Si_check.check ~init:[| 5; 6 |] obs)
  in
  (match race Txn.Fcw with
  | Ok _, Error (Txn.Conflict 0), [] -> ()
  | Ok _, Error (Txn.Conflict c), _ ->
    Alcotest.failf "conflict on component %d, expected 0" c
  | _, _, viols ->
    Alcotest.failf "fcw: expected first Ok / second Conflict, %d violations"
      (List.length viols));
  match race Txn.Lww with
  | Ok _, Ok _, viols ->
    check_bool "lww overwrite flagged as lost update" true
      (List.exists
         (function Si_check.Lost_update _ -> true | _ -> false)
         viols)
  | _ -> Alcotest.fail "lww: both commits should succeed"

let test_finished_txn_rejected () =
  let t = T.create ~n:1 [| 0 |] in
  let h = T.handle t ~pid:0 in
  let x = T.begin_ h in
  ignore (T.commit x);
  check_bool "read after commit raises" true
    (match T.read x 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "commit after commit raises" true
    (match T.commit x with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "resume on an idle handle is a no-op" true (T.resume h = None)

(* ---- the SI oracle on hand-crafted observations ---- *)

let obs ?(excluded = []) ?(committed = true) ?commit_ts ?(reads = [])
    ?(writes = []) ~txid ~begin_ts () =
  {
    Si_check.txid;
    pid = txid;
    begin_ts;
    excluded;
    committed;
    commit_ts;
    reads;
    writes;
  }

let kind = function
  | Si_check.Stale_read _ -> "stale"
  | Si_check.Lost_update _ -> "lost"
  | Si_check.Bad_timestamps _ -> "ts"

let test_oracle_clean_serial () =
  (* t1 writes, t2 (begun after) reads the new value: no violations *)
  let viols =
    Si_check.check ~init:[| 7 |]
      [
        obs ~txid:1 ~begin_ts:0 ~commit_ts:1 ~reads:[ (0, 7) ]
          ~writes:[ (0, 70) ] ();
        obs ~txid:2 ~begin_ts:1 ~reads:[ (0, 70) ] ();
      ]
  in
  check_int "serial history clean" 0 (List.length viols)

let test_oracle_stale_read () =
  (* t2's begin snapshot includes t1's commit, yet it reports the initial
     value: a stale read naming t1 as the writer it missed *)
  let viols =
    Si_check.check ~init:[| 7 |]
      [
        obs ~txid:1 ~begin_ts:0 ~commit_ts:1 ~writes:[ (0, 70) ] ();
        obs ~txid:2 ~begin_ts:1 ~reads:[ (0, 7) ] ();
      ]
  in
  check_bool "stale read detected" true
    (List.exists (fun v -> kind v = "stale") viols)

let test_oracle_excluded_writer_ok () =
  (* same timestamps, but t2 declared t1 in flight at begin: reading the
     initial value is exactly right *)
  let viols =
    Si_check.check ~init:[| 7 |]
      [
        obs ~txid:1 ~begin_ts:0 ~commit_ts:1 ~writes:[ (0, 70) ] ();
        obs ~txid:2 ~begin_ts:1 ~excluded:[ 1 ] ~reads:[ (0, 7) ] ();
      ]
  in
  check_int "excluded writer invisible by design" 0 (List.length viols)

let test_oracle_lost_update () =
  (* two committers whose windows overlap write the same component and
     both commit: the second one blindly overwrites the first *)
  let viols =
    Si_check.check ~init:[| 7 |]
      [
        obs ~txid:1 ~begin_ts:0 ~commit_ts:1 ~writes:[ (0, 70) ] ();
        obs ~txid:2 ~begin_ts:0 ~commit_ts:2 ~writes:[ (0, 71) ] ();
      ]
  in
  check_bool "lost update detected" true
    (List.exists (fun v -> kind v = "lost") viols)

let test_oracle_bad_timestamps () =
  let bad l = List.exists (fun v -> kind v = "ts") (Si_check.check ~init:[| 7 |] l) in
  check_bool "committed rw without cts" true
    (bad [ obs ~txid:1 ~begin_ts:0 ~writes:[ (0, 70) ] () ]);
  check_bool "cts not after begin" true
    (bad [ obs ~txid:1 ~begin_ts:3 ~commit_ts:3 ~writes:[ (0, 70) ] () ]);
  check_bool "duplicate cts" true
    (bad
       [
         obs ~txid:1 ~begin_ts:0 ~commit_ts:2 ~writes:[ (0, 70) ] ();
         obs ~txid:2 ~begin_ts:0 ~commit_ts:2 ~writes:[ (0, 71) ] ();
       ])

(* ---- chaos campaigns in the simulator ---- *)

module ST = Sim_txn_fig3

(* Mirror of bin/simulate.ml's run_txn workload: updaters run
   read-modify-write transactions on overlapping components, scanners run
   read-only transactions over a declared window; every txn begun is
   harvested after the run, resume observations fill in crashed
   commits. *)
let txn_workload ?(mode = Txn.Fcw) ~m ~r ~updaters ~updates ~scanners ~scans
    ~sched () =
  let n = updaters + scanners in
  let init = Array.init m (fun i -> -(i + 1)) in
  Sim.reset_prerun_oids ();
  let t = ST.create ~mode ~n (Array.copy init) in
  let txns = ref [] in
  let resumed = ref [] in
  let recover_pid h =
    match ST.resume h with
    | Some o -> resumed := o :: !resumed
    | None -> ()
  in
  let updater ~incarnation pid () =
    let h = ST.handle t ~pid in
    if incarnation > 1 then recover_pid h;
    for k = 1 to updates do
      let i = (k + (pid * 7)) mod m in
      let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
      let x = ST.begin_ h in
      txns := x :: !txns;
      ignore (ST.read x i);
      ST.write x i v;
      ignore (ST.commit x)
    done
  in
  let scanner ~incarnation pid () =
    let h = ST.handle t ~pid in
    if incarnation > 1 then recover_pid h;
    let idxs =
      Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
    in
    for _ = 1 to scans do
      let x = ST.begin_ h in
      txns := x :: !txns;
      ignore (ST.read_many x idxs);
      ignore (ST.commit x)
    done
  in
  let body ~incarnation pid =
    if pid < updaters then updater ~incarnation pid
    else scanner ~incarnation pid
  in
  let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
  let recover = Some (fun ~pid ~incarnation -> body ~incarnation pid) in
  let res = Sim.run ?recover ~sched procs in
  let observations =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (o : int Si_check.obs) ->
        if Hashtbl.mem seen o.Si_check.txid then false
        else begin
          Hashtbl.add seen o.Si_check.txid ();
          true
        end)
      (List.filter_map ST.observation !txns @ !resumed)
  in
  (res, Si_check.check ~init observations)

let test_fcw_chaos_si_clean () =
  (* crash–restart chaos over 20 seeds: every execution must pass the SI
     oracle, and the campaign must actually exercise crashes and at least
     one descriptor roll-forward across all seeds *)
  Metrics.reset_txn ();
  let crashes = ref 0 in
  for seed = 0 to 19 do
    let sched =
      Scheduler.chaos ~seed ~inner:(Scheduler.random ~seed ()) ()
    in
    let res, viols =
      txn_workload ~m:8 ~r:3 ~updaters:3 ~updates:8 ~scanners:2 ~scans:4
        ~sched ()
    in
    crashes := !crashes + List.length res.Sim.crashed;
    if viols <> [] then
      Alcotest.failf "seed %d: %d SI violations under fcw" seed
        (List.length viols)
  done;
  check_bool "chaos campaign crashed processes" true (!crashes > 0);
  let tm = Metrics.txn () in
  check_bool "campaign committed transactions" true (tm.Metrics.rw_commits > 0)

let test_starved_committer_bounded_abort () =
  (* starving the scanners turns writers loose on each other; conflicts
     and busy aborts may pile up but SI must hold, and every commit call
     must terminate (the run finishing is the no-livelock claim) *)
  for seed = 0 to 9 do
    let sched = Scheduler.starve ~victims:[ 3; 4 ] ~seed () in
    let _, viols =
      txn_workload ~m:4 ~r:2 ~updaters:3 ~updates:10 ~scanners:2 ~scans:3
        ~sched ()
    in
    check_int (Printf.sprintf "seed %d clean" seed) 0 (List.length viols)
  done

let test_lww_chaos_finds_lost_updates () =
  (* the unsound mode must be caught by the oracle somewhere across the
     seeds — this is the oracle's power test, mirroring the E20 campaign *)
  let caught = ref false in
  for seed = 0 to 19 do
    let sched = Scheduler.random ~seed () in
    let _, viols =
      txn_workload ~mode:Txn.Lww ~m:4 ~r:2 ~updaters:2 ~updates:3
        ~scanners:1 ~scans:2 ~sched ()
    in
    if
      List.exists
        (function Si_check.Lost_update _ -> true | _ -> false)
        viols
    then caught := true
  done;
  check_bool "oracle catches last-writer-wins" true !caught

(* ---- the committed E20 witness ---- *)

let e20_witness =
  if Sys.file_exists "schedules/e20-txn-lww.sched" then
    "schedules/e20-txn-lww.sched"
  else "../schedules/e20-txn-lww.sched"

let replay_witness ~mode =
  let decisions = Shrink.load e20_witness in
  check_bool "witness committed and shrunk" true
    (List.length decisions <= 40);
  let sched =
    Scheduler.replay_decisions ~lenient:true
      ~fallback:(Scheduler.round_robin ()) decisions
  in
  let _, viols =
    txn_workload ~mode ~m:4 ~r:2 ~updaters:2 ~updates:3 ~scanners:1 ~scans:2
      ~sched ()
  in
  viols

let test_e20_witness_kills_lww () =
  let viols = replay_witness ~mode:Txn.Lww in
  check_bool "last-writer-wins loses an update" true
    (List.exists
       (function Si_check.Lost_update _ -> true | _ -> false)
       viols)

let test_e20_witness_clean_on_fcw () =
  let viols = replay_witness ~mode:Txn.Fcw in
  check_bool "first-committer-wins survives the same schedule" true
    (viols = [])

(* ---- the transactional Kv facade ---- *)

module Tkv = Psnap_apps.Kv.Make_txn (Mc_txn_fig3)

let test_kv_txn_basics_and_edges () =
  let t = Tkv.create ~n:2 [ ("aapl", 100); ("goog", 200); ("msft", 300) ] in
  let h = Tkv.handle t ~pid:0 in
  let x = Tkv.begin_ h in
  check_int "get" 200 (Tkv.get x "goog");
  Tkv.set x "goog" 250;
  Alcotest.(check (list (pair string int)))
    "get_many (duplicates align, own write shadows)"
    [ ("goog", 250); ("aapl", 100); ("goog", 250) ]
    (Tkv.get_many x [ "goog"; "aapl"; "goog" ]);
  check_bool "unknown key raises" true
    (match Tkv.get x "tsla" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "unknown key raises on set" true
    (match Tkv.set x "tsla" 1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "commit ok" true (Result.is_ok (Tkv.commit x));
  let y = Tkv.begin_ h in
  Alcotest.(check (list (pair string int)))
    "get_all sees the commit"
    [ ("aapl", 100); ("goog", 250); ("msft", 300) ]
    (Tkv.get_all y);
  Tkv.abort y;
  check_bool "mem" true (Tkv.mem t "aapl");
  check_bool "keys in creation order" true
    (Tkv.keys t = [ "aapl"; "goog"; "msft" ]);
  check_bool "duplicate key rejected" true
    (match Tkv.create ~n:1 [ ("a", 1); ("a", 2) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_kv_txn_conflict () =
  let t = Tkv.create ~n:2 [ ("x", 0) ] in
  let a = Tkv.begin_ (Tkv.handle t ~pid:0) in
  let b = Tkv.begin_ (Tkv.handle t ~pid:1) in
  ignore (Tkv.get a "x");
  ignore (Tkv.get b "x");
  Tkv.set a "x" 1;
  Tkv.set b "x" 2;
  check_bool "first committer wins" true (Result.is_ok (Tkv.commit a));
  check_bool "second aborts" true (Result.is_error (Tkv.commit b));
  check_bool "observations harvested" true
    (match (Tkv.observation a, Tkv.observation b) with
    | Some oa, Some ob -> oa.Si_check.committed && not ob.Si_check.committed
    | _ -> false)

let () =
  Alcotest.run "txn"
    [
      ( "semantics",
        [
          Alcotest.test_case "sequential basics" `Quick test_sequential_basics;
          Alcotest.test_case "read-only never validates" `Quick
            test_read_only_never_validates;
          Alcotest.test_case "fcw conflict vs lww" `Quick
            test_fcw_conflict_vs_lww;
          Alcotest.test_case "finished txn rejected" `Quick
            test_finished_txn_rejected;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean serial history" `Quick
            test_oracle_clean_serial;
          Alcotest.test_case "stale read" `Quick test_oracle_stale_read;
          Alcotest.test_case "excluded writer ok" `Quick
            test_oracle_excluded_writer_ok;
          Alcotest.test_case "lost update" `Quick test_oracle_lost_update;
          Alcotest.test_case "bad timestamps" `Quick
            test_oracle_bad_timestamps;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "fcw SI-clean under chaos (20 seeds)" `Quick
            test_fcw_chaos_si_clean;
          Alcotest.test_case "starved committers stay bounded (10 seeds)"
            `Quick test_starved_committer_bounded_abort;
          Alcotest.test_case "oracle catches lww (20 seeds)" `Quick
            test_lww_chaos_finds_lost_updates;
        ] );
      ( "e20",
        [
          Alcotest.test_case "witness kills lww" `Quick
            test_e20_witness_kills_lww;
          Alcotest.test_case "witness clean on fcw" `Quick
            test_e20_witness_clean_on_fcw;
        ] );
      ( "kv",
        [
          Alcotest.test_case "facade basics and edge cases" `Quick
            test_kv_txn_basics_and_edges;
          Alcotest.test_case "facade conflict" `Quick test_kv_txn_conflict;
        ] );
    ]
