(* The happens-before race checker end to end: the seeded fixtures confirm
   (racy ones race under every schedule, clean ones never), reports carry
   both program points, and a reported race shrinks to a replayable ddmin
   witness schedule. *)

open Psnap
module RF = Psnap_harness.Race_fixtures

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let scheds = [ ("round-robin", 0); ("random", 1); ("random", 2) ]

let sched_of = function
  | "round-robin", _ -> Scheduler.round_robin ()
  | _, seed -> Scheduler.random ~seed ()

let races_of f s =
  let _, races = RF.run ~record_trace:false ~sched:(sched_of s) f in
  races

(* ---- verdicts ---- *)

let test_racy_fixtures_race () =
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          check_bool
            (Printf.sprintf "%s races under %s:%d" f.RF.name (fst s) (snd s))
            true
            (races_of f s <> []))
        scheds)
    [ RF.racy_counter; RF.unpublished_view ]

let test_clean_fixtures_do_not () =
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          check_int
            (Printf.sprintf "%s clean under %s:%d" f.RF.name (fst s) (snd s))
            0
            (List.length (races_of f s)))
        scheds)
    [ RF.cas_counter; RF.clean_fig3 ]

(* ---- report contents ---- *)

let test_report_program_points () =
  let result, races =
    RF.run ~record_trace:true ~sched:(Scheduler.round_robin ())
      RF.racy_counter
  in
  check_bool "at least one race" true (races <> []);
  let r = List.hd races in
  Alcotest.(check string) "names the cell" "counter" r.Race.name;
  check_bool "two distinct pids" true
    (r.Race.first.Race.pid <> r.Race.second.Race.pid);
  check_bool "program points are ordered step clocks" true
    (0 < r.Race.first.Race.clock
    && r.Race.first.Race.clock < r.Race.second.Race.clock);
  check_bool "clocks are concurrent, not ordered" true
    (Psnap_sched.Vclock.compare r.Race.first.Race.vclock
       r.Race.second.Race.vclock
    = `Concurrent);
  (* The program points index into the recorded trace. *)
  let window =
    Trace.race_window ~from_clock:r.Race.first.Race.clock
      ~until_clock:r.Race.second.Race.clock result.Sim.trace
  in
  check_bool "window nonempty" true (window <> []);
  let pid_of = function
    | Event.Step { pid; _ } -> Some pid
    | _ -> None
  in
  check_bool "window starts at the first access" true
    (pid_of (List.hd window) = Some r.Race.first.Race.pid);
  check_bool "window ends at the second access" true
    (pid_of (List.nth window (List.length window - 1))
    = Some r.Race.second.Race.pid)

let test_dedup () =
  (* The racy counter loops 3 times per pid, but each (cell, pid pair,
     kind) is reported once — reports don't scale with iterations. *)
  let _, races =
    RF.run ~record_trace:false ~sched:(Scheduler.round_robin ())
      RF.racy_counter
  in
  let keys =
    List.map
      (fun r -> (r.Race.oid, r.Race.first.Race.pid, r.Race.second.Race.pid, r.Race.kind))
      races
  in
  check_int "no duplicate reports" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* ---- witness shrinking ---- *)

let test_witness_shrinks_and_replays () =
  match RF.witness ~sched:(Scheduler.round_robin ()) RF.unpublished_view with
  | None -> Alcotest.fail "expected a race under round-robin"
  | Some (r, minimal, oracle_calls) ->
    check_bool "oracle was consulted" true (oracle_calls > 0);
    check_bool "witness no longer than the window" true
      (List.length minimal <= r.Race.second.Race.clock);
    (* The shrunk schedule still reproduces the race.  (Note it need not
       be the *unique* minimal witness: the oracle completes candidates
       with a round-robin tail, and a fixture whose race is
       schedule-independent reproduces under many tails — ddmin only
       guarantees the reported list itself still fails.) *)
    check_bool "minimal witness replays" true
      (RF.races_under RF.unpublished_view minimal)

let test_detector_off_is_silent () =
  Race.disable ();
  Sim.reset_prerun_oids ();
  let _ =
    Sim.run ~sched:(Scheduler.round_robin ())
      (RF.racy_counter.RF.procs ())
  in
  check_int "no reports with the detector off" 0 (Race.race_count ());
  check_bool "disabled" false (Race.enabled ())

let () =
  Alcotest.run "race"
    [
      ( "verdicts",
        [
          Alcotest.test_case "racy fixtures race" `Quick
            test_racy_fixtures_race;
          Alcotest.test_case "clean fixtures don't" `Quick
            test_clean_fixtures_do_not;
        ] );
      ( "reports",
        [
          Alcotest.test_case "program points" `Quick
            test_report_program_points;
          Alcotest.test_case "deduplication" `Quick test_dedup;
        ] );
      ( "witness",
        [
          Alcotest.test_case "shrinks and replays" `Quick
            test_witness_shrinks_and_replays;
          Alcotest.test_case "detector off" `Quick
            test_detector_off_is_silent;
        ] );
    ]
