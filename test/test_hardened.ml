(* Hardened registers (docs/MODEL.md §9): self-validation and replication
   detect and out-live the memory faults that break raw cells, and the
   paper's algorithms — functored over the hardened memory — stay
   linearizable under seeded fault storms (the constructive half of E15). *)

open Psnap
module M = Mem.Sim
module H = Mem.Hardened
module HS = Mem.Sim_selfcheck
module HR = Mem.Sim_replicated

let () = M.set_strict true

let () = M.set_fault_tracking true

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rr () = Scheduler.round_robin ()

let fault kind oid = Scheduler.Mem_fault { kind; oid }

(* One-shot injection at a given clock, scheduling with [inner] otherwise:
   positions a fault between hardened sub-steps without counting them by
   hand. *)
let inject_at ~clock ~kind ~oid inner =
  let done_ = ref false in
  {
    Scheduler.name = "inject@" ^ string_of_int clock;
    pick =
      (fun v ->
        if (not !done_) && v.Scheduler.clock >= clock then begin
          done_ := true;
          Scheduler.Mem_fault { kind; oid }
        end
        else Scheduler.pick inner v);
  }

let reset () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  H.reset_stats ()

let detected () =
  let s = H.stats () in
  s.H.corrupt_detected + s.H.stale_detected + s.H.lost_detected

(* ---- plain semantics (no faults): both hardened memories are still
   correct registers / CAS objects ---- *)

let hardened_semantics (module HM : Mem.S) () =
  reset ();
  let r = HM.make ~name:"h" 10 in
  let c = HM.make ~name:"c" 0 in
  let body () =
    check_int "initial" 10 (HM.read r);
    HM.write r 20;
    check_int "written" 20 (HM.read r);
    let v20 = HM.read r in
    check_bool "cas succeeds on current" true
      (HM.cas r ~expected:v20 ~desired:30);
    check_bool "cas fails on outdated" false
      (HM.cas r ~expected:v20 ~desired:40);
    check_int "cas installed" 30 (HM.read r);
    check_int "faa returns old" 0 (HM.fetch_and_add c 5);
    check_int "faa adds" 5 (HM.fetch_and_add c 3 - 3 + 3);
    check_int "faa total" 8 (HM.read c)
  in
  ignore (Sim.run ~sched:(rr ()) [| body |]);
  check_int "no faults detected" 0 (detected ())

(* ---- Selfcheck: detection and repair on a single cell ---- *)

let test_selfcheck_detects_corrupt () =
  reset ();
  let r = HS.make ~name:"h" 10 in
  (* the single base cell behind [r] is the first prerun allocation *)
  let seen = ref 0 in
  let body () = seen := HS.read r in
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
            [ fault Event.Corrupt (-1) ])
       [| body |]);
  check_int "reads through corruption" 10 !seen;
  let s = H.stats () in
  check_bool "corruption detected" true (s.H.corrupt_detected > 0);
  check_bool "repaired" true (s.H.repairs > 0)

let test_selfcheck_survives_lost_write () =
  reset ();
  let r = HS.make ~name:"h" 0 in
  let seen = ref (-1) in
  let body () =
    HS.write r 5;
    seen := HS.read r
  in
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
            [ fault Event.Lost_write (-1) ])
       [| body |]);
  check_int "write survives the drop" 5 !seen;
  check_bool "loss detected" true ((H.stats ()).H.lost_detected > 0)

let test_selfcheck_survives_stale_read () =
  reset ();
  let r = HS.make ~name:"h" 0 in
  let seen = ref (-1) in
  let body () =
    HS.write r 1;
    HS.write r 2;
    seen := HS.read r
  in
  (* each hardened write costs two base steps (write + verify read); arm
     the stale fault after both writes completed *)
  ignore
    (Sim.run
       ~sched:(inject_at ~clock:4 ~kind:Event.Stale_read ~oid:(-1) (rr ()))
       [| body |]);
  check_int "monotone read" 2 !seen;
  check_bool "staleness detected" true ((H.stats ()).H.stale_detected > 0)

let test_selfcheck_survives_acked_lost_cas () =
  reset ();
  let r = HS.make ~name:"h" 0 in
  let ok = ref false in
  let seen = ref (-1) in
  let body () =
    let v0 = HS.read r in
    ok := HS.cas r ~expected:v0 ~desired:7;
    seen := HS.read r
  in
  (* arm the loss right before the base CAS (hardened cas = read at clock
     1, cas at clock 2): the base CAS acks without installing, the
     verification read catches it, the retry lands the value *)
  ignore
    (Sim.run
       ~sched:(inject_at ~clock:2 ~kind:Event.Lost_write ~oid:(-1) (rr ()))
       [| body |]);
  check_bool "cas eventually true" true !ok;
  check_int "value installed exactly once" 7 !seen;
  check_bool "loss detected" true ((H.stats ()).H.lost_detected > 0)

(* ---- Replicated: majority survives what a single cell cannot ---- *)

let test_replicated_survives_corrupt_of_each_replica () =
  List.iter
    (fun oid ->
      reset ();
      let r = HR.make ~name:"h" 10 in
      let seen = ref 0 in
      let body () = seen := HR.read r in
      ignore
        (Sim.run
           ~sched:
             (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
                [ fault Event.Corrupt oid ])
           [| body |]);
      check_int
        (Printf.sprintf "reads through corrupt replica %d" oid)
        10 !seen;
      check_bool "detected" true ((H.stats ()).H.corrupt_detected > 0))
    [ -1; -2; -3 ]

let test_replicated_survives_stuck_commit_replica () =
  reset ();
  let r = HR.make ~name:"h" 0 in
  let a = ref (-1) and b = ref (-1) and ok = ref false in
  let body () =
    HR.write r 1;
    a := HR.read r;
    let v1 = HR.read r in
    ok := HR.cas r ~expected:v1 ~desired:2;
    b := HR.read r
  in
  (* stick the commit replica (first base cell) before anything runs: the
     write must land on the other two, and the CAS must fail over *)
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
            [ fault Event.Stuck_cell (-1) ])
       [| body |]);
  check_int "write visible despite stuck replica" 1 !a;
  check_bool "cas failed over and succeeded" true !ok;
  check_int "cas visible" 2 !b

let test_replicated_faa_with_faults () =
  reset ();
  let r = HR.make ~name:"ctr" 0 in
  let out = ref [] in
  let body () =
    out := HR.fetch_and_add r 5 :: !out;
    out := HR.fetch_and_add r 3 :: !out;
    out := HR.read r :: !out
  in
  ignore
    (Sim.run
       ~sched:(inject_at ~clock:3 ~kind:Event.Corrupt ~oid:(-2) (rr ()))
       [| body |]);
  check_bool "faa sequence" true (!out = [ 8; 5; 0 ])

(* ---- Replicated tolerance boundary: k = 1 has no spare replica, k = 2
   is the smallest array where CAS can fail over from a stuck commit
   replica to a live one ---- *)

module HR1 =
  H.Replicated
    (M)
    (struct
      let k = 1
    end)

module HR2 =
  H.Replicated
    (M)
    (struct
      let k = 2
    end)

let test_replicated_k1_cannot_survive_stuck_cell () =
  reset ();
  let r = HR1.make ~name:"h" 0 in
  let seen = ref (-1) and ok = ref true in
  let body () =
    HR1.write r 5;
    seen := HR1.read r;
    ok := HR1.cas r ~expected:5 ~desired:7
  in
  (* stick the only replica before anything runs: ⌊(1-1)/2⌋ = 0 faults
     tolerated, so the write never lands in shared memory and CAS — whose
     fail-over is a no-op mod 1 — must give up after its retries *)
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
            [ fault Event.Stuck_cell (-1) ])
       [| body |]);
  check_int "read is served from the local cache only" 5 !seen;
  check_bool "cas fails permanently with no replica to fail over to" false
    !ok;
  let s = H.stats () in
  check_bool "the stale cell was detected" true (s.H.stale_detected > 0);
  check_bool "repair was attempted and retried" true (s.H.retries > 0)

let test_replicated_k2_fails_over_stuck_commit () =
  reset ();
  let r = HR2.make ~name:"h" 0 in
  let a = ref (-1) and b = ref (-1) and ok = ref false in
  let body () =
    HR2.write r 1;
    a := HR2.read r;
    ok := HR2.cas r ~expected:1 ~desired:2;
    b := HR2.read r
  in
  (* stick replica "h/0" — the designated commit replica.  The write lands
     on replica 1; CAS finds the commit replica unrepairable, advances to
     replica 1, and succeeds there. *)
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:false ~fallback:(rr ())
            [ fault Event.Stuck_cell (-1) ])
       [| body |]);
  check_int "write visible via the live replica" 1 !a;
  check_bool "cas failed over to the live replica and succeeded" true !ok;
  check_int "committed value readable" 2 !b

(* ---- E15, constructive half: the paper's algorithms over hardened
   registers stay linearizable under the storms that break raw cells ---- *)

let storm_kinds = [ Event.Corrupt; Event.Stale_read; Event.Lost_write ]

let hardened_chaos_campaign (module S : Snapshot.S) ~seeds =
  let m = 6 and n = 3 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let injected = ref 0 in
  reset ();
  for seed = 0 to seeds - 1 do
    Sim.reset_prerun_oids ();
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n (Array.copy init) in
    let updater pid () =
      let h = S.handle t ~pid in
      for k = 1 to 4 do
        let i = (k + (pid * 3)) mod m in
        let v = (pid * 1_000_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               S.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = S.handle t ~pid in
      let idxs = [| 0; 2; 4 |] in
      for _ = 1 to 3 do
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (S.scan h idxs)))
      done
    in
    let procs = [| updater 0; updater 1; scanner 2 |] in
    let res =
      Sim.run ~record_trace:true
        ~sched:
          (Scheduler.mem_storm ~seed ~kinds:storm_kinds ~rate:0.03
             ~max_faults:6
             (Scheduler.random ~seed ()))
        procs
    in
    injected := !injected + List.length (Trace.mem_faults res.trace);
    match Snapshot_spec.check_observations ~init (History.entries hist) with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "seed %d: %a" seed Snapshot_spec.pp_violation v
  done;
  check_bool "campaign injected faults" true (!injected > 0);
  check_bool "hardening detected faults" true
    (detected () + (H.stats ()).H.repairs > 0)

let test_fig3_hardened_linearizable_under_storm () =
  hardened_chaos_campaign (module Sim_fig3_hardened) ~seeds:20

let test_fig1_hardened_linearizable_under_storm () =
  hardened_chaos_campaign (module Sim_fig1_hardened) ~seeds:20

let test_fig3_selfcheck_linearizable_under_storm () =
  hardened_chaos_campaign (module Sim_fig3_selfcheck) ~seeds:20

let () =
  Alcotest.run "hardened"
    [
      ( "semantics",
        [
          Alcotest.test_case "selfcheck: registers and CAS" `Quick
            (hardened_semantics (module HS));
          Alcotest.test_case "replicated: registers and CAS" `Quick
            (hardened_semantics (module HR));
        ] );
      ( "selfcheck",
        [
          Alcotest.test_case "detects + repairs corruption" `Quick
            test_selfcheck_detects_corrupt;
          Alcotest.test_case "survives lost write" `Quick
            test_selfcheck_survives_lost_write;
          Alcotest.test_case "survives stale read" `Quick
            test_selfcheck_survives_stale_read;
          Alcotest.test_case "survives acked-but-lost CAS" `Quick
            test_selfcheck_survives_acked_lost_cas;
        ] );
      ( "replicated",
        [
          Alcotest.test_case "survives corrupt of each replica" `Quick
            test_replicated_survives_corrupt_of_each_replica;
          Alcotest.test_case "survives a stuck commit replica" `Quick
            test_replicated_survives_stuck_commit_replica;
          Alcotest.test_case "fetch&add with a corrupt replica" `Quick
            test_replicated_faa_with_faults;
          Alcotest.test_case "k=1: no tolerance for a stuck cell" `Quick
            test_replicated_k1_cannot_survive_stuck_cell;
          Alcotest.test_case "k=2: stuck commit replica fails over" `Quick
            test_replicated_k2_fails_over_stuck_commit;
        ] );
      ( "e15-constructive",
        [
          Alcotest.test_case "fig3-hardened under storm" `Slow
            test_fig3_hardened_linearizable_under_storm;
          Alcotest.test_case "fig1-hardened under storm" `Slow
            test_fig1_hardened_linearizable_under_storm;
          Alcotest.test_case "fig3-selfcheck under storm" `Slow
            test_fig3_selfcheck_linearizable_under_storm;
        ] );
    ]
