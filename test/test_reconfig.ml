(* Tests of online reconfiguration (lib/net Net_reconfig): epoch-fenced
   membership changes under churn stay linearizable, permanent replica
   deaths drive the suspicion -> replacement -> activation pipeline, the
   deliberately unsound [Naive] mode really does skip the protocol (so
   its split-brain witness means something), and the committed E21
   witness schedule convicts naive mode of a lost acked write while the
   fenced mode survives the very same schedule. *)

open Psnap
module A = Psnap.Net.Abd
module R = Psnap.Net.Reconfig

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Same register spec as bin/simulate.ml's reconfiguration campaign: an
   int register with blind writes and reads, checked with Wing-Gong. *)
module Reg_spec = struct
  type state = int
  type op = Rwrite of int | Rread
  type res = Rack | Rval of int

  let apply s = function
    | Rwrite v -> (v, Rack)
    | Rread -> (s, Rval s)

  let equal_res (a : res) (b : res) = a = b
end

module Reg_lin = Lin_check.Make (Reg_spec)

(* Mirror of bin/simulate.ml's run_reconfig workload: [updaters] writers
   each bumping their own register with a final read-back (lost-write
   oracle), [scanners] readers checking per-register monotonicity, the
   replica pool, and the membership manager as the last pid. *)
let run_workload ~mode ~updaters ~updates ~scanners ~scans ~replicas ~spares
    ~sched () =
  Metrics.reset_net ();
  Metrics.reset_serving ();
  Metrics.reset_reconfig ();
  Sim.reset_prerun_oids ();
  let clients = updaters + scanners in
  let pool = replicas + spares in
  let nprocs = clients + pool + 1 in
  let cl = A.cluster ~clients ~replicas ~spares ~with_manager:true () in
  let rc = R.attach ~mode cl in
  let regs =
    Array.init updaters (fun w ->
        A.Sim_mem.make ~name:(Printf.sprintf "reconfig.reg.%d" w) 0)
  in
  let hists = Array.init updaters (fun _ -> History.create ~now:Sim.mark ()) in
  let last_acked = Array.make updaters 0 in
  let viols = ref [] in
  let writer pid () =
    let halted = ref false in
    for k = 1 to updates do
      if not !halted then
        try
          ignore
            (History.record hists.(pid) ~pid (Reg_spec.Rwrite k) (fun () ->
                 A.Sim_mem.write regs.(pid) k;
                 Reg_spec.Rack));
          last_acked.(pid) <- k
        with Psnap.Net.Unavailable _ -> halted := true
    done;
    try
      match
        History.record hists.(pid) ~pid Reg_spec.Rread (fun () ->
            Reg_spec.Rval (A.Sim_mem.read regs.(pid)))
      with
      | Reg_spec.Rval v when v < last_acked.(pid) ->
        viols := Printf.sprintf "writer %d: lost acked write" pid :: !viols
      | _ -> ()
    with Psnap.Net.Unavailable _ -> ()
  in
  let reader pid () =
    let lastseen = Array.make updaters 0 in
    for j = 1 to scans do
      let w = (pid + j) mod updaters in
      try
        match
          History.record hists.(w) ~pid Reg_spec.Rread (fun () ->
              Reg_spec.Rval (A.Sim_mem.read regs.(w)))
        with
        | Reg_spec.Rval v ->
          if v < lastseen.(w) then
            viols :=
              Printf.sprintf "reader %d: register %d went backwards" pid w
              :: !viols
          else lastseen.(w) <- v
        | _ -> ()
      with Psnap.Net.Unavailable _ -> ()
    done
  in
  let procs =
    Array.init nprocs (fun pid ->
        if pid < updaters then A.wrap_client cl ~pid (writer pid)
        else if pid < clients then A.wrap_client cl ~pid (reader pid)
        else if pid < clients + pool then
          A.replica_body cl ~index:(pid - clients)
        else R.manager_body rc)
  in
  let recover =
    Some
      (fun ~pid ~incarnation:_ ->
        if pid < clients then A.close_client cl ~pid
        else if pid < clients + pool then
          A.replica_body cl ~index:(pid - clients)
        else R.manager_body rc)
  in
  let _ = Sim.run ?recover ~sched procs in
  R.detach rc;
  Array.iteri
    (fun w h ->
      match Reg_lin.check ~init:0 (History.entries h) with
      | true -> ()
      | false ->
        viols :=
          Printf.sprintf "register %d: history not linearizable" w :: !viols
      | exception Reg_lin.Too_long _ -> ())
    hists;
  let max_epoch = ref 0 in
  for pid = 0 to clients - 1 do
    max_epoch := max !max_epoch (A.client_epoch cl ~pid)
  done;
  (List.rev !viols, R.reconfig_count rc, !max_epoch)

let member_pids ~clients ~replicas = List.init replicas (fun i -> clients + i)

(* ---- fenced churn stays linearizable ---- *)

let test_fenced_churn_linearizable () =
  (* Repeated member rotations under a random schedule: every seed must
     stay violation-free, and the campaign as a whole must have really
     reconfigured (otherwise the test is vacuous). *)
  let completed = ref 0 in
  for seed = 0 to 4 do
    let sched =
      Scheduler.config_churn ~seed ~rate:0.004 ~max_reconfigs:2
        (Scheduler.random ~seed ())
    in
    let viols, reconfigs, max_epoch =
      run_workload ~mode:R.Fenced ~updaters:2 ~updates:8 ~scanners:2 ~scans:8
        ~replicas:3 ~spares:2 ~sched ()
    in
    check_bool "fenced churn: no violations" true (viols = []);
    completed := !completed + reconfigs;
    if reconfigs > 0 then
      check_bool "clients adopted a post-churn epoch" true (max_epoch >= 0)
  done;
  check_bool "churn campaign completed at least one rotation" true
    (!completed >= 1)

(* ---- permanent death drives suspicion and replacement ---- *)

let test_replica_death_replacement () =
  (* One member dies permanently: the manager's probes must suspect it,
     swap in a spare, and the service must keep answering (the fenced
     activation shows up as a completed reconfiguration). *)
  let clients = 4 and replicas = 3 in
  let suspicions = ref 0 and replacements = ref 0 and completed = ref 0 in
  for seed = 0 to 4 do
    let sched =
      Scheduler.replica_death ~seed
        ~victims:(member_pids ~clients ~replicas)
        ~rate:0.01 ~max_deaths:1
        (Scheduler.random ~seed ())
    in
    let viols, reconfigs, _ =
      run_workload ~mode:R.Fenced ~updaters:2 ~updates:8 ~scanners:2 ~scans:8
        ~replicas ~spares:2 ~sched ()
    in
    check_bool "death + replacement: no violations" true (viols = []);
    let rm = Metrics.reconfig () in
    suspicions := !suspicions + rm.Metrics.suspicions;
    replacements := !replacements + rm.Metrics.replacements;
    completed := !completed + reconfigs
  done;
  check_bool "probes suspected the dead member" true (!suspicions > 0);
  check_bool "a spare was proposed as replacement" true (!replacements > 0);
  check_bool "a replacement configuration activated" true (!completed > 0)

(* ---- naive mode really skips the protocol ---- *)

let test_naive_skips_protocol () =
  (* The unsound mode must swap memberships without sealing and without
     fencing — zero seals and zero stale rejects is what makes its
     split-brain witness an indictment of the missing protocol rather
     than of some partially-applied one. *)
  let swaps = ref 0 in
  for seed = 0 to 4 do
    let sched =
      Scheduler.config_churn ~seed ~rate:0.004 ~max_reconfigs:2
        (Scheduler.random ~seed ())
    in
    let _viols, _reconfigs, _ =
      run_workload ~mode:R.Naive ~updaters:2 ~updates:8 ~scanners:2 ~scans:8
        ~replicas:3 ~spares:2 ~sched ()
    in
    let rm = Metrics.reconfig () in
    swaps := !swaps + rm.Metrics.naive_swaps;
    check_int "naive mode never seals" 0 rm.Metrics.seals;
    check_int "naive replicas never fence" 0 rm.Metrics.stale_rejects
  done;
  check_bool "churn really swapped memberships" true (!swaps >= 1)

(* ---- the committed E21 witness ---- *)

let e21_witness =
  if Sys.file_exists "schedules/e21-reconfig-naive.sched" then
    "schedules/e21-reconfig-naive.sched"
  else "../schedules/e21-reconfig-naive.sched"

(* Replay at the campaign's exact parameters: 1 updater x 20 updates,
   2 scanners x 3 scans, 3 replicas + 2 spares (the schedule's crash,
   netcut and reconfig decisions carry the split-brain nemesis; the
   fallback covers decision exhaustion). *)
let replay_witness ~mode =
  let decisions = Shrink.load e21_witness in
  check_bool "witness committed and shrunk" true
    (decisions <> [] && List.length decisions <= 600);
  let sched =
    Scheduler.replay_decisions ~lenient:true
      ~fallback:(Scheduler.round_robin ()) decisions
  in
  let viols, _, _ =
    run_workload ~mode ~updaters:1 ~updates:20 ~scanners:2 ~scans:3
      ~replicas:3 ~spares:2 ~sched ()
  in
  viols

let test_e21_witness_kills_naive_mode () =
  let viols = replay_witness ~mode:R.Naive in
  check_bool "naive reconfiguration loses an acked write" true (viols <> [])

let test_e21_witness_clean_on_fenced () =
  let viols = replay_witness ~mode:R.Fenced in
  check_bool "epoch fencing survives the same schedule" true (viols = [])

let () =
  Alcotest.run "reconfig"
    [
      ( "protocol",
        [
          Alcotest.test_case "fenced churn linearizable (5 seeds)" `Quick
            test_fenced_churn_linearizable;
          Alcotest.test_case "death -> suspicion -> replacement (5 seeds)"
            `Quick test_replica_death_replacement;
          Alcotest.test_case "naive mode skips seal and fence (5 seeds)"
            `Quick test_naive_skips_protocol;
        ] );
      ( "e21",
        [
          Alcotest.test_case "witness kills naive mode" `Quick
            test_e21_witness_kills_naive_mode;
          Alcotest.test_case "witness clean on fenced" `Quick
            test_e21_witness_clean_on_fenced;
        ] );
    ]
