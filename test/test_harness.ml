(* Tests of the experiment harness: workload runner, contention measures
   (against brute force), tables, and experiment-table well-formedness. *)

open Psnap
module Table = Psnap_harness.Table
module Workload = Psnap_harness.Workload
module Instance = Psnap_harness.Instance
module Experiments = Psnap_harness.Experiments

let check_int = Alcotest.(check int)

(* ---- workload runner ---- *)

let base_cfg =
  {
    Workload.impl = Instance.sim_fig3;
    m = 8;
    updaters = 2;
    updates = 5;
    scanners = 2;
    scans = 3;
    r = 3;
    sched = (fun seed -> Scheduler.random ~seed ());
    seeds = 3;
    update_range = None;
    scan_idxs = None;
  }

let test_scan_set () =
  List.iter
    (fun (m, r) ->
      List.iter
        (fun j ->
          let s = Workload.scan_set ~m ~r j in
          check_int "r components" r (Array.length s);
          let sorted = List.sort_uniq compare (Array.to_list s) in
          check_int "distinct" r (List.length sorted);
          List.iter
            (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < m))
            sorted)
        [ 0; 1; 2 ])
    [ (8, 3); (64, 8); (16, 16) ]

let test_workload_sample_counts () =
  let o = Workload.run base_cfg in
  check_int "three runs" 3 (List.length o.runs);
  List.iter
    (fun (r : Workload.run) ->
      let count k =
        List.length
          (List.filter (fun (s : Metrics.sample) -> s.kind = k) r.samples)
      in
      check_int "updates recorded" (2 * 5) (count "update");
      check_int "scans recorded" (2 * 3) (count "scan"))
    o.runs;
  Alcotest.(check bool) "collects observed" true (Workload.worst_collects o >= 2);
  Alcotest.(check bool)
    "scan steps positive" true
    (Workload.worst_steps o "scan" > 0)

let test_workload_update_range () =
  (* with update_range = 1, all updates hit component 0; a scan of {0}
     under heavy contention observes that *)
  let cfg =
    {
      base_cfg with
      Workload.update_range = Some 1;
      scan_idxs = Some [| 0 |];
      r = 1;
    }
  in
  let o = Workload.run cfg in
  Alcotest.(check bool) "runs complete" true (List.length o.runs = 3)

(* ---- contention measures vs brute force ---- *)

let sample pid kind (inv, resp) : Metrics.sample =
  { pid; kind; steps = 0; inv; resp }

let brute_point_contention all (s : Metrics.sample) =
  let best = ref 0 in
  for t = s.inv to s.resp do
    let active =
      List.length
        (List.filter
           (fun (o : Metrics.sample) -> o.inv <= t && t <= o.resp)
           all)
    in
    best := max !best active
  done;
  !best

let test_point_contention_brute_force () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    (* distinct stamps so interval endpoints are unambiguous *)
    let n = 2 + Random.State.int st 8 in
    let stamps =
      List.init (2 * n) (fun i -> (i * 3) + 1)
      |> List.map (fun s -> (Random.State.int st 1000, s))
      |> List.sort compare |> List.map snd
    in
    let rec pair_up = function
      | a :: b :: rest -> (min a b, max a b) :: pair_up rest
      | _ -> []
    in
    let all = List.mapi (fun i iv -> sample i "op" iv) (pair_up stamps) in
    List.iter
      (fun s ->
        check_int "point contention matches brute force"
          (brute_point_contention all s)
          (Metrics.point_contention all s))
      all
  done

let test_interval_contention_simple () =
  let a = sample 0 "op" (0, 10)
  and b = sample 1 "op" (5, 15)
  and c = sample 2 "op" (20, 30) in
  let all = [ a; b; c ] in
  check_int "a overlaps a,b" 2 (Metrics.interval_contention all a);
  check_int "c overlaps only c" 1 (Metrics.interval_contention all c);
  (* three ops overlapping pairwise but never simultaneously *)
  let x = sample 0 "op" (0, 10)
  and y = sample 1 "op" (9, 20)
  and z = sample 2 "op" (19, 30) in
  let all = [ x; y; z ] in
  check_int "interval contention of y" 3 (Metrics.interval_contention all y);
  check_int "point contention of y" 2 (Metrics.point_contention all y)

(* ---- tables ---- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_table_print_and_csv () =
  let t =
    Table.make ~title:"demo" ~header:[ "col"; "x" ]
      [ [ "a"; "1" ]; [ "long-cell"; "22" ] ]
  in
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Table.print ~out:fmt t;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && contains s "== demo ==");
  Alcotest.(check string) "csv" "col,x\na,1\nlong-cell,22" (Table.to_csv t);
  Alcotest.(check string) "csv quoting" "a,\"x,y\""
    (Table.to_csv (Table.make ~title:"t" ~header:[ "a"; "x,y" ] []))

(* ---- experiment tables are well-formed ---- *)

let test_experiment_shape () =
  List.iter
    (fun (name, e) ->
      (* smallest seeds for speed; e6/e7 ignore the parameter *)
      let t = e ?seeds:(Some 1) () in
      let cols = List.length t.Table.header in
      Alcotest.(check bool) (name ^ ": has rows") true (t.Table.rows <> []);
      List.iter
        (fun row ->
          check_int (name ^ ": row width matches header") cols (List.length row))
        t.Table.rows)
    Experiments.by_name

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "scan_set" `Quick test_scan_set;
          Alcotest.test_case "sample counts" `Quick test_workload_sample_counts;
          Alcotest.test_case "update range" `Quick test_workload_update_range;
        ] );
      ( "contention",
        [
          Alcotest.test_case "point vs brute force" `Quick
            test_point_contention_brute_force;
          Alcotest.test_case "interval vs point" `Quick
            test_interval_contention_simple;
        ] );
      ( "table",
        [ Alcotest.test_case "print and csv" `Quick test_table_print_and_csv ] );
      ( "experiments",
        [ Alcotest.test_case "tables well-formed" `Slow test_experiment_shape ]
      );
    ]
