(* Property-based concurrent testing: qcheck generates whole workload
   configurations (vector size, process mix, operation counts, scan widths,
   scheduler family and seed); each case runs a full simulated execution
   and checks the recorded history.  One property per implementation for
   snapshots (observation checker) and one per active set implementation
   (interval-semantics checker). *)

open Psnap

module type SNAP = Snapshot.S

module type ASET = Active_set.S

type workload = {
  m : int;
  updaters : int;
  updates : int;
  scanners : int;
  scans : int;
  r : int;
  sched_kind : int;  (** 0 random, 1 bursty, 2 starve-scanners, 3 pct *)
  seed : int;
  crash_clock : int option;
}

let workload_gen =
  QCheck2.Gen.(
    let* m = int_range 1 12 in
    let* updaters = int_range 1 3 in
    let* updates = int_range 1 20 in
    let* scanners = int_range 1 3 in
    let* scans = int_range 1 8 in
    let* r = int_range 1 m in
    let* sched_kind = int_range 0 3 in
    let* seed = int_range 0 10_000 in
    let* crash_clock =
      oneof [ return None; map (fun c -> Some c) (int_range 0 300) ]
    in
    return { m; updaters; updates; scanners; scans; r; sched_kind; seed; crash_clock })

let print_workload w =
  Printf.sprintf
    "{m=%d updaters=%d updates=%d scanners=%d scans=%d r=%d sched=%d seed=%d crash=%s}"
    w.m w.updaters w.updates w.scanners w.scans w.r w.sched_kind w.seed
    (match w.crash_clock with None -> "-" | Some c -> string_of_int c)

let scheduler_of w =
  let scanner_pids =
    List.init w.scanners (fun j -> w.updaters + j)
  in
  let base =
    match w.sched_kind with
    | 0 -> Scheduler.random ~seed:w.seed ()
    | 1 -> Scheduler.bursty ~seed:w.seed ()
    | 2 -> Scheduler.starve ~victims:scanner_pids ~seed:w.seed ()
    | _ -> Scheduler.pct ~seed:w.seed ~expected_steps:500 ()
  in
  match w.crash_clock with
  | None -> base
  | Some at_clock -> Scheduler.with_crash ~pid:0 ~at_clock base

let snapshot_prop ?(mixed = false) name (module S : SNAP) =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "history valid%s: %s"
         (if mixed then " (mixed roles)" else "")
         name)
    ~count:60 ~print:print_workload workload_gen (fun w ->
      let n = w.updaters + w.scanners in
      let init = Array.init w.m (fun i -> -(i + 1)) in
      let hist = History.create ~now:Sim.mark () in
      let t = S.create ~n (Array.copy init) in
      let do_update h pid k =
        let i = (k + pid) mod w.m in
        let v = (pid * 100_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               S.update h i v;
               Snapshot_spec.Ack))
      in
      let do_scan h pid =
        let idxs = Array.init w.r (fun k -> (k + pid) mod w.m) in
        let idxs = Array.of_list (List.sort_uniq compare (Array.to_list idxs)) in
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (S.scan h idxs)))
      in
      let updater pid () =
        let h = S.handle t ~pid in
        for k = 1 to w.updates do
          do_update h pid k
        done
      in
      let scanner pid () =
        let h = S.handle t ~pid in
        for _ = 1 to w.scans do
          do_scan h pid
        done
      in
      (* a process that interleaves its own updates and scans: its scans
         must cope with its own earlier writes being visible everywhere *)
      let mixer pid () =
        let h = S.handle t ~pid in
        for k = 1 to min w.updates 8 do
          do_update h pid k;
          do_scan h pid
        done
      in
      let procs =
        Array.init n (fun pid ->
            if mixed && pid = 0 then mixer pid
            else if pid < w.updaters then updater pid
            else scanner pid)
      in
      ignore (Sim.run ~sched:(scheduler_of w) procs);
      Snapshot_spec.check_observations ~init (History.entries hist) = [])

let aset_prop name (module A : ASET) =
  QCheck2.Test.make ~name:("getSets valid: " ^ name) ~count:60
    ~print:print_workload workload_gen (fun w ->
      let members = w.updaters and observers = w.scanners in
      let n = members + observers in
      let hist = History.create ~now:Sim.mark () in
      let t = A.create ~n () in
      let member pid () =
        let h = A.handle t ~pid in
        for _ = 1 to w.updates do
          ignore
            (History.record hist ~pid Activeset_check.Join (fun () ->
                 A.join h;
                 Activeset_check.Ack));
          ignore
            (History.record hist ~pid Activeset_check.Leave (fun () ->
                 A.leave h;
                 Activeset_check.Ack))
        done
      in
      let observer pid () =
        for _ = 1 to w.scans do
          ignore
            (History.record hist ~pid Activeset_check.Get_set (fun () ->
                 Activeset_check.Set (A.get_set t)))
        done
      in
      let procs =
        Array.init n (fun pid -> if pid < members then member pid else observer pid)
      in
      ignore (Sim.run ~sched:(scheduler_of w) procs);
      Activeset_check.check (History.entries hist) = [])

(* scan results never contain values from the wrong component, under any
   generated workload (redundant with the checker, but self-contained) *)
let values_belong_prop =
  QCheck2.Test.make ~name:"scan values belong to their component" ~count:40
    ~print:print_workload workload_gen (fun w ->
      let module S = Sim_fig3 in
      let n = w.updaters + w.scanners in
      let t = S.create ~n (Array.init w.m (fun i -> -(i + 1))) in
      let ok = ref true in
      let updater pid () =
        let h = S.handle t ~pid in
        for k = 1 to w.updates do
          let i = (k + pid) mod w.m in
          (* value encodes its component *)
          S.update h i ((i * 1_000_000) + (pid * 1_000) + k)
        done
      in
      let scanner pid () =
        let h = S.handle t ~pid in
        let idxs = Array.init w.r (fun k -> (k * 7) mod w.m) in
        let idxs = Array.of_list (List.sort_uniq compare (Array.to_list idxs)) in
        for _ = 1 to w.scans do
          let vs = S.scan h idxs in
          Array.iteri
            (fun k v ->
              if v >= 0 && v / 1_000_000 <> idxs.(k) then ok := false
              else if v < 0 && v <> -(idxs.(k) + 1) then ok := false)
            vs
        done
      in
      let procs =
        Array.init n (fun pid ->
            if pid < w.updaters then updater pid else scanner pid)
      in
      ignore (Sim.run ~sched:(scheduler_of w) procs);
      !ok)

let snapshot_impls : (string * (module SNAP)) list =
  [
    ("afek", (module Sim_afek));
    ("fig1", (module Sim_fig1));
    ("fig3", (module Sim_fig3));
    ("fig1-small", (module Sim_fig1_small));
    ("fig3-small", (module Sim_fig3_small));
    ("farray", (module Sim_farray));
    ("nonblocking", (module Sim_nonblocking));
    ("fig1-adaptive", (module Sim_fig1_adaptive));
  ]

let aset_impls : (string * (module ASET)) list =
  [
    ("bounded", (module Sim_aset_bounded));
    ("fai-cas", (module Sim_aset_fai));
    ("fai-cas-small", (module Sim_aset_fai_small));
    ("farray-aset", (module Sim_aset_farray));
    ("splitter-tree", (module Sim_aset_splitter));
  ]

let () =
  Alcotest.run "props"
    [
      ( "snapshots",
        List.map
          (fun (n, m) -> QCheck_alcotest.to_alcotest (snapshot_prop n m))
          snapshot_impls );
      ( "snapshots-mixed-roles",
        List.map
          (fun (n, m) ->
            QCheck_alcotest.to_alcotest (snapshot_prop ~mixed:true n m))
          snapshot_impls );
      ( "active-sets",
        List.map
          (fun (n, m) -> QCheck_alcotest.to_alcotest (aset_prop n m))
          aset_impls );
      ( "values",
        [ QCheck_alcotest.to_alcotest values_belong_prop ] );
    ]
