(* Intentionally racy: the unpublished-view bug.  Static twin of the
   dynamic [Race_fixtures.unpublished_view] workload; linted (never
   compiled) by test_lint, which expects R5 to flag the post-publication
   patch and the mutate-after-get, and R6 to flag the scan-result patch.

   The publication protocol for shared structures is: build the value
   completely, then release it with one atomic store.  Both functions below
   break it by mutating after the release — the patch is a plain write that
   some readers observe and others don't. *)

let slot : int array Atomic.t = Atomic.make [||]

(* R5, producer side: published, then patched in place. *)
let publish_then_patch () =
  let view = Array.make 4 0 in
  view.(0) <- 1;
  (* fine: before publication *)
  Atomic.set slot view;
  view.(1) <- 2
(* bug: after publication *)

(* R5, consumer side: a structure loaded from the atomic is patched. *)
let patch_loaded () =
  let view = Atomic.get slot in
  view.(0) <- 0

(* R6: a scan result is frozen at publication; patching it desynchronizes
   the borrowers that already hold it. *)
let patch_scan_result scan handle idxs =
  let view = scan handle idxs in
  view.(0) <- 0;
  view

(* Clean control: build fully, publish once — not flagged. *)
let publish_clean () =
  let view = Array.make 4 0 in
  view.(0) <- 1;
  view.(1) <- 2;
  Atomic.set slot view
