(* Intentionally racy: the plain-ref counter shared across Domain.spawn.
   Static twin of the dynamic [Race_fixtures.racy_counter] workload; linted
   (never compiled) by test_lint, which expects R4 to flag both spawn sites
   — the direct capture and the one through the [work] helper.

   This is the textbook OCaml multicore bug: [counter] is an ordinary ref,
   so the increments are plain (non-atomic) loads and stores with no
   happens-before edge between domains.  The count that comes out is
   whatever the interleaving left behind. *)

let counter = ref 0

let work () = counter := !counter + 1

let racy_direct () =
  let d = Domain.spawn (fun () -> counter := !counter + 1) in
  counter := !counter + 1;
  Domain.join d

let racy_via_helper () =
  let d = Domain.spawn (fun () -> work ()) in
  work ();
  Domain.join d

(* Clean control: the same shape with an Atomic.t is not flagged. *)
let atomic_counter = Atomic.make 0

let fine () =
  let d = Domain.spawn (fun () -> Atomic.incr atomic_counter) in
  Atomic.incr atomic_counter;
  Domain.join d
